// Ablation B: sensitivity to the initial solution.
//
// Section 5: "Notice that both GFM and GKL need to start with an initial
// feasible solution ... while QBP can start from any random solution.  In
// our separate experiments we discovered that QBP maintained the same kind
// of good results from any arbitrary initial solution."  This bench
// reproduces that separate experiment: QBP from four different starts on
// three circuits, with timing constraints active.
#include <cstdio>

#include "bench_support/circuits.hpp"
#include "core/burkard.hpp"
#include "core/initial.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  std::printf("Ablation: QBP final wirelength from different initial "
              "solutions (timing constraints active)\n\n");
  qbp::TextTable table({"circuit", "start strategy", "start WL",
                        "start feasible", "QBP final WL", "feasible", "cpu"});
  table.set_alignment(
      {qbp::TextTable::Align::kLeft, qbp::TextTable::Align::kLeft});

  const struct {
    qbp::InitialStrategy strategy;
    const char* name;
  } strategies[] = {
      {qbp::InitialStrategy::kRandom, "uniform random"},
      {qbp::InitialStrategy::kRandomFeasible, "random feasible"},
      {qbp::InitialStrategy::kGreedyBalanced, "greedy balanced"},
      {qbp::InitialStrategy::kQbpZeroWireCost, "QBP(B=0), paper"},
  };

  for (const char* name : {"cktb", "ckte", "cktg"}) {
    const auto instance = qbp::make_circuit(*qbp::find_preset(name));
    const auto& problem = instance.problem;
    for (const auto& [strategy, label] : strategies) {
      const auto initial = qbp::make_initial(problem, strategy, 1993);
      qbp::BurkardOptions options;
      const auto result = qbp::solve_qbp(problem, initial.assignment, options);
      const bool ok = result.found_feasible;
      table.add_row({name, label,
                     qbp::format_double(problem.wirelength(initial.assignment), 0),
                     initial.feasible ? "yes" : "no",
                     ok ? qbp::format_double(
                              problem.wirelength(result.best_feasible), 0)
                        : "-",
                     ok ? "yes" : "no", qbp::format_double(result.seconds, 2)});
    }
    table.add_rule();
    std::fprintf(stderr, "  %s done\n", name);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("expected shape: the final column varies little across start "
              "strategies for a given circuit,\nwhile GFM/GKL (Tables II/III) "
              "cannot run at all without a feasible start.\n");
  return 0;
}
