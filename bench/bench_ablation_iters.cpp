// Ablation C: solution quality vs. iteration budget.
//
// Section 5: "Notice that the solution quality is dependent on the number
// of iterations, the more CPU time spent, the better the results."  This
// bench sweeps N_iterations and reports the incumbent wirelength, showing
// the diminishing-returns curve that motivates the paper's fixed budget of
// 100.
#include <cstdio>

#include "bench_support/circuits.hpp"
#include "core/burkard.hpp"
#include "core/initial.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  std::printf("Ablation: QBP wirelength vs iteration budget "
              "(timing constraints active)\n\n");
  const std::int32_t budgets[] = {10, 25, 50, 100, 200, 400};

  qbp::TextTable table({"circuit", "start", "it=10", "it=25", "it=50",
                        "it=100", "it=200", "it=400", "cpu@400"});
  table.set_alignment({qbp::TextTable::Align::kLeft});

  for (const char* name : {"cktb", "ckte"}) {
    const auto instance = qbp::make_circuit(*qbp::find_preset(name));
    const auto& problem = instance.problem;
    const auto initial = qbp::make_initial(
        problem, qbp::InitialStrategy::kQbpZeroWireCost, 1993);

    std::vector<std::string> cells{
        name, qbp::format_double(problem.wirelength(initial.assignment), 0)};
    double cpu_at_max = 0.0;
    for (const std::int32_t budget : budgets) {
      qbp::BurkardOptions options;
      options.iterations = budget;
      const auto result = qbp::solve_qbp(problem, initial.assignment, options);
      cells.push_back(result.found_feasible
                          ? qbp::format_double(
                                problem.wirelength(result.best_feasible), 0)
                          : "-");
      cpu_at_max = result.seconds;
      std::fprintf(stderr, "  %s it=%d done\n", name, budget);
    }
    cells.push_back(qbp::format_double(cpu_at_max, 2));
    table.add_row(cells);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("expected shape: monotone (never worse) in the budget, most of "
              "the gain inside the first 100 iterations.\n");
  return 0;
}
