// Ablation D: the embedded penalty value.
//
// Section 3.2 / Theorem 2: any penalty works as long as the found minimizer
// is violation-free; the paper picks 50 to avoid the numerical downsides of
// the provable Theorem 1 bound U > 2 * sum|q| (which for these circuits is
// ~10^6).  The sweep shows (a) tiny penalties fail to reject violations,
// (b) a broad middle range behaves like the paper's 50, and (c) the huge
// provable U still works but no better.  Also ablates the eta-includes-
// omega variant of equation (3).
#include <cstdio>

#include "bench_support/circuits.hpp"
#include "core/burkard.hpp"
#include "core/embedding.hpp"
#include "core/initial.hpp"
#include "core/qhat.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  std::printf("Ablation: embedded timing-violation penalty "
              "(circuit ckte, 100 iterations)\n\n");
  const auto instance = qbp::make_circuit(*qbp::find_preset("ckte"));
  const auto& problem = instance.problem;
  const auto initial = qbp::make_initial(
      problem, qbp::InitialStrategy::kQbpZeroWireCost, 1993);

  const auto analysis = qbp::analyze_embedding(problem, qbp::kPaperPenalty);
  std::printf("Theorem 1 threshold for this instance: %s "
              "(paper's penalty: 50)\n\n",
              qbp::format_grouped(
                  static_cast<long long>(analysis.theorem1_threshold))
                  .c_str());

  qbp::TextTable table({"penalty", "provably exact", "found feasible",
                        "final WL", "best viol count", "cpu"});
  table.set_alignment({qbp::TextTable::Align::kLeft});

  const double penalties[] = {2.0, 10.0, 50.0, 500.0,
                              qbp::theorem1_penalty(problem)};
  for (const double penalty : penalties) {
    qbp::BurkardOptions options;
    options.penalty = penalty;
    const auto result = qbp::solve_qbp(problem, initial.assignment, options);
    const qbp::QhatMatrix qhat(problem, penalty);
    table.add_row(
        {qbp::format_double(penalty, 0),
         qbp::analyze_embedding(problem, penalty).provably_exact ? "yes" : "no",
         result.found_feasible ? "yes" : "no",
         result.found_feasible
             ? qbp::format_double(problem.wirelength(result.best_feasible), 0)
             : "-",
         std::to_string(qhat.ordered_violations(result.best)),
         qbp::format_double(result.seconds, 2)});
    std::fprintf(stderr, "  penalty %.0f done\n", penalty);
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("eta variant (equation (3): eta includes omega_s u_s term):\n");
  qbp::TextTable eta_table({"variant", "found feasible", "final WL", "cpu"});
  eta_table.set_alignment({qbp::TextTable::Align::kLeft});
  for (const bool with_omega : {false, true}) {
    qbp::BurkardOptions options;
    options.eta_includes_omega = with_omega;
    const auto result = qbp::solve_qbp(problem, initial.assignment, options);
    eta_table.add_row(
        {with_omega ? "eq. (3) with omega" : "listed STEP 3 (default)",
         result.found_feasible ? "yes" : "no",
         result.found_feasible
             ? qbp::format_double(problem.wirelength(result.best_feasible), 0)
             : "-",
         qbp::format_double(result.seconds, 2)});
  }
  std::printf("%s\n", eta_table.render().c_str());
  return 0;
}
