// Ablation E: our enhancements vs. the literal STEP 1-8 listing.
//
// DESIGN.md section 5 documents two additions to the algorithm as listed in
// the paper: iterate polishing (move + swap descent on the penalized
// objective) and periodic perturbed restarts of the line search.  This
// bench quantifies each on three circuits with timing constraints,
// justifying why the defaults enable them -- and showing the literal
// listing's failure mode (iterates hover near-feasible without certifying
// an improved incumbent).
#include <cstdio>

#include "bench_support/circuits.hpp"
#include "core/burkard.hpp"
#include "core/initial.hpp"
#include "core/qhat.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  std::printf("Ablation: literal Burkard listing vs enhancements "
              "(100 iterations, timing constraints active)\n\n");

  qbp::TextTable table({"circuit", "variant", "found feasible", "final WL",
                        "best penalized", "cpu"});
  table.set_alignment(
      {qbp::TextTable::Align::kLeft, qbp::TextTable::Align::kLeft});

  const struct {
    const char* name;
    std::int32_t polish;
    std::int32_t restart;
  } variants[] = {
      {"literal STEP 1-8", 0, 0},
      {"+ polish", 3, 0},
      {"+ restart only", 0, 12},
      {"+ polish + restart (default)", 3, 12},
  };

  for (const char* circuit : {"cktb", "ckte", "cktg"}) {
    const auto instance = qbp::make_circuit(*qbp::find_preset(circuit));
    const auto& problem = instance.problem;
    const auto initial = qbp::make_initial(
        problem, qbp::InitialStrategy::kQbpZeroWireCost, 1993);

    for (const auto& variant : variants) {
      qbp::BurkardOptions options;
      options.polish_sweeps = variant.polish;
      options.restart_period = variant.restart;
      const auto result = qbp::solve_qbp(problem, initial.assignment, options);
      table.add_row(
          {circuit, variant.name, result.found_feasible ? "yes" : "no",
           result.found_feasible
               ? qbp::format_double(problem.wirelength(result.best_feasible), 0)
               : "-",
           qbp::format_double(result.best_penalized, 0),
           qbp::format_double(result.seconds, 2)});
    }
    table.add_rule();
    std::fprintf(stderr, "  %s done\n", circuit);
  }
  std::printf("%s\n", table.render().c_str());
  return 0;
}
