// Ablation A: the Section 4.3 sparsity claim.
//
// "If the number of partitions is close to the number of components, a
// single iteration will take N^4 multiplications ... However ... the cost
// matrix Q-hat will be sparse.  We never explicitly generate the Q-hat
// matrix."  This bench times the STEP 3 eta gather two ways -- the sparse
// implicit path used by the solver and a dense O((MN)^2) reference -- and
// reports memory the dense matrix would need, across a size sweep.
#include <cstdio>

#include <vector>

#include "core/initial.hpp"
#include "core/qhat.hpp"
#include "netlist/generator.hpp"
#include "timing/constraints.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

qbp::PartitionProblem make_problem(std::int32_t n, std::uint64_t seed) {
  qbp::RandomNetlistSpec spec;
  spec.name = "sweep" + std::to_string(n);
  spec.num_components = n;
  spec.total_wires = 6 * n;
  spec.seed = seed;
  auto generated = qbp::generate_netlist(spec);
  auto topology = qbp::PartitionTopology::grid(4, 4, qbp::CostKind::kManhattan);
  std::vector<double> usage(16, 0.0);
  for (std::int32_t j = 0; j < n; ++j) {
    usage[generated.hidden_slot[j]] += generated.netlist.component_size(j);
  }
  for (qbp::PartitionId i = 0; i < 16; ++i) {
    topology.set_capacity(i, usage[i] * 1.15);
  }
  qbp::TimingSpec timing_spec;
  timing_spec.target_count = 3 * n;
  timing_spec.seed = seed;
  auto timing = qbp::generate_timing_constraints(
      generated.netlist, generated.hidden_slot, topology, timing_spec);
  return qbp::PartitionProblem(std::move(generated.netlist),
                               std::move(topology), std::move(timing));
}

/// Dense reference gather: eta[s] = sum_r qhat(r, s) u_r entry by entry.
void dense_eta(const qbp::QhatMatrix& qhat, const qbp::PartitionProblem& problem,
               const qbp::Assignment& u, std::vector<double>& eta) {
  const auto size = problem.flat_size();
  for (std::int64_t s = 0; s < size; ++s) {
    double total = 0.0;
    for (std::int32_t j = 0; j < problem.num_components(); ++j) {
      total += qhat.entry(problem.flat_index(u[j], j), s);
    }
    eta[static_cast<std::size_t>(s)] = total;
  }
}

}  // namespace

int main() {
  std::printf("Ablation: STEP 3 (eta gather) sparse implicit Q-hat vs dense "
              "reference, M = 16\n\n");
  qbp::TextTable table({"N", "MN", "dense Q-hat MiB", "nominal nnz",
                        "sparse eta (ms)", "dense eta (ms)", "speedup"});

  for (const std::int32_t n : {100, 200, 400, 800, 1600}) {
    const auto problem = make_problem(n, 42);
    const qbp::QhatMatrix qhat(problem, 50.0);
    const auto initial =
        qbp::make_initial(problem, qbp::InitialStrategy::kGreedyBalanced, 1);
    std::vector<double> eta(static_cast<std::size_t>(problem.flat_size()));

    // Sparse path, averaged over repeats.
    constexpr int kRepeats = 20;
    qbp::Timer sparse_timer;
    for (int repeat = 0; repeat < kRepeats; ++repeat) {
      qhat.eta(initial.assignment, eta);
    }
    const double sparse_ms = sparse_timer.millis() / kRepeats;
    const double checksum_sparse = eta[0] + eta[eta.size() / 2];

    // Dense path, once (it is the slow one).
    qbp::Timer dense_timer;
    dense_eta(qhat, problem, initial.assignment, eta);
    const double dense_ms = dense_timer.millis();
    const double checksum_dense = eta[0] + eta[eta.size() / 2];
    if (checksum_sparse != checksum_dense) {
      std::fprintf(stderr, "checksum mismatch at N=%d (%.6f vs %.6f)\n", n,
                   checksum_sparse, checksum_dense);
      return 1;
    }

    const double mn = static_cast<double>(problem.flat_size());
    table.add_row({std::to_string(n),
                   std::to_string(problem.flat_size()),
                   qbp::format_double(mn * mn * 8.0 / (1024.0 * 1024.0), 1),
                   qbp::format_grouped(qhat.nominal_nonzeros()),
                   qbp::format_double(sparse_ms, 3),
                   qbp::format_double(dense_ms, 1),
                   qbp::format_double(dense_ms / sparse_ms, 0) + "x"});
    std::fprintf(stderr, "  N=%d done\n", n);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("the dense column is what a materialized Q-hat would cost per "
              "STEP 3; the solver always uses the sparse path.\n");
  return 0;
}
