// Extension bench: the simulated-annealing baseline the paper did not run.
//
// SA was the other standard 1990s comparator; this bench answers "would
// annealing have beaten QBP?" on three circuits under the Table III
// protocol (shared feasible start, timing constraints active).
#include <cstdio>

#include "baselines/sa.hpp"
#include "bench_support/circuits.hpp"
#include "core/burkard.hpp"
#include "core/initial.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  std::printf("Extension: simulated annealing vs QBP "
              "(timing constraints active)\n\n");
  qbp::TextTable table({"circuit", "start", "QBP final", "(-%)", "cpu",
                        "SA final", "(-%)", "cpu", "SA accepted"});
  table.set_alignment({qbp::TextTable::Align::kLeft});

  for (const char* name : {"cktb", "ckte", "cktg"}) {
    const auto instance = qbp::make_circuit(*qbp::find_preset(name));
    const auto& problem = instance.problem;
    const auto initial = qbp::make_initial(
        problem, qbp::InitialStrategy::kQbpZeroWireCost, 1993);
    const double start = problem.wirelength(initial.assignment);
    const auto pct = [&](double final_cost) {
      return (start - final_cost) / start * 100.0;
    };

    const auto qbp_result = qbp::solve_qbp(problem, initial.assignment);
    const double qbp_final =
        qbp_result.found_feasible
            ? problem.wirelength(qbp_result.best_feasible)
            : start;

    qbp::SaOptions sa_options;
    sa_options.seed = 1993;
    const auto sa_result = qbp::solve_sa(problem, initial.assignment, sa_options);
    const double sa_final = problem.wirelength(sa_result.assignment);

    table.add_row({name, qbp::format_double(start, 0),
                   qbp::format_double(qbp_final, 0),
                   qbp::format_double(pct(qbp_final), 1),
                   qbp::format_double(qbp_result.seconds, 2),
                   qbp::format_double(sa_final, 0),
                   qbp::format_double(pct(sa_final), 1),
                   qbp::format_double(sa_result.seconds, 2),
                   qbp::format_grouped(sa_result.accepted)});
    std::fprintf(stderr, "  %s done\n", name);
  }
  std::printf("%s\n", table.render().c_str());
  return 0;
}
