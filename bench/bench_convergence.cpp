// Convergence curves: the incumbent penalized value per iteration for QBP
// on two circuits (timing constraints active), printed as CSV series --
// the "figure" a modern version of the paper would include next to
// Tables II/III.  Also prints a coarse ASCII sparkline for eyeballing.
#include <cstdio>

#include "bench_support/circuits.hpp"
#include "core/burkard.hpp"
#include "core/initial.hpp"

namespace {

void sparkline(const std::vector<double>& history) {
  if (history.empty()) return;
  const double hi = history.front();
  const double lo = history.back();
  const char* levels = " .:-=+*#%@";
  std::printf("  |");
  for (std::size_t k = 0; k < history.size(); k += std::max<std::size_t>(
                                                  1, history.size() / 60)) {
    const double t = hi > lo ? (history[k] - lo) / (hi - lo) : 0.0;
    std::printf("%c", levels[static_cast<int>(t * 9.0)]);
  }
  std::printf("|\n");
}

}  // namespace

int main() {
  std::printf("Convergence: incumbent penalized value per iteration "
              "(200 iterations, timing constraints active)\n\n");
  std::printf("csv header: circuit,iteration,best_penalized\n");

  for (const char* name : {"cktb", "ckte"}) {
    const auto instance = qbp::make_circuit(*qbp::find_preset(name));
    const auto& problem = instance.problem;
    const auto initial = qbp::make_initial(
        problem, qbp::InitialStrategy::kQbpZeroWireCost, 1993);
    qbp::BurkardOptions options;
    options.iterations = 200;
    const auto result = qbp::solve_qbp(problem, initial.assignment, options);

    for (std::size_t k = 0; k < result.history.size(); ++k) {
      std::printf("%s,%zu,%.1f\n", name, k + 1, result.history[k]);
    }
    std::printf("# %s: start %.0f, final feasible wirelength %.0f, %.2f s "
                "(high-to-low sparkline below)\n",
                name, problem.wirelength(initial.assignment),
                result.found_feasible
                    ? problem.wirelength(result.best_feasible)
                    : -1.0,
                result.seconds);
    sparkline(result.history);
    std::fprintf(stderr, "  %s done\n", name);
  }
  return 0;
}
