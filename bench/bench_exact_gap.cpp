// Extension bench: absolute optimality gaps on provably-solved instances.
//
// The paper can only compare heuristics against each other; with the
// branch-and-bound solver we can measure how far each method sits from the
// *proven optimum* on medium instances (16-20 components, 4 partitions,
// timing constraints active).
#include <cstdio>

#include "baselines/gfm.hpp"
#include "baselines/gkl.hpp"
#include "core/burkard.hpp"
#include "core/exact.hpp"
#include "core/initial.hpp"
#include "netlist/generator.hpp"
#include "timing/constraints.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

qbp::PartitionProblem make_instance(std::int32_t n, std::uint64_t seed) {
  qbp::RandomNetlistSpec spec;
  spec.name = "x" + std::to_string(seed);
  spec.num_components = n;
  spec.total_wires = 4 * n;
  spec.num_slots = 4;
  spec.grid_width = 2;
  spec.seed = seed;
  auto generated = qbp::generate_netlist(spec);
  auto topology = qbp::PartitionTopology::grid(2, 2, qbp::CostKind::kManhattan);
  std::vector<double> usage(4, 0.0);
  for (std::int32_t j = 0; j < n; ++j) {
    usage[generated.hidden_slot[j]] += generated.netlist.component_size(j);
  }
  for (qbp::PartitionId i = 0; i < 4; ++i) {
    topology.set_capacity(i, usage[i] * 1.25);
  }
  qbp::TimingSpec timing_spec;
  timing_spec.target_count = n;
  timing_spec.seed = seed;
  auto timing = qbp::generate_timing_constraints(
      generated.netlist, generated.hidden_slot, topology, timing_spec);
  return qbp::PartitionProblem(std::move(generated.netlist),
                               std::move(topology), std::move(timing));
}

}  // namespace

int main() {
  std::printf("Extension: optimality gaps against proven optima "
              "(4 partitions, timing constraints active)\n\n");
  qbp::TextTable table({"instance", "N", "optimum", "B&B nodes", "QBP gap",
                        "GFM gap", "GKL gap"});
  table.set_alignment({qbp::TextTable::Align::kLeft});

  for (const std::uint64_t seed : {21u, 22u, 23u, 24u}) {
    const std::int32_t n = 18;
    const auto problem = make_instance(n, seed);
    const auto initial = qbp::make_initial(
        problem, qbp::InitialStrategy::kQbpZeroWireCost, seed);
    if (!initial.feasible) {
      std::fprintf(stderr, "  seed %llu skipped (no feasible start)\n",
                   static_cast<unsigned long long>(seed));
      continue;
    }

    qbp::BurkardOptions qbp_options;
    qbp_options.iterations = 60;
    const auto heuristic = qbp::solve_qbp(problem, initial.assignment,
                                          qbp_options);
    qbp::ExactOptions exact_options;
    if (heuristic.found_feasible) {
      exact_options.warm_start = &heuristic.best_feasible;
    }
    const auto exact = qbp::solve_exact(problem, exact_options);
    if (!exact.found || !exact.proven_optimal) {
      std::fprintf(stderr, "  seed %llu skipped (not proven)\n",
                   static_cast<unsigned long long>(seed));
      continue;
    }

    const auto gfm = qbp::solve_gfm(problem, initial.assignment);
    const auto gkl = qbp::solve_gkl(problem, initial.assignment);
    const auto gap_of = [&](double value) {
      return exact.objective > 0.0
                 ? qbp::format_double(
                       (value - exact.objective) / exact.objective * 100.0, 1) +
                       "%"
                 : std::string(value == 0.0 ? "0.0%" : "inf");
    };
    table.add_row({"seed " + std::to_string(seed), std::to_string(n),
                   qbp::format_double(exact.objective, 0),
                   qbp::format_grouped(exact.nodes),
                   heuristic.found_feasible
                       ? gap_of(heuristic.best_feasible_objective)
                       : "-",
                   gap_of(gfm.objective), gap_of(gkl.objective)});
    std::fprintf(stderr, "  seed %llu done\n",
                 static_cast<unsigned long long>(seed));
  }
  std::printf("%s\n", table.render().c_str());
  return 0;
}
