// Kernel-level micro-benchmarks (google-benchmark): the inner pieces whose
// costs dominate a QBP run -- eta gathers, penalized evaluations, move/swap
// deltas, GAP and LAP solves -- plus the baselines' primitives.
#include <benchmark/benchmark.h>

#include "assign/gap.hpp"
#include "assign/lap.hpp"
#include "baselines/gfm.hpp"
#include "bench_support/circuits.hpp"
#include "core/burkard.hpp"
#include "core/multilevel.hpp"
#include "core/initial.hpp"
#include "core/qhat.hpp"
#include "partition/cost.hpp"
#include "util/rng.hpp"

namespace qbp {
namespace {

const CircuitInstance& cktb_instance() {
  static const CircuitInstance instance = make_circuit(*find_preset("cktb"));
  return instance;
}

const Assignment& cktb_start() {
  static const Assignment start =
      make_initial(cktb_instance().problem, InitialStrategy::kQbpZeroWireCost,
                   1993)
          .assignment;
  return start;
}

void BM_EtaGatherSparse(benchmark::State& state) {
  const auto& problem = cktb_instance().problem;
  const QhatMatrix qhat(problem, 50.0);
  std::vector<double> eta(static_cast<std::size_t>(problem.flat_size()));
  for (auto _ : state) {
    qhat.eta(cktb_start(), eta);
    benchmark::DoNotOptimize(eta.data());
  }
}
BENCHMARK(BM_EtaGatherSparse);

void BM_PenalizedValue(benchmark::State& state) {
  const auto& problem = cktb_instance().problem;
  const QhatMatrix qhat(problem, 50.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(qhat.penalized_value(cktb_start()));
  }
}
BENCHMARK(BM_PenalizedValue);

void BM_Wirelength(benchmark::State& state) {
  const auto& problem = cktb_instance().problem;
  for (auto _ : state) {
    benchmark::DoNotOptimize(problem.wirelength(cktb_start()));
  }
}
BENCHMARK(BM_Wirelength);

void BM_MoveDeltaPenalized(benchmark::State& state) {
  const auto& problem = cktb_instance().problem;
  const QhatMatrix qhat(problem, 50.0);
  Rng rng(1);
  for (auto _ : state) {
    const auto j = static_cast<std::int32_t>(
        rng.next_below(problem.num_components()));
    const auto target =
        static_cast<PartitionId>(rng.next_below(problem.num_partitions()));
    benchmark::DoNotOptimize(
        qhat.move_delta_penalized(cktb_start(), j, target));
  }
}
BENCHMARK(BM_MoveDeltaPenalized);

void BM_SwapDeltaPenalized(benchmark::State& state) {
  const auto& problem = cktb_instance().problem;
  const QhatMatrix qhat(problem, 50.0);
  Rng rng(2);
  for (auto _ : state) {
    const auto a = static_cast<std::int32_t>(
        rng.next_below(problem.num_components()));
    const auto b = static_cast<std::int32_t>(
        rng.next_below(problem.num_components()));
    if (a == b) continue;
    benchmark::DoNotOptimize(qhat.swap_delta_penalized(cktb_start(), a, b));
  }
}
BENCHMARK(BM_SwapDeltaPenalized);

void BM_GapSolve(benchmark::State& state) {
  const auto& problem = cktb_instance().problem;
  Rng rng(3);
  GapProblem gap;
  gap.sizes = problem.netlist().sizes();
  gap.capacities = problem.topology().capacities();
  gap.cost = Matrix<double>(problem.num_partitions(), problem.num_components());
  for (std::int32_t i = 0; i < gap.cost.rows(); ++i) {
    for (std::int32_t j = 0; j < gap.cost.cols(); ++j) {
      gap.cost(i, j) = rng.next_double(0, 100);
    }
  }
  GapOptions options;
  options.swap_improvement = state.range(0) != 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_gap(gap, options));
  }
}
BENCHMARK(BM_GapSolve)->Arg(0)->Arg(1)->ArgName("swaps");

void BM_LapSolve(benchmark::State& state) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  Rng rng(4);
  Matrix<double> cost(n, n, 0.0);
  for (std::int32_t r = 0; r < n; ++r) {
    for (std::int32_t c = 0; c < n; ++c) cost(r, c) = rng.next_double(0, 100);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_lap(cost));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_LapSolve)->Arg(16)->Arg(64)->Arg(128)->Complexity();

void BM_QbpIteration(benchmark::State& state) {
  // One full Burkard iteration (amortized): 5-iteration solves divided by 5.
  const auto& problem = cktb_instance().problem;
  BurkardOptions options;
  options.iterations = 5;
  options.record_history = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_qbp(problem, cktb_start(), options));
  }
}
BENCHMARK(BM_QbpIteration)->Unit(benchmark::kMillisecond);

void BM_GfmPass(benchmark::State& state) {
  const auto& problem = cktb_instance().problem;
  GfmOptions options;
  options.max_passes = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_gfm(problem, cktb_start(), options));
  }
}
BENCHMARK(BM_GfmPass)->Unit(benchmark::kMillisecond);

void BM_Coarsen(benchmark::State& state) {
  const auto& problem = cktb_instance().problem;
  for (auto _ : state) {
    benchmark::DoNotOptimize(coarsen(problem));
  }
}
BENCHMARK(BM_Coarsen)->Unit(benchmark::kMillisecond);

void BM_TimingViolationCount(benchmark::State& state) {
  const auto& problem = cktb_instance().problem;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        problem.timing().violations(cktb_start(), problem.topology()));
  }
}
BENCHMARK(BM_TimingViolationCount);

void BM_CircuitGeneration(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_circuit(*find_preset("cktb")));
  }
}
BENCHMARK(BM_CircuitGeneration)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace qbp
