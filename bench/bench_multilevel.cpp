// Extension bench: flat QBP vs the multilevel V-cycle.
//
// Multilevel partitioning is where the field went after 1993; this bench
// quantifies what two heavy-edge-coarsening levels buy on the Table I
// circuits (timing constraints active).  Measured result: slightly better
// wirelength than the flat 100-iteration run at roughly 2x the time (the
// V-cycle runs full refinement on every level) -- a quality knob, not a
// speedup, at these sizes.
#include <cstdio>

#include "bench_support/circuits.hpp"
#include "core/initial.hpp"
#include "core/multilevel.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  std::printf("Extension: flat QBP (100 iterations) vs multilevel V-cycle "
              "(timing constraints active)\n\n");
  qbp::TextTable table({"circuit", "start", "flat WL", "flat cpu",
                        "ML levels (sizes)", "ML WL", "ML cpu"});
  table.set_alignment({qbp::TextTable::Align::kLeft});

  for (const char* name : {"cktb", "cktd", "cktc"}) {
    const auto instance = qbp::make_circuit(*qbp::find_preset(name));
    const auto& problem = instance.problem;
    const auto initial = qbp::make_initial(
        problem, qbp::InitialStrategy::kQbpZeroWireCost, 1993);
    const double start = problem.wirelength(initial.assignment);

    const auto flat = qbp::solve_qbp(problem, initial.assignment);
    const double flat_wl = flat.found_feasible
                               ? problem.wirelength(flat.best_feasible)
                               : start;

    qbp::MultilevelOptions options;
    const auto multilevel =
        qbp::solve_qbp_multilevel(problem, initial.assignment, options);
    const double ml_wl =
        multilevel.finest.found_feasible
            ? problem.wirelength(multilevel.finest.best_feasible)
            : start;
    std::string sizes;
    for (std::size_t k = 0; k < multilevel.level_sizes.size(); ++k) {
      if (k > 0) sizes += "->";
      sizes += std::to_string(multilevel.level_sizes[k]);
    }

    table.add_row({name, qbp::format_double(start, 0),
                   qbp::format_double(flat_wl, 0),
                   qbp::format_double(flat.seconds, 2), sizes,
                   qbp::format_double(ml_wl, 0),
                   qbp::format_double(multilevel.seconds, 2)});
    std::fprintf(stderr, "  %s done\n", name);
  }
  std::printf("%s\n", table.render().c_str());
  return 0;
}
