// Portfolio bench: serial multistart vs. the parallel portfolio driver.
//
// The paper's Section 5 observation -- QBP is insensitive to its starting
// solution, so several cheap starts beat one long run -- makes multistart
// the natural outer loop.  The engine's Portfolio runs those starts on a
// thread pool with deterministic per-start RNG streams, so the chosen
// assignment is identical to the serial loop's while the wall clock divides
// by the worker count (up to scheduling overhead; on an 8-core runner a
// 16-start portfolio should show >= 4x).
//
// Columns: serial = solve_qbp_multistart (one thread, K starts);
// T=n = Portfolio with n workers.  "speedup" is serial / portfolio wall
// clock; "same solution" checks the determinism contract end to end.
#include <cstdio>

#include <string>
#include <thread>
#include <vector>

#include "bench_support/circuits.hpp"
#include "core/burkard.hpp"
#include "engine/engine.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main() {
  constexpr std::int32_t kStarts = 16;
  constexpr std::uint64_t kSeed = 1993;
  const unsigned hardware = std::max(1u, std::thread::hardware_concurrency());

  qbp::BurkardOptions options;
  options.iterations = 40;

  std::printf("Portfolio: %d-start QBP, serial loop vs parallel driver "
              "(%u hardware threads)\n\n",
              kStarts, hardware);
  qbp::TextTable table({"circuit", "mode", "wall (s)", "total work (s)",
                        "speedup", "feasible", "objective"});

  for (const char* name : {"ckta", "cktb"}) {
    const auto instance = qbp::make_circuit(*qbp::find_preset(name));
    const auto& problem = instance.problem;

    // Reference: the serial multistart driver.
    const qbp::Timer serial_timer;
    const auto serial =
        qbp::solve_qbp_multistart(problem, kStarts, kSeed, options);
    const double serial_seconds = serial_timer.seconds();
    table.add_row({name, "serial", qbp::format_double(serial_seconds, 2),
                   qbp::format_double(serial.seconds, 2), "1.0x",
                   serial.found_feasible ? "yes" : "no",
                   qbp::format_double(serial.found_feasible
                                          ? serial.best_feasible_objective
                                          : serial.best_penalized,
                                      1)});

    const qbp::engine::BurkardSolver solver(options);
    qbp::engine::PortfolioResult reference;
    for (const std::int32_t threads :
         {1, 2, static_cast<std::int32_t>(hardware)}) {
      qbp::engine::PortfolioOptions portfolio_options;
      portfolio_options.seed = kSeed;
      portfolio_options.threads = threads;
      portfolio_options.keep_start_results = false;
      const auto result = qbp::engine::Portfolio(portfolio_options)
                              .run(problem, solver, kStarts);
      if (threads == 1) reference = result;
      const bool same = result.best.best == reference.best.best &&
                        result.best_start == reference.best_start;
      table.add_row(
          {name, "T=" + std::to_string(result.threads_used) + (same ? "" : " (DIFFERS!)"),
           qbp::format_double(result.seconds, 2),
           qbp::format_double(result.seconds_total, 2),
           qbp::format_double(serial_seconds / result.seconds, 1) + "x",
           result.best.found_feasible ? "yes" : "no",
           qbp::format_double(result.best.found_feasible
                                  ? result.best.best_feasible_objective
                                  : result.best.best_penalized,
                              1)});
    }
    std::fprintf(stderr, "  %s done\n", name);
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("expected shape: every row of one circuit reaches the same "
              "solution (determinism contract); T=1 tracks the serial\n"
              "wall clock, and T=n divides it by ~n until n exceeds the "
              "core count or K/n leaves the pool underfed.\n");
  return 0;
}
