// Unified benchmark driver: runs every table/scaling experiment through
// bench_support/experiment with one machine-readable output format, and
// doubles as the CI bench-regression gate via --check.
//
//   bench_runner --suite all --json out.json          # full local baseline
//   bench_runner --smoke --json out.json --check bench/BENCH_smoke.json
//                                                    # ^ the CI gate
//   bench_runner --smoke --profile                    # phase breakdown
//
// JSON schema (schema = 1):
//   { "schema": 1, "mode": "smoke"|"full", "inner_threads": K,
//     "suites": { "table1": [{"circuit","components","wires",
//                             "timing_constraints","gen_seconds",...}...],
//                 "table2": [row...], "table3": [row...],
//                 "scaling": [{"n","wires","constraints","iterations",
//                              "threads","seconds","ms_per_iter",
//                              "final","feasible"}...] },
//     "phases": { "<phase>": {"seconds","count"}, ... } }     (--profile)
//
// --check BASELINE compares the current run against a baseline produced by
// the same mode: objective values (start / per-method final / scaling final)
// must match EXACTLY -- the solver is deterministic, so any drift means the
// algorithm changed -- and wall-clock must satisfy
//   new <= old * (1 + time_tolerance) + 0.1 s
// (the absolute slack keeps sub-100ms smoke timings from tripping on noise).
#include <algorithm>
#include <cstdio>
#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "bench_support/circuits.hpp"
#include "bench_support/eco_stream.hpp"
#include "bench_support/experiment.hpp"
#include "bench_support/serve_bench.hpp"
#include "core/burkard.hpp"
#include "core/initial.hpp"
#include "core/multilevel.hpp"
#include "core/problem_io.hpp"
#include "service/cache.hpp"
#include "service/job.hpp"
#include "netlist/stats.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/prof.hpp"
#include "util/simd.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

struct RunnerConfig {
  bool smoke = false;
  double time_tolerance = 0.25;
  std::int64_t inner_threads = 1;
  /// Presolve before the QBP legs.  The standard circuits have no reducible
  /// structure, so on/off runs are bit-identical there and --check works
  /// against one shared baseline in both modes.
  bool presolve = true;
};

// "serve" is deliberately NOT part of "all": it spins up multi-worker
// servers and measures saturated throughput, which would perturb (and be
// perturbed by) the solver suites sharing the machine.  CI runs it as its
// own bench-gate step against bench/BENCH_serve.json.
constexpr const char* kSuiteNames[] = {"table1",   "table2", "table3",
                                       "scaling",  "presolve", "eco",
                                       "vcycle",   "serve",  "all"};

struct ScalingRow {
  std::int32_t n = 0;
  std::int64_t wires = 0;
  std::int64_t constraints = 0;
  std::int32_t iterations = 0;
  std::int32_t threads = 1;
  double seconds = 0.0;
  double ms_per_iter = 0.0;
  double final_cost = 0.0;
  bool feasible = false;
};

std::vector<qbp::ExperimentRow> run_table_suite(bool with_timing,
                                                const RunnerConfig& config) {
  qbp::ExperimentConfig experiment;
  std::vector<std::string> circuits;
  experiment.inner_threads = static_cast<std::int32_t>(config.inner_threads);
  experiment.presolve.enabled = config.presolve;
  if (config.smoke) {
    experiment.qbp_iterations = 30;
    experiment.gkl_outer_loops = 3;
    circuits = {"cktb"};
  } else {
    for (const auto& preset : qbp::shihkuh_presets())
      circuits.push_back(preset.name);
  }

  std::vector<qbp::ExperimentRow> rows;
  for (const auto& name : circuits) {
    const qbp::CircuitPreset* preset = qbp::find_preset(name);
    const auto instance = qbp::make_circuit(*preset);
    // Shared start computed on the timing-constrained problem (Section 5);
    // Table II then drops the constraints from the problem it solves.
    const auto initial = qbp::make_initial(
        instance.problem, qbp::InitialStrategy::kQbpZeroWireCost,
        experiment.seed);
    rows.push_back(qbp::run_experiment_from(
        name,
        with_timing ? instance.problem : instance.problem.without_timing(),
        initial.assignment, initial.feasible, experiment));
    std::fprintf(stderr, "  %s done\n", name.c_str());
  }
  return rows;
}

std::vector<ScalingRow> run_scaling_suite(const RunnerConfig& config) {
  const std::vector<std::int32_t> sizes =
      config.smoke ? std::vector<std::int32_t>{200, 400}
                   : std::vector<std::int32_t>{200, 400, 800, 1600, 3200};
  const std::int32_t iterations = config.smoke ? 10 : 30;

  std::vector<ScalingRow> rows;
  for (const std::int32_t n : sizes) {
    const auto problem = qbp::make_scaling_problem(n, 7);
    const auto initial = qbp::make_initial(
        problem, qbp::InitialStrategy::kQbpZeroWireCost, 7);
    const double start = problem.wirelength(initial.assignment);

    qbp::BurkardOptions options;
    options.iterations = iterations;
    options.inner_threads = static_cast<std::int32_t>(config.inner_threads);
    options.presolve.enabled = config.presolve;
    const qbp::Timer timer;
    const auto result = qbp::solve_qbp(problem, initial.assignment, options);

    ScalingRow row;
    row.n = n;
    row.wires = problem.netlist().total_wires();
    row.constraints = problem.timing().count();
    row.iterations = result.iterations_run;
    row.threads = static_cast<std::int32_t>(config.inner_threads);
    row.seconds = timer.seconds();
    row.ms_per_iter = result.iterations_run > 0
                          ? row.seconds * 1000.0 / result.iterations_run
                          : 0.0;
    row.feasible = result.found_feasible;
    row.final_cost = result.found_feasible
                         ? problem.wirelength(result.best_feasible)
                         : start;
    rows.push_back(row);
    std::fprintf(stderr, "  N=%d done (%.2fs)\n", n, row.seconds);
  }
  return rows;
}

// Presolve suite: reducible scaling instances (make_presolve_problem),
// solved once with presolve off and once with presolve on.  Rows report the
// reduction-rule counters (exact-gated: the reducer is deterministic) plus
// both solve times, so the baseline pins the speedup presolve buys.
struct PresolveRow {
  std::int32_t n = 0;
  qbp::PresolveStats stats;
  double reduction_pct = 0.0;
  double seconds_off = 0.0;
  double seconds_on = 0.0;
  double final_off = 0.0;  // feasible objective, or penalized value
  double final_on = 0.0;
  bool feasible_off = false;
  bool feasible_on = false;
};

std::vector<PresolveRow> run_presolve_suite(const RunnerConfig& config) {
  const std::vector<std::int32_t> sizes =
      config.smoke ? std::vector<std::int32_t>{200, 400}
                   : std::vector<std::int32_t>{200, 400, 800, 1600, 3200};
  const std::int32_t iterations = config.smoke ? 10 : 30;

  std::vector<PresolveRow> rows;
  for (const std::int32_t n : sizes) {
    const auto problem = qbp::make_presolve_problem(n, 7);
    const auto initial = qbp::make_initial(
        problem, qbp::InitialStrategy::kQbpZeroWireCost, 7);

    PresolveRow row;
    row.n = n;
    row.stats = qbp::presolve(problem).stats;
    row.reduction_pct = 100.0 * row.stats.components_removed / n;

    qbp::BurkardOptions options;
    options.iterations = iterations;
    options.inner_threads = static_cast<std::int32_t>(config.inner_threads);
    const auto record = [&](double& seconds, double& final_cost,
                            bool& feasible) {
      const qbp::Timer timer;
      const auto result = qbp::solve_qbp(problem, initial.assignment, options);
      seconds = timer.seconds();
      feasible = result.found_feasible;
      final_cost = result.found_feasible ? result.best_feasible_objective
                                         : result.best_penalized;
    };
    record(row.seconds_off, row.final_off, row.feasible_off);
    options.presolve.enabled = true;
    record(row.seconds_on, row.final_on, row.feasible_on);

    rows.push_back(row);
    std::fprintf(stderr, "  N=%d done (off %.2fs, on %.2fs, -%d comps)\n", n,
                 row.seconds_off, row.seconds_on,
                 row.stats.components_removed);
  }
  return rows;
}

// Eco suite: warm-start serving latency.  Each N runs the service job layer
// against a private SolutionCache: one cold solve (inserted), one exact
// re-submission (must come back as a bit-identical cache hit), then a short
// stream of ECO-perturbed variants (bench_support/eco_stream) that should
// be answered by the warm re-solve path.  Everything here is deterministic
// -- the cache is driven by a scripted sequence -- so finals are
// exact-gated; the headline number is warm_p50 / cold.
struct EcoRow {
  std::int32_t n = 0;
  double cold_seconds = 0.0;
  double cold_final = 0.0;
  bool exact_hit = false;     // exact re-submit hit + bit-identical payload
  std::int32_t variants = 0;  // perturbed re-submissions issued
  std::int32_t warm_hits = 0;  // of those, answered via the warm path
  std::vector<double> warm_finals;  // per-variant objective, exact-gated
  double warm_p50_seconds = 0.0;
  double warm_ratio = 0.0;  // warm_p50 / cold_seconds
};

std::vector<EcoRow> run_eco_suite(const RunnerConfig& config) {
  const std::vector<std::int32_t> sizes =
      config.smoke ? std::vector<std::int32_t>{200, 400}
                   : std::vector<std::int32_t>{800, 3200};
  // Enough work that the single-start cold solve lands feasible at every
  // size (the suite's exact-hit and warm-start checks need an "ok" cold);
  // smoke leans on extra starts instead of iterations to stay quick.
  const std::int32_t iterations = config.smoke ? 10 : 100;
  const std::int32_t starts = config.smoke ? 4 : 1;
  constexpr std::int32_t kVariants = 5;

  std::vector<EcoRow> rows;
  for (const std::int32_t n : sizes) {
    const auto base = qbp::make_scaling_problem(n, 7);
    qbp::service::SolutionCache cache(16);

    qbp::service::Job job;
    job.solver.method = "qbp";
    job.solver.starts = starts;
    job.solver.iterations = iterations;
    job.solver.seed = 7;
    job.solver.inner_threads =
        static_cast<std::int32_t>(config.inner_threads);
    // Explicit so the spec fingerprint is independent of the build's
    // validation default; the warm path re-validates on its own anyway.
    job.solver.validate = false;
    {
      std::ostringstream out;
      qbp::write_problem(out, base);
      job.problem_text = out.str();
    }

    EcoRow row;
    row.n = n;

    job.id = "cold";
    const qbp::Timer cold_timer;
    const auto cold = qbp::service::run_job(job, &cache);
    row.cold_seconds = cold_timer.seconds();
    row.cold_final = cold.objective;

    job.id = "exact";
    const auto exact = qbp::service::run_job(job, &cache);
    row.exact_hit = exact.cache_hit && exact.status == cold.status &&
                    exact.objective == cold.objective &&
                    exact.assignment == cold.assignment;

    std::vector<double> warm_times;
    for (std::int32_t v = 1; v <= kVariants; ++v) {
      const auto variant = qbp::make_eco_variant(base, 7, v);
      std::ostringstream out;
      qbp::write_problem(out, variant);
      job.problem_text = out.str();
      job.id = "eco-" + std::to_string(v);
      const qbp::Timer warm_timer;
      const auto warm = qbp::service::run_job(job, &cache);
      const double seconds = warm_timer.seconds();
      ++row.variants;
      row.warm_finals.push_back(warm.objective);
      if (warm.warm_start) {
        ++row.warm_hits;
        warm_times.push_back(seconds);
      }
    }
    if (!warm_times.empty()) {
      std::sort(warm_times.begin(), warm_times.end());
      row.warm_p50_seconds = warm_times[warm_times.size() / 2];
    }
    row.warm_ratio = row.cold_seconds > 0.0
                         ? row.warm_p50_seconds / row.cold_seconds
                         : 0.0;
    rows.push_back(row);
    std::fprintf(stderr,
                 "  N=%d done (cold %.2fs, warm p50 %.3fs, ratio %.3f, "
                 "%d/%d warm)\n",
                 n, row.cold_seconds, row.warm_p50_seconds, row.warm_ratio,
                 row.warm_hits, row.variants);
  }
  return rows;
}

// V-cycle suite: the multilevel solver at sizes the flat heuristic cannot
// touch (N up to 100k).  Everything is deterministic -- the hierarchy, the
// coarsest solve and every refinement pass are bit-identical at any
// inner-thread count and with the SIMD kernels on or off -- so the final
// objective, feasibility, level count and per-level sizes are all
// exact-gated; wall clock (total and the coarsening share) gets the usual
// tolerance.  This is the CI scaling gate: a re-run with --inner-threads 2
// or --simd off must pass --check against the same baseline.
struct VcycleRow {
  std::int32_t n = 0;
  std::int64_t wires = 0;
  std::int64_t constraints = 0;
  std::int32_t levels = 0;
  std::vector<std::int32_t> level_sizes;
  std::int32_t threads = 1;
  double coarsen_seconds = 0.0;
  double seconds = 0.0;
  double final_cost = 0.0;  // feasible wirelength, or penalized value
  bool feasible = false;
};

std::vector<VcycleRow> run_vcycle_suite(const RunnerConfig& config) {
  const std::vector<std::int32_t> sizes =
      config.smoke ? std::vector<std::int32_t>{10000}
                   : std::vector<std::int32_t>{10000, 30000, 100000};

  std::vector<VcycleRow> rows;
  for (const std::int32_t n : sizes) {
    const auto problem = qbp::make_scaling_problem(n, 7);
    // A plain random seed: at V-cycle scale the hierarchy owns solution
    // quality, and the QBP zero-wire-cost start would cost more than the
    // whole solve.
    const auto initial =
        qbp::make_initial(problem, qbp::InitialStrategy::kRandom, 7);

    qbp::MultilevelOptions options;
    options.coarsen.inner_threads =
        static_cast<std::int32_t>(config.inner_threads);
    options.coarse_solver.inner_threads =
        static_cast<std::int32_t>(config.inner_threads);
    options.refine_solver.inner_threads =
        static_cast<std::int32_t>(config.inner_threads);
    options.presolve.enabled = config.presolve;

    const qbp::Timer timer;
    const auto result =
        qbp::solve_qbp_multilevel(problem, initial.assignment, options);

    VcycleRow row;
    row.n = n;
    row.wires = problem.netlist().total_wires();
    row.constraints = problem.timing().count();
    row.levels = result.levels_used;
    row.level_sizes = result.level_sizes;
    row.threads = static_cast<std::int32_t>(config.inner_threads);
    row.coarsen_seconds = result.coarsen_seconds;
    row.seconds = timer.seconds();
    row.feasible = result.finest.found_feasible;
    row.final_cost = result.finest.found_feasible
                         ? problem.wirelength(result.finest.best_feasible)
                         : result.finest.best_penalized;
    rows.push_back(row);
    std::fprintf(stderr,
                 "  N=%d done (%.2fs, coarsen %.2fs, %d levels, kernel %s)\n",
                 n, row.seconds, row.coarsen_seconds, row.levels,
                 qbp::simd::active_kernel());
  }
  return rows;
}

qbp::json::Value vcycle_to_json(const std::vector<VcycleRow>& rows) {
  qbp::json::Value out = qbp::json::Value::array();
  for (const auto& row : rows) {
    qbp::json::Value entry = qbp::json::Value::object();
    entry.set("n", static_cast<std::int64_t>(row.n));
    entry.set("wires", row.wires);
    entry.set("constraints", row.constraints);
    entry.set("levels", static_cast<std::int64_t>(row.levels));
    qbp::json::Value sizes = qbp::json::Value::array();
    for (const std::int32_t size : row.level_sizes) {
      sizes.push_back(static_cast<std::int64_t>(size));
    }
    entry.set("level_sizes", std::move(sizes));
    entry.set("threads", static_cast<std::int64_t>(row.threads));
    entry.set("kernel", std::string(qbp::simd::active_kernel()));
    entry.set("coarsen_seconds", row.coarsen_seconds);
    entry.set("seconds", row.seconds);
    entry.set("final", row.final_cost);
    entry.set("feasible", row.feasible);
    out.push_back(std::move(entry));
  }
  return out;
}

qbp::json::Value eco_to_json(const std::vector<EcoRow>& rows) {
  qbp::json::Value out = qbp::json::Value::array();
  for (const auto& row : rows) {
    qbp::json::Value entry = qbp::json::Value::object();
    entry.set("n", static_cast<std::int64_t>(row.n));
    entry.set("cold_seconds", row.cold_seconds);
    entry.set("cold_final", row.cold_final);
    entry.set("exact_hit", row.exact_hit);
    entry.set("variants", static_cast<std::int64_t>(row.variants));
    entry.set("warm_hits", static_cast<std::int64_t>(row.warm_hits));
    qbp::json::Value finals = qbp::json::Value::array();
    for (const double final_cost : row.warm_finals) {
      finals.push_back(final_cost);
    }
    entry.set("warm_finals", std::move(finals));
    entry.set("warm_p50_seconds", row.warm_p50_seconds);
    entry.set("warm_ratio", row.warm_ratio);
    out.push_back(std::move(entry));
  }
  return out;
}

qbp::json::Value presolve_to_json(const std::vector<PresolveRow>& rows) {
  qbp::json::Value out = qbp::json::Value::array();
  for (const auto& row : rows) {
    qbp::json::Value entry = qbp::json::Value::object();
    entry.set("n", static_cast<std::int64_t>(row.n));
    entry.set("r0", static_cast<std::int64_t>(row.stats.r0));
    entry.set("r1", static_cast<std::int64_t>(row.stats.r1));
    entry.set("r2", static_cast<std::int64_t>(row.stats.r2));
    entry.set("rn", static_cast<std::int64_t>(row.stats.rn));
    entry.set("components_removed",
              static_cast<std::int64_t>(row.stats.components_removed));
    entry.set("reduction_pct", row.reduction_pct);
    entry.set("presolve_seconds", row.stats.seconds);
    entry.set("seconds_off", row.seconds_off);
    entry.set("seconds_on", row.seconds_on);
    entry.set("final_off", row.final_off);
    entry.set("final_on", row.final_on);
    entry.set("feasible_off", row.feasible_off);
    entry.set("feasible_on", row.feasible_on);
    out.push_back(std::move(entry));
  }
  return out;
}

// Table I rows: structural circuit descriptions (no solving).  The gate
// treats the counts like objectives -- generation is deterministic, so any
// drift means the synthesis changed -- and the generation time like
// wall-clock.
qbp::json::Value run_table1_suite(const RunnerConfig& config) {
  std::vector<std::string> circuits;
  if (config.smoke) {
    circuits = {"cktb"};
  } else {
    for (const auto& preset : qbp::shihkuh_presets())
      circuits.push_back(preset.name);
  }

  qbp::json::Value rows = qbp::json::Value::array();
  qbp::TextTable table({"ckt", "components", "wires", "timing constraints",
                        "gen time (s)"});
  for (const auto& name : circuits) {
    const qbp::Timer timer;
    const auto instance = qbp::make_circuit(*qbp::find_preset(name));
    const double gen_seconds = timer.seconds();
    const auto stats = qbp::compute_stats(instance.problem.netlist());

    table.add_row({name, std::to_string(stats.num_components),
                   std::to_string(stats.total_wires),
                   std::to_string(instance.problem.timing().count()),
                   qbp::format_double(gen_seconds, 2)});
    qbp::json::Value entry = qbp::json::Value::object();
    entry.set("circuit", name);
    entry.set("components", stats.num_components);
    entry.set("wires", static_cast<std::int64_t>(stats.total_wires));
    entry.set("timing_constraints",
              static_cast<std::int64_t>(instance.problem.timing().count()));
    entry.set("size_ratio", stats.size_ratio);
    entry.set("avg_degree", stats.avg_degree);
    entry.set("gen_seconds", gen_seconds);
    rows.push_back(std::move(entry));
    std::fprintf(stderr, "  %s done\n", name.c_str());
  }
  std::printf("%s\n", table.render().c_str());
  return rows;
}

// Serve suite (bench_support/serve_bench): saturated qbpartd throughput
// under both edge framings.  Smoke shrinks the problem and batch sizes.
std::vector<qbp::ServeRow> run_serve_suite(const RunnerConfig& config) {
  qbp::ServeBenchConfig serve;
  serve.inner_threads = static_cast<std::int32_t>(config.inner_threads);
  if (config.smoke) {
    serve.n = 200;
    serve.jobs = 24;
    serve.warm_jobs = 8;
  }
  return qbp::run_serve_bench(serve);
}

qbp::json::Value serve_to_json(const std::vector<qbp::ServeRow>& rows) {
  qbp::json::Value out = qbp::json::Value::array();
  for (const auto& row : rows) {
    qbp::json::Value entry = qbp::json::Value::object();
    entry.set("scenario", row.scenario);
    entry.set("framing", row.framing);
    entry.set("workers", static_cast<std::int64_t>(row.workers));
    entry.set("jobs", static_cast<std::int64_t>(row.jobs));
    entry.set("seconds", row.seconds);
    entry.set("jobs_per_sec", row.jobs_per_sec);
    entry.set("results_hash", row.results_hash);
    entry.set("cache_hits", static_cast<std::int64_t>(row.cache_hits));
    entry.set("warm_hits", static_cast<std::int64_t>(row.warm_hits));
    entry.set("ok", row.ok);
    out.push_back(std::move(entry));
  }
  return out;
}

qbp::json::Value scaling_to_json(const std::vector<ScalingRow>& rows) {
  qbp::json::Value out = qbp::json::Value::array();
  for (const auto& row : rows) {
    qbp::json::Value entry = qbp::json::Value::object();
    entry.set("n", static_cast<std::int64_t>(row.n));
    entry.set("wires", row.wires);
    entry.set("constraints", row.constraints);
    entry.set("iterations", static_cast<std::int64_t>(row.iterations));
    entry.set("threads", static_cast<std::int64_t>(row.threads));
    entry.set("seconds", row.seconds);
    entry.set("ms_per_iter", row.ms_per_iter);
    entry.set("final", row.final_cost);
    entry.set("feasible", row.feasible);
    out.push_back(std::move(entry));
  }
  return out;
}

// --- baseline comparison ---------------------------------------------------

struct Gate {
  double time_tolerance = 0.25;
  int failures = 0;

  void objective(const std::string& where, double baseline, double current) {
    if (baseline == current) return;
    std::fprintf(stderr,
                 "GATE FAIL %s: objective changed (baseline %.6f, now %.6f)\n",
                 where.c_str(), baseline, current);
    ++failures;
  }
  void wall_clock(const std::string& where, double baseline, double current) {
    const double limit = baseline * (1.0 + time_tolerance) + 0.1;
    if (current <= limit) return;
    std::fprintf(stderr,
                 "GATE FAIL %s: time regressed (baseline %.3fs, limit %.3fs, "
                 "now %.3fs)\n",
                 where.c_str(), baseline, limit, current);
    ++failures;
  }
  void missing(const std::string& what) {
    std::fprintf(stderr, "GATE FAIL baseline is missing %s\n", what.c_str());
    ++failures;
  }
};

void check_table_suite(Gate& gate, const std::string& suite,
                       const qbp::json::Value& baseline,
                       const std::vector<qbp::ExperimentRow>& rows) {
  for (const auto& row : rows) {
    const qbp::json::Value* base_row = nullptr;
    for (std::size_t i = 0; i < baseline.size(); ++i) {
      if (baseline.at(i).get_string("circuit") == row.circuit) {
        base_row = &baseline.at(i);
        break;
      }
    }
    const std::string where = suite + "/" + row.circuit;
    if (base_row == nullptr) {
      gate.missing(where);
      continue;
    }
    gate.objective(where + "/start", base_row->get_number("start", -1.0),
                   row.start_cost);
    const auto method = [&](const char* name,
                            const qbp::MethodOutcome& outcome) {
      const qbp::json::Value* cell = base_row->find(name);
      if (cell == nullptr) {
        gate.missing(where + "/" + name);
        return;
      }
      gate.objective(where + "/" + name + "/final",
                     cell->get_number("final", -1.0), outcome.final_cost);
      gate.wall_clock(where + "/" + name + "/cpu_s",
                      cell->get_number("cpu_s", 0.0), outcome.cpu_seconds);
    };
    method("qbp", row.qbp);
    method("gfm", row.gfm);
    method("gkl", row.gkl);
  }
}

void check_table1_suite(Gate& gate, const qbp::json::Value& baseline,
                        const qbp::json::Value& rows) {
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const qbp::json::Value& row = rows.at(r);
    const std::string circuit = row.get_string("circuit");
    const qbp::json::Value* base_row = nullptr;
    for (std::size_t i = 0; i < baseline.size(); ++i) {
      if (baseline.at(i).get_string("circuit") == circuit) {
        base_row = &baseline.at(i);
        break;
      }
    }
    const std::string where = "table1/" + circuit;
    if (base_row == nullptr) {
      gate.missing(where);
      continue;
    }
    for (const char* field : {"components", "wires", "timing_constraints"}) {
      gate.objective(where + "/" + field, base_row->get_number(field, -1.0),
                     row.get_number(field, -2.0));
    }
    gate.wall_clock(where + "/gen_seconds",
                    base_row->get_number("gen_seconds", 0.0),
                    row.get_number("gen_seconds", 0.0));
  }
}

void check_presolve_suite(Gate& gate, const qbp::json::Value& baseline,
                          const std::vector<PresolveRow>& rows) {
  for (const auto& row : rows) {
    const qbp::json::Value* base_row = nullptr;
    for (std::size_t i = 0; i < baseline.size(); ++i) {
      if (static_cast<std::int32_t>(baseline.at(i).get_number("n", -1.0)) ==
          row.n) {
        base_row = &baseline.at(i);
        break;
      }
    }
    const std::string where = "presolve/N=" + std::to_string(row.n);
    if (base_row == nullptr) {
      gate.missing(where);
      continue;
    }
    // The reducer is deterministic: counter drift means the rules changed.
    gate.objective(where + "/r0", base_row->get_number("r0", -1.0), row.stats.r0);
    gate.objective(where + "/r1", base_row->get_number("r1", -1.0), row.stats.r1);
    gate.objective(where + "/r2", base_row->get_number("r2", -1.0), row.stats.r2);
    gate.objective(where + "/rn", base_row->get_number("rn", -1.0), row.stats.rn);
    gate.objective(where + "/components_removed",
                   base_row->get_number("components_removed", -1.0),
                   row.stats.components_removed);
    gate.objective(where + "/final_off",
                   base_row->get_number("final_off", -1.0), row.final_off);
    gate.objective(where + "/final_on", base_row->get_number("final_on", -1.0),
                   row.final_on);
    gate.wall_clock(where + "/seconds_off",
                    base_row->get_number("seconds_off", 0.0), row.seconds_off);
    gate.wall_clock(where + "/seconds_on",
                    base_row->get_number("seconds_on", 0.0), row.seconds_on);
  }
}

void check_eco_suite(Gate& gate, const qbp::json::Value& baseline,
                     const std::vector<EcoRow>& rows, bool smoke) {
  for (const auto& row : rows) {
    const qbp::json::Value* base_row = nullptr;
    for (std::size_t i = 0; i < baseline.size(); ++i) {
      if (static_cast<std::int32_t>(baseline.at(i).get_number("n", -1.0)) ==
          row.n) {
        base_row = &baseline.at(i);
        break;
      }
    }
    const std::string where = "eco/N=" + std::to_string(row.n);
    if (base_row == nullptr) {
      gate.missing(where);
      continue;
    }
    // The scripted cache sequence is deterministic end to end, so the cold
    // objective, the exact-hit guarantee, which variants warm-start and
    // every warm final are all exact-gated.
    gate.objective(where + "/cold_final",
                   base_row->get_number("cold_final", -1.0), row.cold_final);
    gate.objective(where + "/exact_hit",
                   base_row->get_bool("exact_hit", false) ? 1.0 : 0.0,
                   row.exact_hit ? 1.0 : 0.0);
    gate.objective(where + "/warm_hits",
                   base_row->get_number("warm_hits", -1.0), row.warm_hits);
    const qbp::json::Value* finals = base_row->find("warm_finals");
    if (finals == nullptr || finals->size() != row.warm_finals.size()) {
      gate.missing(where + "/warm_finals");
    } else {
      for (std::size_t v = 0; v < row.warm_finals.size(); ++v) {
        gate.objective(where + "/warm_finals[" + std::to_string(v) + "]",
                       finals->at(v).as_number(-1.0), row.warm_finals[v]);
      }
    }
    gate.wall_clock(where + "/cold_seconds",
                    base_row->get_number("cold_seconds", 0.0),
                    row.cold_seconds);
    gate.wall_clock(where + "/warm_p50_seconds",
                    base_row->get_number("warm_p50_seconds", 0.0),
                    row.warm_p50_seconds);
    // The headline acceptance bound: at full scale a warm re-solve must
    // land at <= 10% of the cold solve's latency.
    if (!smoke && row.n >= 3200 && row.warm_ratio > 0.10) {
      std::fprintf(stderr,
                   "GATE FAIL %s: warm/cold ratio %.3f exceeds 0.10\n",
                   where.c_str(), row.warm_ratio);
      ++gate.failures;
    }
  }
}

void check_vcycle_suite(Gate& gate, const qbp::json::Value& baseline,
                        const std::vector<VcycleRow>& rows) {
  for (const auto& row : rows) {
    const qbp::json::Value* base_row = nullptr;
    for (std::size_t i = 0; i < baseline.size(); ++i) {
      if (static_cast<std::int32_t>(baseline.at(i).get_number("n", -1.0)) ==
          row.n) {
        base_row = &baseline.at(i);
        break;
      }
    }
    const std::string where = "vcycle/N=" + std::to_string(row.n);
    if (base_row == nullptr) {
      gate.missing(where);
      continue;
    }
    // The whole V-cycle is deterministic, so objective, feasibility and the
    // hierarchy's exact shape are gated without tolerance.  Note "kernel" is
    // deliberately NOT gated: it records which SIMD path ran (machine- and
    // flag-dependent) while the objectives it produces must not move.
    gate.objective(where + "/final", base_row->get_number("final", -1.0),
                   row.final_cost);
    gate.objective(where + "/feasible",
                   base_row->get_bool("feasible", false) ? 1.0 : 0.0,
                   row.feasible ? 1.0 : 0.0);
    gate.objective(where + "/levels", base_row->get_number("levels", -1.0),
                   row.levels);
    const qbp::json::Value* sizes = base_row->find("level_sizes");
    if (sizes == nullptr || sizes->size() != row.level_sizes.size()) {
      gate.missing(where + "/level_sizes");
    } else {
      for (std::size_t k = 0; k < row.level_sizes.size(); ++k) {
        gate.objective(where + "/level_sizes[" + std::to_string(k) + "]",
                       sizes->at(k).as_number(-1.0), row.level_sizes[k]);
      }
    }
    gate.wall_clock(where + "/seconds", base_row->get_number("seconds", 0.0),
                    row.seconds);
    gate.wall_clock(where + "/coarsen_seconds",
                    base_row->get_number("coarsen_seconds", 0.0),
                    row.coarsen_seconds);
  }
}

// Serve gate.  `results_hash` is the acceptance contract in one number:
// within the current run it must agree between the NDJSON and binary rows
// of every (scenario, workers) pair -- bit-identical results across
// framings and worker counts -- and against the baseline it pins the
// payloads over time.  Wall clock gets the usual tolerance, and the binary
// framing must hold its throughput edge on the saturated exact-hit row
// (>= 3x NDJSON jobs/sec at one worker), measured from the current run so
// the gate cannot be satisfied by a stale baseline.
void check_serve_suite(Gate& gate, const qbp::json::Value& baseline,
                       const std::vector<qbp::ServeRow>& rows) {
  const auto find_row =
      [&rows](const std::string& scenario, const std::string& framing,
              std::int32_t workers) -> const qbp::ServeRow* {
    for (const auto& row : rows) {
      if (row.scenario == scenario && row.framing == framing &&
          row.workers == workers) {
        return &row;
      }
    }
    return nullptr;
  };

  for (const auto& row : rows) {
    const std::string where = "serve/" + row.scenario + "/" + row.framing +
                              "/w" + std::to_string(row.workers);
    if (!row.ok) {
      std::fprintf(stderr, "GATE FAIL %s: replies were not all results\n",
                   where.c_str());
      ++gate.failures;
    }
    if (row.framing == "binary") {
      const qbp::ServeRow* ndjson =
          find_row(row.scenario, "ndjson", row.workers);
      if (ndjson != nullptr && ndjson->results_hash != row.results_hash) {
        std::fprintf(stderr,
                     "GATE FAIL %s: results diverge from the NDJSON row\n",
                     where.c_str());
        ++gate.failures;
      }
    }

    const qbp::json::Value* base_row = nullptr;
    for (std::size_t i = 0; i < baseline.size(); ++i) {
      const qbp::json::Value& candidate = baseline.at(i);
      if (candidate.get_string("scenario") == row.scenario &&
          candidate.get_string("framing") == row.framing &&
          static_cast<std::int32_t>(candidate.get_number("workers", -1.0)) ==
              row.workers) {
        base_row = &candidate;
        break;
      }
    }
    if (base_row == nullptr) {
      gate.missing(where);
      continue;
    }
    if (base_row->get_string("results_hash") != row.results_hash) {
      std::fprintf(stderr, "GATE FAIL %s: results_hash changed\n",
                   where.c_str());
      ++gate.failures;
    }
    // Deterministic cache behaviour: the exact scenario must stay
    // all-hits, the warm scenario must keep warm-starting.
    gate.objective(where + "/cache_hits",
                   base_row->get_number("cache_hits", -1.0), row.cache_hits);
    gate.objective(where + "/warm_hits",
                   base_row->get_number("warm_hits", -1.0), row.warm_hits);
    gate.wall_clock(where + "/seconds", base_row->get_number("seconds", 0.0),
                    row.seconds);
  }

  const qbp::ServeRow* exact_ndjson = find_row("exact", "ndjson", 1);
  const qbp::ServeRow* exact_binary = find_row("exact", "binary", 1);
  if (exact_ndjson == nullptr || exact_binary == nullptr) {
    gate.missing("serve/exact w1 rows for the framing ratio");
  } else if (exact_binary->jobs_per_sec <
             3.0 * exact_ndjson->jobs_per_sec) {
    std::fprintf(stderr,
                 "GATE FAIL serve/exact/w1: binary %.0f jobs/s < 3x NDJSON "
                 "%.0f jobs/s\n",
                 exact_binary->jobs_per_sec, exact_ndjson->jobs_per_sec);
    ++gate.failures;
  }
}

void check_scaling_suite(Gate& gate, const qbp::json::Value& baseline,
                         const std::vector<ScalingRow>& rows) {
  for (const auto& row : rows) {
    const qbp::json::Value* base_row = nullptr;
    for (std::size_t i = 0; i < baseline.size(); ++i) {
      if (static_cast<std::int32_t>(baseline.at(i).get_number("n", -1.0)) ==
          row.n) {
        base_row = &baseline.at(i);
        break;
      }
    }
    const std::string where = "scaling/N=" + std::to_string(row.n);
    if (base_row == nullptr) {
      gate.missing(where);
      continue;
    }
    gate.objective(where + "/final", base_row->get_number("final", -1.0),
                   row.final_cost);
    gate.wall_clock(where + "/seconds", base_row->get_number("seconds", 0.0),
                    row.seconds);
  }
}

}  // namespace

int main(int argc, char** argv) {
  RunnerConfig config;
  std::string json_path;
  std::string check_path;
  std::string suite = "all";
  std::string presolve_mode = "on";
  std::string simd_mode = "on";
  bool profile = false;
  bool list_suites = false;

  qbp::CliParser cli("bench_runner",
                     "unified bench driver + CI regression gate");
  cli.add_flag("smoke", config.smoke,
               "reduced sizes/iterations for the CI gate");
  cli.add_string("suite", suite,
                 "table1|table2|table3|scaling|presolve|eco|vcycle|serve|all "
                 "(all = every solver suite; serve runs only when named)");
  cli.add_flag("list-suites", list_suites,
               "print the valid --suite values and exit");
  cli.add_int("inner-threads", config.inner_threads,
              "threads inside each QBP solve (0 = all hardware); objectives "
              "are bit-identical at every value, so --check still applies");
  cli.add_string("presolve", presolve_mode,
                 "on | off: presolve before the QBP legs; bit-identical on "
                 "the standard suites, so --check holds in both modes");
  cli.add_string("simd", simd_mode,
                 "on | off: runtime-dispatched vector kernels; results are "
                 "bit-identical either way, so --check still applies");
  cli.add_string("json", json_path, "write machine-readable results here");
  cli.add_string("check", check_path,
                 "compare against this baseline JSON; exit 1 on regression");
  cli.add_double("time-tolerance", config.time_tolerance,
                 "relative wall-clock regression allowed by --check");
  cli.add_flag("profile", profile,
               "enable the phase profiler and report the breakdown");
  if (const auto exit_code = cli.run(argc, argv)) return *exit_code;

  if (list_suites) {
    for (const char* name : kSuiteNames) std::printf("%s\n", name);
    return 0;
  }
  if (presolve_mode != "on" && presolve_mode != "off") {
    std::fprintf(stderr, "--presolve must be on|off\n");
    return 2;
  }
  config.presolve = presolve_mode == "on";
  if (simd_mode != "on" && simd_mode != "off") {
    std::fprintf(stderr, "--simd must be on|off\n");
    return 2;
  }
  qbp::simd::set_enabled(simd_mode == "on");

  bool suite_known = false;
  for (const char* name : kSuiteNames) suite_known |= suite == name;
  if (!suite_known) {
    std::string valid;
    for (const char* name : kSuiteNames) {
      if (!valid.empty()) valid += ", ";
      valid += name;
    }
    std::fprintf(stderr, "unknown --suite '%s' (valid suites: %s)\n",
                 suite.c_str(), valid.c_str());
    return 2;
  }
  const auto want = [&](const char* name) {
    // "all" covers the solver suites; serve must be asked for by name (it
    // saturates the machine with worker pools -- see kSuiteNames).
    if (suite == "all") return std::string_view(name) != "serve";
    return suite == name;
  };

  if (profile) qbp::prof::set_enabled(true);

  std::printf("bench_runner: mode=%s suite=%s\n",
              config.smoke ? "smoke" : "full", suite.c_str());
  qbp::json::Value suites = qbp::json::Value::object();
  qbp::json::Value table1;
  std::vector<qbp::ExperimentRow> table2;
  std::vector<qbp::ExperimentRow> table3;
  std::vector<ScalingRow> scaling;
  std::vector<PresolveRow> presolve;
  std::vector<EcoRow> eco;
  std::vector<VcycleRow> vcycle;
  std::vector<qbp::ServeRow> serve;

  if (want("table1")) {
    std::fprintf(stderr, "suite table1 (circuit descriptions)\n");
    table1 = run_table1_suite(config);
    suites.set("table1", table1);
  }
  if (want("table2")) {
    std::fprintf(stderr, "suite table2 (no timing)\n");
    table2 = run_table_suite(/*with_timing=*/false, config);
    std::printf("%s\n",
                qbp::format_table("Table II (no timing)", table2).c_str());
    suites.set("table2", qbp::rows_to_json(table2));
  }
  if (want("table3")) {
    std::fprintf(stderr, "suite table3 (with timing)\n");
    table3 = run_table_suite(/*with_timing=*/true, config);
    std::printf("%s\n",
                qbp::format_table("Table III (with timing)", table3).c_str());
    suites.set("table3", qbp::rows_to_json(table3));
  }
  if (want("scaling")) {
    std::fprintf(stderr, "suite scaling\n");
    scaling = run_scaling_suite(config);
    qbp::TextTable table({"N", "solve (s)", "final", "feasible"});
    for (const auto& row : scaling) {
      table.add_row({std::to_string(row.n), qbp::format_double(row.seconds, 2),
                     qbp::format_double(row.final_cost, 1),
                     row.feasible ? "yes" : "no"});
    }
    std::printf("%s\n", table.render().c_str());
    suites.set("scaling", scaling_to_json(scaling));
  }
  if (want("presolve")) {
    std::fprintf(stderr, "suite presolve (reducible instances)\n");
    presolve = run_presolve_suite(config);
    qbp::TextTable table({"N", "removed", "r0", "r1", "r2", "rn",
                          "presolve (s)", "off (s)", "on (s)", "speedup"});
    for (const auto& row : presolve) {
      table.add_row(
          {std::to_string(row.n),
           std::to_string(row.stats.components_removed) + " (" +
               qbp::format_double(row.reduction_pct, 1) + "%)",
           std::to_string(row.stats.r0), std::to_string(row.stats.r1),
           std::to_string(row.stats.r2), std::to_string(row.stats.rn),
           qbp::format_double(row.stats.seconds, 3),
           qbp::format_double(row.seconds_off, 2),
           qbp::format_double(row.seconds_on, 2),
           row.seconds_on > 0.0
               ? qbp::format_double(row.seconds_off / row.seconds_on, 2) + "x"
               : "-"});
    }
    std::printf("%s\n", table.render().c_str());
    suites.set("presolve", presolve_to_json(presolve));
  }
  if (want("eco")) {
    std::fprintf(stderr, "suite eco (warm-start serving)\n");
    eco = run_eco_suite(config);
    qbp::TextTable table({"N", "cold (s)", "exact hit", "warm", "warm p50 (s)",
                          "warm/cold"});
    for (const auto& row : eco) {
      table.add_row({std::to_string(row.n),
                     qbp::format_double(row.cold_seconds, 2),
                     row.exact_hit ? "yes" : "NO",
                     std::to_string(row.warm_hits) + "/" +
                         std::to_string(row.variants),
                     qbp::format_double(row.warm_p50_seconds, 3),
                     qbp::format_double(row.warm_ratio, 3)});
    }
    std::printf("%s\n", table.render().c_str());
    suites.set("eco", eco_to_json(eco));
  }
  if (want("vcycle")) {
    std::fprintf(stderr, "suite vcycle (multilevel, kernel %s)\n",
                 qbp::simd::active_kernel());
    vcycle = run_vcycle_suite(config);
    qbp::TextTable table({"N", "levels", "coarsen (s)", "solve (s)", "final",
                          "feasible"});
    for (const auto& row : vcycle) {
      table.add_row({std::to_string(row.n), std::to_string(row.levels),
                     qbp::format_double(row.coarsen_seconds, 2),
                     qbp::format_double(row.seconds, 2),
                     qbp::format_double(row.final_cost, 1),
                     row.feasible ? "yes" : "no"});
    }
    std::printf("%s\n", table.render().c_str());
    suites.set("vcycle", vcycle_to_json(vcycle));
  }

  if (want("serve")) {
    std::fprintf(stderr, "suite serve (wire framing throughput)\n");
    serve = run_serve_suite(config);
    qbp::TextTable table(
        {"scenario", "framing", "workers", "jobs", "secs", "jobs/s", "ok"});
    for (const auto& row : serve) {
      table.add_row({row.scenario, row.framing, std::to_string(row.workers),
                     std::to_string(row.jobs),
                     qbp::format_double(row.seconds, 3),
                     qbp::format_double(row.jobs_per_sec, 0),
                     row.ok ? "yes" : "NO"});
    }
    std::printf("%s\n", table.render().c_str());
    suites.set("serve", serve_to_json(serve));
  }

  qbp::json::Value out = qbp::json::Value::object();
  out.set("schema", static_cast<std::int64_t>(1));
  out.set("mode", config.smoke ? "smoke" : "full");
  out.set("inner_threads", config.inner_threads);
  out.set("suites", std::move(suites));
  if (profile) {
    const qbp::prof::PhaseReport phases = qbp::prof::snapshot();
    std::printf("%s\n", qbp::prof::to_string(phases).c_str());
    out.set("phases", qbp::prof::to_json(phases));
  }
  if (!qbp::write_bench_json(json_path, out)) return 1;

  if (check_path.empty()) return 0;

  qbp::json::Value baseline;
  std::string error;
  if (!qbp::json::read_json_file(check_path, baseline, &error)) {
    std::fprintf(stderr, "cannot read baseline: %s\n", error.c_str());
    return 1;
  }
  const qbp::json::Value* base_suites = baseline.find("suites");
  if (base_suites == nullptr) {
    std::fprintf(stderr, "baseline has no \"suites\" member\n");
    return 1;
  }
  if (baseline.get_string("mode") != (config.smoke ? "smoke" : "full")) {
    std::fprintf(stderr, "baseline mode '%s' does not match this run\n",
                 baseline.get_string("mode").c_str());
    return 1;
  }

  Gate gate;
  gate.time_tolerance = config.time_tolerance;
  const auto suite_of = [&](const char* name) -> const qbp::json::Value* {
    const qbp::json::Value* found = base_suites->find(name);
    if (found == nullptr) gate.missing(std::string("suite ") + name);
    return found;
  };
  if (want("table1")) {
    if (const auto* base = suite_of("table1"))
      check_table1_suite(gate, *base, table1);
  }
  if (want("table2")) {
    if (const auto* base = suite_of("table2"))
      check_table_suite(gate, "table2", *base, table2);
  }
  if (want("table3")) {
    if (const auto* base = suite_of("table3"))
      check_table_suite(gate, "table3", *base, table3);
  }
  if (want("scaling")) {
    if (const auto* base = suite_of("scaling"))
      check_scaling_suite(gate, *base, scaling);
  }
  if (want("presolve")) {
    if (const auto* base = suite_of("presolve"))
      check_presolve_suite(gate, *base, presolve);
  }
  if (want("eco")) {
    if (const auto* base = suite_of("eco"))
      check_eco_suite(gate, *base, eco, config.smoke);
  }
  if (want("vcycle")) {
    if (const auto* base = suite_of("vcycle"))
      check_vcycle_suite(gate, *base, vcycle);
  }
  if (want("serve")) {
    if (const auto* base = suite_of("serve"))
      check_serve_suite(gate, *base, serve);
  }

  if (gate.failures > 0) {
    std::fprintf(stderr, "bench gate: %d failure(s) vs %s\n", gate.failures,
                 check_path.c_str());
    return 1;
  }
  std::printf("bench gate: OK vs %s (time tolerance %.0f%% + 0.1s)\n",
              check_path.c_str(), gate.time_tolerance * 100.0);
  return 0;
}
