// Scaling bench: full-solver cost vs. circuit size.
//
// Section 4.3 argues the per-iteration cost drops from (MN)^2 to
// O((nnz(A) + nnz(Dc)) * M) with the sparse implicit Q-hat, plus two GAP
// solves.  This bench measures whole-solve wall time across a size sweep at
// fixed density (wires ~ 6N, constraints ~ 3N, M = 16), reporting seconds
// per iteration -- mildly super-linear in N with the default strong inner
// GAP (its swap pass is worst-case quadratic), near-linear without it.
#include <cstdio>

#include <vector>

#include "core/burkard.hpp"
#include "core/initial.hpp"
#include "netlist/generator.hpp"
#include "timing/constraints.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

qbp::PartitionProblem make_problem(std::int32_t n, std::uint64_t seed) {
  qbp::RandomNetlistSpec spec;
  spec.name = "scale" + std::to_string(n);
  spec.num_components = n;
  spec.total_wires = 6 * n;
  spec.seed = seed;
  auto generated = qbp::generate_netlist(spec);
  auto topology = qbp::PartitionTopology::grid(4, 4, qbp::CostKind::kManhattan);
  std::vector<double> usage(16, 0.0);
  for (std::int32_t j = 0; j < n; ++j) {
    usage[generated.hidden_slot[j]] += generated.netlist.component_size(j);
  }
  for (qbp::PartitionId i = 0; i < 16; ++i) {
    topology.set_capacity(i, usage[i] * 1.15);
  }
  qbp::TimingSpec timing_spec;
  timing_spec.target_count = 3 * n;
  timing_spec.seed = seed ^ 0xabcd;
  auto timing = qbp::generate_timing_constraints(
      generated.netlist, generated.hidden_slot, topology, timing_spec);
  return qbp::PartitionProblem(std::move(generated.netlist),
                               std::move(topology), std::move(timing));
}

}  // namespace

int main() {
  std::printf("Scaling: QBP whole-solve time vs circuit size "
              "(M = 16, wires = 6N, constraints = 3N, 30 iterations)\n\n");
  qbp::TextTable table({"N", "wires", "constraints", "solve (s)",
                        "ms / iteration", "final feasible", "improvement"});

  for (const std::int32_t n : {200, 400, 800, 1600, 3200}) {
    const auto problem = make_problem(n, 7);
    const auto initial = qbp::make_initial(
        problem, qbp::InitialStrategy::kQbpZeroWireCost, 7);
    const double start = problem.wirelength(initial.assignment);

    qbp::BurkardOptions options;
    options.iterations = 30;
    const qbp::Timer timer;
    const auto result = qbp::solve_qbp(problem, initial.assignment, options);
    const double seconds = timer.seconds();

    const double final_cost = result.found_feasible
                                  ? problem.wirelength(result.best_feasible)
                                  : start;
    table.add_row(
        {std::to_string(n), qbp::format_grouped(problem.netlist().total_wires()),
         qbp::format_grouped(problem.timing().count()),
         qbp::format_double(seconds, 2),
         qbp::format_double(seconds / options.iterations * 1e3, 1),
         result.found_feasible ? "yes" : "no",
         qbp::format_double((start - final_cost) / start * 100.0, 1) + "%"});
    std::fprintf(stderr, "  N=%d done\n", n);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("expected shape: ms/iteration grows mildly super-linearly "
              "(~N^1.4): the sparse STEP 3 is O(N) but the strong inner\n"
              "GAP's swap-improvement pass is quadratic in the worst case. "
              "With gap_step6.swap_improvement = false it is near-linear.\n");
  return 0;
}
