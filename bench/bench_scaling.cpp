// Scaling bench: full-solver cost vs. circuit size.
//
// Section 4.3 argues the per-iteration cost drops from (MN)^2 to
// O((nnz(A) + nnz(Dc)) * M) with the sparse implicit Q-hat, plus two GAP
// solves.  This bench measures whole-solve wall time across a size sweep at
// fixed density (wires ~ 6N, constraints ~ 3N, M = 16), reporting seconds
// per iteration -- mildly super-linear in N with the default strong inner
// GAP (its swap pass is worst-case quadratic), near-linear without it.
//
//   bench_scaling --json out.json --inner-threads 8
//   bench_scaling --sizes 10000,30000,100000 --multilevel
//
// --multilevel routes each size through the V-cycle (core/multilevel)
// instead of the flat solver -- the ad-hoc flat-vs-ML comparison that used
// to live in bench_multilevel, now sharing this driver's --json/--sizes
// plumbing (the gated V-cycle rows live in bench_runner --suite vcycle).
//
// The JSON rows carry ms_per_iter so per-iteration cost can be compared
// across commits without re-deriving it from seconds / iterations.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_support/circuits.hpp"
#include "bench_support/experiment.hpp"
#include "core/burkard.hpp"
#include "core/initial.hpp"
#include "core/multilevel.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/prof.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  std::string json_path;
  std::string sizes_arg = "200,400,800,1600,3200";
  std::int64_t inner_threads = 1;
  std::int64_t iterations = 30;
  bool multilevel = false;

  qbp::CliParser cli("bench_scaling",
                     "QBP whole-solve time vs circuit size");
  cli.add_string("json", json_path, "write machine-readable rows here");
  cli.add_string("sizes", sizes_arg,
                 "comma-separated component counts to sweep");
  cli.add_int("inner-threads", inner_threads,
              "threads inside each solve (0 = all hardware); objectives are "
              "bit-identical at every value");
  cli.add_int("iterations", iterations, "QBP iteration budget per size");
  bool profile = false;
  cli.add_flag("multilevel", multilevel,
               "solve through the multilevel V-cycle instead of flat QBP");
  cli.add_flag("profile", profile,
               "enable the phase profiler and report the breakdown");
  if (const auto exit_code = cli.run(argc, argv)) return *exit_code;
  if (profile) qbp::prof::set_enabled(true);

  std::vector<std::int32_t> sizes;
  for (const auto piece : qbp::split(sizes_arg, ',')) {
    long long n = 0;
    if (!qbp::parse_int(piece, n) || n < 1) {
      std::fprintf(stderr, "--sizes: '%.*s' is not a positive integer\n",
                   static_cast<int>(piece.size()), piece.data());
      return 2;
    }
    sizes.push_back(static_cast<std::int32_t>(n));
  }

  std::printf("Scaling: %s whole-solve time vs circuit size "
              "(M = 16, wires = 6N, constraints = 3N, %lld iterations, "
              "%lld inner threads)\n\n",
              multilevel ? "multilevel V-cycle" : "QBP",
              static_cast<long long>(iterations),
              static_cast<long long>(inner_threads));
  qbp::TextTable table({"N", "wires", "constraints", "solve (s)",
                        "ms / iteration", "final feasible", "improvement"});
  qbp::json::Value rows = qbp::json::Value::array();

  for (const std::int32_t n : sizes) {
    const auto problem = qbp::make_scaling_problem(n, 7);
    // The zero-wire-cost QBP start pays off for the flat solver but costs
    // more than an entire V-cycle at large N; the multilevel sweep seeds
    // with a plain random assignment instead (matching --suite vcycle).
    const auto initial = qbp::make_initial(
        problem,
        multilevel ? qbp::InitialStrategy::kRandom
                   : qbp::InitialStrategy::kQbpZeroWireCost,
        7);
    const double start = problem.wirelength(initial.assignment);

    double seconds = 0.0;
    std::int32_t iterations_run = 0;
    double final_cost = start;
    bool feasible = false;
    std::int32_t levels = 0;
    if (multilevel) {
      qbp::MultilevelOptions options;
      options.coarsen.inner_threads = static_cast<std::int32_t>(inner_threads);
      options.coarse_solver.inner_threads =
          static_cast<std::int32_t>(inner_threads);
      options.refine_solver.inner_threads =
          static_cast<std::int32_t>(inner_threads);
      options.coarse_solver.iterations = static_cast<std::int32_t>(iterations);
      const qbp::Timer timer;
      const auto result =
          qbp::solve_qbp_multilevel(problem, initial.assignment, options);
      seconds = timer.seconds();
      iterations_run = result.finest.iterations_run;
      feasible = result.finest.found_feasible;
      levels = result.levels_used;
      if (feasible) final_cost = problem.wirelength(result.finest.best_feasible);
    } else {
      qbp::BurkardOptions options;
      options.iterations = static_cast<std::int32_t>(iterations);
      options.inner_threads = static_cast<std::int32_t>(inner_threads);
      const qbp::Timer timer;
      const auto result = qbp::solve_qbp(problem, initial.assignment, options);
      seconds = timer.seconds();
      iterations_run = result.iterations_run;
      feasible = result.found_feasible;
      if (feasible) final_cost = problem.wirelength(result.best_feasible);
    }
    const double ms_per_iter =
        iterations_run > 0 ? seconds * 1000.0 / iterations_run : 0.0;

    table.add_row(
        {std::to_string(n), qbp::format_grouped(problem.netlist().total_wires()),
         qbp::format_grouped(problem.timing().count()),
         qbp::format_double(seconds, 2), qbp::format_double(ms_per_iter, 1),
         feasible ? "yes" : "no",
         qbp::format_double((start - final_cost) / start * 100.0, 1) + "%"});

    qbp::json::Value entry = qbp::json::Value::object();
    entry.set("n", static_cast<std::int64_t>(n));
    entry.set("wires", problem.netlist().total_wires());
    entry.set("constraints", problem.timing().count());
    entry.set("iterations", static_cast<std::int64_t>(iterations_run));
    entry.set("threads", inner_threads);
    if (multilevel) entry.set("levels", static_cast<std::int64_t>(levels));
    entry.set("seconds", seconds);
    entry.set("ms_per_iter", ms_per_iter);
    entry.set("final", final_cost);
    entry.set("feasible", feasible);
    rows.push_back(std::move(entry));
    std::fprintf(stderr, "  N=%d done\n", n);
  }
  std::printf("%s\n", table.render().c_str());
  if (profile) {
    std::printf("%s\n", qbp::prof::to_string(qbp::prof::snapshot()).c_str());
  }
  if (!qbp::write_bench_json(json_path, rows)) return 1;
  if (!multilevel) {
    std::printf("expected shape: ms/iteration grows mildly super-linearly "
                "(~N^1.4): the sparse STEP 3 is O(N) but the strong inner\n"
                "GAP's swap-improvement pass is quadratic in the worst case. "
                "With gap_step6.swap_improvement = false it is near-linear.\n");
  }
  return 0;
}
