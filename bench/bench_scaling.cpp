// Scaling bench: full-solver cost vs. circuit size.
//
// Section 4.3 argues the per-iteration cost drops from (MN)^2 to
// O((nnz(A) + nnz(Dc)) * M) with the sparse implicit Q-hat, plus two GAP
// solves.  This bench measures whole-solve wall time across a size sweep at
// fixed density (wires ~ 6N, constraints ~ 3N, M = 16), reporting seconds
// per iteration -- mildly super-linear in N with the default strong inner
// GAP (its swap pass is worst-case quadratic), near-linear without it.
//
//   bench_scaling --json out.json --inner-threads 8
//
// The JSON rows carry ms_per_iter so per-iteration cost can be compared
// across commits without re-deriving it from seconds / iterations.
#include <cstdio>
#include <string>

#include "bench_support/circuits.hpp"
#include "bench_support/experiment.hpp"
#include "core/burkard.hpp"
#include "core/initial.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  std::string json_path;
  std::int64_t inner_threads = 1;
  std::int64_t iterations = 30;

  qbp::CliParser cli("bench_scaling",
                     "QBP whole-solve time vs circuit size");
  cli.add_string("json", json_path, "write machine-readable rows here");
  cli.add_int("inner-threads", inner_threads,
              "threads inside each solve (0 = all hardware); objectives are "
              "bit-identical at every value");
  cli.add_int("iterations", iterations, "QBP iteration budget per size");
  if (const auto exit_code = cli.run(argc, argv)) return *exit_code;

  std::printf("Scaling: QBP whole-solve time vs circuit size "
              "(M = 16, wires = 6N, constraints = 3N, %lld iterations, "
              "%lld inner threads)\n\n",
              static_cast<long long>(iterations),
              static_cast<long long>(inner_threads));
  qbp::TextTable table({"N", "wires", "constraints", "solve (s)",
                        "ms / iteration", "final feasible", "improvement"});
  qbp::json::Value rows = qbp::json::Value::array();

  for (const std::int32_t n : {200, 400, 800, 1600, 3200}) {
    const auto problem = qbp::make_scaling_problem(n, 7);
    const auto initial = qbp::make_initial(
        problem, qbp::InitialStrategy::kQbpZeroWireCost, 7);
    const double start = problem.wirelength(initial.assignment);

    qbp::BurkardOptions options;
    options.iterations = static_cast<std::int32_t>(iterations);
    options.inner_threads = static_cast<std::int32_t>(inner_threads);
    const qbp::Timer timer;
    const auto result = qbp::solve_qbp(problem, initial.assignment, options);
    const double seconds = timer.seconds();
    const double ms_per_iter =
        result.iterations_run > 0 ? seconds * 1000.0 / result.iterations_run
                                  : 0.0;

    const double final_cost = result.found_feasible
                                  ? problem.wirelength(result.best_feasible)
                                  : start;
    table.add_row(
        {std::to_string(n), qbp::format_grouped(problem.netlist().total_wires()),
         qbp::format_grouped(problem.timing().count()),
         qbp::format_double(seconds, 2), qbp::format_double(ms_per_iter, 1),
         result.found_feasible ? "yes" : "no",
         qbp::format_double((start - final_cost) / start * 100.0, 1) + "%"});

    qbp::json::Value entry = qbp::json::Value::object();
    entry.set("n", static_cast<std::int64_t>(n));
    entry.set("wires", problem.netlist().total_wires());
    entry.set("constraints", problem.timing().count());
    entry.set("iterations", static_cast<std::int64_t>(result.iterations_run));
    entry.set("threads", inner_threads);
    entry.set("seconds", seconds);
    entry.set("ms_per_iter", ms_per_iter);
    entry.set("final", final_cost);
    entry.set("feasible", result.found_feasible);
    rows.push_back(std::move(entry));
    std::fprintf(stderr, "  N=%d done\n", n);
  }
  std::printf("%s\n", table.render().c_str());
  if (!qbp::write_bench_json(json_path, rows)) return 1;
  std::printf("expected shape: ms/iteration grows mildly super-linearly "
              "(~N^1.4): the sparse STEP 3 is O(N) but the strong inner\n"
              "GAP's swap-improvement pass is quadratic in the worst case. "
              "With gap_step6.swap_improvement = false it is near-linear.\n");
  return 0;
}
