// Scaling bench: full-solver cost vs. circuit size.
//
// Section 4.3 argues the per-iteration cost drops from (MN)^2 to
// O((nnz(A) + nnz(Dc)) * M) with the sparse implicit Q-hat, plus two GAP
// solves.  This bench measures whole-solve wall time across a size sweep at
// fixed density (wires ~ 6N, constraints ~ 3N, M = 16), reporting seconds
// per iteration -- mildly super-linear in N with the default strong inner
// GAP (its swap pass is worst-case quadratic), near-linear without it.
#include <cstdio>

#include "bench_support/circuits.hpp"
#include "core/burkard.hpp"
#include "core/initial.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main() {
  std::printf("Scaling: QBP whole-solve time vs circuit size "
              "(M = 16, wires = 6N, constraints = 3N, 30 iterations)\n\n");
  qbp::TextTable table({"N", "wires", "constraints", "solve (s)",
                        "ms / iteration", "final feasible", "improvement"});

  for (const std::int32_t n : {200, 400, 800, 1600, 3200}) {
    const auto problem = qbp::make_scaling_problem(n, 7);
    const auto initial = qbp::make_initial(
        problem, qbp::InitialStrategy::kQbpZeroWireCost, 7);
    const double start = problem.wirelength(initial.assignment);

    qbp::BurkardOptions options;
    options.iterations = 30;
    const qbp::Timer timer;
    const auto result = qbp::solve_qbp(problem, initial.assignment, options);
    const double seconds = timer.seconds();

    const double final_cost = result.found_feasible
                                  ? problem.wirelength(result.best_feasible)
                                  : start;
    table.add_row(
        {std::to_string(n), qbp::format_grouped(problem.netlist().total_wires()),
         qbp::format_grouped(problem.timing().count()),
         qbp::format_double(seconds, 2),
         qbp::format_double(seconds / options.iterations * 1e3, 1),
         result.found_feasible ? "yes" : "no",
         qbp::format_double((start - final_cost) / start * 100.0, 1) + "%"});
    std::fprintf(stderr, "  N=%d done\n", n);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("expected shape: ms/iteration grows mildly super-linearly "
              "(~N^1.4): the sparse STEP 3 is O(N) but the strong inner\n"
              "GAP's swap-improvement pass is quadratic in the worst case. "
              "With gap_step6.swap_improvement = false it is near-linear.\n");
  return 0;
}
