// Standalone serve-throughput bench: saturated qbpartd jobs/sec under both
// edge framings (NDJSON lines vs binary wire frames), per scenario and
// worker count.  The same rows run inside `bench_runner --suite serve`,
// which is what CI gates; this binary is the quick local loop:
//
//   ./bench_serve                         # default sizes
//   ./bench_serve --n 1000 --jobs 200     # bigger problems, longer batches
#include <cstdio>
#include <string>

#include "bench_support/serve_bench.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  qbp::ServeBenchConfig config;
  std::int64_t n = config.n;
  std::int64_t jobs = config.jobs;
  std::int64_t warm_jobs = config.warm_jobs;
  std::int64_t iterations = config.iterations;
  std::int64_t inner_threads = config.inner_threads;

  qbp::CliParser cli("bench_serve",
                     "saturated job-server throughput, NDJSON vs binary "
                     "wire framing");
  cli.add_int("n", n, "components per submitted problem");
  cli.add_int("jobs", jobs, "jobs per timed batch (cold/exact scenarios)");
  cli.add_int("warm-jobs", warm_jobs, "ECO variants in the warm scenario");
  cli.add_int("iterations", iterations, "QBP iteration budget per solve");
  cli.add_int("inner-threads", inner_threads, "threads inside each solve");
  if (const auto exit_code = cli.run(argc, argv)) return *exit_code;
  if (n < 4 || jobs < 1 || warm_jobs < 1 || iterations < 1) {
    std::fprintf(stderr, "--n must be >= 4, counts must be >= 1\n");
    return 1;
  }
  config.n = static_cast<std::int32_t>(n);
  config.jobs = static_cast<std::int32_t>(jobs);
  config.warm_jobs = static_cast<std::int32_t>(warm_jobs);
  config.iterations = static_cast<std::int32_t>(iterations);
  config.inner_threads = static_cast<std::int32_t>(inner_threads);

  const auto rows = qbp::run_serve_bench(config);

  qbp::TextTable table({"scenario", "framing", "workers", "jobs", "secs",
                        "jobs/s", "results hash", "ok"});
  for (const auto& row : rows) {
    table.add_row({row.scenario, row.framing, std::to_string(row.workers),
                   std::to_string(row.jobs),
                   qbp::format_double(row.seconds, 3),
                   qbp::format_double(row.jobs_per_sec, 0),
                   row.results_hash.substr(0, 16), row.ok ? "yes" : "NO"});
  }
  std::printf("%s\n", table.render().c_str());

  // Headline: the binary/NDJSON throughput ratio on the exact-hit row.
  const auto find = [&rows](const char* framing) -> const qbp::ServeRow* {
    for (const auto& row : rows) {
      if (row.scenario == "exact" && row.framing == framing &&
          row.workers == 1) {
        return &row;
      }
    }
    return nullptr;
  };
  const qbp::ServeRow* ndjson = find("ndjson");
  const qbp::ServeRow* binary = find("binary");
  if (ndjson != nullptr && binary != nullptr && ndjson->jobs_per_sec > 0.0) {
    std::printf("exact-hit w1: binary %.0f jobs/s vs ndjson %.0f jobs/s "
                "(%.1fx)\n",
                binary->jobs_per_sec, ndjson->jobs_per_sec,
                binary->jobs_per_sec / ndjson->jobs_per_sec);
  }
  return 0;
}
