// Table I reproduction: circuit descriptions.
//
// Paper columns: # of components, # of wires, # of Timing Constraints.
// The synthetic instances hit the published counts exactly; extra columns
// document the synthesized structure (size spread, degree, capacity
// tightness) that the paper describes only in prose.
#include <cstdio>

#include "bench_support/circuits.hpp"
#include "bench_support/experiment.hpp"
#include "netlist/stats.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  std::string json_path;
  qbp::CliParser cli("bench_table1", "Table I circuit descriptions");
  cli.add_string("json", json_path, "also write machine-readable rows here");
  if (const auto exit_code = cli.run(argc, argv)) return *exit_code;

  std::printf("Table I: circuit descriptions (synthetic reproductions of the "
              "paper's industrial circuits)\n\n");
  qbp::json::Value json_rows = qbp::json::Value::array();
  qbp::TextTable table({"ckt", "# of components", "# of wires",
                        "# of Timing Constraints", "size max/min",
                        "avg degree", "capacity slack", "gen time (s)"});
  table.set_alignment({qbp::TextTable::Align::kLeft});

  for (const auto& preset : qbp::shihkuh_presets()) {
    qbp::Timer timer;
    const auto instance = qbp::make_circuit(preset);
    const double gen_seconds = timer.seconds();
    const auto stats = qbp::compute_stats(instance.problem.netlist());

    const double total_size = instance.problem.netlist().total_size();
    const double total_capacity = instance.problem.topology().total_capacity();
    table.add_row({preset.name, std::to_string(stats.num_components),
                   qbp::format_grouped(stats.total_wires),
                   qbp::format_grouped(preset.num_timing_constraints),
                   qbp::format_double(stats.size_ratio, 1),
                   qbp::format_double(stats.avg_degree, 1),
                   qbp::format_double((total_capacity / total_size - 1.0) * 100.0,
                                      1) + "%",
                   qbp::format_double(gen_seconds, 2)});

    qbp::json::Value entry = qbp::json::Value::object();
    entry.set("circuit", preset.name);
    entry.set("components", stats.num_components);
    entry.set("wires", static_cast<std::int64_t>(stats.total_wires));
    entry.set("timing_constraints",
              static_cast<std::int64_t>(preset.num_timing_constraints));
    entry.set("size_ratio", stats.size_ratio);
    entry.set("avg_degree", stats.avg_degree);
    entry.set("capacity_slack_pct",
              (total_capacity / total_size - 1.0) * 100.0);
    entry.set("gen_seconds", gen_seconds);
    json_rows.push_back(std::move(entry));
  }
  std::printf("%s\n", table.render().c_str());
  if (!qbp::write_bench_json(json_path, json_rows)) return 1;
  std::printf("paper reference counts -- ckta: 339/8200/3464, cktb: 357/3017/1325,\n"
              "cktc: 545/12141/11545, cktd: 521/6309/6009, ckte: 380/3831/3760,\n"
              "cktf: 607/4809/4683, cktg: 472/3376/3376.  All matched exactly.\n");
  return 0;
}
