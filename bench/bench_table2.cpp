// Table II reproduction: partitioning WITHOUT timing constraints.
//
// Protocol (paper Section 5): total Manhattan wirelength on a 4 x 4 slot
// array, 16 partitions; one shared initial feasible solution per circuit
// from QBP with B = 0; QBP runs 100 iterations, GFM runs to convergence,
// GKL is cut off after 6 outer loops.  Timing constraints are generated
// (the start must satisfy them so Tables II and III share it, as in the
// paper) but dropped from the problem the methods solve.
#include <cstdio>

#include "bench_support/experiment.hpp"
#include "core/initial.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  std::string json_path;
  qbp::CliParser cli("bench_table2", "Table II reproduction (no timing)");
  cli.add_string("json", json_path, "also write machine-readable rows here");
  if (const auto exit_code = cli.run(argc, argv)) return *exit_code;

  std::printf("Table II reproduction: without Timing Constraints\n"
              "(cost = total Manhattan wire length; cpu = wall seconds on "
              "this host)\n\n");
  std::vector<qbp::ExperimentRow> rows;
  qbp::ExperimentConfig config;
  for (const auto& preset : qbp::shihkuh_presets()) {
    const auto instance = qbp::make_circuit(preset);
    const auto initial = qbp::make_initial(
        instance.problem, qbp::InitialStrategy::kQbpZeroWireCost, config.seed);
    rows.push_back(qbp::run_experiment_from(
        preset.name, instance.problem.without_timing(), initial.assignment,
        initial.feasible, config));
    std::fprintf(stderr, "  %s done\n", preset.name.c_str());
  }
  std::printf("%s\n", qbp::format_table("", rows).c_str());
  std::printf("csv:\n%s", qbp::rows_to_csv(rows).c_str());
  if (!qbp::write_bench_json(json_path, qbp::rows_to_json(rows))) return 1;
  return 0;
}
