// Table III reproduction: partitioning WITH timing constraints.
//
// Same protocol as bench_table2 (shared QBP(B=0) start, QBP 100 iterations,
// GFM to convergence, GKL 6 outer loops) with the full timing-constraint
// set active: GFM/GKL only take moves that keep C2 satisfied, QBP optimizes
// the constraint-embedded Q-hat with penalty 50.
#include <cstdio>

#include "bench_support/experiment.hpp"
#include "core/initial.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  std::string json_path;
  qbp::CliParser cli("bench_table3", "Table III reproduction (with timing)");
  cli.add_string("json", json_path, "also write machine-readable rows here");
  if (const auto exit_code = cli.run(argc, argv)) return *exit_code;

  std::printf("Table III reproduction: with Timing Constraints\n"
              "(cost = total Manhattan wire length; cpu = wall seconds on "
              "this host)\n\n");
  std::vector<qbp::ExperimentRow> rows;
  qbp::ExperimentConfig config;
  for (const auto& preset : qbp::shihkuh_presets()) {
    const auto instance = qbp::make_circuit(preset);
    const auto initial = qbp::make_initial(
        instance.problem, qbp::InitialStrategy::kQbpZeroWireCost, config.seed);
    rows.push_back(qbp::run_experiment_from(preset.name, instance.problem,
                                            initial.assignment,
                                            initial.feasible, config));
    std::fprintf(stderr, "  %s done\n", preset.name.c_str());
  }
  std::printf("%s\n", qbp::format_table("", rows).c_str());
  std::printf("csv:\n%s", qbp::rows_to_csv(rows).c_str());
  if (!qbp::write_bench_json(json_path, qbp::rows_to_json(rows))) return 1;
  return 0;
}
