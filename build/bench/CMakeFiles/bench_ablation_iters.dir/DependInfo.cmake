
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_iters.cpp" "bench/CMakeFiles/bench_ablation_iters.dir/bench_ablation_iters.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation_iters.dir/bench_ablation_iters.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/qbp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/qbp_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/bench_support/CMakeFiles/qbp_benchsup.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/qbp_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/qbp_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/qbp_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/assign/CMakeFiles/qbp_assign.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/qbp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
