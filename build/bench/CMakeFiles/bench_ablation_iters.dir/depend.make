# Empty dependencies file for bench_ablation_iters.
# This may be replaced when dependencies are built.
