file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_polish.dir/bench_ablation_polish.cpp.o"
  "CMakeFiles/bench_ablation_polish.dir/bench_ablation_polish.cpp.o.d"
  "bench_ablation_polish"
  "bench_ablation_polish.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_polish.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
