file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_sparse.dir/bench_ablation_sparse.cpp.o"
  "CMakeFiles/bench_ablation_sparse.dir/bench_ablation_sparse.cpp.o.d"
  "bench_ablation_sparse"
  "bench_ablation_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
