file(REMOVE_RECURSE
  "CMakeFiles/bench_baseline_sa.dir/bench_baseline_sa.cpp.o"
  "CMakeFiles/bench_baseline_sa.dir/bench_baseline_sa.cpp.o.d"
  "bench_baseline_sa"
  "bench_baseline_sa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_sa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
