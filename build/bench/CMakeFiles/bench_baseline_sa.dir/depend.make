# Empty dependencies file for bench_baseline_sa.
# This may be replaced when dependencies are built.
