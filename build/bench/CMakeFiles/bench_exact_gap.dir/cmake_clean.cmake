file(REMOVE_RECURSE
  "CMakeFiles/bench_exact_gap.dir/bench_exact_gap.cpp.o"
  "CMakeFiles/bench_exact_gap.dir/bench_exact_gap.cpp.o.d"
  "bench_exact_gap"
  "bench_exact_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exact_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
