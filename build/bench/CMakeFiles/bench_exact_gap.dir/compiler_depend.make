# Empty compiler generated dependencies file for bench_exact_gap.
# This may be replaced when dependencies are built.
