file(REMOVE_RECURSE
  "CMakeFiles/fpga_timing.dir/fpga_timing.cpp.o"
  "CMakeFiles/fpga_timing.dir/fpga_timing.cpp.o.d"
  "fpga_timing"
  "fpga_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpga_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
