# Empty dependencies file for fpga_timing.
# This may be replaced when dependencies are built.
