file(REMOVE_RECURSE
  "CMakeFiles/hypernet_partition.dir/hypernet_partition.cpp.o"
  "CMakeFiles/hypernet_partition.dir/hypernet_partition.cpp.o.d"
  "hypernet_partition"
  "hypernet_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypernet_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
