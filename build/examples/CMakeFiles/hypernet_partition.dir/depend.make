# Empty dependencies file for hypernet_partition.
# This may be replaced when dependencies are built.
