file(REMOVE_RECURSE
  "CMakeFiles/mcm_repair.dir/mcm_repair.cpp.o"
  "CMakeFiles/mcm_repair.dir/mcm_repair.cpp.o.d"
  "mcm_repair"
  "mcm_repair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcm_repair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
