# Empty dependencies file for mcm_repair.
# This may be replaced when dependencies are built.
