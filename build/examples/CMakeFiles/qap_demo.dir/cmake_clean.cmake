file(REMOVE_RECURSE
  "CMakeFiles/qap_demo.dir/qap_demo.cpp.o"
  "CMakeFiles/qap_demo.dir/qap_demo.cpp.o.d"
  "qap_demo"
  "qap_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qap_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
