# Empty compiler generated dependencies file for qap_demo.
# This may be replaced when dependencies are built.
