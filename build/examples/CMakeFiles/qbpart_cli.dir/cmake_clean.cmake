file(REMOVE_RECURSE
  "CMakeFiles/qbpart_cli.dir/qbpart_cli.cpp.o"
  "CMakeFiles/qbpart_cli.dir/qbpart_cli.cpp.o.d"
  "qbpart_cli"
  "qbpart_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qbpart_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
