# Empty compiler generated dependencies file for qbpart_cli.
# This may be replaced when dependencies are built.
