# Empty dependencies file for qbpart_cli.
# This may be replaced when dependencies are built.
