
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/assign/gap.cpp" "src/assign/CMakeFiles/qbp_assign.dir/gap.cpp.o" "gcc" "src/assign/CMakeFiles/qbp_assign.dir/gap.cpp.o.d"
  "/root/repo/src/assign/knapsack.cpp" "src/assign/CMakeFiles/qbp_assign.dir/knapsack.cpp.o" "gcc" "src/assign/CMakeFiles/qbp_assign.dir/knapsack.cpp.o.d"
  "/root/repo/src/assign/lap.cpp" "src/assign/CMakeFiles/qbp_assign.dir/lap.cpp.o" "gcc" "src/assign/CMakeFiles/qbp_assign.dir/lap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/qbp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
