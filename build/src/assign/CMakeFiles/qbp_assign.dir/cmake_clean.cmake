file(REMOVE_RECURSE
  "CMakeFiles/qbp_assign.dir/gap.cpp.o"
  "CMakeFiles/qbp_assign.dir/gap.cpp.o.d"
  "CMakeFiles/qbp_assign.dir/knapsack.cpp.o"
  "CMakeFiles/qbp_assign.dir/knapsack.cpp.o.d"
  "CMakeFiles/qbp_assign.dir/lap.cpp.o"
  "CMakeFiles/qbp_assign.dir/lap.cpp.o.d"
  "libqbp_assign.a"
  "libqbp_assign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qbp_assign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
