file(REMOVE_RECURSE
  "libqbp_assign.a"
)
