# Empty compiler generated dependencies file for qbp_assign.
# This may be replaced when dependencies are built.
