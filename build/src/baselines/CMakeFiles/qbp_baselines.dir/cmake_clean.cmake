file(REMOVE_RECURSE
  "CMakeFiles/qbp_baselines.dir/gfm.cpp.o"
  "CMakeFiles/qbp_baselines.dir/gfm.cpp.o.d"
  "CMakeFiles/qbp_baselines.dir/gkl.cpp.o"
  "CMakeFiles/qbp_baselines.dir/gkl.cpp.o.d"
  "CMakeFiles/qbp_baselines.dir/sa.cpp.o"
  "CMakeFiles/qbp_baselines.dir/sa.cpp.o.d"
  "libqbp_baselines.a"
  "libqbp_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qbp_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
