file(REMOVE_RECURSE
  "libqbp_baselines.a"
)
