# Empty compiler generated dependencies file for qbp_baselines.
# This may be replaced when dependencies are built.
