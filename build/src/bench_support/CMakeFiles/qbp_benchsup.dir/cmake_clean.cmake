file(REMOVE_RECURSE
  "CMakeFiles/qbp_benchsup.dir/circuits.cpp.o"
  "CMakeFiles/qbp_benchsup.dir/circuits.cpp.o.d"
  "CMakeFiles/qbp_benchsup.dir/experiment.cpp.o"
  "CMakeFiles/qbp_benchsup.dir/experiment.cpp.o.d"
  "libqbp_benchsup.a"
  "libqbp_benchsup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qbp_benchsup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
