file(REMOVE_RECURSE
  "libqbp_benchsup.a"
)
