# Empty compiler generated dependencies file for qbp_benchsup.
# This may be replaced when dependencies are built.
