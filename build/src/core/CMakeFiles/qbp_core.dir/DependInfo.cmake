
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/brute_force.cpp" "src/core/CMakeFiles/qbp_core.dir/brute_force.cpp.o" "gcc" "src/core/CMakeFiles/qbp_core.dir/brute_force.cpp.o.d"
  "/root/repo/src/core/burkard.cpp" "src/core/CMakeFiles/qbp_core.dir/burkard.cpp.o" "gcc" "src/core/CMakeFiles/qbp_core.dir/burkard.cpp.o.d"
  "/root/repo/src/core/embedding.cpp" "src/core/CMakeFiles/qbp_core.dir/embedding.cpp.o" "gcc" "src/core/CMakeFiles/qbp_core.dir/embedding.cpp.o.d"
  "/root/repo/src/core/exact.cpp" "src/core/CMakeFiles/qbp_core.dir/exact.cpp.o" "gcc" "src/core/CMakeFiles/qbp_core.dir/exact.cpp.o.d"
  "/root/repo/src/core/initial.cpp" "src/core/CMakeFiles/qbp_core.dir/initial.cpp.o" "gcc" "src/core/CMakeFiles/qbp_core.dir/initial.cpp.o.d"
  "/root/repo/src/core/multilevel.cpp" "src/core/CMakeFiles/qbp_core.dir/multilevel.cpp.o" "gcc" "src/core/CMakeFiles/qbp_core.dir/multilevel.cpp.o.d"
  "/root/repo/src/core/problem.cpp" "src/core/CMakeFiles/qbp_core.dir/problem.cpp.o" "gcc" "src/core/CMakeFiles/qbp_core.dir/problem.cpp.o.d"
  "/root/repo/src/core/problem_io.cpp" "src/core/CMakeFiles/qbp_core.dir/problem_io.cpp.o" "gcc" "src/core/CMakeFiles/qbp_core.dir/problem_io.cpp.o.d"
  "/root/repo/src/core/qhat.cpp" "src/core/CMakeFiles/qbp_core.dir/qhat.cpp.o" "gcc" "src/core/CMakeFiles/qbp_core.dir/qhat.cpp.o.d"
  "/root/repo/src/core/repair.cpp" "src/core/CMakeFiles/qbp_core.dir/repair.cpp.o" "gcc" "src/core/CMakeFiles/qbp_core.dir/repair.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/qbp_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/qbp_core.dir/report.cpp.o.d"
  "/root/repo/src/core/special_cases.cpp" "src/core/CMakeFiles/qbp_core.dir/special_cases.cpp.o" "gcc" "src/core/CMakeFiles/qbp_core.dir/special_cases.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/qbp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/qbp_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/qbp_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/qbp_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/assign/CMakeFiles/qbp_assign.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
