file(REMOVE_RECURSE
  "CMakeFiles/qbp_core.dir/brute_force.cpp.o"
  "CMakeFiles/qbp_core.dir/brute_force.cpp.o.d"
  "CMakeFiles/qbp_core.dir/burkard.cpp.o"
  "CMakeFiles/qbp_core.dir/burkard.cpp.o.d"
  "CMakeFiles/qbp_core.dir/embedding.cpp.o"
  "CMakeFiles/qbp_core.dir/embedding.cpp.o.d"
  "CMakeFiles/qbp_core.dir/exact.cpp.o"
  "CMakeFiles/qbp_core.dir/exact.cpp.o.d"
  "CMakeFiles/qbp_core.dir/initial.cpp.o"
  "CMakeFiles/qbp_core.dir/initial.cpp.o.d"
  "CMakeFiles/qbp_core.dir/multilevel.cpp.o"
  "CMakeFiles/qbp_core.dir/multilevel.cpp.o.d"
  "CMakeFiles/qbp_core.dir/problem.cpp.o"
  "CMakeFiles/qbp_core.dir/problem.cpp.o.d"
  "CMakeFiles/qbp_core.dir/problem_io.cpp.o"
  "CMakeFiles/qbp_core.dir/problem_io.cpp.o.d"
  "CMakeFiles/qbp_core.dir/qhat.cpp.o"
  "CMakeFiles/qbp_core.dir/qhat.cpp.o.d"
  "CMakeFiles/qbp_core.dir/repair.cpp.o"
  "CMakeFiles/qbp_core.dir/repair.cpp.o.d"
  "CMakeFiles/qbp_core.dir/report.cpp.o"
  "CMakeFiles/qbp_core.dir/report.cpp.o.d"
  "CMakeFiles/qbp_core.dir/special_cases.cpp.o"
  "CMakeFiles/qbp_core.dir/special_cases.cpp.o.d"
  "libqbp_core.a"
  "libqbp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qbp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
