file(REMOVE_RECURSE
  "libqbp_core.a"
)
