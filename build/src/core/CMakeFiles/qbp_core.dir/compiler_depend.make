# Empty compiler generated dependencies file for qbp_core.
# This may be replaced when dependencies are built.
