file(REMOVE_RECURSE
  "CMakeFiles/qbp_netlist.dir/generator.cpp.o"
  "CMakeFiles/qbp_netlist.dir/generator.cpp.o.d"
  "CMakeFiles/qbp_netlist.dir/io.cpp.o"
  "CMakeFiles/qbp_netlist.dir/io.cpp.o.d"
  "CMakeFiles/qbp_netlist.dir/netlist.cpp.o"
  "CMakeFiles/qbp_netlist.dir/netlist.cpp.o.d"
  "CMakeFiles/qbp_netlist.dir/nets.cpp.o"
  "CMakeFiles/qbp_netlist.dir/nets.cpp.o.d"
  "CMakeFiles/qbp_netlist.dir/stats.cpp.o"
  "CMakeFiles/qbp_netlist.dir/stats.cpp.o.d"
  "libqbp_netlist.a"
  "libqbp_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qbp_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
