file(REMOVE_RECURSE
  "libqbp_netlist.a"
)
