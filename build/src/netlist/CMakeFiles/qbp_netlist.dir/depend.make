# Empty dependencies file for qbp_netlist.
# This may be replaced when dependencies are built.
