
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/partition/assignment.cpp" "src/partition/CMakeFiles/qbp_partition.dir/assignment.cpp.o" "gcc" "src/partition/CMakeFiles/qbp_partition.dir/assignment.cpp.o.d"
  "/root/repo/src/partition/cost.cpp" "src/partition/CMakeFiles/qbp_partition.dir/cost.cpp.o" "gcc" "src/partition/CMakeFiles/qbp_partition.dir/cost.cpp.o.d"
  "/root/repo/src/partition/deviation.cpp" "src/partition/CMakeFiles/qbp_partition.dir/deviation.cpp.o" "gcc" "src/partition/CMakeFiles/qbp_partition.dir/deviation.cpp.o.d"
  "/root/repo/src/partition/topology.cpp" "src/partition/CMakeFiles/qbp_partition.dir/topology.cpp.o" "gcc" "src/partition/CMakeFiles/qbp_partition.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/qbp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/qbp_netlist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
