file(REMOVE_RECURSE
  "CMakeFiles/qbp_partition.dir/assignment.cpp.o"
  "CMakeFiles/qbp_partition.dir/assignment.cpp.o.d"
  "CMakeFiles/qbp_partition.dir/cost.cpp.o"
  "CMakeFiles/qbp_partition.dir/cost.cpp.o.d"
  "CMakeFiles/qbp_partition.dir/deviation.cpp.o"
  "CMakeFiles/qbp_partition.dir/deviation.cpp.o.d"
  "CMakeFiles/qbp_partition.dir/topology.cpp.o"
  "CMakeFiles/qbp_partition.dir/topology.cpp.o.d"
  "libqbp_partition.a"
  "libqbp_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qbp_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
