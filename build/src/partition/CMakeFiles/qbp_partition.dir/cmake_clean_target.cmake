file(REMOVE_RECURSE
  "libqbp_partition.a"
)
