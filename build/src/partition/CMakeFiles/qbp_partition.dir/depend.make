# Empty dependencies file for qbp_partition.
# This may be replaced when dependencies are built.
