
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/timing/constraints.cpp" "src/timing/CMakeFiles/qbp_timing.dir/constraints.cpp.o" "gcc" "src/timing/CMakeFiles/qbp_timing.dir/constraints.cpp.o.d"
  "/root/repo/src/timing/timing_graph.cpp" "src/timing/CMakeFiles/qbp_timing.dir/timing_graph.cpp.o" "gcc" "src/timing/CMakeFiles/qbp_timing.dir/timing_graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/qbp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/qbp_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/qbp_partition.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
