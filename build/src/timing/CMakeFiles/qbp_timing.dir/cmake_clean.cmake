file(REMOVE_RECURSE
  "CMakeFiles/qbp_timing.dir/constraints.cpp.o"
  "CMakeFiles/qbp_timing.dir/constraints.cpp.o.d"
  "CMakeFiles/qbp_timing.dir/timing_graph.cpp.o"
  "CMakeFiles/qbp_timing.dir/timing_graph.cpp.o.d"
  "libqbp_timing.a"
  "libqbp_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qbp_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
