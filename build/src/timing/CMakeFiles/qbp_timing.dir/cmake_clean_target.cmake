file(REMOVE_RECURSE
  "libqbp_timing.a"
)
