# Empty dependencies file for qbp_timing.
# This may be replaced when dependencies are built.
