file(REMOVE_RECURSE
  "CMakeFiles/qbp_util.dir/cli.cpp.o"
  "CMakeFiles/qbp_util.dir/cli.cpp.o.d"
  "CMakeFiles/qbp_util.dir/log.cpp.o"
  "CMakeFiles/qbp_util.dir/log.cpp.o.d"
  "CMakeFiles/qbp_util.dir/rng.cpp.o"
  "CMakeFiles/qbp_util.dir/rng.cpp.o.d"
  "CMakeFiles/qbp_util.dir/strings.cpp.o"
  "CMakeFiles/qbp_util.dir/strings.cpp.o.d"
  "CMakeFiles/qbp_util.dir/table.cpp.o"
  "CMakeFiles/qbp_util.dir/table.cpp.o.d"
  "libqbp_util.a"
  "libqbp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qbp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
