file(REMOVE_RECURSE
  "libqbp_util.a"
)
