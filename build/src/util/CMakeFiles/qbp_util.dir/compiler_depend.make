# Empty compiler generated dependencies file for qbp_util.
# This may be replaced when dependencies are built.
