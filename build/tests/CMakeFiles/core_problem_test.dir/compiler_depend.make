# Empty compiler generated dependencies file for core_problem_test.
# This may be replaced when dependencies are built.
