file(REMOVE_RECURSE
  "CMakeFiles/core_qhat_test.dir/core_qhat_test.cpp.o"
  "CMakeFiles/core_qhat_test.dir/core_qhat_test.cpp.o.d"
  "core_qhat_test"
  "core_qhat_test.pdb"
  "core_qhat_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_qhat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
