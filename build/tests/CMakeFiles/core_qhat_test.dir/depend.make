# Empty dependencies file for core_qhat_test.
# This may be replaced when dependencies are built.
