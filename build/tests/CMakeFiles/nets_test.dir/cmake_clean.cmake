file(REMOVE_RECURSE
  "CMakeFiles/nets_test.dir/nets_test.cpp.o"
  "CMakeFiles/nets_test.dir/nets_test.cpp.o.d"
  "nets_test"
  "nets_test.pdb"
  "nets_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nets_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
