# Empty dependencies file for nets_test.
# This may be replaced when dependencies are built.
