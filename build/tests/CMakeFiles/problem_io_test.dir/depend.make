# Empty dependencies file for problem_io_test.
# This may be replaced when dependencies are built.
