# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sparse_test[1]_include.cmake")
include("/root/repo/build/tests/netlist_test[1]_include.cmake")
include("/root/repo/build/tests/partition_test[1]_include.cmake")
include("/root/repo/build/tests/timing_test[1]_include.cmake")
include("/root/repo/build/tests/assign_test[1]_include.cmake")
include("/root/repo/build/tests/core_problem_test[1]_include.cmake")
include("/root/repo/build/tests/core_qhat_test[1]_include.cmake")
include("/root/repo/build/tests/core_solver_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/nets_test[1]_include.cmake")
include("/root/repo/build/tests/problem_io_test[1]_include.cmake")
include("/root/repo/build/tests/sa_test[1]_include.cmake")
include("/root/repo/build/tests/special_cases_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/report_test[1]_include.cmake")
include("/root/repo/build/tests/multilevel_test[1]_include.cmake")
include("/root/repo/build/tests/exact_test[1]_include.cmake")
include("/root/repo/build/tests/invariants_test[1]_include.cmake")
include("/root/repo/build/tests/asymmetric_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
