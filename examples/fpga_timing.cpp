// Timing-driven 16-way partitioning (the FPGA / MCM use case of the paper's
// introduction): run QBP, GFM and GKL on one preset circuit with timing
// constraints active and compare quality and runtime -- a single row of
// Table III.
//
//   ./fpga_timing [--circuit ckte] [--iterations 100] [--no-gkl]
#include <cstdio>

#include "bench_support/circuits.hpp"
#include "bench_support/experiment.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  std::string circuit = "ckte";
  std::int64_t iterations = 100;
  bool no_gkl = false;
  bool relax_timing = false;

  qbp::CliParser cli("fpga_timing",
                     "one circuit through QBP / GFM / GKL under timing and "
                     "capacity constraints");
  cli.add_string("circuit", circuit, "preset circuit (ckta..cktg)");
  cli.add_int("iterations", iterations, "QBP iterations");
  cli.add_flag("no-gkl", no_gkl, "skip the slow GKL baseline");
  cli.add_flag("relax-timing", relax_timing,
               "drop timing constraints (Table II style)");
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", cli.error().c_str(), cli.usage().c_str());
    return 1;
  }
  if (cli.help_requested()) {
    std::printf("%s", cli.usage().c_str());
    return 0;
  }

  const qbp::CircuitPreset* preset = qbp::find_preset(circuit);
  if (preset == nullptr) {
    std::fprintf(stderr, "unknown circuit '%s'\n", circuit.c_str());
    return 1;
  }

  std::printf("building %s: %d components, %lld wires, %lld timing constraints, "
              "16 partitions (4x4)\n",
              preset->name.c_str(), preset->num_components,
              static_cast<long long>(preset->num_wires),
              static_cast<long long>(preset->num_timing_constraints));
  const qbp::CircuitInstance instance = qbp::make_circuit(*preset);

  qbp::ExperimentConfig config;
  config.qbp_iterations = static_cast<std::int32_t>(iterations);
  config.run_gkl = !no_gkl;

  const qbp::PartitionProblem problem =
      relax_timing ? instance.problem.without_timing() : instance.problem;
  const qbp::ExperimentRow row =
      qbp::run_experiment(preset->name, problem, config);

  std::printf("\nstart wirelength: %.0f\n", row.start_cost);
  const auto report = [](const char* name, const qbp::MethodOutcome& outcome) {
    std::printf("%-4s final %.0f  (-%.1f%%)  cpu %.2fs  feasible: %s\n", name,
                outcome.final_cost, outcome.improvement_pct,
                outcome.cpu_seconds, outcome.feasible ? "yes" : "no");
  };
  report("QBP", row.qbp);
  report("GFM", row.gfm);
  if (!no_gkl) report("GKL", row.gkl);
  return 0;
}
