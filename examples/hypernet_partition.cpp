// Multi-pin nets end to end: build a hypergraph netlist (buses connecting
// several blocks), compare the clique and star expansion models, and
// partition both onto a 2 x 4 module array.
//
//   ./hypernet_partition [--blocks 48] [--buses 30] [--seed 5]
#include <cstdio>

#include "core/burkard.hpp"
#include "core/initial.hpp"
#include "netlist/nets.hpp"
#include "timing/constraints.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  std::int64_t blocks = 48;
  std::int64_t buses = 30;
  std::int64_t seed = 5;

  qbp::CliParser cli("hypernet_partition",
                     "partition a multi-pin-net design under clique vs star "
                     "net models");
  cli.add_int("blocks", blocks, "number of functional blocks");
  cli.add_int("buses", buses, "number of multi-pin buses");
  cli.add_int("seed", seed, "random seed");
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", cli.error().c_str(), cli.usage().c_str());
    return 1;
  }
  if (cli.help_requested()) {
    std::printf("%s", cli.usage().c_str());
    return 0;
  }

  // A design with 2-pin wires plus wide multi-pin buses.
  qbp::Rng rng(static_cast<std::uint64_t>(seed));
  qbp::HyperNetlist hyper("busdesign");
  for (std::int64_t j = 0; j < blocks; ++j) {
    hyper.add_component("blk" + std::to_string(j), rng.next_double(1.0, 6.0));
  }
  for (std::int64_t k = 0; k < buses; ++k) {
    const auto pin_count = 2 + static_cast<std::int32_t>(rng.next_below(5));
    std::vector<qbp::ComponentId> pins;
    while (static_cast<std::int32_t>(pins.size()) < pin_count) {
      const auto pin = static_cast<qbp::ComponentId>(
          rng.next_below(static_cast<std::uint64_t>(blocks)));
      if (std::find(pins.begin(), pins.end(), pin) == pins.end()) {
        pins.push_back(pin);
      }
    }
    hyper.add_net("bus" + std::to_string(k), std::move(pins),
                  static_cast<std::int32_t>(rng.next_int(1, 4)));
  }
  if (const auto message = hyper.validate(); !message.empty()) {
    std::fprintf(stderr, "invalid hypernetlist: %s\n", message.c_str());
    return 1;
  }
  std::printf("design: %d blocks, %zu buses, %lld pins total\n",
              hyper.num_components(), hyper.nets().size(),
              static_cast<long long>(hyper.total_pins()));

  for (const auto model :
       {qbp::NetExpansion::kClique, qbp::NetExpansion::kStar}) {
    qbp::Netlist flat = hyper.expand(model);
    const char* model_name =
        model == qbp::NetExpansion::kClique ? "clique" : "star";

    auto topology = qbp::PartitionTopology::grid(2, 4, qbp::CostKind::kManhattan);
    const double per_slot = flat.total_size() / 8.0 * 1.3;
    for (qbp::PartitionId i = 0; i < 8; ++i) topology.set_capacity(i, per_slot);

    qbp::PartitionProblem problem(std::move(flat), std::move(topology),
                                  qbp::TimingConstraints(hyper.num_components()));
    const auto initial = qbp::make_initial(
        problem, qbp::InitialStrategy::kQbpZeroWireCost,
        static_cast<std::uint64_t>(seed));
    qbp::BurkardOptions options;
    options.iterations = 60;
    const auto result = qbp::solve_qbp(problem, initial.assignment, options);
    if (!result.found_feasible) {
      std::printf("%-6s model: no feasible result\n", model_name);
      continue;
    }
    std::printf("%-6s model: %lld expanded pairs, start WL %.0f -> final WL "
                "%.0f (%.2f s)\n",
                model_name,
                static_cast<long long>(
                    problem.netlist().num_connected_pairs()),
                problem.wirelength(initial.assignment),
                problem.wirelength(result.best_feasible), result.seconds);
  }
  std::printf("\nnote: clique counts every pin pair (quadratic in net size), "
              "star only driver->sink pairs;\nthe models bracket the true "
              "routed wirelength of a multi-pin net.\n");
  return 0;
}
