// MCM/TCM assignment repair (paper Section 2.2.1) -- the PP(1, 0) special
// case.
//
// Scenario: an experienced designer hand-assigned functional blocks to the
// 16 chip slots of a thermal-conduction module.  The manual assignment
// violates capacity and timing constraints; we want a *legal* assignment
// that deviates minimally from it, where moving component j from slot i0 to
// slot i costs  s_j * manhattan(i, i0)  (bigger blocks are worse to move).
//
//   ./mcm_repair [--circuit cktb] [--shuffle 0.15] [--seed 3]
#include <cstdio>

#include "bench_support/circuits.hpp"
#include "core/burkard.hpp"
#include "partition/deviation.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  std::string circuit = "cktb";
  double shuffle = 0.15;
  std::int64_t seed = 3;
  std::int64_t iterations = 80;

  qbp::CliParser cli("mcm_repair",
                     "repair an infeasible manual TCM assignment with minimum "
                     "deviation (PP(1,0))");
  cli.add_string("circuit", circuit, "preset circuit (ckta..cktg)");
  cli.add_double("shuffle", shuffle,
                 "fraction of components the 'designer' misplaces");
  cli.add_int("seed", seed, "random seed");
  cli.add_int("iterations", iterations, "QBP iterations");
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", cli.error().c_str(), cli.usage().c_str());
    return 1;
  }
  if (cli.help_requested()) {
    std::printf("%s", cli.usage().c_str());
    return 0;
  }

  const qbp::CircuitPreset* preset = qbp::find_preset(circuit);
  if (preset == nullptr) {
    std::fprintf(stderr, "unknown circuit '%s'\n", circuit.c_str());
    return 1;
  }
  const qbp::CircuitInstance instance = qbp::make_circuit(*preset);
  const qbp::PartitionProblem& base = instance.problem;

  // The "manual" assignment: the feasible reference placement with a
  // fraction of components dropped into random slots -- realistic
  // violations of both capacity and timing.
  qbp::Rng rng(static_cast<std::uint64_t>(seed));
  qbp::Assignment manual = instance.hidden_placement;
  std::int32_t misplaced = 0;
  for (std::int32_t j = 0; j < base.num_components(); ++j) {
    if (rng.next_bool(shuffle)) {
      manual.set(j, static_cast<qbp::PartitionId>(rng.next_below(16)));
      ++misplaced;
    }
  }

  std::printf("circuit %s: %d components, 16 slots; designer misplaced %d\n",
              preset->name.c_str(), base.num_components(), misplaced);
  std::printf("manual assignment: capacity ok: %s, timing ok: %s\n",
              base.satisfies_capacity(manual) ? "yes" : "no",
              base.satisfies_timing(manual) ? "yes" : "no");

  // PP(1, 0): linear deviation term only, quadratic term off.
  const qbp::Matrix<double> p = qbp::deviation_cost_matrix(
      base.topology(), base.netlist().sizes(), manual);
  const qbp::PartitionProblem repair(base.netlist(), base.topology(),
                                     base.timing(), p, /*alpha=*/1.0,
                                     /*beta=*/0.0);

  qbp::BurkardOptions options;
  options.iterations = static_cast<std::int32_t>(iterations);
  const qbp::BurkardResult result = qbp::solve_qbp(repair, manual, options);
  if (!result.found_feasible) {
    std::printf("no feasible repair found within %lld iterations\n",
                static_cast<long long>(iterations));
    return 2;
  }

  const qbp::Assignment& repaired = result.best_feasible;
  std::printf("repaired assignment: capacity ok: %s, timing ok: %s\n",
              base.satisfies_capacity(repaired) ? "yes" : "no",
              base.satisfies_timing(repaired) ? "yes" : "no");
  std::printf("total deviation (sum size x distance): %.1f\n",
              qbp::total_deviation(base.topology(), base.netlist().sizes(),
                                   manual, repaired));
  std::printf("components moved from the manual assignment: %d of %d\n",
              qbp::components_moved(manual, repaired), base.num_components());
  return 0;
}
