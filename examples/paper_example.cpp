// The worked example of Section 3.3: three components a, b, c assigned into
// four partitions laid out as a 2 x 2 array.
//
//   A = [0 5 0; 5 0 2; 0 2 0]        (5 wires a-b, 2 wires b-c)
//   Dc = [0 1 inf; 1 0 1; inf 1 0]   (a-b and b-c must be adjacent)
//   B = D = 2 x 2 grid Manhattan distances
//
// Prints the constraint-embedded cost matrix Q-hat in the paper's layout
// (penalty entries are 50) and solves the instance with both brute force
// and the Burkard heuristic.
#include <cstdio>

#include "core/brute_force.hpp"
#include "core/burkard.hpp"
#include "core/qhat.hpp"

namespace {

qbp::PartitionProblem make_paper_problem() {
  qbp::Netlist netlist("section-3.3");
  const auto a = netlist.add_component("a", 1.0);
  const auto b = netlist.add_component("b", 1.0);
  const auto c = netlist.add_component("c", 1.0);
  netlist.add_wires(a, b, 5);
  netlist.add_wires(b, c, 2);

  // 2 x 2 grid: partitions 1..4 of the paper are ids 0..3 here.  Unit
  // capacities force one component per partition, so the optimizer has to
  // spread them subject to the adjacency (timing) constraints.
  qbp::PartitionTopology topology =
      qbp::PartitionTopology::grid(2, 2, qbp::CostKind::kManhattan, 1.0);

  qbp::TimingConstraints timing(3);
  timing.add(a, b, 1.0);
  timing.add(b, c, 1.0);
  // Dc(a, c) = infinity: simply no constraint.

  return qbp::PartitionProblem(std::move(netlist), std::move(topology),
                               std::move(timing));
}

}  // namespace

int main() {
  const qbp::PartitionProblem problem = make_paper_problem();
  const qbp::QhatMatrix qhat(problem, 50.0);

  // Print Q-hat in the paper's layout: rows/columns ordered (a,1)..(a,4),
  // (b,1)..(b,4), (c,1)..(c,4) -- which is exactly flat order r = i + j*M.
  const auto size = static_cast<std::int32_t>(problem.flat_size());
  std::printf("Q-hat (penalty entries = 50, '-' = zero):\n      ");
  for (std::int32_t r = 0; r < size; ++r) {
    std::printf("%3c%d ", 'a' + problem.component_of(r),
                problem.partition_of(r) + 1);
  }
  std::printf("\n");
  for (std::int32_t r1 = 0; r1 < size; ++r1) {
    std::printf("  %c%d ", 'a' + problem.component_of(r1),
                problem.partition_of(r1) + 1);
    for (std::int32_t r2 = 0; r2 < size; ++r2) {
      const double value = qhat.entry(r1, r2);
      if (value == 0.0) {
        std::printf("   - ");
      } else {
        std::printf("%4.0f ", value);
      }
    }
    std::printf("\n");
  }

  // Exact optimum of the constrained problem vs. the embedded problem.
  const qbp::BruteForceResult constrained = qbp::brute_force_constrained(problem);
  const qbp::BruteForceResult penalized = qbp::brute_force_penalized(problem, 50.0);
  std::printf("\nbrute force, constrained:   objective %.0f  (a->%d, b->%d, c->%d)\n",
              constrained.value, constrained.best[0] + 1, constrained.best[1] + 1,
              constrained.best[2] + 1);
  std::printf("brute force, Q-hat embedded: value    %.0f  (a->%d, b->%d, c->%d)\n",
              penalized.value, penalized.best[0] + 1, penalized.best[1] + 1,
              penalized.best[2] + 1);

  // The Burkard heuristic lands on the same optimum.
  qbp::Assignment start(3, 4);
  for (std::int32_t j = 0; j < 3; ++j) start.set(j, 0);
  qbp::BurkardOptions options;
  options.iterations = 30;
  const qbp::BurkardResult heuristic = qbp::solve_qbp(problem, start, options);
  std::printf("Burkard heuristic:           objective %.0f  (a->%d, b->%d, c->%d), "
              "feasible: %s\n",
              heuristic.best_feasible_objective, heuristic.best_feasible[0] + 1,
              heuristic.best_feasible[1] + 1, heuristic.best_feasible[2] + 1,
              heuristic.found_feasible ? "yes" : "no");

  const bool match = heuristic.found_feasible &&
                     heuristic.best_feasible_objective == constrained.value &&
                     penalized.value == constrained.value;
  std::printf("\nall three agree: %s\n", match ? "yes" : "NO (unexpected)");
  return match ? 0 : 1;
}
