// The Quadratic Assignment Problem special case (paper Section 2.2.3):
// M = N, all sizes and capacities equal, no timing constraints -- the
// assignment must be a permutation.  Burkard's heuristic was originally
// designed for exactly this, so the demo solves a small QAP with the
// generalized solver and checks it against brute force.
//
//   ./qap_demo [--size 7] [--seed 11] [--iterations 200]
#include <cstdio>

#include "core/brute_force.hpp"
#include "core/burkard.hpp"
#include "core/initial.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  std::int64_t size = 7;
  std::int64_t seed = 11;
  std::int64_t iterations = 200;

  qbp::CliParser cli("qap_demo",
                     "QAP as the M = N, unit-size special case of PP(0,1)");
  cli.add_int("size", size, "facilities = locations (<= 8 for brute force)");
  cli.add_int("seed", seed, "random seed");
  cli.add_int("iterations", iterations, "QBP iterations");
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", cli.error().c_str(), cli.usage().c_str());
    return 1;
  }
  if (cli.help_requested()) {
    std::printf("%s", cli.usage().c_str());
    return 0;
  }
  const auto n = static_cast<std::int32_t>(size);
  if (n < 2 || n > 8) {
    std::fprintf(stderr, "--size must be in [2, 8] (brute force oracle)\n");
    return 1;
  }

  // Random flow matrix A (facilities) and a ring-distance matrix B
  // (locations).  Unit sizes + unit capacities make assignments
  // permutations.
  qbp::Rng rng(static_cast<std::uint64_t>(seed));
  qbp::Netlist netlist("qap");
  for (std::int32_t j = 0; j < n; ++j) {
    netlist.add_component("f" + std::to_string(j), 1.0);
  }
  for (std::int32_t a = 0; a < n; ++a) {
    for (std::int32_t b = a + 1; b < n; ++b) {
      if (rng.next_bool(0.6)) {
        netlist.add_wires(a, b, static_cast<std::int32_t>(rng.next_int(1, 9)));
      }
    }
  }

  qbp::Matrix<double> distance(n, n, 0.0);
  for (std::int32_t i1 = 0; i1 < n; ++i1) {
    for (std::int32_t i2 = 0; i2 < n; ++i2) {
      const std::int32_t ring = std::abs(i1 - i2);
      distance(i1, i2) = std::min(ring, n - ring);
    }
  }
  qbp::PartitionTopology topology = qbp::PartitionTopology::custom(
      distance, distance, std::vector<double>(static_cast<std::size_t>(n), 1.0));

  qbp::PartitionProblem problem(std::move(netlist), std::move(topology),
                                qbp::TimingConstraints(n));

  const qbp::BruteForceResult exact = qbp::brute_force_constrained(problem);
  std::printf("QAP n=%d: %lld feasible assignments (= n! permutations), "
              "optimum %.0f\n",
              n, static_cast<long long>(exact.feasible_count), exact.value);

  const qbp::InitialResult initial =
      qbp::make_initial(problem, qbp::InitialStrategy::kGreedyBalanced,
                        static_cast<std::uint64_t>(seed));
  qbp::BurkardOptions options;
  options.iterations = static_cast<std::int32_t>(iterations);
  options.gap_step4.swap_improvement = true;  // permutation moves need swaps
  const qbp::BurkardResult heuristic =
      qbp::solve_qbp(problem, initial.assignment, options);

  std::printf("Burkard heuristic: %.0f (%s optimal), %.3f s\n",
              heuristic.best_feasible_objective,
              heuristic.best_feasible_objective == exact.value ? "matches"
                                                               : "above",
              heuristic.seconds);
  std::printf("permutation found:");
  for (std::int32_t j = 0; j < n; ++j) {
    std::printf(" %d->%d", j, heuristic.best_feasible[j]);
  }
  std::printf("\n");
  return 0;
}
