// qbpart_cli: partition a problem file with any of the five methods.
//
//   # generate a sample problem, then solve it
//   ./qbpart_cli --emit-sample sample.qp
//   ./qbpart_cli --problem sample.qp --method qbp --out solution.txt
//   # parallel portfolio: 16 independent starts on 8 threads, best wins
//   ./qbpart_cli --problem sample.qp --starts 16 --threads 8
//
// Methods: qbp (the paper's solver), multilevel, gfm, gkl, sa.  With
// --starts > 1 (or --portfolio) the run goes through the engine's parallel
// portfolio driver: start points derive deterministically from --seed, so
// the chosen assignment is identical for any --threads value.  Single-start
// GFM/GKL/SA need a feasible start, produced QBP(B=0)-style; QBP accepts
// any start (--start random).  The result assignment is written in the
// `assign` format of core/problem_io.hpp and can be fed back via --initial.
#include <cstdio>
#include <fstream>
#include <memory>

#include "baselines/gfm.hpp"
#include "baselines/gkl.hpp"
#include "baselines/sa.hpp"
#include "bench_support/circuits.hpp"
#include "core/burkard.hpp"
#include "core/initial.hpp"
#include "core/multilevel.hpp"
#include "core/presolve.hpp"
#include "core/problem_io.hpp"
#include "core/report.hpp"
#include "engine/engine.hpp"
#include "engine/pipeline.hpp"
#include "util/cli.hpp"
#include "util/prof.hpp"
#include "util/simd.hpp"
#include "util/strings.hpp"

namespace {

int emit_sample(const std::string& path) {
  // A mid-sized instance from the Table I family, written as a .qp file.
  const auto instance = qbp::make_circuit(*qbp::find_preset("cktb"));
  if (!qbp::write_problem_file(path, instance.problem)) {
    std::fprintf(stderr, "cannot write '%s'\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s (%d components, 16 partitions)\n", path.c_str(),
              instance.problem.num_components());
  return 0;
}

// Shared tail of every solve path: report + optional assignment dump.
int finish(const qbp::PartitionProblem& problem,
           const qbp::Assignment& final_assignment, bool quiet,
           const std::string& out_path) {
  const auto report = qbp::make_report(problem, final_assignment);
  std::printf("final: objective %.1f, capacity ok: %s, timing ok: %s\n",
              report.objective, report.capacity_ok ? "yes" : "no",
              report.timing_ok ? "yes" : "no");
  if (!quiet) {
    std::printf("%s", qbp::to_string(report).c_str());
  }
  if (!out_path.empty()) {
    if (!qbp::write_assignment_file(out_path, final_assignment)) {
      std::fprintf(stderr, "cannot write '%s'\n", out_path.c_str());
      return 1;
    }
    std::printf("assignment written to %s\n", out_path.c_str());
  }
  return 0;
}

void print_presolve(const qbp::PresolveStats& stats, std::int32_t original) {
  std::printf(
      "presolve: removed %d of %d components (r0=%d r1=%d r2=%d rn=%d, "
      "%d passes) in %.3f s\n",
      stats.components_removed, original, stats.r0, stats.r1, stats.r2,
      stats.rn, stats.passes, stats.seconds);
}

}  // namespace

int main(int argc, char** argv) {
  std::string problem_path;
  std::string method = "qbp";
  std::string out_path;
  std::string initial_path;
  std::string emit_sample_path;
  std::string start = "qbp0";
  std::int64_t iterations = 100;
  std::int64_t seed = 1993;
  std::int64_t starts = 1;
  std::int64_t threads = 0;
  std::int64_t inner_threads = 1;
  bool portfolio = false;
  bool quiet = false;
  bool profile = false;
  std::string presolve_mode = "on";
  std::string presolve_rules = "r0,r1,r2,rn";
  std::int64_t presolve_rn = 4;
  std::int64_t ml_levels = 0;
  double ml_min_shrink = 0.0;
  std::int64_t ml_refine_passes = -1;
  std::string simd_mode = "on";

  qbp::CliParser cli("qbpart_cli",
                     "timing- and capacity-constrained partitioning from a "
                     ".qp problem file");
  cli.add_string("problem", problem_path, "input problem file (.qp)");
  cli.add_string("method", method, "qbp | multilevel | gfm | gkl | sa");
  cli.add_string("out", out_path, "write the final assignment here");
  cli.add_string("initial", initial_path,
                 "read the starting assignment from this file");
  cli.add_string("start", start,
                 "start strategy when --initial absent: qbp0 | random | greedy");
  cli.add_int("iterations", iterations, "QBP iteration budget");
  cli.add_int("seed", seed, "random seed");
  cli.add_int("starts", starts,
              "independent portfolio starts (> 1 implies --portfolio)");
  cli.add_int("threads", threads,
              "portfolio worker threads (0 = all hardware threads)");
  cli.add_int("inner-threads", inner_threads,
              "threads inside one QBP solve (0 = all hardware threads); "
              "results are bit-identical at every value");
  cli.add_flag("portfolio", portfolio,
               "run through the parallel portfolio driver even for 1 start");
  cli.add_string("emit-sample", emit_sample_path,
                 "write a sample problem file and exit");
  cli.add_flag("quiet", quiet, "suppress the capacity report");
  cli.add_flag("profile", profile,
               "time solver phases; the report gains a phase breakdown");
  cli.add_string("presolve", presolve_mode,
                 "on | off: reduce the instance (forced fixes, interaction "
                 "elimination, co-location merges, exact tiny remainders) "
                 "before solving; bit-identical to off when nothing reduces");
  cli.add_string("presolve-rules", presolve_rules,
                 "comma list of enabled reduction rules (subset of "
                 "r0,r1,r2,rn)");
  cli.add_int("presolve-rn", presolve_rn,
              "solve remainders with at most this many free components "
              "exactly (RN rule)");
  cli.add_int("ml-levels", ml_levels,
              "multilevel: total V-cycle levels including the finest "
              "(1 = flat solve; 0 = solver default)");
  cli.add_double("ml-min-shrink", ml_min_shrink,
                 "multilevel: stop coarsening when a level shrinks by less "
                 "than this factor, in [0, 1) (0 = solver default)");
  cli.add_int("ml-refine-passes", ml_refine_passes,
              "multilevel: polish sweeps per uncoarsened level "
              "(-1 = solver default)");
  cli.add_string("simd", simd_mode,
                 "on | off: vectorized eta/GAP kernels (util/simd); results "
                 "are bit-identical either way");
  if (const auto exit_code = cli.run(argc, argv)) return *exit_code;
  if (simd_mode != "on" && simd_mode != "off") {
    std::fprintf(stderr, "--simd must be on|off\n");
    return 1;
  }
  qbp::simd::set_enabled(simd_mode == "on");
  if (ml_levels < 0 || ml_min_shrink < 0.0 || ml_min_shrink >= 1.0 ||
      ml_refine_passes < -1) {
    std::fprintf(stderr,
                 "--ml-levels must be >= 0, --ml-min-shrink in [0, 1), "
                 "--ml-refine-passes >= -1\n");
    return 1;
  }
  qbp::MultilevelOptions ml_options;
  ml_options.coarsen.inner_threads = static_cast<std::int32_t>(inner_threads);
  ml_options.coarse_solver.inner_threads =
      static_cast<std::int32_t>(inner_threads);
  ml_options.refine_solver.inner_threads =
      static_cast<std::int32_t>(inner_threads);
  if (ml_levels > 0) ml_options.max_levels = static_cast<std::int32_t>(ml_levels);
  if (ml_min_shrink > 0.0) ml_options.min_shrink = ml_min_shrink;
  if (ml_refine_passes >= 0) {
    ml_options.refine_passes = static_cast<std::int32_t>(ml_refine_passes);
  }
  if (presolve_mode != "on" && presolve_mode != "off") {
    std::fprintf(stderr, "--presolve must be on|off\n");
    return 1;
  }
  qbp::PresolveOptions presolve_options;
  presolve_options.enabled = presolve_mode == "on";
  presolve_options.rule_r0 = presolve_rules.find("r0") != std::string::npos;
  presolve_options.rule_r1 = presolve_rules.find("r1") != std::string::npos;
  presolve_options.rule_r2 = presolve_rules.find("r2") != std::string::npos;
  presolve_options.rule_rn = presolve_rules.find("rn") != std::string::npos;
  presolve_options.rn_max_components = static_cast<std::int32_t>(presolve_rn);
  if (profile) qbp::prof::set_enabled(true);
  if (!emit_sample_path.empty()) return emit_sample(emit_sample_path);
  if (problem_path.empty()) {
    std::fprintf(stderr, "--problem is required (or --emit-sample)\n%s",
                 cli.usage().c_str());
    return 1;
  }

  qbp::PartitionProblem problem;
  if (const auto parsed = qbp::read_problem_file(problem_path, problem);
      !parsed.ok) {
    std::fprintf(stderr, "%s: %s\n", problem_path.c_str(), parsed.message.c_str());
    return 1;
  }
  std::printf("%s: %d components, %d partitions, %lld wires, %lld timing "
              "constraints\n",
              problem_path.c_str(), problem.num_components(),
              problem.num_partitions(),
              static_cast<long long>(problem.netlist().total_wires()),
              static_cast<long long>(problem.timing().count()));

  // Parallel portfolio path: K deterministic starts, best result wins.
  if (portfolio || starts > 1) {
    std::unique_ptr<qbp::engine::Solver> solver;
    if (method == "qbp") {
      qbp::BurkardOptions options;
      options.iterations = static_cast<std::int32_t>(iterations);
      options.inner_threads = static_cast<std::int32_t>(inner_threads);
      solver = std::make_unique<qbp::engine::BurkardSolver>(options);
    } else if (method == "multilevel") {
      solver = std::make_unique<qbp::engine::MultilevelSolver>(ml_options);
    } else {
      solver = qbp::engine::make_solver(method);
    }
    if (!solver) {
      std::fprintf(stderr, "unknown --method '%s'\n", method.c_str());
      return 1;
    }
    qbp::engine::PipelineOptions options;
    options.presolve = presolve_options;
    options.portfolio.seed = static_cast<std::uint64_t>(seed);
    options.portfolio.threads = static_cast<std::int32_t>(threads);
    const qbp::engine::SolvePipeline pipeline(problem, options);
    const auto run =
        pipeline.run(*solver, static_cast<std::int32_t>(starts));
    if (run.reduced) {
      print_presolve(run.presolve, problem.num_components());
    }
    const auto& result = run.portfolio;
    std::printf(
        "portfolio: %d/%d starts on %d threads, %.2f s wall (%.2f s total "
        "work, winner start %d in %.2f s)\n",
        result.starts_run, static_cast<std::int32_t>(starts),
        result.threads_used, result.seconds, result.seconds_total,
        result.best_start, result.seconds_best_start);
    if (!result.best.found_feasible) {
      std::fprintf(stderr,
                   "no start found a fully feasible solution (best penalized "
                   "value %.1f); rerun with more --starts or --iterations\n",
                   result.best.best_penalized);
      return 2;
    }
    return finish(problem, result.best.best_feasible, quiet, out_path);
  }

  // Starting assignment.
  qbp::Assignment initial;
  bool initial_feasible = false;
  if (!initial_path.empty()) {
    const auto parsed = qbp::read_assignment_file(
        initial_path, problem.num_components(), problem.num_partitions(), initial);
    if (!parsed.ok) {
      std::fprintf(stderr, "%s: %s\n", initial_path.c_str(),
                   parsed.message.c_str());
      return 1;
    }
    initial_feasible = problem.is_feasible(initial);
  } else {
    qbp::InitialStrategy strategy = qbp::InitialStrategy::kQbpZeroWireCost;
    if (start == "random") {
      strategy = qbp::InitialStrategy::kRandom;
    } else if (start == "greedy") {
      strategy = qbp::InitialStrategy::kGreedyBalanced;
    } else if (start != "qbp0") {
      std::fprintf(stderr, "unknown --start '%s'\n", start.c_str());
      return 1;
    }
    const auto made = qbp::make_initial(problem, strategy,
                                        static_cast<std::uint64_t>(seed));
    initial = made.assignment;
    initial_feasible = made.feasible;
  }
  std::printf("start: objective %.1f, feasible: %s\n",
              problem.objective(initial), initial_feasible ? "yes" : "no");

  // Solve.
  qbp::Assignment final_assignment = initial;
  if (method == "qbp") {
    qbp::BurkardOptions options;
    options.iterations = static_cast<std::int32_t>(iterations);
    options.inner_threads = static_cast<std::int32_t>(inner_threads);
    options.presolve = presolve_options;  // solver reduces + lifts itself
    const auto result = qbp::solve_qbp(problem, initial, options);
    if (!result.found_feasible) {
      std::fprintf(stderr,
                   "QBP found no fully feasible solution (best penalized "
                   "value %.1f); rerun with more --iterations\n",
                   result.best_penalized);
      return 2;
    }
    final_assignment = result.best_feasible;
    std::printf("QBP: %d iterations, %.2f s\n", result.iterations_run,
                result.seconds);
  } else if (method == "multilevel") {
    // The V-cycle presolves at its own top level (hierarchy built on the
    // reduced instance, finest result lifted back).
    ml_options.presolve = presolve_options;
    const auto result = qbp::solve_qbp_multilevel(problem, initial, ml_options);
    if (!result.finest.found_feasible) {
      std::fprintf(stderr,
                   "multilevel found no fully feasible solution (best "
                   "penalized value %.1f); rerun with more --ml-refine-passes "
                   "or a different --seed\n",
                   result.finest.best_penalized);
      return 2;
    }
    final_assignment = result.finest.best_feasible;
    std::printf("multilevel: %d levels (%.2f s coarsening), %.2f s total\n",
                result.levels_used, result.coarsen_seconds, result.seconds);
  } else if (method == "gfm" || method == "gkl" || method == "sa") {
    if (!initial_feasible) {
      std::fprintf(stderr, "%s requires a feasible starting assignment\n",
                   method.c_str());
      return 2;
    }
    // Presolve wrap for the baseline heuristics: solve the reduced instance,
    // lift the final assignment back.  Identity reductions keep the original
    // problem, so the run is bit-identical to --presolve=off.
    qbp::ReducedProblem reduced;
    bool use_reduced = false;
    if (presolve_options.enabled) {
      const bool needs_normalize =
          problem.alpha() != 1.0 || problem.beta() != 1.0;
      reduced = qbp::presolve(
          needs_normalize ? problem.normalized() : problem, presolve_options);
      use_reduced = !reduced.identity() || reduced.rn_feasible;
      if (use_reduced) print_presolve(reduced.stats, problem.num_components());
    }
    if (use_reduced && reduced.rn_feasible) {
      final_assignment = reduced.lift.lift(reduced.rn_assignment);
      std::printf("presolve: remainder solved exactly (RN), objective %.1f\n",
                  reduced.rn_objective + reduced.lift.objective_offset);
    } else {
      const qbp::PartitionProblem& solve_problem =
          use_reduced ? reduced.problem : problem;
      const qbp::Assignment solve_start =
          use_reduced ? reduced.lift.restrict_to_reduced(initial) : initial;
      if (method == "gfm") {
        const auto result = qbp::solve_gfm(solve_problem, solve_start);
        final_assignment = result.assignment;
        std::printf("GFM: %d passes, %lld moves kept, %.2f s\n", result.passes,
                    static_cast<long long>(result.moves_kept), result.seconds);
      } else if (method == "gkl") {
        const auto result = qbp::solve_gkl(solve_problem, solve_start);
        final_assignment = result.assignment;
        std::printf("GKL: %d outer loops, %lld swaps kept, %.2f s\n",
                    result.outer_loops,
                    static_cast<long long>(result.swaps_kept), result.seconds);
      } else {
        qbp::SaOptions options;
        options.seed = static_cast<std::uint64_t>(seed);
        const auto result = qbp::solve_sa(solve_problem, solve_start, options);
        final_assignment = result.assignment;
        std::printf("SA: %d temperature steps, %lld/%lld accepted, %.2f s\n",
                    result.temperature_steps,
                    static_cast<long long>(result.accepted),
                    static_cast<long long>(result.proposed), result.seconds);
      }
      if (use_reduced) {
        final_assignment = reduced.lift.lift(final_assignment);
      }
    }
  } else {
    std::fprintf(stderr, "unknown --method '%s'\n", method.c_str());
    return 1;
  }

  return finish(problem, final_assignment, quiet, out_path);
}
