// qbpart_submit: build qbpartd request lines and (optionally) deliver them.
//
//   # print request lines for piping into a pipe-mode server
//   ./qbpart_submit --problem sample.qp --starts 8 --seed 7 --print |
//     ./qbpartd --workers 4
//
//   # talk to a TCP server and wait for the results
//   ./qbpart_submit --tcp 7193 --problem sample.qp --deadline-ms 500
//   ./qbpart_submit --tcp 7193 --stats
//   ./qbpart_submit --tcp 7193 --shutdown
//
// --count N submits the same job spec N times (ids id-0 .. id-N-1), which
// is how the CI smoke test and the bench load generator exercise queueing.
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/problem_io.hpp"
#include "service/client.hpp"
#include "service/protocol.hpp"
#include "service/wire.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"

namespace {

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

/// Render one binary reply frame as the equivalent NDJSON line (so output
/// is identical to --wire ndjson runs) and update the exit code.
bool print_reply_frame(std::uint8_t type, const std::string& payload,
                       int& exit_code) {
  namespace svc = qbp::service;
  std::string id;
  std::string text;
  std::string error;
  std::string line;
  switch (static_cast<svc::WireMsg>(type)) {
    case svc::WireMsg::kResult: {
      svc::JobResult result;
      if (!svc::decode_result(payload, result, error)) break;
      line = svc::result_to_json(result).dump();
      break;
    }
    case svc::WireMsg::kReject:
      if (!svc::decode_note(payload, id, text, error)) break;
      line = svc::format_reject(id, text);
      exit_code = 2;
      break;
    case svc::WireMsg::kError:
      if (!svc::decode_note(payload, id, text, error)) break;
      line = svc::format_error(text);
      exit_code = 2;
      break;
    case svc::WireMsg::kStatsReply:
      if (!svc::decode_note(payload, id, text, error)) break;
      line = std::string(text);  // the stats JSON travels verbatim
      break;
    case svc::WireMsg::kCancelAck: {
      if (!svc::decode_note(payload, id, text, error)) break;
      qbp::json::Value ack = qbp::json::Value::object();
      ack.set("type", "cancel");
      ack.set("id", std::string(id));
      ack.set("status", std::string(text));
      line = ack.dump();
      break;
    }
    case svc::WireMsg::kShutdownAck: {
      if (!svc::decode_note(payload, id, text, error)) break;
      qbp::json::Value ack = qbp::json::Value::object();
      ack.set("type", "shutdown");
      ack.set("status", std::string(text));
      line = ack.dump();
      break;
    }
    default:
      error = "unexpected frame type " + std::to_string(type);
      break;
  }
  if (line.empty()) {
    std::fprintf(stderr, "bad reply frame: %s\n", error.c_str());
    return false;
  }
  std::printf("%s\n", line.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string problem_path;
  std::string method = "qbp";
  std::string id;
  std::string cancel_id;
  std::int64_t starts = 1;
  std::int64_t threads = 1;
  std::int64_t inner_threads = 1;
  std::int64_t iterations = 100;
  std::int64_t seed = 1993;
  std::int64_t priority = 0;
  std::int64_t count = 1;
  std::int64_t tcp_port = -1;
  std::int64_t presolve_rn = 4;
  std::int64_t ml_levels = 0;
  double ml_min_shrink = 0.0;
  std::int64_t ml_refine_passes = -1;
  std::string presolve_mode = "on";
  std::string presolve_rules = "r0,r1,r2,rn";
  std::string cache_mode = "on";
  std::string warm_mode = "on";
  double deadline_ms = 0.0;
  bool by_path = false;
  bool stats = false;
  bool shutdown = false;
  bool print_only = false;
  std::string wire = "ndjson";

  qbp::CliParser cli("qbpart_submit",
                     "compose qbpartd job requests; print them or deliver "
                     "them over TCP");
  cli.add_string("problem", problem_path, "problem file (.qp) to submit");
  cli.add_string("method", method, "qbp | multilevel | gfm | gkl | sa");
  cli.add_string("id", id, "job id (server assigns one when empty)");
  cli.add_int("starts", starts, "portfolio start count");
  cli.add_int("threads", threads, "portfolio threads per job");
  cli.add_int("inner-threads", inner_threads,
              "threads inside one solve (0 = all hardware; the server "
              "clamps against its combined thread budget)");
  cli.add_int("iterations", iterations, "QBP iteration budget");
  cli.add_int("seed", seed, "random seed (determinism key)");
  cli.add_string("presolve", presolve_mode,
                 "on | off: reduce the instance server-side before solving");
  cli.add_int("presolve-rn", presolve_rn,
              "exact brute-force threshold for tiny presolved remainders");
  cli.add_string("presolve-rules", presolve_rules,
                 "comma-separated reduction rules to run (subset of "
                 "r0,r1,r2,rn; same grammar as qbpart_cli)");
  cli.add_int("ml-levels", ml_levels,
              "multilevel method: total V-cycle levels including the finest "
              "(1 = flat; 0 = server default)");
  cli.add_double("ml-min-shrink", ml_min_shrink,
                 "multilevel method: coarsening shrink floor in [0, 1) "
                 "(0 = server default)");
  cli.add_int("ml-refine-passes", ml_refine_passes,
              "multilevel method: polish sweeps per uncoarsened level "
              "(-1 = server default)");
  cli.add_string("cache", cache_mode,
                 "on | off: let the server answer from its solution cache");
  cli.add_string("warm-start", warm_mode,
                 "on | off: allow the ECO warm re-solve path (off still "
                 "permits exact cache hits)");
  cli.add_int("priority", priority, "higher runs first");
  cli.add_double("deadline-ms", deadline_ms, "per-job deadline; 0 = none");
  cli.add_int("count", count, "submit the job spec this many times");
  cli.add_flag("by-path", by_path,
               "send the file path instead of embedding its contents "
               "(server must share the filesystem)");
  cli.add_flag("stats", stats, "request a metrics snapshot");
  cli.add_string("cancel", cancel_id, "cancel this job id");
  cli.add_flag("shutdown", shutdown, "ask the server to drain and exit");
  cli.add_int("tcp", tcp_port, "deliver to 127.0.0.1:PORT and await replies");
  cli.add_flag("print", print_only, "print request lines to stdout only");
  cli.add_string("wire", wire,
                 "ndjson (default) | binary: binary parses the problem "
                 "locally and ships wire frames (docs/PROTOCOL.md); "
                 "replies print as the same NDJSON lines either way");
  if (const auto exit_code = cli.run(argc, argv)) return *exit_code;
  if (presolve_mode != "on" && presolve_mode != "off") {
    std::fprintf(stderr, "--presolve must be on|off\n");
    return 1;
  }
  if (cache_mode != "on" && cache_mode != "off") {
    std::fprintf(stderr, "--cache must be on|off\n");
    return 1;
  }
  if (warm_mode != "on" && warm_mode != "off") {
    std::fprintf(stderr, "--warm-start must be on|off\n");
    return 1;
  }
  if (ml_levels < 0 || ml_min_shrink < 0.0 || ml_min_shrink >= 1.0 ||
      ml_refine_passes < -1) {
    std::fprintf(stderr,
                 "--ml-levels must be >= 0, --ml-min-shrink in [0, 1), "
                 "--ml-refine-passes >= -1\n");
    return 1;
  }
  if (wire != "ndjson" && wire != "binary") {
    std::fprintf(stderr, "--wire must be ndjson|binary\n");
    return 1;
  }
  const bool binary = wire == "binary";

  // Rendered messages: NDJSON lines, or complete wire frames in binary mode.
  std::vector<std::string> lines;
  std::size_t expected_replies = 0;
  const auto render = [binary, &lines](const qbp::service::Request& request) {
    if (binary) {
      std::string frame;
      qbp::service::encode_request_frame(request, frame);
      lines.push_back(std::move(frame));
    } else {
      lines.push_back(qbp::service::format_request(request));
    }
  };

  if (!problem_path.empty()) {
    qbp::service::Request request;
    request.type = qbp::service::RequestType::kSubmit;
    request.solver.method = method;
    request.solver.starts = static_cast<std::int32_t>(starts);
    request.solver.threads = static_cast<std::int32_t>(threads);
    request.solver.inner_threads = static_cast<std::int32_t>(inner_threads);
    request.solver.iterations = static_cast<std::int32_t>(iterations);
    request.solver.seed = static_cast<std::uint64_t>(seed);
    request.solver.presolve = presolve_mode == "on";
    request.solver.presolve_rn = static_cast<std::int32_t>(presolve_rn);
    request.solver.presolve_rules = presolve_rules;
    request.solver.ml_levels = static_cast<std::int32_t>(ml_levels);
    request.solver.ml_min_shrink = ml_min_shrink;
    request.solver.ml_refine_passes = static_cast<std::int32_t>(ml_refine_passes);
    request.cache = cache_mode == "on";
    request.warm_start = warm_mode == "on";
    request.deadline_ms = deadline_ms;
    request.priority = static_cast<std::int32_t>(priority);
    if (by_path) {
      request.problem_file = problem_path;
    } else if (binary) {
      // Binary framing ships the parsed problem struct: the server's
      // zero-copy decode path skips the text parser entirely.
      auto problem = std::make_shared<qbp::PartitionProblem>();
      const auto parsed = qbp::read_problem_file(problem_path, *problem);
      if (!parsed.ok) {
        std::fprintf(stderr, "cannot parse '%s': %s\n", problem_path.c_str(),
                     parsed.message.c_str());
        return 1;
      }
      request.problem = std::move(problem);
    } else if (!read_file(problem_path, request.problem_text)) {
      std::fprintf(stderr, "cannot read '%s'\n", problem_path.c_str());
      return 1;
    }
    for (std::int64_t k = 0; k < count; ++k) {
      request.id = id.empty()
                       ? std::string{}
                       : (count == 1 ? id : id + "-" + std::to_string(k));
      render(request);
      ++expected_replies;
    }
  }
  if (!cancel_id.empty()) {
    qbp::service::Request request;
    request.type = qbp::service::RequestType::kCancel;
    request.id = cancel_id;
    render(request);
    ++expected_replies;
  }
  if (stats) {
    qbp::service::Request request;
    request.type = qbp::service::RequestType::kStats;
    render(request);
    ++expected_replies;
  }
  if (shutdown) {
    qbp::service::Request request;
    request.type = qbp::service::RequestType::kShutdown;
    render(request);
    ++expected_replies;
  }
  if (lines.empty()) {
    std::fprintf(stderr,
                 "nothing to send: pass --problem, --stats, --cancel or "
                 "--shutdown\n%s",
                 cli.usage().c_str());
    return 1;
  }

  if (print_only || tcp_port < 0) {
    if (binary) {
      // Raw frames (a pipe-mode server reads these verbatim from stdin).
      for (const auto& frame : lines) {
        std::fwrite(frame.data(), 1, frame.size(), stdout);
      }
    } else {
      for (const auto& line : lines) std::printf("%s\n", line.c_str());
    }
    return 0;
  }
  if (tcp_port > 65535) {
    std::fprintf(stderr, "--tcp out of range\n");
    return 1;
  }

  qbp::service::TcpClient client;
  if (!client.connect(static_cast<std::uint16_t>(tcp_port))) {
    std::fprintf(stderr, "connect to 127.0.0.1:%lld failed: %s\n",
                 static_cast<long long>(tcp_port), client.error().c_str());
    return 1;
  }
  for (const auto& line : lines) {
    const bool sent = binary ? client.send_bytes(line)
                             : client.send_line(line);
    if (!sent) {
      std::fprintf(stderr, "send failed: %s\n", client.error().c_str());
      return 1;
    }
  }
  int exit_code = 0;
  for (std::size_t k = 0; k < expected_replies; ++k) {
    if (binary) {
      std::uint8_t type = 0;
      std::string payload;
      if (!client.read_frame(type, payload)) {
        std::fprintf(stderr, "server closed the connection: %s\n",
                     client.error().c_str());
        return 1;
      }
      if (!print_reply_frame(type, payload, exit_code)) return 1;
      continue;
    }
    std::string reply;
    if (!client.read_line(reply)) {
      std::fprintf(stderr, "server closed the connection: %s\n",
                   client.error().c_str());
      return 1;
    }
    std::printf("%s\n", reply.c_str());
    if (reply.find("\"type\":\"reject\"") != std::string::npos ||
        reply.find("\"type\":\"error\"") != std::string::npos) {
      exit_code = 2;
    }
  }
  return exit_code;
}
