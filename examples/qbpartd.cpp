// qbpartd: a long-running batch partitioning job server.
//
//   # pipe mode: NDJSON requests on stdin, responses on stdout
//   ./qbpart_submit --problem sample.qp --print | ./qbpartd --workers 4
//
//   # socket mode: local TCP, one connection per client
//   ./qbpartd --tcp 7193 --workers 4 --stats-interval 10 &
//   ./qbpart_submit --tcp 7193 --problem sample.qp
//
// Protocol: one JSON object per line (see src/service/protocol.hpp for the
// full schema).  Each job names a solver method (qbp | multilevel | gfm |
// gkl | sa), a portfolio start count, a seed, an optional deadline and a
// priority.  Results are deterministic: the same job spec and seed yield a
// bit-identical assignment no matter how loaded the server is or how many
// --workers it runs.
//
// SIGINT/SIGTERM drain gracefully: accepted jobs are finished and answered,
// new submits are rejected, then the process exits 0.
#include <csignal>
#include <cstdio>

#include <unistd.h>

#include <string>

#include "core/validate.hpp"
#include "service/server.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"
#include "util/prof.hpp"

namespace {

// Self-pipe: the only async-signal-safe way to wake a poll() loop.
int g_wake_write_fd = -1;

void on_signal(int /*signum*/) {
  const char byte = 1;
  // Result ignored deliberately: a full pipe still wakes the poller.
  [[maybe_unused]] const auto n = ::write(g_wake_write_fd, &byte, 1);
}

}  // namespace

int main(int argc, char** argv) {
  std::int64_t workers = 1;
  std::int64_t queue_capacity = 64;
  std::int64_t thread_limit = 0;
  std::int64_t tcp_port = -1;
  double stats_interval = 0.0;
  bool pipe_mode = false;
  bool verbose = false;
  bool validate = false;
  bool profile = false;
  std::string check_mode = "throw";
  std::string cache_mode = "on";
  std::int64_t cache_capacity = 64;
  std::string wire = "auto";

  qbp::CliParser cli("qbpartd",
                     "batch partitioning job server: NDJSON jobs in, "
                     "deterministic results out");
  cli.add_int("workers", workers, "concurrent jobs");
  cli.add_int("queue", queue_capacity,
              "queue bound; a full queue rejects new submits");
  cli.add_int("thread-limit", thread_limit,
              "combined budget for workers x starts x inner_threads "
              "(0 = all hardware threads); oversubscribing submits get "
              "their inner_threads clamped with a warning");
  cli.add_int("tcp", tcp_port, "listen on 127.0.0.1:PORT (0 = ephemeral)");
  cli.add_flag("pipe", pipe_mode,
               "serve stdin -> stdout (default when --tcp absent)");
  cli.add_double("stats-interval", stats_interval,
                 "emit a metrics JSON line on stderr every N seconds");
  cli.add_flag("verbose", verbose, "per-job lifecycle logs on stderr");
  cli.add_flag("validate", validate,
               "shadow-validate every job's results by default (jobs can "
               "override with the per-job 'validate' flag)");
  cli.add_string("check-mode", check_mode,
                 "contract-violation behavior: throw (fail the job; "
                 "default), abort (fail fast), count (log and continue)");
  cli.add_flag("profile", profile,
               "time solver phases; stats gain phase_seconds.* histograms");
  cli.add_string("cache", cache_mode,
                 "solution cache: on (exact hits + ECO warm starts; "
                 "default) or off (every job solves cold, bit-identical "
                 "to the pre-cache server)");
  cli.add_int("cache-capacity", cache_capacity,
              "solution cache bound in entries (LRU eviction)");
  cli.add_string("wire", wire,
                 "edge framing: auto (sniff each connection's first byte; "
                 "default), ndjson (text only, pre-binary behavior), or "
                 "binary (wire frames only; see docs/PROTOCOL.md)");
  if (const auto exit_code = cli.run(argc, argv)) return *exit_code;
  if (workers < 1 || queue_capacity < 1) {
    std::fprintf(stderr, "--workers and --queue must be >= 1\n");
    return 1;
  }
  if (tcp_port > 65535) {
    std::fprintf(stderr, "--tcp out of range\n");
    return 1;
  }
  qbp::check::FailMode fail_mode = qbp::check::FailMode::kThrow;
  if (check_mode == "abort") {
    fail_mode = qbp::check::FailMode::kAbort;
  } else if (check_mode == "count") {
    fail_mode = qbp::check::FailMode::kLogAndCount;
  } else if (check_mode != "throw") {
    std::fprintf(stderr, "--check-mode must be throw|abort|count\n");
    return 1;
  }
  if (cache_mode != "on" && cache_mode != "off") {
    std::fprintf(stderr, "--cache must be on|off\n");
    return 1;
  }
  if (cache_capacity < 0) {
    std::fprintf(stderr, "--cache-capacity must be >= 0\n");
    return 1;
  }
  qbp::service::WireMode wire_mode = qbp::service::WireMode::kAuto;
  if (wire == "ndjson") {
    wire_mode = qbp::service::WireMode::kNdjson;
  } else if (wire == "binary") {
    wire_mode = qbp::service::WireMode::kBinary;
  } else if (wire != "auto") {
    std::fprintf(stderr, "--wire must be auto|ndjson|binary\n");
    return 1;
  }
  qbp::set_validation_enabled(validate);
  qbp::prof::set_enabled(profile);
  qbp::log::set_level(verbose ? qbp::log::Level::kInfo
                              : qbp::log::Level::kWarn);

  int wake[2] = {-1, -1};
  if (::pipe(wake) != 0) {
    std::fprintf(stderr, "qbpartd: cannot create wake pipe\n");
    return 1;
  }
  g_wake_write_fd = wake[1];
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::signal(SIGPIPE, SIG_IGN);

  qbp::service::ServerOptions options;
  options.workers = static_cast<std::int32_t>(workers);
  options.queue_capacity = static_cast<std::size_t>(queue_capacity);
  options.stats_interval_s = stats_interval;
  options.thread_limit = static_cast<std::int32_t>(thread_limit);
  options.cache_capacity = cache_mode == "off"
                               ? 0
                               : static_cast<std::size_t>(cache_capacity);
  options.fail_mode = fail_mode;
  qbp::service::Server server(options);

  int exit_code = 0;
  if (tcp_port >= 0 && !pipe_mode) {
    exit_code = qbp::service::serve_tcp(
        server, static_cast<std::uint16_t>(tcp_port), wake[0], wire_mode);
  } else {
    exit_code = qbp::service::serve_fd(server, STDIN_FILENO, STDOUT_FILENO,
                                       wake[0], wire_mode);
  }
  ::close(wake[0]);
  ::close(wake[1]);
  return exit_code;
}
