// Quickstart: build a small circuit, state a 2 x 2 partition topology with
// capacities and timing constraints, and solve it with the QBP heuristic.
//
//   ./quickstart [--components N] [--wires W] [--iterations K] [--seed S]
//
// Walks through the whole public API surface in ~100 lines:
//   Netlist -> PartitionTopology -> TimingConstraints -> PartitionProblem
//   -> make_initial -> solve_qbp -> inspect the result.
#include <cstdio>

#include "core/burkard.hpp"
#include "core/initial.hpp"
#include "core/problem.hpp"
#include "netlist/generator.hpp"
#include "timing/constraints.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  std::int64_t components = 60;
  std::int64_t wires = 240;
  std::int64_t iterations = 60;
  std::int64_t seed = 7;

  qbp::CliParser cli("quickstart", "minimal end-to-end QBP partitioning run");
  cli.add_int("components", components, "number of circuit components");
  cli.add_int("wires", wires, "total wire count");
  cli.add_int("iterations", iterations, "QBP iterations (STEP 8 budget)");
  cli.add_int("seed", seed, "random seed");
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", cli.error().c_str(), cli.usage().c_str());
    return 1;
  }
  if (cli.help_requested()) {
    std::printf("%s", cli.usage().c_str());
    return 0;
  }

  // 1. A synthetic circuit: components with sizes spanning ~2 orders of
  //    magnitude, locality-biased wires, and a hidden feasible placement.
  qbp::RandomNetlistSpec spec;
  spec.name = "quickstart";
  spec.num_components = static_cast<std::int32_t>(components);
  spec.total_wires = wires;
  spec.num_slots = 4;
  spec.grid_width = 2;
  spec.seed = static_cast<std::uint64_t>(seed);
  qbp::GeneratedNetlist generated = qbp::generate_netlist(spec);

  // 2. Partition topology: 2 x 2 grid, Manhattan wire cost and delay.
  qbp::PartitionTopology topology =
      qbp::PartitionTopology::grid(2, 2, qbp::CostKind::kManhattan);
  {
    std::vector<double> usage(4, 0.0);
    for (std::int32_t j = 0; j < spec.num_components; ++j) {
      usage[generated.hidden_slot[j]] += generated.netlist.component_size(j);
    }
    for (qbp::PartitionId i = 0; i < 4; ++i) {
      topology.set_capacity(i, usage[i] * 1.25);
    }
  }

  // 3. Timing constraints on the most critical quarter of the connections.
  qbp::TimingSpec timing_spec;
  timing_spec.target_count = generated.netlist.num_connected_pairs() / 4;
  timing_spec.seed = spec.seed;
  qbp::TimingConstraints timing = qbp::generate_timing_constraints(
      generated.netlist, generated.hidden_slot, topology, timing_spec);

  // 4. The problem PP(alpha=1, beta=1) with no linear term.
  qbp::PartitionProblem problem(std::move(generated.netlist),
                                std::move(topology), std::move(timing));
  if (const auto message = problem.validate(); !message.empty()) {
    std::fprintf(stderr, "invalid problem: %s\n", message.c_str());
    return 1;
  }

  // 5. Start from the paper's initializer (QBP with B = 0) and solve.
  const qbp::InitialResult initial = qbp::make_initial(
      problem, qbp::InitialStrategy::kQbpZeroWireCost, spec.seed);
  std::printf("circuit: %d components, %lld wires, %lld timing constraints\n",
              problem.num_components(),
              static_cast<long long>(problem.netlist().total_wires()),
              static_cast<long long>(problem.timing().count()));
  std::printf("initial: wirelength %.0f, feasible: %s\n",
              problem.wirelength(initial.assignment),
              initial.feasible ? "yes" : "no");

  qbp::BurkardOptions options;
  options.iterations = static_cast<std::int32_t>(iterations);
  const qbp::BurkardResult result =
      qbp::solve_qbp(problem, initial.assignment, options);

  if (result.found_feasible) {
    const double final_cost = problem.wirelength(result.best_feasible);
    std::printf("QBP (%d iterations, %.2f s): wirelength %.0f (%.1f%% better)\n",
                result.iterations_run, result.seconds, final_cost,
                (problem.wirelength(initial.assignment) - final_cost) /
                    problem.wirelength(initial.assignment) * 100.0);
    std::printf("capacity ok: %s, timing ok: %s\n",
                problem.satisfies_capacity(result.best_feasible) ? "yes" : "no",
                problem.satisfies_timing(result.best_feasible) ? "yes" : "no");
  } else {
    std::printf("QBP found no fully feasible solution in %d iterations "
                "(best penalized value %.1f)\n",
                result.iterations_run, result.best_penalized);
    return 2;
  }
  return 0;
}
