// Fuzz target for the canonical instance fingerprint (core/fingerprint.hpp)
// -- the cache key of warm-start serving.  A fingerprint that drifts across
// equivalent spellings of one instance silently turns cache hits into
// misses; one that collides across *different* instances would serve a
// wrong cached answer.  This target attacks the first failure mode:
//
// Properties checked on every accepted .qp input:
//   * serializer round-trip: write_problem -> read_problem yields the same
//     fingerprint (the daemon fingerprints what it parsed, so a formatting
//     change between producer and consumer must not change the key);
//   * duplicate-wire normalization: rebuilding the netlist with every
//     bundle's wires re-emitted in reverse order and split as
//     (multiplicity - 1) + 1 yields the same fingerprint -- the hash reads
//     the merged connection matrix, not the submission order;
//   * self-consistency: fingerprinting twice yields identical bits (no
//     hidden state in the streaming hasher).
//
// Build modes (fuzz/CMakeLists.txt): libFuzzer under QBPART_SANITIZE=fuzzer,
// a corpus-replay main otherwise (also registered as a ctest regression
// test over fuzz/corpus/fingerprint/).
#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "core/fingerprint.hpp"
#include "core/problem_io.hpp"
#include "netlist/netlist.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  qbp::PartitionProblem problem;
  {
    std::istringstream in(text);
    if (const auto parsed = qbp::read_problem(in, problem); !parsed.ok) {
      return 0;  // rejected with a message: the expected hostile-input path
    }
  }

  const qbp::Hash128 fingerprint = qbp::problem_fingerprint(problem);
  if (!(qbp::problem_fingerprint(problem) == fingerprint)) {
    std::abort();  // fingerprinting must be a pure function of the problem
  }

  {
    std::ostringstream serialized;
    qbp::write_problem(serialized, problem);
    qbp::PartitionProblem reparsed;
    std::istringstream in(serialized.str());
    if (const auto parsed = qbp::read_problem(in, reparsed); !parsed.ok) {
      std::abort();  // an accepted problem must serialize to parseable text
    }
    if (!(qbp::problem_fingerprint(reparsed) == fingerprint)) {
      std::abort();  // round-trip through .qp text changed the cache key
    }
  }

  // Re-spell the wire list: collect the canonical merged bundles, then
  // rebuild the netlist emitting them in reverse order with each bundle of
  // multiplicity m split into (m - 1) + 1.  The connection matrix -- and
  // therefore the fingerprint -- must not notice.
  {
    const std::int32_t n = problem.num_components();
    const auto& connections = problem.netlist().connection_matrix();
    std::vector<qbp::WireBundle> bundles;
    for (std::int32_t a = 0; a < n; ++a) {
      const auto neighbors = connections.row_indices(a);
      const auto weights = connections.row_values(a);
      for (std::size_t k = 0; k < neighbors.size(); ++k) {
        if (neighbors[k] <= a) continue;
        bundles.push_back({a, neighbors[k], weights[k]});
      }
    }

    qbp::Netlist respelled("respelled");  // names are not fingerprinted
    for (std::int32_t j = 0; j < n; ++j) {
      respelled.add_component(problem.netlist().component(j).name,
                              problem.netlist().component(j).size);
    }
    for (auto it = bundles.rbegin(); it != bundles.rend(); ++it) {
      if (it->multiplicity > 1) {
        respelled.add_wires(it->b, it->a, it->multiplicity - 1);
        respelled.add_wires(it->a, it->b, 1);
      } else {
        respelled.add_wires(it->b, it->a, it->multiplicity);
      }
    }
    const qbp::PartitionProblem equivalent(
        std::move(respelled), problem.topology(), problem.timing(),
        problem.linear_cost_matrix(), problem.alpha(), problem.beta());
    if (!(qbp::problem_fingerprint(equivalent) == fingerprint)) {
      std::abort();  // wire-order/split normalization leaked into the key
    }
  }
  return 0;
}
