// Fuzz target for the hand-rolled strict JSON parser (util/json.hpp) -- the
// first code that touches every byte a qbpartd client sends.
//
// Properties checked on every input:
//   * json::parse never crashes on arbitrary bytes (depth cap, number
//     parsing, escape handling);
//   * accepted documents are dump/parse idempotent: dump() reparses, and
//     dumping the reparse reproduces the same bytes (canonical form is a
//     fixed point).
#include <cstdint>
#include <cstdlib>
#include <string>

#include "util/json.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  qbp::json::Value value;
  if (const auto parsed = qbp::json::parse(text, value); !parsed.ok) {
    return 0;  // rejected with a message: fine
  }

  const std::string canonical = value.dump();
  qbp::json::Value reparsed;
  if (const auto again = qbp::json::parse(canonical, reparsed); !again.ok) {
    std::abort();  // dump() produced text our own parser rejects
  }
  if (reparsed.dump() != canonical) {
    std::abort();  // canonical form is not a fixed point
  }
  return 0;
}
