// Fuzz target for the .qp problem parser (core/problem_io.hpp) -- the
// service boundary that qbpartd feeds with untrusted bytes.
//
// Properties checked on every input:
//   * read_problem never crashes, never overflows, never aborts -- hostile
//     bytes must come back as a descriptive ParseResult (the contract
//     framework's construction-boundary checks fire as ContractViolation
//     here, which would surface as an uncaught-exception crash);
//   * accepted problems round-trip: write_problem output reparses cleanly
//     to a problem with the same shape (serializer/parser stay in sync).
//
// Build modes (fuzz/CMakeLists.txt): libFuzzer under QBPART_SANITIZE=fuzzer,
// a corpus-replay main otherwise (also registered as a ctest regression
// test over fuzz/corpus/problem_io/).
#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <string>

#include "core/problem_io.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  qbp::PartitionProblem problem;
  {
    std::istringstream in(text);
    if (const auto parsed = qbp::read_problem(in, problem); !parsed.ok) {
      return 0;  // rejected with a message: the expected hostile-input path
    }
  }

  std::ostringstream serialized;
  qbp::write_problem(serialized, problem);

  qbp::PartitionProblem reparsed;
  std::istringstream in(serialized.str());
  if (const auto parsed = qbp::read_problem(in, reparsed); !parsed.ok) {
    std::abort();  // an accepted problem must serialize to parseable text
  }
  if (reparsed.num_components() != problem.num_components() ||
      reparsed.num_partitions() != problem.num_partitions() ||
      reparsed.netlist().total_wires() != problem.netlist().total_wires()) {
    std::abort();  // round-trip changed the problem's shape
  }
  return 0;
}
