// Fuzz target for the binary wire protocol (util/wire + service/wire) --
// the bytes a hostile client can push at a qbpartd socket.  The daemon's
// survival contract is that frame decoding NEVER aborts: malformed input
// must surface as a false return with a message (the serve loop answers
// with an error frame and fails only that connection).
//
// Properties checked on every input:
//   * peek_frame never crashes, and its verdict is internally consistent
//     (kFrame implies the advertised frame fits the input; consuming the
//     frame and re-peeking the remainder also never crashes);
//   * every message decoder (submit, cancel, result, note) returns cleanly
//     on arbitrary payload bytes -- no aborts, no exceptions;
//   * canonical fixed point: when a payload DOES decode, re-encoding the
//     decoded struct and decoding that again must succeed and re-encode to
//     the identical bytes.  One encode round normalizes (e.g. a submit
//     carrying unsorted bundle text becomes a canonical struct); the
//     second round must be a fixed point, or two servers would disagree
//     about one request's cache fingerprint.
//
// Build modes (fuzz/CMakeLists.txt): libFuzzer under QBPART_SANITIZE=fuzzer,
// a corpus-replay main otherwise (also registered as a ctest regression
// test over fuzz/corpus/wire/).
#include <cstdint>
#include <cstdlib>
#include <string>
#include <string_view>

#include "service/protocol.hpp"
#include "service/wire.hpp"
#include "util/wire.hpp"

namespace {

using qbp::service::JobResult;
using qbp::service::Request;
using qbp::service::WireMsg;

/// Re-encode a decoded request/response as a full frame; empty when the
/// type has no encoder (unknown type bytes decode nowhere).
std::string reencode(std::uint8_t type, std::string_view payload) {
  std::string error;
  std::string out;
  switch (static_cast<WireMsg>(type)) {
    case WireMsg::kSubmit: {
      Request request;
      if (qbp::service::decode_submit(payload, request, error)) {
        qbp::service::encode_request_frame(request, out);
      }
      break;
    }
    case WireMsg::kCancel: {
      Request request;
      if (qbp::service::decode_cancel(payload, request, error)) {
        qbp::service::encode_request_frame(request, out);
      }
      break;
    }
    case WireMsg::kResult: {
      JobResult result;
      if (qbp::service::decode_result(payload, result, error)) {
        qbp::service::encode_result_frame(result, out);
      }
      break;
    }
    case WireMsg::kReject:
    case WireMsg::kError:
    case WireMsg::kCancelAck:
    case WireMsg::kShutdownAck:
    case WireMsg::kStatsReply: {
      std::string id;
      std::string text;
      if (!qbp::service::decode_note(payload, id, text, error)) break;
      switch (static_cast<WireMsg>(type)) {
        case WireMsg::kReject:
          qbp::service::encode_reject_frame(id, text, out);
          break;
        case WireMsg::kError:
          qbp::service::encode_error_frame(text, out);
          break;
        case WireMsg::kCancelAck:
          qbp::service::encode_cancel_ack_frame(id, text, out);
          break;
        case WireMsg::kShutdownAck:
          qbp::service::encode_shutdown_ack_frame(text, out);
          break;
        default:
          qbp::service::encode_stats_reply_frame(text, out);
          break;
      }
      break;
    }
    default:
      break;  // kStats / kShutdown carry ids only; unknown types no-op
  }
  return out;
}

void check_frame(std::uint8_t type, std::string_view payload) {
  const std::string first = reencode(type, payload);
  if (first.empty()) return;  // payload rejected: the expected hostile path

  // The re-encoded frame must itself parse, and re-encoding THAT must be a
  // byte-for-byte fixed point (canonical form reached in one round).
  qbp::wire::FrameView frame;
  std::string error;
  if (qbp::wire::peek_frame(first, frame, error) !=
          qbp::wire::FrameStatus::kFrame ||
      frame.frame_size != first.size()) {
    std::abort();  // encoder emitted an unparseable or ragged frame
  }
  const std::string second = reencode(frame.type, frame.payload);
  if (second != first) {
    std::abort();  // decode -> encode failed to reach a fixed point
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view bytes(reinterpret_cast<const char*>(data), size);

  // Walk the input as a frame stream, exactly like the serve loop's
  // FrameBuffer drain: peek, dispatch, consume, repeat.
  std::string_view rest = bytes;
  for (;;) {
    qbp::wire::FrameView frame;
    std::string error;
    const auto status = qbp::wire::peek_frame(rest, frame, error);
    if (status == qbp::wire::FrameStatus::kIncomplete) break;
    if (status == qbp::wire::FrameStatus::kBad) {
      if (error.empty()) std::abort();  // kBad must explain itself
      break;
    }
    if (frame.frame_size > rest.size()) {
      std::abort();  // kFrame promised bytes the buffer does not hold
    }
    check_frame(frame.type, frame.payload);
    rest.remove_prefix(frame.frame_size);
  }

  // Also attack the message decoders directly: the raw input as payload
  // bytes for every known type, bypassing the framing layer.
  for (const auto type :
       {WireMsg::kSubmit, WireMsg::kCancel, WireMsg::kResult, WireMsg::kReject,
        WireMsg::kError, WireMsg::kCancelAck, WireMsg::kShutdownAck,
        WireMsg::kStatsReply}) {
    check_frame(static_cast<std::uint8_t>(type), bytes);
  }
  return 0;
}
