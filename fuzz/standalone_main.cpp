// Replay driver for builds without libFuzzer (GCC, or QBPART_SANITIZE !=
// fuzzer): runs every file named on the command line through the target's
// LLVMFuzzerTestOneInput once.  This keeps the fuzz targets compiling in
// every configuration and doubles as the ctest corpus-regression runner --
// checked-in crash reproducers must stay fixed forever.
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

int main(int argc, char** argv) {
  int replayed = 0;
  for (int k = 1; k < argc; ++k) {
    std::ifstream in(argv[k], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot open '%s'\n", argv[k]);
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string bytes = buffer.str();
    LLVMFuzzerTestOneInput(reinterpret_cast<const std::uint8_t*>(bytes.data()),
                           bytes.size());
    ++replayed;
  }
  std::printf("replayed %d input(s)\n", replayed);
  return 0;
}
