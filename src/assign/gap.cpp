#include "assign/gap.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "util/check.hpp"

namespace qbp {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kEps = 1e-12;
constexpr double kCapTolerance = 1e-9;

struct BestPair {
  std::int32_t best_agent = -1;
  double best_cost = kInf;
  double second_cost = kInf;

  /// Regret key: how much is lost if the best agent fills up.  Items with a
  /// single feasible agent get top priority.
  [[nodiscard]] double regret() const noexcept {
    if (best_agent < 0) return -kInf;  // nothing feasible; handled separately
    if (second_cost == kInf) return 1e18;
    return second_cost - best_cost;
  }
};

BestPair best_agents(const GapProblem& problem, std::span<const double> slack,
                     std::int32_t item) {
  BestPair best;
  const std::int32_t m = problem.cost.rows();
  const double size = problem.sizes[static_cast<std::size_t>(item)];
  for (std::int32_t i = 0; i < m; ++i) {
    if (slack[static_cast<std::size_t>(i)] + kCapTolerance < size) continue;
    const double c = problem.cost(i, item);
    if (c < best.best_cost ||
        (c == best.best_cost && best.best_agent >= 0 && i < best.best_agent)) {
      best.second_cost = best.best_cost;
      best.best_cost = c;
      best.best_agent = i;
    } else if (c < best.second_cost) {
      best.second_cost = c;
    }
  }
  return best;
}

}  // namespace

double gap_cost(const GapProblem& problem,
                std::span<const std::int32_t> agent_of_item) {
  double total = 0.0;
  for (std::size_t j = 0; j < agent_of_item.size(); ++j) {
    total += problem.cost(agent_of_item[j], static_cast<std::int32_t>(j));
  }
  return total;
}

bool gap_feasible(const GapProblem& problem,
                  std::span<const std::int32_t> agent_of_item) {
  std::vector<double> usage(problem.capacities.size(), 0.0);
  for (std::size_t j = 0; j < agent_of_item.size(); ++j) {
    usage[static_cast<std::size_t>(agent_of_item[j])] += problem.sizes[j];
  }
  for (std::size_t i = 0; i < usage.size(); ++i) {
    if (usage[i] > problem.capacities[i] + kCapTolerance) return false;
  }
  return true;
}

double gap_lower_bound(const GapProblem& problem, std::int32_t iterations) {
  const std::int32_t m = problem.cost.rows();
  const std::int32_t n = problem.cost.cols();
  std::vector<double> lambda(static_cast<std::size_t>(m), 0.0);
  std::vector<double> usage(static_cast<std::size_t>(m), 0.0);
  double best_bound = -kInf;

  // Step size normalization: scale by the cost range so the schedule is
  // instance-independent.
  double cost_span = 0.0;
  for (std::int32_t i = 0; i < m; ++i) {
    for (std::int32_t j = 0; j < n; ++j) {
      cost_span = std::max(cost_span, std::abs(problem.cost(i, j)));
    }
  }
  if (cost_span == 0.0) cost_span = 1.0;

  for (std::int32_t k = 0; k < iterations; ++k) {
    // Evaluate L(lambda): each item independently picks its cheapest agent
    // under the penalized costs.
    std::fill(usage.begin(), usage.end(), 0.0);
    double value = 0.0;
    for (std::int32_t j = 0; j < n; ++j) {
      std::int32_t best_agent = 0;
      double best_cost = kInf;
      for (std::int32_t i = 0; i < m; ++i) {
        const double c = problem.cost(i, j) +
                         lambda[static_cast<std::size_t>(i)] *
                             problem.sizes[static_cast<std::size_t>(j)];
        if (c < best_cost) {
          best_cost = c;
          best_agent = i;
        }
      }
      value += best_cost;
      usage[static_cast<std::size_t>(best_agent)] +=
          problem.sizes[static_cast<std::size_t>(j)];
    }
    for (std::int32_t i = 0; i < m; ++i) {
      value -= lambda[static_cast<std::size_t>(i)] *
               problem.capacities[static_cast<std::size_t>(i)];
    }
    best_bound = std::max(best_bound, value);

    // Projected subgradient step on g_i = usage_i - capacity_i.
    const double step = 0.1 * cost_span / (1.0 + static_cast<double>(k));
    for (std::int32_t i = 0; i < m; ++i) {
      const double gradient = usage[static_cast<std::size_t>(i)] -
                              problem.capacities[static_cast<std::size_t>(i)];
      lambda[static_cast<std::size_t>(i)] =
          std::max(0.0, lambda[static_cast<std::size_t>(i)] + step * gradient);
    }
  }
  return best_bound;
}

GapResult solve_gap(const GapProblem& problem, const GapOptions& options) {
  const std::int32_t m = problem.cost.rows();
  const std::int32_t n = problem.cost.cols();
  QBP_CHECK_EQ(static_cast<std::size_t>(n), problem.sizes.size());
  QBP_CHECK_EQ(static_cast<std::size_t>(m), problem.capacities.size());

  GapResult result;
  result.agent_of_item.assign(static_cast<std::size_t>(n), -1);
  std::vector<double> slack(problem.capacities.begin(), problem.capacities.end());

  // ---- Phase 1: max-regret construction (lazy priority queue). ----
  struct HeapEntry {
    double regret;
    std::int32_t item;
    bool operator<(const HeapEntry& other) const noexcept {
      // max-heap on regret; deterministic tie-break on the smaller item id.
      if (regret != other.regret) return regret < other.regret;
      return item > other.item;
    }
  };
  std::priority_queue<HeapEntry> heap;
  std::vector<std::int32_t> hopeless;  // no feasible agent right now
  for (std::int32_t j = 0; j < n; ++j) {
    const BestPair best = best_agents(problem, slack, j);
    if (best.best_agent < 0) {
      hopeless.push_back(j);
    } else {
      heap.push({best.regret(), j});
    }
  }

  const auto assign = [&](std::int32_t item, std::int32_t agent) {
    result.agent_of_item[static_cast<std::size_t>(item)] = agent;
    slack[static_cast<std::size_t>(agent)] -=
        problem.sizes[static_cast<std::size_t>(item)];
  };

  while (!heap.empty()) {
    const HeapEntry entry = heap.top();
    heap.pop();
    const std::int32_t j = entry.item;
    if (result.agent_of_item[static_cast<std::size_t>(j)] >= 0) continue;
    // Capacities may have changed since this key was computed: refresh.
    const BestPair best = best_agents(problem, slack, j);
    if (best.best_agent < 0) {
      hopeless.push_back(j);
      continue;
    }
    const double fresh = best.regret();
    if (!heap.empty() && fresh + kEps < heap.top().regret) {
      heap.push({fresh, j});  // someone else is more urgent now
      continue;
    }
    assign(j, best.best_agent);
  }

  // Items with no capacity-feasible agent go to the agent with the most
  // slack (cheapest such agent on ties); repair sorts it out below.
  result.construction_failures = static_cast<std::int32_t>(hopeless.size());
  for (const std::int32_t j : hopeless) {
    std::int32_t chosen = 0;
    for (std::int32_t i = 1; i < m; ++i) {
      const double si = slack[static_cast<std::size_t>(i)];
      const double sc = slack[static_cast<std::size_t>(chosen)];
      if (si > sc + kEps ||
          (std::abs(si - sc) <= kEps && problem.cost(i, j) < problem.cost(chosen, j))) {
        chosen = i;
      }
    }
    assign(j, chosen);
  }

  // ---- Phase 2: capacity repair. ----
  const std::int64_t repair_budget =
      options.max_repair_moves >= 0 ? options.max_repair_moves
                                    : 8 * static_cast<std::int64_t>(n);
  while (result.repair_moves < repair_budget) {
    // Most-overflowing agent.
    std::int32_t worst = -1;
    double worst_overflow = kCapTolerance;
    for (std::int32_t i = 0; i < m; ++i) {
      const double overflow = -slack[static_cast<std::size_t>(i)];
      if (overflow > worst_overflow) {
        worst_overflow = overflow;
        worst = i;
      }
    }
    if (worst < 0) break;  // feasible

    // Cheapest move (cost delta per unit size) out of `worst` into an agent
    // with room; if no fitting target exists, fall back to the move that
    // reduces total overflow the most.
    std::int32_t move_item = -1;
    std::int32_t move_target = -1;
    double move_score = kInf;
    std::int32_t fallback_item = -1;
    std::int32_t fallback_target = -1;
    double fallback_slack = -kInf;
    for (std::int32_t j = 0; j < n; ++j) {
      if (result.agent_of_item[static_cast<std::size_t>(j)] != worst) continue;
      const double size = problem.sizes[static_cast<std::size_t>(j)];
      for (std::int32_t i = 0; i < m; ++i) {
        if (i == worst) continue;
        const double target_slack = slack[static_cast<std::size_t>(i)];
        if (target_slack + kCapTolerance >= size) {
          const double delta = problem.cost(i, j) - problem.cost(worst, j);
          const double score = delta / size;
          if (score < move_score) {
            move_score = score;
            move_item = j;
            move_target = i;
          }
        } else if (target_slack > fallback_slack) {
          fallback_slack = target_slack;
          fallback_item = j;
          fallback_target = i;
        }
      }
    }
    if (move_item < 0) {
      if (fallback_item < 0) break;  // agent has no items or no other agent
      move_item = fallback_item;
      move_target = fallback_target;
    }
    const double size = problem.sizes[static_cast<std::size_t>(move_item)];
    slack[static_cast<std::size_t>(worst)] += size;
    slack[static_cast<std::size_t>(move_target)] -= size;
    result.agent_of_item[static_cast<std::size_t>(move_item)] = move_target;
    ++result.repair_moves;
  }

  // ---- Phase 3: local improvement. ----
  for (int pass = 0; pass < options.improvement_passes; ++pass) {
    bool improved = false;
    for (std::int32_t j = 0; j < n; ++j) {
      const std::int32_t from = result.agent_of_item[static_cast<std::size_t>(j)];
      const double size = problem.sizes[static_cast<std::size_t>(j)];
      std::int32_t best_to = -1;
      double best_delta = -kEps;
      for (std::int32_t i = 0; i < m; ++i) {
        if (i == from) continue;
        if (slack[static_cast<std::size_t>(i)] + kCapTolerance < size) continue;
        const double delta = problem.cost(i, j) - problem.cost(from, j);
        if (delta < best_delta) {
          best_delta = delta;
          best_to = i;
        }
      }
      if (best_to >= 0) {
        slack[static_cast<std::size_t>(from)] += size;
        slack[static_cast<std::size_t>(best_to)] -= size;
        result.agent_of_item[static_cast<std::size_t>(j)] = best_to;
        improved = true;
      }
    }
    if (options.swap_improvement) {
      for (std::int32_t j1 = 0; j1 < n; ++j1) {
        for (std::int32_t j2 = j1 + 1; j2 < n; ++j2) {
          const std::int32_t a1 = result.agent_of_item[static_cast<std::size_t>(j1)];
          const std::int32_t a2 = result.agent_of_item[static_cast<std::size_t>(j2)];
          if (a1 == a2) continue;
          const double s1 = problem.sizes[static_cast<std::size_t>(j1)];
          const double s2 = problem.sizes[static_cast<std::size_t>(j2)];
          if (slack[static_cast<std::size_t>(a1)] + s1 + kCapTolerance < s2) continue;
          if (slack[static_cast<std::size_t>(a2)] + s2 + kCapTolerance < s1) continue;
          const double delta = problem.cost(a2, j1) + problem.cost(a1, j2) -
                               problem.cost(a1, j1) - problem.cost(a2, j2);
          if (delta < -kEps) {
            slack[static_cast<std::size_t>(a1)] += s1 - s2;
            slack[static_cast<std::size_t>(a2)] += s2 - s1;
            result.agent_of_item[static_cast<std::size_t>(j1)] = a2;
            result.agent_of_item[static_cast<std::size_t>(j2)] = a1;
            improved = true;
          }
        }
      }
    }
    if (!improved) break;
  }

  result.cost = gap_cost(problem, result.agent_of_item);
  result.feasible = gap_feasible(problem, result.agent_of_item);
  return result;
}

}  // namespace qbp
