#include "assign/gap.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "util/check.hpp"
#include "util/parallel.hpp"
#include "util/prof.hpp"
#include "util/simd.hpp"

namespace qbp {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kEps = 1e-12;
constexpr double kCapTolerance = 1e-9;

/// Chunk grains for the parallel scans.  Pure layout constants (never a
/// function of the thread count): items whose inner work is O(M) chunk at
/// 128, the O(1)-per-item swap predicate at 512.  Ranges that fit in one
/// chunk run inline, so small instances never pay pool overhead.
constexpr std::int64_t kItemGrain = 128;
constexpr std::int64_t kSwapGrain = 512;

/// Column-major cost view: item j's M agent costs are contiguous at
/// [j*M, (j+1)*M).  Every phase of the heuristic scans per-item agent costs,
/// so this is the cache-friendly orientation; the Burkard flat vectors are
/// already in this layout and bind zero-copy.
struct ColCost {
  const double* data = nullptr;
  std::int32_t m = 0;

  [[nodiscard]] const double* col(std::int32_t item) const noexcept {
    return data + static_cast<std::size_t>(item) * static_cast<std::size_t>(m);
  }
  [[nodiscard]] double at(std::int32_t agent, std::int32_t item) const noexcept {
    return col(item)[agent];
  }
};

struct BestPair {
  std::int32_t best_agent = -1;
  double best_cost = kInf;
  double second_cost = kInf;

  /// Regret key: how much is lost if the best agent fills up.  Items with a
  /// single feasible agent get top priority.
  [[nodiscard]] double regret() const noexcept {
    if (best_agent < 0) return -kInf;  // nothing feasible; handled separately
    if (second_cost == kInf) return 1e18;
    return second_cost - best_cost;
  }
};

/// Batched Martello-Toth profit evaluation for one item: a single contiguous
/// scan over its M-entry cost column yields best and second-best feasible
/// agents.
BestPair best_agents(const ColCost& cost, std::span<const double> sizes,
                     std::span<const double> slack, std::int32_t item) {
  BestPair best;
  const double* column = cost.col(item);
  const double size = sizes[static_cast<std::size_t>(item)];
  for (std::int32_t i = 0; i < cost.m; ++i) {
    if (slack[static_cast<std::size_t>(i)] + kCapTolerance < size) continue;
    const double c = column[i];
    if (c < best.best_cost ||
        (c == best.best_cost && best.best_agent >= 0 && i < best.best_agent)) {
      best.second_cost = best.best_cost;
      best.best_cost = c;
      best.best_agent = i;
    } else if (c < best.second_cost) {
      best.second_cost = c;
    }
  }
  return best;
}

}  // namespace

double gap_cost(const GapProblem& problem,
                std::span<const std::int32_t> agent_of_item) {
  double total = 0.0;
  for (std::size_t j = 0; j < agent_of_item.size(); ++j) {
    total += problem.cost_at(agent_of_item[j], static_cast<std::int32_t>(j));
  }
  return total;
}

bool gap_feasible(const GapProblem& problem,
                  std::span<const std::int32_t> agent_of_item) {
  std::vector<double> usage(problem.capacities.size(), 0.0);
  for (std::size_t j = 0; j < agent_of_item.size(); ++j) {
    usage[static_cast<std::size_t>(agent_of_item[j])] += problem.sizes[j];
  }
  for (std::size_t i = 0; i < usage.size(); ++i) {
    if (usage[i] > problem.capacities[i] + kCapTolerance) return false;
  }
  return true;
}

double gap_lower_bound(const GapProblem& problem, std::int32_t iterations) {
  const std::int32_t m = problem.num_agents();
  const std::int32_t n = problem.num_items();
  std::vector<double> lambda(static_cast<std::size_t>(m), 0.0);
  std::vector<double> usage(static_cast<std::size_t>(m), 0.0);
  double best_bound = -kInf;

  // Step size normalization: scale by the cost range so the schedule is
  // instance-independent.
  double cost_span = 0.0;
  for (std::int32_t i = 0; i < m; ++i) {
    for (std::int32_t j = 0; j < n; ++j) {
      cost_span = std::max(cost_span, std::abs(problem.cost_at(i, j)));
    }
  }
  if (cost_span == 0.0) cost_span = 1.0;

  for (std::int32_t k = 0; k < iterations; ++k) {
    // Evaluate L(lambda): each item independently picks its cheapest agent
    // under the penalized costs.
    std::fill(usage.begin(), usage.end(), 0.0);
    double value = 0.0;
    for (std::int32_t j = 0; j < n; ++j) {
      std::int32_t best_agent = 0;
      double best_cost = kInf;
      for (std::int32_t i = 0; i < m; ++i) {
        const double c = problem.cost_at(i, j) +
                         lambda[static_cast<std::size_t>(i)] *
                             problem.sizes[static_cast<std::size_t>(j)];
        if (c < best_cost) {
          best_cost = c;
          best_agent = i;
        }
      }
      value += best_cost;
      usage[static_cast<std::size_t>(best_agent)] +=
          problem.sizes[static_cast<std::size_t>(j)];
    }
    for (std::int32_t i = 0; i < m; ++i) {
      value -= lambda[static_cast<std::size_t>(i)] *
               problem.capacities[static_cast<std::size_t>(i)];
    }
    best_bound = std::max(best_bound, value);

    // Projected subgradient step on g_i = usage_i - capacity_i.
    const double step = 0.1 * cost_span / (1.0 + static_cast<double>(k));
    for (std::int32_t i = 0; i < m; ++i) {
      const double gradient = usage[static_cast<std::size_t>(i)] -
                              problem.capacities[static_cast<std::size_t>(i)];
      lambda[static_cast<std::size_t>(i)] =
          std::max(0.0, lambda[static_cast<std::size_t>(i)] + step * gradient);
    }
  }
  return best_bound;
}

GapResult solve_gap(const GapProblem& problem, const GapOptions& options) {
  const std::int32_t m = problem.num_agents();
  const std::int32_t n = problem.num_items();
  QBP_CHECK_EQ(static_cast<std::size_t>(n), problem.sizes.size());
  QBP_CHECK_EQ(static_cast<std::size_t>(m), problem.capacities.size());

  // Bind the column-major view; Matrix callers pay one transpose copy here,
  // flat callers (the Burkard inner loop) bind zero-copy.
  std::vector<double> transposed;
  ColCost cost{problem.cost_flat.data(), m};
  if (problem.cost_flat.empty()) {
    transposed.resize(static_cast<std::size_t>(m) * static_cast<std::size_t>(n));
    for (std::int32_t j = 0; j < n; ++j) {
      for (std::int32_t i = 0; i < m; ++i) {
        transposed[static_cast<std::size_t>(j) * static_cast<std::size_t>(m) +
                   static_cast<std::size_t>(i)] = problem.cost(i, j);
      }
    }
    cost.data = transposed.data();
  }
  const std::span<const double> sizes(problem.sizes);

  GapResult result;
  result.agent_of_item.assign(static_cast<std::size_t>(n), -1);
  std::vector<double> slack(problem.capacities.begin(), problem.capacities.end());

  // ---- Phase 1: max-regret construction (lazy priority queue). ----
  QBP_PROF_SCOPE("gap.solve");
  {
    QBP_PROF_SCOPE("gap.construct");
    struct HeapEntry {
      double regret;
      std::int32_t item;
      bool operator<(const HeapEntry& other) const noexcept {
        // max-heap on regret; deterministic tie-break on the smaller item id.
        if (regret != other.regret) return regret < other.regret;
        return item > other.item;
      }
    };
    std::priority_queue<HeapEntry> heap;
    std::vector<std::int32_t> hopeless;  // no feasible agent right now
    // The initial best-pair batch reads only the pristine slack vector, so
    // the per-item scans run in parallel into per-item slots; the heap is
    // then filled sequentially in item order, giving the identical heap.
    std::vector<BestPair> initial(static_cast<std::size_t>(n));
    par::parallel_for(n, kItemGrain, options.threads,
                      [&](std::int64_t begin, std::int64_t end, std::int32_t) {
                        for (std::int64_t j = begin; j < end; ++j) {
                          initial[static_cast<std::size_t>(j)] = best_agents(
                              cost, sizes, slack, static_cast<std::int32_t>(j));
                        }
                      });
    for (std::int32_t j = 0; j < n; ++j) {
      const BestPair& best = initial[static_cast<std::size_t>(j)];
      if (best.best_agent < 0) {
        hopeless.push_back(j);
      } else {
        heap.push({best.regret(), j});
      }
    }

    const auto assign = [&](std::int32_t item, std::int32_t agent) {
      result.agent_of_item[static_cast<std::size_t>(item)] = agent;
      slack[static_cast<std::size_t>(agent)] -=
          problem.sizes[static_cast<std::size_t>(item)];
    };

    while (!heap.empty()) {
      const HeapEntry entry = heap.top();
      heap.pop();
      const std::int32_t j = entry.item;
      if (result.agent_of_item[static_cast<std::size_t>(j)] >= 0) continue;
      // Capacities may have changed since this key was computed: refresh.
      const BestPair best = best_agents(cost, sizes, slack, j);
      if (best.best_agent < 0) {
        hopeless.push_back(j);
        continue;
      }
      const double fresh = best.regret();
      if (!heap.empty() && fresh + kEps < heap.top().regret) {
        heap.push({fresh, j});  // someone else is more urgent now
        continue;
      }
      assign(j, best.best_agent);
    }

    // Items with no capacity-feasible agent go to the agent with the most
    // slack (cheapest such agent on ties); repair sorts it out below.
    result.construction_failures = static_cast<std::int32_t>(hopeless.size());
    for (const std::int32_t j : hopeless) {
      const double* column = cost.col(j);
      std::int32_t chosen = 0;
      for (std::int32_t i = 1; i < m; ++i) {
        const double si = slack[static_cast<std::size_t>(i)];
        const double sc = slack[static_cast<std::size_t>(chosen)];
        if (si > sc + kEps ||
            (std::abs(si - sc) <= kEps && column[i] < column[chosen])) {
          chosen = i;
        }
      }
      assign(j, chosen);
    }
  }

  // ---- Phase 2: capacity repair. ----
  const std::int64_t repair_budget =
      options.max_repair_moves >= 0 ? options.max_repair_moves
                                    : 8 * static_cast<std::int64_t>(n);
  while (result.repair_moves < repair_budget) {
    QBP_PROF_SCOPE("gap.repair");
    // Most-overflowing agent.
    std::int32_t worst = -1;
    double worst_overflow = kCapTolerance;
    for (std::int32_t i = 0; i < m; ++i) {
      const double overflow = -slack[static_cast<std::size_t>(i)];
      if (overflow > worst_overflow) {
        worst_overflow = overflow;
        worst = i;
      }
    }
    if (worst < 0) break;  // feasible

    // Cheapest move (cost delta per unit size) out of `worst` into an agent
    // with room; if no fitting target exists, fall back to the move that
    // reduces total overflow the most.  The whole scan reads state frozen
    // for this repair step, so it is a parallel reduction: one candidate
    // pair per chunk, folded in chunk order with the same strict
    // comparisons as the serial scan (earlier items win ties).
    struct RepairCand {
      std::int32_t move_item = -1;
      std::int32_t move_target = -1;
      double move_score = kInf;
      std::int32_t fallback_item = -1;
      std::int32_t fallback_target = -1;
      double fallback_slack = -kInf;
    };
    const RepairCand cand = par::parallel_reduce(
        n, kItemGrain, options.threads, RepairCand{},
        [&](std::int64_t begin, std::int64_t end) {
          RepairCand local;
          for (std::int64_t j64 = begin; j64 < end; ++j64) {
            const auto j = static_cast<std::int32_t>(j64);
            if (result.agent_of_item[static_cast<std::size_t>(j)] != worst)
              continue;
            const double size = problem.sizes[static_cast<std::size_t>(j)];
            const double* column = cost.col(j);
            for (std::int32_t i = 0; i < m; ++i) {
              if (i == worst) continue;
              const double target_slack = slack[static_cast<std::size_t>(i)];
              if (target_slack + kCapTolerance >= size) {
                const double delta = column[i] - column[worst];
                const double score = delta / size;
                if (score < local.move_score) {
                  local.move_score = score;
                  local.move_item = j;
                  local.move_target = i;
                }
              } else if (target_slack > local.fallback_slack) {
                local.fallback_slack = target_slack;
                local.fallback_item = j;
                local.fallback_target = i;
              }
            }
          }
          return local;
        },
        [](RepairCand acc, const RepairCand& part) {
          if (part.move_score < acc.move_score) {
            acc.move_score = part.move_score;
            acc.move_item = part.move_item;
            acc.move_target = part.move_target;
          }
          if (part.fallback_slack > acc.fallback_slack) {
            acc.fallback_slack = part.fallback_slack;
            acc.fallback_item = part.fallback_item;
            acc.fallback_target = part.fallback_target;
          }
          return acc;
        });
    std::int32_t move_item = cand.move_item;
    std::int32_t move_target = cand.move_target;
    if (move_item < 0) {
      if (cand.fallback_item < 0) break;  // agent has no items or no other agent
      move_item = cand.fallback_item;
      move_target = cand.fallback_target;
    }
    const double size = problem.sizes[static_cast<std::size_t>(move_item)];
    slack[static_cast<std::size_t>(worst)] += size;
    slack[static_cast<std::size_t>(move_target)] -= size;
    result.agent_of_item[static_cast<std::size_t>(move_item)] = move_target;
    ++result.repair_moves;
  }

  // ---- Phase 3: local improvement. ----
  // The swap pass visits every item pair, so its four cost reads dominate
  // the whole solve.  Two scratch arrays turn them into sequential streams:
  // a row-major transpose (cost(a1, j2) contiguous in j2 for the scan's
  // fixed a1) and the per-item assigned cost c(agent(j), j).  Values are
  // copies of the same doubles, so results are bit-identical.
  std::vector<double> row_major;
  std::vector<double> assigned_cost;
  std::vector<double> masked_column;
  if (options.swap_improvement) {
    row_major.resize(static_cast<std::size_t>(m) * static_cast<std::size_t>(n));
    for (std::int32_t j = 0; j < n; ++j) {
      const double* column = cost.col(j);
      for (std::int32_t i = 0; i < m; ++i) {
        row_major[static_cast<std::size_t>(i) * static_cast<std::size_t>(n) +
                  static_cast<std::size_t>(j)] = column[i];
      }
    }
    assigned_cost.resize(static_cast<std::size_t>(n));
    masked_column.resize(static_cast<std::size_t>(m));
  }
  // The two improvement scans are first-improvement loops: items that do
  // not commit have zero side effects, so "scan ascending, commit when a
  // predicate fires" is exactly "find the first item whose predicate holds
  // against the state frozen since the last commit, commit it, resume one
  // past it".  That restatement is what parallelizes: chunks evaluate the
  // pure predicate concurrently, the first hit (in index order) is taken,
  // and every commit stays on the calling thread in the original order --
  // bit-identical to the serial pass at any thread count.
  const auto best_reassign = [&](std::int32_t j) -> std::int32_t {
    const std::int32_t from = result.agent_of_item[static_cast<std::size_t>(j)];
    const double size = problem.sizes[static_cast<std::size_t>(j)];
    const double* column = cost.col(j);
    const double from_cost = column[from];
    std::int32_t best_to = -1;
    double best_delta = -kEps;
    for (std::int32_t i = 0; i < m; ++i) {
      if (i == from) continue;
      if (slack[static_cast<std::size_t>(i)] + kCapTolerance < size) continue;
      const double delta = column[i] - from_cost;
      if (delta < best_delta) {
        best_delta = delta;
        best_to = i;
      }
    }
    return best_to;
  };
  for (int pass = 0; pass < options.improvement_passes; ++pass) {
    QBP_PROF_SCOPE("gap.improve");
    bool improved = false;
    std::int64_t cursor = 0;
    while (cursor < n) {
      const std::int64_t j64 = par::find_first(
          n, cursor, kItemGrain, options.threads,
          [&](std::int64_t begin, std::int64_t end) -> std::int64_t {
            for (std::int64_t jj = begin; jj < end; ++jj) {
              if (best_reassign(static_cast<std::int32_t>(jj)) >= 0) return jj;
            }
            return -1;
          });
      if (j64 < 0) break;
      const auto j = static_cast<std::int32_t>(j64);
      const std::int32_t from = result.agent_of_item[static_cast<std::size_t>(j)];
      const std::int32_t best_to = best_reassign(j);
      const double size = problem.sizes[static_cast<std::size_t>(j)];
      slack[static_cast<std::size_t>(from)] += size;
      slack[static_cast<std::size_t>(best_to)] -= size;
      result.agent_of_item[static_cast<std::size_t>(j)] = best_to;
      improved = true;
      cursor = j64 + 1;
    }
    if (options.swap_improvement) {
      QBP_PROF_SCOPE("gap.improve_swap");
      std::int32_t* agent = result.agent_of_item.data();
      for (std::int32_t j = 0; j < n; ++j) {
        assigned_cost[static_cast<std::size_t>(j)] =
            cost.col(j)[agent[j]];
      }
      // The O(N^2) pair scan is the hottest loop of the whole solver.  The
      // inner body below is branch-light: the profitability test runs first
      // over four sequential/L1 streams, and only the rare candidates pay the
      // capacity checks.  Reordering the conjunction commits the exact same
      // swaps (the conditions are independent of evaluation order), and the
      // delta arithmetic keeps the original association, so results are
      // bit-identical.  The same-agent case (j2 already on a1) is masked by
      // an infinite cost entry instead of a branch: its delta becomes +inf
      // and never passes the test.
      for (std::int32_t j1 = 0; j1 < n; ++j1) {
        const double* column1 = cost.col(j1);
        const double s1 = problem.sizes[static_cast<std::size_t>(j1)];
        // j1's agent, cost, slack bound and cost row change only when a swap
        // fires below; cache them across the inner scan, refresh on commit.
        std::int32_t a1 = agent[j1];
        double c11 = column1[a1];
        double limit1 = slack[static_cast<std::size_t>(a1)] + s1 + kCapTolerance;
        const double* row1 =
            row_major.data() + static_cast<std::size_t>(a1) *
                                   static_cast<std::size_t>(n);
        double* masked = masked_column.data();
        for (std::int32_t i = 0; i < m; ++i) masked[i] = column1[i];
        masked[a1] = kInf;
        // Same find-first restatement as the reassignment pass: the
        // profitability + capacity predicate reads only state that is
        // frozen between commits (masked/row1/c11/limit1 are refreshed at
        // each commit, before the next search begins).
        std::int64_t swap_cursor = j1 + 1;
        while (swap_cursor < n) {
          const std::int64_t hit = par::find_first(
              n, swap_cursor, kSwapGrain, options.threads,
              [&](std::int64_t begin, std::int64_t end) -> std::int64_t {
                // Profitability pre-filter first: the SIMD scan returns the
                // first j2 with
                //   masked[agent[j2]] + row1[j2] - c11 - assigned_cost[j2]
                //     < -kEps
                // (same association as the scalar formulation, bit-identical
                // by the util/simd.hpp contract), then the rare candidates
                // pay the capacity checks; rejected candidates resume the
                // scan one past themselves, exactly like the scalar
                // `continue`.
                std::int64_t jj = begin;
                while (jj < end) {
                  const std::int64_t cand = simd::swap_profit_scan(
                      masked, agent, row1, assigned_cost.data(), c11, -kEps,
                      jj, end);
                  if (cand < 0) return -1;
                  const auto j2 = static_cast<std::int32_t>(cand);
                  const double s2 = problem.sizes[static_cast<std::size_t>(j2)];
                  if (limit1 >= s2 &&
                      slack[static_cast<std::size_t>(agent[j2])] + s2 +
                              kCapTolerance >=
                          s1) {
                    return cand;
                  }
                  jj = cand + 1;
                }
                return -1;
              });
          if (hit < 0) break;
          const auto j2 = static_cast<std::int32_t>(hit);
          const std::int32_t a2 = agent[j2];
          const double s2 = problem.sizes[static_cast<std::size_t>(j2)];
          const double c12 = row1[j2];  // cost(a1, j2)
          slack[static_cast<std::size_t>(a1)] += s1 - s2;
          slack[static_cast<std::size_t>(a2)] += s2 - s1;
          agent[j1] = a2;
          agent[j2] = a1;
          assigned_cost[static_cast<std::size_t>(j1)] = column1[a2];
          assigned_cost[static_cast<std::size_t>(j2)] = c12;
          improved = true;
          a1 = a2;
          c11 = column1[a1];
          limit1 = slack[static_cast<std::size_t>(a1)] + s1 + kCapTolerance;
          row1 = row_major.data() + static_cast<std::size_t>(a1) *
                                        static_cast<std::size_t>(n);
          for (std::int32_t i = 0; i < m; ++i) masked[i] = column1[i];
          masked[a1] = kInf;
          swap_cursor = hit + 1;
        }
      }
    }
    if (!improved) break;
  }

  result.cost = gap_cost(problem, result.agent_of_item);
  result.feasible = gap_feasible(problem, result.agent_of_item);
  return result;
}

}  // namespace qbp
