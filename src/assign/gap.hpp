// Generalized Assignment Problem heuristic (Martello & Toth, "Knapsack
// Problems", ch. 7 -- the MTHG scheme the paper cites for its inner solves).
//
//   minimize   sum_j cost(agent(j), j)
//   subject to sum_{j : agent(j)=i} size_j <= capacity_i     (C1)
//              every item assigned to exactly one agent      (C3)
//
// Three phases:
//   1. max-regret construction: repeatedly assign the item whose best and
//      second-best feasible agents differ the most (it has the most to lose
//      from waiting), via a lazy priority queue;
//   2. capacity repair for items that had no feasible agent at construction
//      time (moves items out of overflowing agents, cheapest delta per unit
//      size first);
//   3. local improvement: single-item reassignment passes and (optionally)
//      pairwise swap passes.
//
// Inside the Burkard iteration (STEP 4 / STEP 6 of the paper) this is called
// with the linearized cost vectors eta / h reshaped to an M x N matrix; the
// heuristic's solution steers the line search, so approximate optimality is
// acceptable, but C1/C3 feasibility of the *returned* vector matters and is
// reported via `feasible`.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sparse/dense.hpp"

namespace qbp {

struct GapProblem {
  /// M x N (row-major).  Ignored when `cost_flat` is set.
  Matrix<double> cost;
  /// Zero-copy alternative: the Burkard flat MN vector (r = i + j * M), i.e.
  /// column-major with item j's M agent costs contiguous at [j*M, (j+1)*M).
  /// This is the layout every solver phase scans, so the hot path consumes
  /// it directly -- no reshape copy, no strided access.  `flat_agents` = M.
  std::span<const double> cost_flat;
  std::int32_t flat_agents = 0;
  std::vector<double> sizes;       // N, positive
  std::vector<double> capacities;  // M, non-negative

  [[nodiscard]] std::int32_t num_agents() const noexcept {
    return cost_flat.empty() ? cost.rows() : flat_agents;
  }
  [[nodiscard]] std::int32_t num_items() const noexcept {
    if (cost_flat.empty()) return cost.cols();
    return flat_agents > 0
               ? static_cast<std::int32_t>(cost_flat.size() /
                                           static_cast<std::size_t>(flat_agents))
               : 0;
  }
  /// Cost of assigning `item` to `agent` under either representation.
  [[nodiscard]] double cost_at(std::int32_t agent,
                               std::int32_t item) const noexcept {
    if (cost_flat.empty()) return cost(agent, item);
    return cost_flat[static_cast<std::size_t>(item) *
                         static_cast<std::size_t>(flat_agents) +
                     static_cast<std::size_t>(agent)];
  }
};

struct GapOptions {
  /// Reassignment improvement passes after construction + repair.
  int improvement_passes = 2;
  /// Also run pairwise swap improvement (O(N^2 M) worst case per pass);
  /// valuable under tight capacities, off by default for inner-loop use.
  bool swap_improvement = false;
  /// Abort repair after this many single-item moves (guards against cycling
  /// on infeasible instances).
  std::int64_t max_repair_moves = -1;  // -1 => 8 * N
  /// Threads for the candidate scans (construction best-pair batch, repair
  /// argmin, improve/swap first-improvement searches) through the shared
  /// util/parallel pool.  Results are bit-identical at every value: chunk
  /// layouts are thread-count independent, reductions fold in chunk order,
  /// and all commits stay sequential.
  std::int32_t threads = 1;
};

struct GapResult {
  std::vector<std::int32_t> agent_of_item;  // N entries in [0, M)
  double cost = 0.0;
  /// True when all capacities are respected.
  bool feasible = false;
  /// Items that had no capacity-feasible agent when constructed.
  std::int32_t construction_failures = 0;
  /// Moves spent in the repair phase.
  std::int64_t repair_moves = 0;
};

[[nodiscard]] GapResult solve_gap(const GapProblem& problem,
                                  const GapOptions& options = {});

/// Total cost of an explicit assignment under `problem`.
[[nodiscard]] double gap_cost(const GapProblem& problem,
                              std::span<const std::int32_t> agent_of_item);

/// True when `agent_of_item` respects every capacity.
[[nodiscard]] bool gap_feasible(const GapProblem& problem,
                                std::span<const std::int32_t> agent_of_item);

/// Lagrangian lower bound on the GAP optimum (Jornsten & Nasberg style):
/// relax the capacity constraints with multipliers lambda_i >= 0,
///
///   L(lambda) = sum_j min_i (c_ij + lambda_i * s_j) - sum_i lambda_i * cap_i,
///
/// and maximize by projected subgradient ascent.  Every L(lambda) is a
/// valid bound; the best over `iterations` steps is returned.  Used to
/// report optimality gaps for heuristic solutions.
[[nodiscard]] double gap_lower_bound(const GapProblem& problem,
                                     std::int32_t iterations = 60);

}  // namespace qbp
