// Generalized Assignment Problem heuristic (Martello & Toth, "Knapsack
// Problems", ch. 7 -- the MTHG scheme the paper cites for its inner solves).
//
//   minimize   sum_j cost(agent(j), j)
//   subject to sum_{j : agent(j)=i} size_j <= capacity_i     (C1)
//              every item assigned to exactly one agent      (C3)
//
// Three phases:
//   1. max-regret construction: repeatedly assign the item whose best and
//      second-best feasible agents differ the most (it has the most to lose
//      from waiting), via a lazy priority queue;
//   2. capacity repair for items that had no feasible agent at construction
//      time (moves items out of overflowing agents, cheapest delta per unit
//      size first);
//   3. local improvement: single-item reassignment passes and (optionally)
//      pairwise swap passes.
//
// Inside the Burkard iteration (STEP 4 / STEP 6 of the paper) this is called
// with the linearized cost vectors eta / h reshaped to an M x N matrix; the
// heuristic's solution steers the line search, so approximate optimality is
// acceptable, but C1/C3 feasibility of the *returned* vector matters and is
// reported via `feasible`.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sparse/dense.hpp"

namespace qbp {

struct GapProblem {
  Matrix<double> cost;             // M x N
  std::vector<double> sizes;       // N, positive
  std::vector<double> capacities;  // M, non-negative
};

struct GapOptions {
  /// Reassignment improvement passes after construction + repair.
  int improvement_passes = 2;
  /// Also run pairwise swap improvement (O(N^2 M) worst case per pass);
  /// valuable under tight capacities, off by default for inner-loop use.
  bool swap_improvement = false;
  /// Abort repair after this many single-item moves (guards against cycling
  /// on infeasible instances).
  std::int64_t max_repair_moves = -1;  // -1 => 8 * N
};

struct GapResult {
  std::vector<std::int32_t> agent_of_item;  // N entries in [0, M)
  double cost = 0.0;
  /// True when all capacities are respected.
  bool feasible = false;
  /// Items that had no capacity-feasible agent when constructed.
  std::int32_t construction_failures = 0;
  /// Moves spent in the repair phase.
  std::int64_t repair_moves = 0;
};

[[nodiscard]] GapResult solve_gap(const GapProblem& problem,
                                  const GapOptions& options = {});

/// Total cost of an explicit assignment under `problem`.
[[nodiscard]] double gap_cost(const GapProblem& problem,
                              std::span<const std::int32_t> agent_of_item);

/// True when `agent_of_item` respects every capacity.
[[nodiscard]] bool gap_feasible(const GapProblem& problem,
                                std::span<const std::int32_t> agent_of_item);

/// Lagrangian lower bound on the GAP optimum (Jornsten & Nasberg style):
/// relax the capacity constraints with multipliers lambda_i >= 0,
///
///   L(lambda) = sum_j min_i (c_ij + lambda_i * s_j) - sum_i lambda_i * cap_i,
///
/// and maximize by projected subgradient ascent.  Every L(lambda) is a
/// valid bound; the best over `iterations` steps is returned.  Used to
/// report optimality gaps for heuristic solutions.
[[nodiscard]] double gap_lower_bound(const GapProblem& problem,
                                     std::int32_t iterations = 60);

}  // namespace qbp
