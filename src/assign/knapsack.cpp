#include "assign/knapsack.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace qbp {

namespace {
std::vector<std::int32_t> density_order(std::span<const KnapsackItem> items) {
  std::vector<std::int32_t> order(items.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::int32_t a, std::int32_t b) {
    const double da = items[static_cast<std::size_t>(a)].weight > 0.0
                          ? items[static_cast<std::size_t>(a)].value /
                                items[static_cast<std::size_t>(a)].weight
                          : std::numeric_limits<double>::infinity();
    const double db = items[static_cast<std::size_t>(b)].weight > 0.0
                          ? items[static_cast<std::size_t>(b)].value /
                                items[static_cast<std::size_t>(b)].weight
                          : std::numeric_limits<double>::infinity();
    return da != db ? da > db : a < b;
  });
  return order;
}
}  // namespace

double knapsack_upper_bound(std::span<const KnapsackItem> items, double capacity) {
  double bound = 0.0;
  double remaining = capacity;
  for (const std::int32_t k : density_order(items)) {
    const auto& item = items[static_cast<std::size_t>(k)];
    if (item.value <= 0.0) continue;
    if (item.weight <= remaining) {
      bound += item.value;
      remaining -= item.weight;
    } else {
      if (item.weight > 0.0 && remaining > 0.0) {
        bound += item.value * (remaining / item.weight);
      }
      break;
    }
  }
  return bound;
}

std::vector<std::int32_t> knapsack_greedy(std::span<const KnapsackItem> items,
                                          double capacity, double& total_value) {
  std::vector<std::int32_t> chosen;
  double remaining = capacity;
  total_value = 0.0;
  for (const std::int32_t k : density_order(items)) {
    const auto& item = items[static_cast<std::size_t>(k)];
    if (item.value <= 0.0) continue;
    if (item.weight <= remaining) {
      chosen.push_back(k);
      total_value += item.value;
      remaining -= item.weight;
    }
  }
  // Classic guard: the best single fitting item can beat the greedy pack.
  std::int32_t best_single = -1;
  double best_single_value = total_value;
  for (std::size_t k = 0; k < items.size(); ++k) {
    if (items[k].weight <= capacity && items[k].value > best_single_value) {
      best_single_value = items[k].value;
      best_single = static_cast<std::int32_t>(k);
    }
  }
  if (best_single >= 0) {
    chosen.assign(1, best_single);
    total_value = best_single_value;
  }
  std::sort(chosen.begin(), chosen.end());
  return chosen;
}

std::vector<std::int32_t> knapsack_exact(std::span<const KnapsackItem> items,
                                         double capacity, double& total_value,
                                         double scale) {
  const auto n = items.size();
  const auto grid = static_cast<std::int64_t>(std::floor(capacity * scale + 1e-9));
  if (grid < 0 || n == 0) {
    total_value = 0.0;
    return {};
  }
  std::vector<std::int64_t> weights(n);
  for (std::size_t k = 0; k < n; ++k) {
    // Round weights up so the discretized solution is feasible for the
    // continuous capacity.
    weights[k] = static_cast<std::int64_t>(std::ceil(items[k].weight * scale - 1e-9));
  }
  const auto columns = static_cast<std::size_t>(grid) + 1;
  std::vector<double> best(columns, 0.0);
  std::vector<std::vector<bool>> take(n, std::vector<bool>(columns, false));
  for (std::size_t k = 0; k < n; ++k) {
    if (items[k].value <= 0.0) continue;
    for (std::int64_t w = grid; w >= weights[k]; --w) {
      const double candidate =
          best[static_cast<std::size_t>(w - weights[k])] + items[k].value;
      if (candidate > best[static_cast<std::size_t>(w)]) {
        best[static_cast<std::size_t>(w)] = candidate;
        take[k][static_cast<std::size_t>(w)] = true;
      }
    }
  }
  total_value = best[static_cast<std::size_t>(grid)];
  std::vector<std::int32_t> chosen;
  std::int64_t w = grid;
  for (std::size_t k = n; k-- > 0;) {
    if (take[k][static_cast<std::size_t>(w)]) {
      chosen.push_back(static_cast<std::int32_t>(k));
      w -= weights[k];
    }
  }
  std::sort(chosen.begin(), chosen.end());
  return chosen;
}

}  // namespace qbp
