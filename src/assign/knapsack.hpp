// 0/1 knapsack helpers (Martello & Toth, "Knapsack Problems").
//
// The GAP heuristic uses the fractional (Dantzig) bound to prioritize
// repair moves; the exact DP is a test oracle and is also used by the
// capacity-repair step when item counts are tiny.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace qbp {

struct KnapsackItem {
  double value = 0.0;   // profit if taken
  double weight = 0.0;  // capacity consumed
};

/// Dantzig upper bound for max-profit 0/1 knapsack: greedy by value/weight
/// density with a fractional final item.
[[nodiscard]] double knapsack_upper_bound(std::span<const KnapsackItem> items,
                                          double capacity);

/// Greedy feasible solution (by density); returns chosen indices and fills
/// `total_value`.  A 1/2-approximation when combined with the best single
/// item, which this implementation applies.
[[nodiscard]] std::vector<std::int32_t> knapsack_greedy(
    std::span<const KnapsackItem> items, double capacity, double& total_value);

/// Exact DP for integer weights (weights are rounded toward +inf to stay
/// conservative); intended for small instances (tests, repair on a handful
/// of items).  `scale` converts fractional weights to integer grid points.
[[nodiscard]] std::vector<std::int32_t> knapsack_exact(
    std::span<const KnapsackItem> items, double capacity, double& total_value,
    double scale = 100.0);

}  // namespace qbp
