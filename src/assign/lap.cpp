#include "assign/lap.hpp"

#include <limits>

#include "util/check.hpp"

namespace qbp {

LapResult solve_lap(const Matrix<double>& cost) {
  const std::int32_t n = cost.rows();
  const std::int32_t m = cost.cols();
  QBP_CHECK_LE(n, m) << "solve_lap requires rows() <= cols()";
  constexpr double kInf = std::numeric_limits<double>::infinity();

  // 1-based arrays in the classic formulation: p[j] = row matched to
  // column j (0 = free), u/v = dual potentials.
  std::vector<double> u(static_cast<std::size_t>(n) + 1, 0.0);
  std::vector<double> v(static_cast<std::size_t>(m) + 1, 0.0);
  std::vector<std::int32_t> p(static_cast<std::size_t>(m) + 1, 0);
  std::vector<std::int32_t> way(static_cast<std::size_t>(m) + 1, 0);

  for (std::int32_t i = 1; i <= n; ++i) {
    p[0] = i;
    std::int32_t j0 = 0;
    std::vector<double> minv(static_cast<std::size_t>(m) + 1, kInf);
    std::vector<bool> used(static_cast<std::size_t>(m) + 1, false);
    do {
      used[static_cast<std::size_t>(j0)] = true;
      const std::int32_t i0 = p[static_cast<std::size_t>(j0)];
      double delta = kInf;
      std::int32_t j1 = -1;
      for (std::int32_t j = 1; j <= m; ++j) {
        if (used[static_cast<std::size_t>(j)]) continue;
        const double reduced = cost(i0 - 1, j - 1) -
                               u[static_cast<std::size_t>(i0)] -
                               v[static_cast<std::size_t>(j)];
        if (reduced < minv[static_cast<std::size_t>(j)]) {
          minv[static_cast<std::size_t>(j)] = reduced;
          way[static_cast<std::size_t>(j)] = j0;
        }
        if (minv[static_cast<std::size_t>(j)] < delta) {
          delta = minv[static_cast<std::size_t>(j)];
          j1 = j;
        }
      }
      QBP_DCHECK(j1 != -1) << "augmenting path search exhausted all columns";
      for (std::int32_t j = 0; j <= m; ++j) {
        if (used[static_cast<std::size_t>(j)]) {
          u[static_cast<std::size_t>(p[static_cast<std::size_t>(j)])] += delta;
          v[static_cast<std::size_t>(j)] -= delta;
        } else {
          minv[static_cast<std::size_t>(j)] -= delta;
        }
      }
      j0 = j1;
    } while (p[static_cast<std::size_t>(j0)] != 0);
    // Unwind the augmenting path.
    do {
      const std::int32_t j1 = way[static_cast<std::size_t>(j0)];
      p[static_cast<std::size_t>(j0)] = p[static_cast<std::size_t>(j1)];
      j0 = j1;
    } while (j0 != 0);
  }

  LapResult result;
  result.col_of_row.assign(static_cast<std::size_t>(n), -1);
  result.row_of_col.assign(static_cast<std::size_t>(m), -1);
  for (std::int32_t j = 1; j <= m; ++j) {
    const std::int32_t i = p[static_cast<std::size_t>(j)];
    if (i > 0) {
      result.col_of_row[static_cast<std::size_t>(i - 1)] = j - 1;
      result.row_of_col[static_cast<std::size_t>(j - 1)] = i - 1;
    }
  }
  result.cost = 0.0;
  for (std::int32_t i = 0; i < n; ++i) {
    result.cost += cost(i, result.col_of_row[static_cast<std::size_t>(i)]);
  }
  return result;
}

}  // namespace qbp
