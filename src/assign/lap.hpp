// Linear Assignment Problem (paper Section 2.2.2 special case).
//
// Exact O(n^3) solver via shortest augmenting paths with dual potentials
// (Jonker-Volgenant / "Hungarian" family).  In Burkard's original heuristic
// the two inner subproblems of STEP 4 / STEP 6 are LAPs; this solver is used
// by the QAP special-case demo, as the inner solver when the problem
// degenerates to M == N with unit sizes, and as a lower-bound oracle in
// tests of the GAP heuristic.
#pragma once

#include <cstdint>
#include <vector>

#include "sparse/dense.hpp"

namespace qbp {

struct LapResult {
  /// column assigned to each row; size = cost.rows().
  std::vector<std::int32_t> col_of_row;
  /// row assigned to each column, or -1 for unmatched columns.
  std::vector<std::int32_t> row_of_col;
  double cost = 0.0;
};

/// Minimize sum_r cost(r, col_of_row[r]) over injective row->column maps.
/// Requires rows() <= cols(); every row is matched.
[[nodiscard]] LapResult solve_lap(const Matrix<double>& cost);

}  // namespace qbp
