#include "baselines/gfm.hpp"

#include <queue>
#include <vector>

#include "partition/cost.hpp"
#include "util/timer.hpp"

#include "util/check.hpp"

namespace qbp {

namespace {

struct Move {
  std::int32_t component;
  PartitionId from;
  PartitionId to;
};

struct HeapEntry {
  double gain;             // positive = objective decreases
  std::int32_t component;
  PartitionId target;
  std::int64_t version;    // stamp of the component when pushed
  bool operator<(const HeapEntry& other) const noexcept {
    if (gain != other.gain) return gain < other.gain;
    if (component != other.component) return component > other.component;
    return target > other.target;
  }
};

}  // namespace

GfmResult solve_gfm(const PartitionProblem& problem, const Assignment& initial,
                    const GfmOptions& options) {
  QBP_CHECK(initial.is_complete());
  QBP_CHECK(problem.is_feasible(initial))
      << "GFM requires a feasible starting solution (Section 5)";

  const Timer timer;
  const std::int32_t n = problem.num_components();
  const std::int32_t m = problem.num_partitions();
  const auto& sizes = problem.netlist().sizes();
  const auto& p = problem.linear_cost_matrix();
  const auto& adjacency = problem.netlist().connection_matrix();

  GfmResult result;
  result.assignment = initial;
  result.objective = problem.objective(initial);

  Assignment& assignment = result.assignment;
  CapacityLedger ledger(assignment, sizes, problem.topology().capacities());
  std::vector<std::int64_t> version(static_cast<std::size_t>(n), 0);
  std::vector<bool> locked(static_cast<std::size_t>(n), false);

  const auto move_gain = [&](std::int32_t j, PartitionId target) {
    return -move_delta_objective(problem.netlist(), problem.topology(), p,
                                 problem.alpha(), problem.beta(), assignment, j,
                                 target);
  };
  const auto move_feasible = [&](std::int32_t j, PartitionId target) {
    if (!ledger.fits(target, sizes[static_cast<std::size_t>(j)])) return false;
    return problem.timing().component_feasible_at(assignment, problem.topology(),
                                                  j, target);
  };

  for (std::int32_t pass = 0; pass < options.max_passes; ++pass) {
    if (options.should_stop && options.should_stop()) break;
    std::fill(locked.begin(), locked.end(), false);
    std::priority_queue<HeapEntry> heap;
    const auto push_component = [&](std::int32_t j) {
      for (PartitionId i = 0; i < m; ++i) {
        if (i == assignment[j]) continue;
        heap.push({move_gain(j, i), j, i, version[static_cast<std::size_t>(j)]});
      }
    };
    for (std::int32_t j = 0; j < n; ++j) push_component(j);

    std::vector<Move> applied;
    double cumulative = 0.0;
    double best_prefix_gain = 0.0;
    std::size_t best_prefix_length = 0;

    while (!heap.empty()) {
      const HeapEntry entry = heap.top();
      heap.pop();
      const std::int32_t j = entry.component;
      if (locked[static_cast<std::size_t>(j)]) continue;
      if (entry.version != version[static_cast<std::size_t>(j)]) continue;
      if (entry.target == assignment[j]) continue;
      if (!move_feasible(j, entry.target)) continue;
      // Gains were fresh at push time (version matches), but the ledger and
      // neighbors may still race within this pop -- recompute to be exact.
      const double gain = move_gain(j, entry.target);

      const PartitionId from = assignment[j];
      ledger.remove(from, sizes[static_cast<std::size_t>(j)]);
      ledger.add(entry.target, sizes[static_cast<std::size_t>(j)]);
      assignment.set(j, entry.target);
      locked[static_cast<std::size_t>(j)] = true;
      ++version[static_cast<std::size_t>(j)];
      applied.push_back({j, from, entry.target});
      ++result.moves_applied;

      cumulative += gain;
      if (cumulative > best_prefix_gain) {
        best_prefix_gain = cumulative;
        best_prefix_length = applied.size();
      }

      // Refresh the gain entries of unlocked neighbors.
      for (const std::int32_t neighbor : adjacency.row_indices(j)) {
        if (locked[static_cast<std::size_t>(neighbor)]) continue;
        ++version[static_cast<std::size_t>(neighbor)];
        push_component(neighbor);
      }
    }

    // Roll back the suffix after the best prefix.
    for (std::size_t k = applied.size(); k-- > best_prefix_length;) {
      const Move& move = applied[k];
      ledger.remove(move.to, sizes[static_cast<std::size_t>(move.component)]);
      ledger.add(move.from, sizes[static_cast<std::size_t>(move.component)]);
      assignment.set(move.component, move.from);
      ++version[static_cast<std::size_t>(move.component)];
    }
    result.moves_kept += static_cast<std::int64_t>(best_prefix_length);
    result.passes = pass + 1;

    if (best_prefix_gain <= options.min_improvement) break;
    result.objective -= best_prefix_gain;
  }

  // The incremental objective can accumulate float error; report exactly.
  result.objective = problem.objective(result.assignment);
  result.seconds = timer.seconds();
  return result;
}

}  // namespace qbp
