// GFM: generalized Fiduccia-Mattheyses baseline (paper Section 5).
//
// "The first one is a generalization of Fiduccia & Mattheyses' approach --
// GFM, moving one component at a time.  Associated with each component are
// (M - 1) gain entries, each entry representing the potential gain if that
// component is moved to the corresponding partition."
//
// Pass structure is classic FM, generalized to M-way with an arbitrary
// interconnection cost metric and an arbitrary linear term:
//   * all components start unlocked;
//   * repeatedly apply the highest-gain *feasible* move (a move is feasible
//     when it keeps both capacity C1 and timing C2 satisfied -- "moves are
//     allowed to take place only when they do not introduce timing or
//     capacity violations"), lock the moved component, update the gains of
//     its neighbors;
//   * negative-gain moves are taken too (hill-climbing within a pass); at
//     the end of the pass the suffix after the best prefix is rolled back;
//   * passes repeat until one yields no improvement ("runs till no more
//     improvement is possible").
//
// Gains live in a lazy max-heap keyed by (gain, component, target) with a
// per-component version stamp instead of the classic bucket array, because
// costs here are real-valued (Manhattan / quadratic metrics, arbitrary P).
#pragma once

#include <cstdint>
#include <functional>

#include "core/problem.hpp"

namespace qbp {

struct GfmOptions {
  /// Hard cap on passes; the natural stop is a no-improvement pass.
  std::int32_t max_passes = 64;
  /// Minimum pass improvement to continue.
  double min_improvement = 1e-9;
  /// Cooperative cancellation hook, checked between passes.  Empty means
  /// never stop.
  std::function<bool()> should_stop;
};

struct GfmResult {
  Assignment assignment;
  double objective = 0.0;
  std::int32_t passes = 0;
  std::int64_t moves_applied = 0;   // accepted moves over all passes (pre-revert)
  std::int64_t moves_kept = 0;      // moves surviving prefix rollback
  double seconds = 0.0;
};

/// `initial` must be complete and feasible (C1 and C2); the result stays
/// feasible move by move.
[[nodiscard]] GfmResult solve_gfm(const PartitionProblem& problem,
                                  const Assignment& initial,
                                  const GfmOptions& options = {});

}  // namespace qbp
