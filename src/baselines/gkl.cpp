#include "baselines/gkl.hpp"

#include <vector>

#include "util/timer.hpp"

#include "util/check.hpp"

namespace qbp {

namespace {

struct Swap {
  std::int32_t a;
  std::int32_t b;
};

}  // namespace

GklResult solve_gkl(const PartitionProblem& problem, const Assignment& initial,
                    const GklOptions& options) {
  QBP_CHECK(initial.is_complete());
  QBP_CHECK(problem.is_feasible(initial))
      << "GKL requires a feasible starting solution (Section 5)";

  const Timer timer;
  const std::int32_t n = problem.num_components();
  const std::int32_t m = problem.num_partitions();
  const auto& sizes = problem.netlist().sizes();
  const auto& p = problem.linear_cost_matrix();
  const auto& adjacency = problem.netlist().connection_matrix();
  const auto& topology = problem.topology();
  const double alpha = problem.alpha();
  const double beta = problem.beta();

  GklResult result;
  result.assignment = initial;
  Assignment& assignment = result.assignment;
  CapacityLedger ledger(assignment, sizes, problem.topology().capacities());

  // inc(j, i): quadratic cost of j's incident wires (both ordered
  // directions) if j sat in partition i, all neighbors at their current
  // partitions.
  Matrix<double> inc(n, m, 0.0);
  const auto rebuild_inc_row = [&](std::int32_t j) {
    auto row = inc.row(j);
    for (std::int32_t i = 0; i < m; ++i) row[static_cast<std::size_t>(i)] = 0.0;
    const auto neighbors = adjacency.row_indices(j);
    const auto wires = adjacency.row_values(j);
    for (std::size_t k = 0; k < neighbors.size(); ++k) {
      const PartitionId other = assignment[neighbors[k]];
      for (std::int32_t i = 0; i < m; ++i) {
        row[static_cast<std::size_t>(i)] +=
            wires[k] * (topology.wire_cost(i, other) + topology.wire_cost(other, i));
      }
    }
  };
  for (std::int32_t j = 0; j < n; ++j) rebuild_inc_row(j);

  // Exact objective change of swapping j1 (at p1) with j2 (at p2); O(1)
  // given inc (see header: the shared-edge terms cancel except for the
  // +2E correction).
  const auto swap_delta = [&](std::int32_t j1, std::int32_t j2) {
    const PartitionId p1 = assignment[j1];
    const PartitionId p2 = assignment[j2];
    const double w = adjacency.value_or(j1, j2, 0);
    const double edge =
        w * (topology.wire_cost(p1, p2) + topology.wire_cost(p2, p1));
    double delta = beta * (inc(j1, p2) + inc(j2, p1) - inc(j1, p1) -
                           inc(j2, p2) + 2.0 * edge);
    if (!p.empty()) {
      delta += alpha * (p(p2, j1) - p(p1, j1) + p(p1, j2) - p(p2, j2));
    }
    return delta;
  };

  const auto swap_feasible = [&](std::int32_t j1, std::int32_t j2) {
    const PartitionId p1 = assignment[j1];
    const PartitionId p2 = assignment[j2];
    const double s1 = sizes[static_cast<std::size_t>(j1)];
    const double s2 = sizes[static_cast<std::size_t>(j2)];
    if (ledger.usage(p1) - s1 + s2 > ledger.capacity(p1) + CapacityLedger::kTolerance)
      return false;
    if (ledger.usage(p2) - s2 + s1 > ledger.capacity(p2) + CapacityLedger::kTolerance)
      return false;
    return problem.timing().component_feasible_at(assignment, topology, j1, p2,
                                                  j2, p1) &&
           problem.timing().component_feasible_at(assignment, topology, j2, p1,
                                                  j1, p2);
  };

  const auto apply_swap = [&](std::int32_t j1, std::int32_t j2) {
    const PartitionId p1 = assignment[j1];
    const PartitionId p2 = assignment[j2];
    const double s1 = sizes[static_cast<std::size_t>(j1)];
    const double s2 = sizes[static_cast<std::size_t>(j2)];
    ledger.remove(p1, s1);
    ledger.add(p2, s1);
    ledger.remove(p2, s2);
    ledger.add(p1, s2);
    assignment.set(j1, p2);
    assignment.set(j2, p1);
    // Every neighbor of a moved endpoint sees its inc row shift by the
    // endpoint's relocation; this also fixes inc(j1, .) and inc(j2, .)
    // because each is (usually) a neighbor of the other -- rebuild their
    // rows outright to cover the non-adjacent case too.
    for (const std::int32_t moved : {j1, j2}) {
      const PartitionId from = moved == j1 ? p1 : p2;
      const PartitionId to = moved == j1 ? p2 : p1;
      const auto neighbors = adjacency.row_indices(moved);
      const auto wires = adjacency.row_values(moved);
      for (std::size_t k = 0; k < neighbors.size(); ++k) {
        const std::int32_t other = neighbors[k];
        if (other == j1 || other == j2) continue;  // rebuilt below
        auto row = inc.row(other);
        for (std::int32_t i = 0; i < m; ++i) {
          row[static_cast<std::size_t>(i)] +=
              wires[k] *
              (topology.wire_cost(i, to) + topology.wire_cost(to, i) -
               topology.wire_cost(i, from) - topology.wire_cost(from, i));
        }
      }
    }
    rebuild_inc_row(j1);
    rebuild_inc_row(j2);
  };

  std::vector<bool> locked(static_cast<std::size_t>(n), false);

  for (std::int32_t outer = 0; outer < options.max_outer_loops; ++outer) {
    if (options.should_stop && options.should_stop()) break;
    std::fill(locked.begin(), locked.end(), false);
    std::vector<Swap> applied;
    double cumulative = 0.0;
    double best_prefix_gain = 0.0;
    std::size_t best_prefix_length = 0;
    std::int64_t stale = 0;

    const std::int64_t swap_cap = options.max_swaps_per_pass >= 0
                                      ? options.max_swaps_per_pass
                                      : static_cast<std::int64_t>(n);
    while (static_cast<std::int64_t>(applied.size()) < swap_cap) {
      // Best feasible swap over all unlocked pairs in different partitions.
      std::int32_t best_a = -1;
      std::int32_t best_b = -1;
      double best_delta = 0.0;
      bool have_best = false;
      for (std::int32_t a = 0; a < n; ++a) {
        if (locked[static_cast<std::size_t>(a)]) continue;
        for (std::int32_t b = a + 1; b < n; ++b) {
          if (locked[static_cast<std::size_t>(b)]) continue;
          if (assignment[a] == assignment[b]) continue;
          const double delta = swap_delta(a, b);
          if (have_best && delta >= best_delta) continue;
          if (!swap_feasible(a, b)) continue;
          best_delta = delta;
          best_a = a;
          best_b = b;
          have_best = true;
        }
      }
      if (!have_best) break;

      apply_swap(best_a, best_b);
      locked[static_cast<std::size_t>(best_a)] = true;
      locked[static_cast<std::size_t>(best_b)] = true;
      applied.push_back({best_a, best_b});
      ++result.swaps_applied;
      cumulative += -best_delta;
      if (cumulative > best_prefix_gain) {
        best_prefix_gain = cumulative;
        best_prefix_length = applied.size();
        stale = 0;
      } else if (options.stale_window >= 0 && ++stale > options.stale_window) {
        break;
      }
    }

    // Roll back to the best prefix (swaps are involutions).
    for (std::size_t k = applied.size(); k-- > best_prefix_length;) {
      apply_swap(applied[k].a, applied[k].b);
    }
    result.swaps_kept += static_cast<std::int64_t>(best_prefix_length);
    result.outer_loops = outer + 1;
    if (best_prefix_gain <= options.min_improvement) break;
  }

  result.objective = problem.objective(result.assignment);
  result.seconds = timer.seconds();
  return result;
}

}  // namespace qbp
