// GKL: generalized Kernighan-Lin baseline (paper Section 5).
//
// "The second one is a generalization of Kernighan & Lin's heuristic --
// GKL, switching a pair of components at a time.  Associated with each
// component are (N - 1) gain entries, each entry representing the potential
// gain if that component is switched with the corresponding component."
//
// Each outer loop is a KL pass: starting from all components unlocked,
// repeatedly apply the best feasible pairwise swap over *all* unlocked
// pairs (full (N - 1)-entry gain semantics, hence the heavy CPU time the
// paper reports), lock both components, and at the end roll back to the
// best prefix.  Swaps are only allowed when they keep capacity and timing
// constraints satisfied.  The paper terminates "after the first 6 outer
// loops due to excessive CPU runtime. Since any gain obtained beyond the
// first 6 outer loops is insignificant, this cutoff strategy provides
// speedup without sacrificing solution quality" -- max_outer_loops = 6.
//
// Swap gains are O(1) thanks to a cached N x M incidence-cost table
// inc(j, i) = cost of j's incident wires if j sat in partition i, updated
// in O(degree * M) per applied swap.
#pragma once

#include <cstdint>
#include <functional>

#include "core/problem.hpp"

namespace qbp {

struct GklOptions {
  /// The paper's cutoff.
  std::int32_t max_outer_loops = 6;
  /// Cap on swaps inside one pass (<= N/2 by locking); -1 = no extra cap.
  std::int64_t max_swaps_per_pass = -1;
  /// Stop a pass early after this many consecutive swaps without improving
  /// the pass's best prefix; -1 disables (fully faithful, slowest).
  std::int64_t stale_window = -1;
  double min_improvement = 1e-9;
  /// Cooperative cancellation hook, checked between outer loops.  Empty
  /// means never stop.
  std::function<bool()> should_stop;
};

struct GklResult {
  Assignment assignment;
  double objective = 0.0;
  std::int32_t outer_loops = 0;
  std::int64_t swaps_applied = 0;
  std::int64_t swaps_kept = 0;
  double seconds = 0.0;
};

/// `initial` must be complete and feasible (C1 and C2).
[[nodiscard]] GklResult solve_gkl(const PartitionProblem& problem,
                                  const Assignment& initial,
                                  const GklOptions& options = {});

}  // namespace qbp
