#include "baselines/sa.hpp"

#include <cmath>

#include "partition/cost.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

#include "util/check.hpp"

namespace qbp {

namespace {

struct Proposal {
  bool is_swap = false;
  std::int32_t a = -1;
  std::int32_t b = -1;          // swap partner
  PartitionId target = -1;      // move target
  double delta = 0.0;
};

}  // namespace

SaResult solve_sa(const PartitionProblem& problem, const Assignment& initial,
                  const SaOptions& options) {
  QBP_CHECK(initial.is_complete());
  QBP_CHECK(problem.is_feasible(initial))
      << "SA requires a feasible starting solution";

  const Timer timer;
  const std::int32_t n = problem.num_components();
  const std::int32_t m = problem.num_partitions();
  const auto& sizes = problem.netlist().sizes();
  const auto& p = problem.linear_cost_matrix();
  const auto& topology = problem.topology();
  Rng rng(options.seed);

  Assignment current = initial;
  CapacityLedger ledger(current, sizes, topology.capacities());

  // Propose a feasible random move or swap; returns false when the draw is
  // infeasible (counts as a rejected proposal, as usual for SA).
  const auto propose = [&](Proposal& proposal) {
    proposal.is_swap = rng.next_bool(options.swap_fraction);
    if (proposal.is_swap) {
      proposal.a = static_cast<std::int32_t>(
          rng.next_below(static_cast<std::uint64_t>(n)));
      proposal.b = static_cast<std::int32_t>(
          rng.next_below(static_cast<std::uint64_t>(n)));
      if (proposal.a == proposal.b) return false;
      const PartitionId pa = current[proposal.a];
      const PartitionId pb = current[proposal.b];
      if (pa == pb) return false;
      const double sa = sizes[static_cast<std::size_t>(proposal.a)];
      const double sb = sizes[static_cast<std::size_t>(proposal.b)];
      if (ledger.usage(pa) - sa + sb >
          ledger.capacity(pa) + CapacityLedger::kTolerance) {
        return false;
      }
      if (ledger.usage(pb) - sb + sa >
          ledger.capacity(pb) + CapacityLedger::kTolerance) {
        return false;
      }
      if (!problem.timing().component_feasible_at(current, topology, proposal.a,
                                                  pb, proposal.b, pa) ||
          !problem.timing().component_feasible_at(current, topology, proposal.b,
                                                  pa, proposal.a, pb)) {
        return false;
      }
      proposal.delta =
          swap_delta_objective(problem.netlist(), topology, p, problem.alpha(),
                               problem.beta(), current, proposal.a, proposal.b);
    } else {
      proposal.a = static_cast<std::int32_t>(
          rng.next_below(static_cast<std::uint64_t>(n)));
      proposal.target =
          static_cast<PartitionId>(rng.next_below(static_cast<std::uint64_t>(m)));
      if (proposal.target == current[proposal.a]) return false;
      if (!ledger.fits(proposal.target,
                       sizes[static_cast<std::size_t>(proposal.a)])) {
        return false;
      }
      if (!problem.timing().component_feasible_at(current, topology, proposal.a,
                                                  proposal.target)) {
        return false;
      }
      proposal.delta =
          move_delta_objective(problem.netlist(), topology, p, problem.alpha(),
                               problem.beta(), current, proposal.a,
                               proposal.target);
    }
    return true;
  };

  const auto apply = [&](const Proposal& proposal) {
    if (proposal.is_swap) {
      const PartitionId pa = current[proposal.a];
      const PartitionId pb = current[proposal.b];
      const double sa = sizes[static_cast<std::size_t>(proposal.a)];
      const double sb = sizes[static_cast<std::size_t>(proposal.b)];
      ledger.remove(pa, sa);
      ledger.add(pb, sa);
      ledger.remove(pb, sb);
      ledger.add(pa, sb);
      current.set(proposal.a, pb);
      current.set(proposal.b, pa);
    } else {
      const double size = sizes[static_cast<std::size_t>(proposal.a)];
      ledger.remove(current[proposal.a], size);
      ledger.add(proposal.target, size);
      current.set(proposal.a, proposal.target);
    }
  };

  // Calibrate T0 from the mean uphill delta of a feasibility-respecting
  // random-walk sample: P(accept) = exp(-mean_uphill / T0) = target.
  double mean_uphill = 0.0;
  {
    std::int32_t uphill_samples = 0;
    Proposal probe;
    for (std::int32_t trial = 0; trial < 4 * n && uphill_samples < n; ++trial) {
      if (!propose(probe)) continue;
      if (probe.delta > 0.0) {
        mean_uphill += probe.delta;
        ++uphill_samples;
      }
    }
    mean_uphill = uphill_samples > 0 ? mean_uphill / uphill_samples : 1.0;
  }
  const double t0 =
      mean_uphill / std::max(1e-12, -std::log(options.initial_acceptance));

  SaResult result;
  result.assignment = current;
  result.objective = problem.objective(current);
  double current_objective = result.objective;

  const std::int64_t moves_per_step =
      static_cast<std::int64_t>(options.moves_per_component) * n;
  for (double temperature = t0; temperature > t0 * options.freeze_ratio;
       temperature *= options.cooling) {
    if (options.should_stop && options.should_stop()) break;
    ++result.temperature_steps;
    for (std::int64_t step = 0; step < moves_per_step; ++step) {
      ++result.proposed;
      Proposal proposal;
      if (!propose(proposal)) continue;
      const bool accept =
          proposal.delta <= 0.0 ||
          rng.next_double() < std::exp(-proposal.delta / temperature);
      if (!accept) continue;
      apply(proposal);
      ++result.accepted;
      current_objective += proposal.delta;
      if (current_objective < result.objective) {
        result.objective = current_objective;
        result.assignment = current;
      }
    }
  }

  // Exact re-evaluation (incremental deltas accumulate float error).
  result.objective = problem.objective(result.assignment);
  result.seconds = timer.seconds();
  return result;
}

}  // namespace qbp
