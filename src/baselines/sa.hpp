// Simulated-annealing baseline (extension beyond the paper).
//
// SA was the other standard 1990s comparator for constrained placement/
// partitioning; the paper compares only against interchange heuristics, so
// this module fills the obvious "what about annealing?" question a reader
// has.  The move set matches GFM/GKL (single relocations and pairwise
// swaps), feasibility is handled GFM-style -- a move is *proposed* only if
// it keeps capacity and timing satisfied, so the walk never leaves the
// feasible region -- and acceptance is Metropolis on the true objective
// with a geometric cooling schedule calibrated from an initial
// random-walk sample (standard Huang/Sechen-style initial temperature).
#pragma once

#include <cstdint>
#include <functional>

#include "core/problem.hpp"

namespace qbp {

struct SaOptions {
  /// Moves attempted per temperature step = moves_per_component * N.
  std::int32_t moves_per_component = 16;
  /// Geometric cooling factor per temperature step.
  double cooling = 0.95;
  /// Initial acceptance probability target for uphill moves (sets T0).
  double initial_acceptance = 0.8;
  /// Stop when temperature falls below this fraction of T0.
  double freeze_ratio = 1e-4;
  /// Fraction of proposals that are swaps (rest are single moves).
  double swap_fraction = 0.4;
  std::uint64_t seed = 1;
  /// Cooperative cancellation hook, checked between temperature steps.
  /// Empty means never stop.
  std::function<bool()> should_stop;
};

struct SaResult {
  Assignment assignment;   // best feasible seen
  double objective = 0.0;
  std::int64_t proposed = 0;
  std::int64_t accepted = 0;
  std::int32_t temperature_steps = 0;
  double seconds = 0.0;
};

/// `initial` must be complete and feasible (C1 and C2); the walk stays
/// feasible throughout.
[[nodiscard]] SaResult solve_sa(const PartitionProblem& problem,
                                const Assignment& initial,
                                const SaOptions& options = {});

}  // namespace qbp
