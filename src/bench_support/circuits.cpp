#include "bench_support/circuits.hpp"

#include <algorithm>
#include <utility>

#include "netlist/generator.hpp"
#include "timing/constraints.hpp"

#include "util/check.hpp"
#include "util/rng.hpp"

namespace qbp {

const std::array<CircuitPreset, 7>& shihkuh_presets() {
  static const std::array<CircuitPreset, 7> presets = {{
      {"ckta", 339, 8200, 3464, 0xA1u},
      {"cktb", 357, 3017, 1325, 0xB2u},
      {"cktc", 545, 12141, 11545, 0xC3u},
      {"cktd", 521, 6309, 6009, 0xD4u},
      {"ckte", 380, 3831, 3760, 0xE5u},
      {"cktf", 607, 4809, 4683, 0xF6u},
      {"cktg", 472, 3376, 3376, 0x07u},
  }};
  return presets;
}

const CircuitPreset* find_preset(const std::string& name) {
  for (const auto& preset : shihkuh_presets()) {
    if (preset.name == name) return &preset;
  }
  return nullptr;
}

CircuitInstance make_circuit(const CircuitPreset& preset,
                             const CircuitConfig& config) {
  constexpr std::int32_t kGridSide = 4;
  constexpr std::int32_t kPartitions = kGridSide * kGridSide;

  RandomNetlistSpec spec;
  spec.name = preset.name;
  spec.num_components = preset.num_components;
  spec.total_wires = preset.num_wires;
  spec.num_slots = kPartitions;
  spec.grid_width = kGridSide;
  spec.locality = config.locality;
  spec.seed = preset.seed;
  GeneratedNetlist generated = generate_netlist(spec);

  PartitionTopology topology =
      PartitionTopology::grid(kGridSide, kGridSide, config.metric);
  // Capacities: the hidden placement's usage plus headroom, so the hidden
  // placement is C1-feasible by construction and the instance stays tight.
  {
    std::vector<double> usage(kPartitions, 0.0);
    for (std::int32_t j = 0; j < preset.num_components; ++j) {
      usage[static_cast<std::size_t>(
          generated.hidden_slot[static_cast<std::size_t>(j)])] +=
          generated.netlist.component_size(j);
    }
    std::vector<double> capacities(kPartitions, 0.0);
    for (std::int32_t i = 0; i < kPartitions; ++i) {
      capacities[static_cast<std::size_t>(i)] =
          usage[static_cast<std::size_t>(i)] * (1.0 + config.capacity_slack);
    }
    topology.set_capacities(std::move(capacities));
  }

  TimingSpec timing_spec;
  timing_spec.target_count = preset.num_timing_constraints;
  timing_spec.seed = preset.seed ^ 0x7177u;
  TimingConstraints timing = generate_timing_constraints(
      generated.netlist, generated.hidden_slot, topology, timing_spec);

  CircuitInstance instance{
      PartitionProblem(std::move(generated.netlist), std::move(topology),
                       std::move(timing)),
      Assignment(std::move(generated.hidden_slot), kPartitions), preset};
  QBP_CHECK(instance.problem.is_feasible(instance.hidden_placement))
      << "construction must guarantee a feasible reference placement";
  return instance;
}

PartitionProblem make_scaling_problem(std::int32_t n, std::uint64_t seed) {
  RandomNetlistSpec spec;
  spec.name = "scale" + std::to_string(n);
  spec.num_components = n;
  spec.total_wires = 6 * static_cast<std::int64_t>(n);
  spec.seed = seed;
  GeneratedNetlist generated = generate_netlist(spec);
  PartitionTopology topology =
      PartitionTopology::grid(4, 4, CostKind::kManhattan);
  std::vector<double> usage(16, 0.0);
  for (std::int32_t j = 0; j < n; ++j) {
    usage[static_cast<std::size_t>(
        generated.hidden_slot[static_cast<std::size_t>(j)])] +=
        generated.netlist.component_size(j);
  }
  for (PartitionId i = 0; i < 16; ++i) {
    topology.set_capacity(i, usage[static_cast<std::size_t>(i)] * 1.15);
  }
  TimingSpec timing_spec;
  timing_spec.target_count = 3 * n;
  timing_spec.seed = seed ^ 0xabcd;
  TimingConstraints timing = generate_timing_constraints(
      generated.netlist, generated.hidden_slot, topology, timing_spec);
  return PartitionProblem(std::move(generated.netlist), std::move(topology),
                          std::move(timing));
}

PartitionProblem make_presolve_problem(std::int32_t n, std::uint64_t seed) {
  constexpr std::int32_t kPartitions = 16;
  // The grid's minimum separable delay is 1; any pair bound strictly below
  // that forces co-location (rule R2).
  constexpr double kCoLocationBound = 0.5;
  QBP_CHECK(n >= 64) << "presolve instances need room for the bait";

  const std::int32_t num_r2 = n * 15 / 100;
  const std::int32_t num_r1 = n * 5 / 100;
  const std::int32_t num_r0 = std::min<std::int32_t>(kPartitions, n / 50);
  const std::int32_t num_base = n - num_r2 - num_r1 - num_r0;

  RandomNetlistSpec spec;
  spec.name = "presolve" + std::to_string(n);
  spec.num_components = num_base;
  spec.total_wires = 6 * static_cast<std::int64_t>(num_base);
  spec.seed = seed;
  GeneratedNetlist generated = generate_netlist(spec);
  generated.netlist.finalize();

  PartitionTopology topology =
      PartitionTopology::grid(4, 4, CostKind::kManhattan);

  // Rebuild the base netlist so the bait can be appended after it.
  Netlist netlist(spec.name);
  std::vector<std::int32_t> slot = generated.hidden_slot;
  for (std::int32_t j = 0; j < num_base; ++j) {
    netlist.add_component("c" + std::to_string(j),
                          generated.netlist.component_size(j));
  }
  for (const WireBundle& bundle : generated.netlist.bundles()) {
    netlist.add_wires(bundle.a, bundle.b, bundle.multiplicity);
  }

  Rng rng(seed ^ 0x9e3779b97f4a7c15ull);
  // R2 companions: wired to a base host, co-location bound added below,
  // hidden at the host's slot so the reference placement satisfies it.
  std::vector<std::pair<std::int32_t, std::int32_t>> co_located;
  co_located.reserve(static_cast<std::size_t>(num_r2));
  for (std::int32_t k = 0; k < num_r2; ++k) {
    const auto host =
        static_cast<std::int32_t>(rng.next_below(static_cast<std::uint64_t>(num_base)));
    const std::int32_t id = netlist.add_component(
        "r2_" + std::to_string(k), rng.next_double(0.2, 0.8));
    netlist.add_wires(host, id,
                      static_cast<std::int32_t>(1 + rng.next_below(3)));
    slot.push_back(slot[static_cast<std::size_t>(host)]);
    co_located.emplace_back(host, id);
  }
  // R1 stragglers: tiny timing-free pendants (one wire, no constraints).
  for (std::int32_t k = 0; k < num_r1; ++k) {
    const auto host =
        static_cast<std::int32_t>(rng.next_below(static_cast<std::uint64_t>(num_base)));
    const std::int32_t id =
        netlist.add_component("r1_" + std::to_string(k), 0.25);
    netlist.add_wires(host, id, 1);
    slot.push_back(slot[static_cast<std::size_t>(host)]);
  }

  // Capacities from everything placed so far (the macros are accounted for
  // separately: each home partition is widened by exactly its macro).
  std::vector<double> capacities(kPartitions, 0.0);
  for (std::size_t j = 0; j < slot.size(); ++j) {
    capacities[static_cast<std::size_t>(slot[j])] +=
        netlist.component_size(static_cast<std::int32_t>(j));
  }
  for (double& capacity : capacities) capacity *= 1.15;

  // R0 macros: geometrically growing sizes, one distinct home partition
  // each, so the largest free macro always has a singleton capacity domain
  // and R0 fixes them in a cascade.
  double macro_size = 2.0 * *std::max_element(capacities.begin(),
                                              capacities.end());
  for (std::int32_t k = 0; k < num_r0; ++k) {
    const auto host =
        static_cast<std::int32_t>(rng.next_below(static_cast<std::uint64_t>(num_base)));
    const std::int32_t id =
        netlist.add_component("r0_" + std::to_string(k), macro_size);
    netlist.add_wires(host, id, 1);
    slot.push_back(k % kPartitions);
    capacities[static_cast<std::size_t>(k % kPartitions)] += macro_size;
    macro_size *= 3.0;
  }
  topology.set_capacities(std::move(capacities));
  netlist.finalize();

  // Timing lives on the base circuit only (the stragglers must stay
  // timing-free), plus the co-location bounds that feed R2.
  TimingSpec timing_spec;
  timing_spec.target_count = 3 * num_base;
  timing_spec.seed = seed ^ 0xabcd;
  const TimingConstraints base_timing = generate_timing_constraints(
      generated.netlist, generated.hidden_slot, topology, timing_spec);
  TimingConstraints timing(n);
  base_timing.matrix().for_each(
      [&](std::int32_t j1, std::int32_t j2, double bound) {
        if (j1 < j2) timing.add(j1, j2, bound);
      });
  for (const auto& [host, companion] : co_located) {
    timing.add(host, companion, kCoLocationBound);
  }

  PartitionProblem problem(std::move(netlist), std::move(topology),
                           std::move(timing));
  QBP_CHECK(problem.is_feasible(Assignment(std::move(slot), kPartitions)))
      << "construction must guarantee a feasible reference placement";
  return problem;
}

}  // namespace qbp
