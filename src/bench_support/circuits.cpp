#include "bench_support/circuits.hpp"


#include "netlist/generator.hpp"
#include "timing/constraints.hpp"

#include "util/check.hpp"

namespace qbp {

const std::array<CircuitPreset, 7>& shihkuh_presets() {
  static const std::array<CircuitPreset, 7> presets = {{
      {"ckta", 339, 8200, 3464, 0xA1u},
      {"cktb", 357, 3017, 1325, 0xB2u},
      {"cktc", 545, 12141, 11545, 0xC3u},
      {"cktd", 521, 6309, 6009, 0xD4u},
      {"ckte", 380, 3831, 3760, 0xE5u},
      {"cktf", 607, 4809, 4683, 0xF6u},
      {"cktg", 472, 3376, 3376, 0x07u},
  }};
  return presets;
}

const CircuitPreset* find_preset(const std::string& name) {
  for (const auto& preset : shihkuh_presets()) {
    if (preset.name == name) return &preset;
  }
  return nullptr;
}

CircuitInstance make_circuit(const CircuitPreset& preset,
                             const CircuitConfig& config) {
  constexpr std::int32_t kGridSide = 4;
  constexpr std::int32_t kPartitions = kGridSide * kGridSide;

  RandomNetlistSpec spec;
  spec.name = preset.name;
  spec.num_components = preset.num_components;
  spec.total_wires = preset.num_wires;
  spec.num_slots = kPartitions;
  spec.grid_width = kGridSide;
  spec.locality = config.locality;
  spec.seed = preset.seed;
  GeneratedNetlist generated = generate_netlist(spec);

  PartitionTopology topology =
      PartitionTopology::grid(kGridSide, kGridSide, config.metric);
  // Capacities: the hidden placement's usage plus headroom, so the hidden
  // placement is C1-feasible by construction and the instance stays tight.
  {
    std::vector<double> usage(kPartitions, 0.0);
    for (std::int32_t j = 0; j < preset.num_components; ++j) {
      usage[static_cast<std::size_t>(
          generated.hidden_slot[static_cast<std::size_t>(j)])] +=
          generated.netlist.component_size(j);
    }
    std::vector<double> capacities(kPartitions, 0.0);
    for (std::int32_t i = 0; i < kPartitions; ++i) {
      capacities[static_cast<std::size_t>(i)] =
          usage[static_cast<std::size_t>(i)] * (1.0 + config.capacity_slack);
    }
    topology.set_capacities(std::move(capacities));
  }

  TimingSpec timing_spec;
  timing_spec.target_count = preset.num_timing_constraints;
  timing_spec.seed = preset.seed ^ 0x7177u;
  TimingConstraints timing = generate_timing_constraints(
      generated.netlist, generated.hidden_slot, topology, timing_spec);

  CircuitInstance instance{
      PartitionProblem(std::move(generated.netlist), std::move(topology),
                       std::move(timing)),
      Assignment(std::move(generated.hidden_slot), kPartitions), preset};
  QBP_CHECK(instance.problem.is_feasible(instance.hidden_placement))
      << "construction must guarantee a feasible reference placement";
  return instance;
}

PartitionProblem make_scaling_problem(std::int32_t n, std::uint64_t seed) {
  RandomNetlistSpec spec;
  spec.name = "scale" + std::to_string(n);
  spec.num_components = n;
  spec.total_wires = 6 * static_cast<std::int64_t>(n);
  spec.seed = seed;
  GeneratedNetlist generated = generate_netlist(spec);
  PartitionTopology topology =
      PartitionTopology::grid(4, 4, CostKind::kManhattan);
  std::vector<double> usage(16, 0.0);
  for (std::int32_t j = 0; j < n; ++j) {
    usage[static_cast<std::size_t>(
        generated.hidden_slot[static_cast<std::size_t>(j)])] +=
        generated.netlist.component_size(j);
  }
  for (PartitionId i = 0; i < 16; ++i) {
    topology.set_capacity(i, usage[static_cast<std::size_t>(i)] * 1.15);
  }
  TimingSpec timing_spec;
  timing_spec.target_count = 3 * n;
  timing_spec.seed = seed ^ 0xabcd;
  TimingConstraints timing = generate_timing_constraints(
      generated.netlist, generated.hidden_slot, topology, timing_spec);
  return PartitionProblem(std::move(generated.netlist), std::move(topology),
                          std::move(timing));
}

}  // namespace qbp
