// The seven benchmark circuits of the paper's Table I, reproduced as
// synthetic instances matched to the published statistics.
//
//   ckt   # components   # wires   # timing constraints
//   ckta      339          8200          3464
//   cktb      357          3017          1325
//   cktc      545         12141         11545
//   cktd      521          6309          6009
//   ckte      380          3831          3760
//   cktf      607          4809          4683
//   cktg      472          3376          3376
//
// "In each circuit, the components correspond to functional blocks in the
// high level design and have different sizes ranging about 2 orders of
// magnitude in the same circuit.  The number of partitions is 16."
//
// Component/wire/constraint counts are hit *exactly* (tests pin this);
// sizes, connectivity locality and constraint tightness are synthesized --
// see DESIGN.md section 2 for the substitution argument.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/problem.hpp"
#include "partition/topology.hpp"

namespace qbp {

struct CircuitPreset {
  std::string name;
  std::int32_t num_components = 0;
  std::int64_t num_wires = 0;
  std::int64_t num_timing_constraints = 0;
  std::uint64_t seed = 0;
};

/// The seven Table I presets, in paper order.
[[nodiscard]] const std::array<CircuitPreset, 7>& shihkuh_presets();

/// Lookup by name ("ckta".."cktg"); returns nullptr when unknown.
[[nodiscard]] const CircuitPreset* find_preset(const std::string& name);

struct CircuitInstance {
  /// Full problem: 16 partitions on a 4 x 4 grid, Manhattan B = D, timing
  /// constraints attached, no linear term (the tables optimize pure
  /// Manhattan wirelength).
  PartitionProblem problem;
  /// The generator's hidden placement: feasible for both C1 and C2 by
  /// construction (proof that F_R is nonempty, as Theorem 1 requires).
  Assignment hidden_placement;
  CircuitPreset preset;
};

struct CircuitConfig {
  /// Capacity headroom over the hidden placement's per-partition usage.
  double capacity_slack = 0.12;
  /// Interconnection cost metric for B (the tables use Manhattan length).
  CostKind metric = CostKind::kManhattan;
  /// Wire locality of the generator (fraction of near-placement wires).
  double locality = 0.65;
};

/// Build a full instance for a preset; deterministic in preset.seed.
[[nodiscard]] CircuitInstance make_circuit(const CircuitPreset& preset,
                                           const CircuitConfig& config = {});

/// Fixed-density scaling instance (the bench_scaling / bench_runner sweep):
/// N components, wires ~ 6N, timing constraints ~ 3N, M = 16 on a 4 x 4
/// Manhattan grid, capacities 15% above the generator's hidden placement.
/// Deterministic in (n, seed).
[[nodiscard]] PartitionProblem make_scaling_problem(std::int32_t n,
                                                    std::uint64_t seed);

/// Scaling instance with deliberately reducible structure (the bench_runner
/// `presolve` suite).  Built like make_scaling_problem, then ~20% of the N
/// components are replaced by reduction bait while keeping a feasible
/// placement by construction:
///   - R2 companions (~15%): tiny components wired to a host with a
///     co-location timing bound (0.5, below the grid's minimum separable
///     delay of 1), so presolve must merge them into the host;
///   - R1 stragglers (~5%): tiny timing-free pendants with one wire, so
///     presolve can fold them out with a response table;
///   - R0 macros (up to 16): components so large they fit exactly one
///     partition, forcing a fix cascade (largest first, freed capacity
///     never re-admits a smaller macro elsewhere).
/// The standard circuits reduce to nothing by design; this family is how
/// the reduction rules (and their speedup) are actually measured.
/// Deterministic in (n, seed).
[[nodiscard]] PartitionProblem make_presolve_problem(std::int32_t n,
                                                     std::uint64_t seed);

}  // namespace qbp
