#include "bench_support/eco_stream.hpp"

#include <algorithm>
#include <vector>

#include "netlist/netlist.hpp"
#include "util/rng.hpp"

namespace qbp {

PartitionProblem make_eco_variant(const PartitionProblem& base,
                                  std::uint64_t seed, std::int32_t variant,
                                  const EcoVariantConfig& config) {
  const std::int32_t n = base.num_components();
  Rng master(seed);
  Rng stream = master.fork(static_cast<std::uint64_t>(variant));

  std::vector<double> sizes = base.netlist().sizes();
  const std::int32_t size_edits = std::max<std::int32_t>(
      1, n / 64 * config.size_edits_per_64);
  for (std::int32_t k = 0; k < size_edits; ++k) {
    const auto j = static_cast<std::size_t>(
        stream.next_below(static_cast<std::uint64_t>(n)));
    sizes[j] *= config.shrink;  // shrink-only: base-feasible stays feasible
  }

  // Canonical merged bundles (a < b) from the connection matrix, so the
  // perturbation is invariant to how the base netlist listed its wires.
  const auto& connections = base.netlist().connection_matrix();
  std::vector<WireBundle> bundles;
  bundles.reserve(static_cast<std::size_t>(base.netlist().num_connected_pairs()));
  for (std::int32_t a = 0; a < n; ++a) {
    const auto neighbors = connections.row_indices(a);
    const auto weights = connections.row_values(a);
    for (std::size_t k = 0; k < neighbors.size(); ++k) {
      if (neighbors[k] <= a) continue;
      bundles.push_back({a, neighbors[k], weights[k]});
    }
  }
  if (!bundles.empty()) {
    const std::int32_t wire_edits = std::max<std::int32_t>(
        1, n / 64 * config.wire_edits_per_64);
    for (std::int32_t k = 0; k < wire_edits; ++k) {
      WireBundle& bundle = bundles[static_cast<std::size_t>(
          stream.next_below(bundles.size()))];
      const std::int32_t delta = (stream() & 1) == 0 ? 1 : -1;
      bundle.multiplicity = std::max(1, bundle.multiplicity + delta);
    }
  }

  Netlist netlist(base.netlist().name());
  for (std::int32_t j = 0; j < n; ++j) {
    netlist.add_component(base.netlist().component(j).name,
                          sizes[static_cast<std::size_t>(j)]);
  }
  for (const WireBundle& bundle : bundles) {
    netlist.add_wires(bundle.a, bundle.b, bundle.multiplicity);
  }

  return PartitionProblem(std::move(netlist), base.topology(), base.timing(),
                          base.linear_cost_matrix(), base.alpha(),
                          base.beta());
}

}  // namespace qbp
