// Perturbed re-submission streams for the warm-start (`eco`) bench suite.
//
// An engineering-change order touches a handful of components and wires of
// an otherwise finished design.  make_eco_variant models that: starting
// from a base instance it shrinks a few component sizes and nudges a few
// wire-bundle multiplicities, leaving the partition topology, the timing
// constraints and the wire/delay structure untouched -- exactly the edit
// classes the service's ProblemDigest diff counts, so a variant is
// guaranteed to land inside the ECO edit budget and stay structurally
// compatible with the cached base solve.  Sizes only ever shrink, so every
// assignment feasible for the base stays capacity-feasible for the variant.
#pragma once

#include <cstdint>

#include "core/problem.hpp"

namespace qbp {

struct EcoVariantConfig {
  /// Components whose size is multiplied by `shrink` (at least 1).
  std::int32_t size_edits_per_64 = 1;  // ~N/64 edits
  double shrink = 0.9;
  /// Wire bundles whose multiplicity moves by +/-1, floored at 1.
  std::int32_t wire_edits_per_64 = 1;  // ~N/64 edits
};

/// Deterministic ECO perturbation `variant` (1-based is conventional but
/// any value works) of `base`; deterministic in (base, seed, variant).
[[nodiscard]] PartitionProblem make_eco_variant(
    const PartitionProblem& base, std::uint64_t seed, std::int32_t variant,
    const EcoVariantConfig& config = {});

}  // namespace qbp
