#include "bench_support/experiment.hpp"

#include <cstdio>
#include <sstream>

#include "core/initial.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace qbp {

ExperimentRow run_experiment(const std::string& circuit_name,
                             const PartitionProblem& problem,
                             const ExperimentConfig& config) {
  // Shared initial feasible solution via QBP with B = 0 (Section 5).
  const InitialResult initial = make_initial(
      problem, InitialStrategy::kQbpZeroWireCost, config.seed);
  return run_experiment_from(circuit_name, problem, initial.assignment,
                             initial.feasible, config);
}

ExperimentRow run_experiment_from(const std::string& circuit_name,
                                  const PartitionProblem& problem,
                                  const Assignment& start,
                                  bool initial_feasible,
                                  const ExperimentConfig& config) {
  ExperimentRow row;
  row.circuit = circuit_name;

  struct {
    Assignment assignment;
    bool feasible;
  } initial{start, initial_feasible && problem.is_feasible(start)};
  if (!initial.feasible) {
    log::warn("experiment ", circuit_name,
              ": start is not fully feasible; GFM/GKL are skipped");
  }
  row.start_cost = problem.wirelength(initial.assignment);

  const auto percent = [&](double final_cost) {
    return row.start_cost > 0.0
               ? (row.start_cost - final_cost) / row.start_cost * 100.0
               : 0.0;
  };

  if (config.run_qbp) {
    BurkardOptions options;
    options.iterations = config.qbp_iterations;
    options.penalty = config.penalty;
    options.inner_threads = config.inner_threads;
    options.presolve = config.presolve;
    const Timer timer;
    const BurkardResult qbp = solve_qbp(problem, initial.assignment, options);
    row.qbp.cpu_seconds = timer.seconds();
    const Assignment& chosen = qbp.found_feasible ? qbp.best_feasible : qbp.best;
    row.qbp.final_cost = problem.wirelength(chosen);
    row.qbp.feasible = qbp.found_feasible;
    row.qbp.improvement_pct = percent(row.qbp.final_cost);
  }

  if (config.run_gfm && initial.feasible) {
    const Timer timer;
    const GfmResult gfm = solve_gfm(problem, initial.assignment);
    row.gfm.cpu_seconds = timer.seconds();
    row.gfm.final_cost = problem.wirelength(gfm.assignment);
    row.gfm.feasible = problem.is_feasible(gfm.assignment);
    row.gfm.improvement_pct = percent(row.gfm.final_cost);
  }

  if (config.run_gkl && initial.feasible) {
    GklOptions options;
    options.max_outer_loops = config.gkl_outer_loops;
    const Timer timer;
    const GklResult gkl = solve_gkl(problem, initial.assignment, options);
    row.gkl.cpu_seconds = timer.seconds();
    row.gkl.final_cost = problem.wirelength(gkl.assignment);
    row.gkl.feasible = problem.is_feasible(gkl.assignment);
    row.gkl.improvement_pct = percent(row.gkl.final_cost);
  }

  return row;
}

std::string format_table(const std::string& title,
                         const std::vector<ExperimentRow>& rows) {
  TextTable table({"circuits", "start", "QBP final", "(-%)", "cpu", "GFM final",
                   "(-%)", "cpu", "GKL final", "(-%)", "cpu"});
  table.set_alignment({TextTable::Align::kLeft});
  for (const auto& row : rows) {
    const auto cost = [](double value) {
      return format_grouped(static_cast<long long>(value + 0.5));
    };
    table.add_row({row.circuit, cost(row.start_cost), cost(row.qbp.final_cost),
                   format_double(row.qbp.improvement_pct, 1),
                   format_double(row.qbp.cpu_seconds, 1),
                   cost(row.gfm.final_cost),
                   format_double(row.gfm.improvement_pct, 1),
                   format_double(row.gfm.cpu_seconds, 1),
                   cost(row.gkl.final_cost),
                   format_double(row.gkl.improvement_pct, 1),
                   format_double(row.gkl.cpu_seconds, 1)});
  }
  std::ostringstream out;
  out << title << "\n" << table.render();
  return out.str();
}

std::string rows_to_csv(const std::vector<ExperimentRow>& rows) {
  std::ostringstream out;
  out << "circuit,start,qbp_final,qbp_pct,qbp_cpu,qbp_feasible,"
         "gfm_final,gfm_pct,gfm_cpu,gfm_feasible,"
         "gkl_final,gkl_pct,gkl_cpu,gkl_feasible\n";
  for (const auto& row : rows) {
    const auto method = [&](const MethodOutcome& outcome) {
      std::ostringstream cell;
      cell << format_double(outcome.final_cost, 1) << ","
           << format_double(outcome.improvement_pct, 2) << ","
           << format_double(outcome.cpu_seconds, 3) << ","
           << (outcome.feasible ? 1 : 0);
      return cell.str();
    };
    out << row.circuit << "," << format_double(row.start_cost, 1) << ","
        << method(row.qbp) << "," << method(row.gfm) << "," << method(row.gkl)
        << "\n";
  }
  return out.str();
}

bool write_bench_json(const std::string& path, const json::Value& value) {
  if (path.empty()) return true;
  if (!json::write_json_file(path, value)) {
    std::fprintf(stderr, "cannot write '%s'\n", path.c_str());
    return false;
  }
  std::fprintf(stderr, "json written to %s\n", path.c_str());
  return true;
}

json::Value rows_to_json(const std::vector<ExperimentRow>& rows) {
  json::Value out = json::Value::array();
  for (const auto& row : rows) {
    const auto method = [](const MethodOutcome& outcome) {
      json::Value cell = json::Value::object();
      cell.set("final", outcome.final_cost);
      cell.set("improvement_pct", outcome.improvement_pct);
      cell.set("cpu_s", outcome.cpu_seconds);
      cell.set("feasible", outcome.feasible);
      return cell;
    };
    json::Value entry = json::Value::object();
    entry.set("circuit", row.circuit);
    entry.set("start", row.start_cost);
    entry.set("qbp", method(row.qbp));
    entry.set("gfm", method(row.gfm));
    entry.set("gkl", method(row.gkl));
    out.push_back(std::move(entry));
  }
  return out;
}

}  // namespace qbp
