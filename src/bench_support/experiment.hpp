// The Tables II / III protocol (paper Section 5), packaged for the benches:
//
//   * cost metric: total Manhattan wire length;
//   * one shared initial feasible solution per circuit, produced by QBP
//     with B = 0 ("this same initial solution is used for all three
//     approaches");
//   * QBP runs a fixed 100 iterations; GFM runs to convergence; GKL is cut
//     off after 6 outer loops;
//   * Table II drops the timing constraints, Table III keeps them.
#pragma once

#include <string>
#include <vector>

#include "baselines/gfm.hpp"
#include "baselines/gkl.hpp"
#include "bench_support/circuits.hpp"
#include "core/burkard.hpp"
#include "util/json.hpp"

namespace qbp {

struct ExperimentConfig {
  std::int32_t qbp_iterations = 100;
  double penalty = kPaperPenalty;
  std::int32_t gkl_outer_loops = 6;
  /// Threads inside the QBP solve (util/parallel pool); results are
  /// bit-identical at every value, only wall-clock changes.
  std::int32_t inner_threads = 1;
  /// Seed for the shared initial solution.
  std::uint64_t seed = 1993;
  /// Presolve configuration for the QBP leg (off by default, matching the
  /// paper protocol; the standard circuits reduce to nothing anyway, so
  /// enabling it leaves objectives bit-identical).
  PresolveOptions presolve{.enabled = false};
  bool run_qbp = true;
  bool run_gfm = true;
  bool run_gkl = true;
};

struct MethodOutcome {
  double final_cost = 0.0;       // wirelength (each wire once)
  double improvement_pct = 0.0;  // (start - final) / start * 100
  double cpu_seconds = 0.0;
  bool feasible = false;
};

struct ExperimentRow {
  std::string circuit;
  double start_cost = 0.0;
  MethodOutcome qbp;
  MethodOutcome gfm;
  MethodOutcome gkl;
};

/// Run the three methods on one problem (timing constraints as present in
/// `problem`; pass problem.without_timing() for the Table II variant).
[[nodiscard]] ExperimentRow run_experiment(const std::string& circuit_name,
                                           const PartitionProblem& problem,
                                           const ExperimentConfig& config = {});

/// As above, but from an explicit shared starting solution.  The paper uses
/// the *same* initial solution for Tables II and III ("start" columns are
/// identical), produced on the timing-constrained problem -- compute it
/// once with make_initial on the full problem and pass it to both variants.
[[nodiscard]] ExperimentRow run_experiment_from(const std::string& circuit_name,
                                                const PartitionProblem& problem,
                                                const Assignment& initial,
                                                bool initial_feasible,
                                                const ExperimentConfig& config);

/// Render rows in the paper's table layout.
[[nodiscard]] std::string format_table(const std::string& title,
                                       const std::vector<ExperimentRow>& rows);

/// Comma-separated dump for downstream plotting.
[[nodiscard]] std::string rows_to_csv(const std::vector<ExperimentRow>& rows);

/// Machine-readable dump: an array of row objects, one member per method
/// ({final, improvement_pct, cpu_s, feasible}).  The benches write this via
/// --json so the perf trajectory (bench/BENCH_*.json) diffs cleanly across
/// commits -- wall-clock fields aside.
[[nodiscard]] json::Value rows_to_json(const std::vector<ExperimentRow>& rows);

/// Shared --json tail of every bench binary: write `value` to `path`
/// (no-op returning true when `path` is empty), printing a diagnostic to
/// stderr on I/O failure.  Keeps the rows-to-file logic in one place
/// instead of per bench target.
[[nodiscard]] bool write_bench_json(const std::string& path,
                                    const json::Value& value);

}  // namespace qbp
