#include "bench_support/serve_bench.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <utility>

#include "bench_support/circuits.hpp"
#include "bench_support/eco_stream.hpp"
#include "core/problem_io.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "service/wire.hpp"
#include "util/annotations.hpp"
#include "util/check.hpp"
#include "util/hash.hpp"
#include "util/json.hpp"
#include "util/timer.hpp"
#include "util/wire.hpp"

namespace qbp {

namespace {

/// One pre-encoded request: the NDJSON line, or a binary frame already
/// split into (type, payload) so the timed loop calls handle_frame
/// directly, like the serve loop does after FrameBuffer::next.
struct Encoded {
  std::string line;
  std::uint8_t frame_type = 0;
  std::string frame_payload;
};

/// Thread-safe reply collector shared with the server's worker threads.
class ReplyBox {
 public:
  void push(std::string reply) {
    const sync::MutexLock lock(mutex_);
    replies_.push_back(std::move(reply));
    cv_.notify_all();
  }

  void wait_for(std::size_t count) {
    sync::MutexLock lock(mutex_);
    while (replies_.size() < count) cv_.wait(mutex_);
  }

  [[nodiscard]] std::vector<std::string> take() {
    const sync::MutexLock lock(mutex_);
    return std::move(replies_);
  }

 private:
  sync::Mutex mutex_;
  sync::CondVar cv_;
  std::vector<std::string> replies_ QBP_GUARDED_BY(mutex_);
};

service::Request make_submit(const ServeBenchConfig& config,
                             bool use_cache) {
  service::Request request;
  request.type = service::RequestType::kSubmit;
  request.solver.method = "qbp";
  request.solver.starts = config.starts;
  request.solver.iterations = config.iterations;
  request.solver.seed = 7;
  request.solver.inner_threads = config.inner_threads;
  // Pinned explicitly so the spec fingerprint (and with it the exact-hit
  // behaviour) is independent of the build's validation default.
  request.solver.validate = false;
  request.solver.presolve = false;
  request.cache = use_cache;
  request.warm_start = use_cache;
  return request;
}

/// Decode one reply under either framing.  Returns false unless it is a
/// well-formed "result".
bool decode_reply(const std::string& reply, bool binary,
                  service::JobResult& result) {
  if (binary) {
    wire::FrameView frame;
    std::string error;
    if (wire::peek_frame(reply, frame, error) != wire::FrameStatus::kFrame ||
        frame.frame_size != reply.size()) {
      return false;
    }
    if (static_cast<service::WireMsg>(frame.type) !=
        service::WireMsg::kResult) {
      return false;
    }
    return service::decode_result(frame.payload, result, error);
  }
  json::Value value;
  if (!json::parse(reply, value).ok) return false;
  if (value.get_string("type") != "result") return false;
  return service::result_from_json(value, result).ok;
}

/// Fold one result's non-timing fields into the canonical digest stream.
void absorb_result(const service::JobResult& result, StreamHasher& hasher) {
  hasher.absorb_bytes(result.id);
  hasher.absorb_bytes(result.status);
  hasher.absorb_bytes(result.solver);
  hasher.absorb(static_cast<std::int64_t>(result.feasible ? 1 : 0));
  hasher.absorb(result.objective);
  hasher.absorb(result.best_penalized);
  hasher.absorb(static_cast<std::int64_t>(result.assignment.size()));
  for (const std::int32_t part : result.assignment) hasher.absorb(part);
  hasher.absorb(result.starts_run);
  hasher.absorb(static_cast<std::int64_t>(result.cache_hit ? 1 : 0));
  hasher.absorb(static_cast<std::int64_t>(result.warm_start ? 1 : 0));
  hasher.absorb(result.eco_repairs);
  hasher.absorb(result.eco_edits);
}

/// Render `request` for one framing.  Binary submissions carry the parsed
/// problem struct (request.problem), exercising the zero-copy decode path.
Encoded encode(const service::Request& request, bool binary) {
  Encoded out;
  if (!binary) {
    out.line = service::format_request(request);
    return out;
  }
  std::string frame;
  service::encode_request_frame(request, frame);
  wire::FrameView view;
  std::string error;
  QBP_CHECK(wire::peek_frame(frame, view, error) == wire::FrameStatus::kFrame);
  out.frame_type = view.type;
  out.frame_payload = std::string(view.payload);
  return out;
}

ServeRow run_batch(const std::string& scenario, bool binary,
                   std::int32_t workers, const std::vector<Encoded>& prime,
                   const std::vector<Encoded>& batch) {
  service::ServerOptions options;
  options.workers = workers;
  options.queue_capacity = batch.size() + prime.size() + 4;
  options.cache_capacity = 64;
  service::Server server(options);

  ReplyBox box;
  const service::Server::Sink sink = [&box](const std::string& reply) {
    box.push(reply);
  };
  const auto dispatch = [&](const Encoded& request) {
    if (binary) {
      server.handle_frame(request.frame_type, request.frame_payload, sink);
    } else {
      server.handle_line(request.line, sink);
    }
  };

  for (const Encoded& request : prime) dispatch(request);
  box.wait_for(prime.size());
  (void)box.take();  // priming replies are not part of the digest

  const Timer timer;
  for (const Encoded& request : batch) dispatch(request);
  box.wait_for(batch.size());
  const double seconds = timer.seconds();
  server.drain();

  // Decode, then hash in id order: worker completion order is not part of
  // the contract, the per-job payloads are.
  const std::vector<std::string> replies = box.take();
  bool ok = replies.size() == batch.size();
  std::vector<service::JobResult> results;
  for (const std::string& reply : replies) {
    service::JobResult result;
    if (decode_reply(reply, binary, result)) {
      results.push_back(std::move(result));
    } else {
      ok = false;
    }
  }
  std::sort(results.begin(), results.end(),
            [](const service::JobResult& a, const service::JobResult& b) {
              return a.id < b.id;
            });
  StreamHasher hasher;
  std::int32_t cache_hits = 0;
  std::int32_t warm_hits = 0;
  for (const service::JobResult& result : results) {
    absorb_result(result, hasher);
    if (result.cache_hit) ++cache_hits;
    if (result.warm_start) ++warm_hits;
  }

  ServeRow row;
  row.scenario = scenario;
  row.framing = binary ? "binary" : "ndjson";
  row.workers = workers;
  row.jobs = static_cast<std::int32_t>(batch.size());
  row.seconds = seconds;
  row.jobs_per_sec = seconds > 0.0 ? row.jobs / seconds : 0.0;
  row.results_hash = hasher.finish().to_hex();
  row.cache_hits = cache_hits;
  row.warm_hits = warm_hits;
  row.ok = ok;
  return row;
}

}  // namespace

std::vector<ServeRow> run_serve_bench(const ServeBenchConfig& config) {
  // One canonical problem text; BOTH framings submit the same value
  // (binary parses it back into the struct it ships), so replies must be
  // bit-identical across framings -- the gate compares the digests.
  const PartitionProblem base = make_scaling_problem(config.n, 7);
  std::string base_text;
  {
    std::ostringstream out;
    write_problem(out, base);
    base_text = out.str();
  }
  const auto parse_text = [](const std::string& text) {
    auto problem = std::make_shared<PartitionProblem>();
    std::istringstream in(text);
    QBP_CHECK(read_problem(in, *problem).ok);
    return problem;
  };
  const auto parsed_base = parse_text(base_text);

  std::vector<std::string> variant_texts;
  for (std::int32_t v = 1; v <= config.warm_jobs; ++v) {
    const PartitionProblem variant = make_eco_variant(base, 7, v);
    std::ostringstream out;
    write_problem(out, variant);
    variant_texts.push_back(out.str());
  }

  std::vector<ServeRow> rows;
  for (const bool binary : {false, true}) {
    const auto submit = [&](const std::string& id, const std::string& text,
                            bool use_cache) {
      service::Request request = make_submit(config, use_cache);
      request.id = id;
      if (binary) {
        request.problem = parse_text(text);
      } else {
        request.problem_text = text;
      }
      return encode(request, binary);
    };

    for (const std::int32_t workers : config.worker_counts) {
      // cold: per-request cache opt-out, so every job runs the full
      // decode + parse + solve path.
      std::vector<Encoded> cold;
      for (std::int32_t k = 0; k < config.jobs; ++k) {
        cold.push_back(submit("cold-" + std::to_string(1000 + k), base_text,
                              /*use_cache=*/false));
      }
      rows.push_back(run_batch("cold", binary, workers, {}, cold));

      // exact: primed off-timer; every timed job is a fingerprint hit, so
      // the row isolates protocol + dispatch overhead (the 3x headline).
      std::vector<Encoded> prime = {
          submit("prime", base_text, /*use_cache=*/true)};
      std::vector<Encoded> exact;
      for (std::int32_t k = 0; k < config.jobs; ++k) {
        exact.push_back(submit("exact-" + std::to_string(1000 + k),
                               base_text, /*use_cache=*/true));
      }
      rows.push_back(run_batch("exact", binary, workers, prime, exact));
    }

    // warm: distinct ECO variants of the primed base; single worker keeps
    // the cache insertion order (and thus every warm result) deterministic.
    std::vector<Encoded> prime = {
        submit("prime", base_text, /*use_cache=*/true)};
    std::vector<Encoded> warm;
    for (std::size_t v = 0; v < variant_texts.size(); ++v) {
      warm.push_back(submit("warm-" + std::to_string(1000 + v),
                            variant_texts[v], /*use_cache=*/true));
    }
    rows.push_back(run_batch("warm", binary, /*workers=*/1, prime, warm));
  }

  for (const ServeRow& row : rows) {
    std::fprintf(stderr,
                 "  %s/%s workers=%d: %d jobs in %.3fs (%.0f/s, %d hits, "
                 "%d warm)%s\n",
                 row.scenario.c_str(), row.framing.c_str(), row.workers,
                 row.jobs, row.seconds, row.jobs_per_sec, row.cache_hits,
                 row.warm_hits, row.ok ? "" : "  NOT OK");
  }
  return rows;
}

}  // namespace qbp
