// Saturated qbpartd throughput: drive an in-process service::Server with
// pre-encoded requests (rendered outside the timed region, so the rows
// measure the server's decode + dispatch + solve + respond path, not the
// load generator) and report jobs/sec per scenario:
//
//   cold   every job solves from scratch (per-request cache opt-out);
//   exact  every job is an exact fingerprint cache hit (primed off-timer);
//   warm   every job is a distinct ECO variant answered by the warm
//          re-solve path (workers=1 only -- warm results depend on cache
//          insertion order, which only a single worker keeps deterministic).
//
// Each scenario runs under both edge framings (NDJSON lines through
// handle_line, binary wire frames through handle_frame) and each worker
// count.  `results_hash` digests every non-timing field of every reply in
// id order; the bench gate compares it exactly across framings, worker
// counts and baseline runs -- the serving acceptance contract ("results are
// bit-identical between NDJSON and binary framing and across worker
// counts") checked by machine.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace qbp {

struct ServeBenchConfig {
  /// Components per submitted problem.
  std::int32_t n = 400;
  /// Jobs per timed batch (cold/exact); warm runs `warm_jobs` variants.
  std::int32_t jobs = 64;
  std::int32_t warm_jobs = 16;
  /// QBP iteration budget of each cold solve.  Together with `starts` this
  /// must be enough that the solve lands feasible (see `starts` below).
  std::int32_t iterations = 10;
  /// Portfolio starts per job.  Enough that the cold solve lands feasible
  /// ("ok"): only ok results enter the cache, and the exact and warm
  /// scenarios need the primed entry to exist.
  std::int32_t starts = 4;
  std::int32_t inner_threads = 1;
  /// Worker counts exercised for the cold and exact scenarios.
  std::vector<std::int32_t> worker_counts = {1, 4};
};

struct ServeRow {
  std::string scenario;  // cold | exact | warm
  std::string framing;   // ndjson | binary
  std::int32_t workers = 0;
  std::int32_t jobs = 0;
  double seconds = 0.0;
  double jobs_per_sec = 0.0;
  /// Canonical digest of all replies (id, status, solver, feasible,
  /// objective bits, assignment, cache/warm flags, ECO counters) in id
  /// order; timing fields excluded.  Exact-gated by the bench gate.
  std::string results_hash;
  /// Replies answered from the exact-hit / warm-start cache paths.  Both
  /// are deterministic and exact-gated: a feasibility or cache regression
  /// that silently turns the exact scenario into cold solves fails the
  /// gate even though the rows would still "work".
  std::int32_t cache_hits = 0;
  std::int32_t warm_hits = 0;
  /// Every reply decoded as a "result" (no rejects, errors, drops).
  bool ok = false;
};

[[nodiscard]] std::vector<ServeRow> run_serve_bench(
    const ServeBenchConfig& config);

}  // namespace qbp
