#include "core/brute_force.hpp"

#include <cmath>

#include "core/qhat.hpp"

#include "util/check.hpp"

namespace qbp {

void enumerate_assignments(std::int32_t num_components,
                           std::int32_t num_partitions,
                           const std::function<void(const Assignment&)>& visit) {
  QBP_CHECK(num_components >= 0 && num_partitions >= 1)
      << "brute force needs a sane shape (" << num_components << " components, "
      << num_partitions << " partitions)";
  const double total = std::pow(num_partitions, num_components);
  QBP_CHECK_LE(total, double(1 << 24))
      << "instance too large for brute force";

  Assignment assignment(num_components, num_partitions);
  for (std::int32_t j = 0; j < num_components; ++j) assignment.set(j, 0);

  while (true) {
    visit(assignment);
    // Odometer increment over base-M digits.
    std::int32_t j = 0;
    while (j < num_components) {
      const PartitionId next = assignment[j] + 1;
      if (next < num_partitions) {
        assignment.set(j, next);
        break;
      }
      assignment.set(j, 0);
      ++j;
    }
    if (j == num_components) break;
  }
}

BruteForceResult brute_force_constrained(const PartitionProblem& problem) {
  BruteForceResult result;
  enumerate_assignments(
      problem.num_components(), problem.num_partitions(),
      [&](const Assignment& assignment) {
        if (!problem.satisfies_capacity(assignment)) return;
        if (!problem.satisfies_timing(assignment)) return;
        ++result.feasible_count;
        const double value = problem.objective(assignment);
        if (!result.found || value < result.value) {
          result.found = true;
          result.value = value;
          result.best = assignment;
        }
      });
  return result;
}

BruteForceResult brute_force_penalized(const PartitionProblem& problem,
                                       double penalty) {
  const QhatMatrix qhat(problem, penalty);
  BruteForceResult result;
  enumerate_assignments(
      problem.num_components(), problem.num_partitions(),
      [&](const Assignment& assignment) {
        if (!problem.satisfies_capacity(assignment)) return;
        ++result.feasible_count;
        const double value = qhat.penalized_value(assignment);
        if (!result.found || value < result.value) {
          result.found = true;
          result.value = value;
          result.best = assignment;
        }
      });
  return result;
}

}  // namespace qbp
