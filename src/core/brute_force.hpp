// Exact exhaustive solvers for tiny instances -- the test oracle behind the
// embedding theorems and the heuristics' quality checks.  Enumerates all
// M^N complete assignments; guarded to stay within a work budget.
#pragma once

#include <cstdint>
#include <functional>

#include "core/problem.hpp"

namespace qbp {

struct BruteForceResult {
  Assignment best;
  double value = 0.0;
  /// False when no assignment satisfies the constraints (or none exists
  /// within the enumeration budget, which asserts instead).
  bool found = false;
  /// Assignments satisfying the constraint set that was enforced.
  std::int64_t feasible_count = 0;
};

/// Exact minimum of the *constrained* problem: the true objective over
/// assignments satisfying C1, C2 (and C3 implicitly).
[[nodiscard]] BruteForceResult brute_force_constrained(
    const PartitionProblem& problem);

/// Exact minimum of the *embedded* problem QBP(Qhat): the penalized value
/// y^T Qhat y over assignments satisfying only C1 (and C3) -- timing enters
/// through the penalty, exactly as the transformed problem of Section 3.2.
[[nodiscard]] BruteForceResult brute_force_penalized(
    const PartitionProblem& problem, double penalty);

/// Exhaustively enumerate complete assignments, calling `visit` on each.
/// Exposed for property tests.  Asserts M^N <= 2^24.
void enumerate_assignments(std::int32_t num_components,
                           std::int32_t num_partitions,
                           const std::function<void(const Assignment&)>& visit);

}  // namespace qbp
