#include "core/burkard.hpp"

#include <cmath>

#include "core/delta_evaluator.hpp"
#include "core/qhat.hpp"
#include "core/validate.hpp"
#include "util/log.hpp"
#include "util/parallel.hpp"
#include "util/prof.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"
#include "util/timer.hpp"

#include "util/check.hpp"

namespace qbp {

/// Greedy descent on the penalized objective: per round, a best-move sweep
/// over every (component, partition) pair, then a first-improvement swap
/// sweep over connected pairs, constrained pairs and a random pair sample.
/// Capacity C1 stays invariant throughout; timing enters via the penalty.
/// All deltas flow through the shared DeltaEvaluator: the move sweep reads
/// the cached per-component row (one O(degree * M) build amortized over the
/// sweep instead of M separate O(degree) evaluations), and commits keep the
/// cache stamps exact.  Declared in burkard.hpp: the multilevel V-cycle uses
/// the same descent as its per-level refinement.
void polish_iterate(const PartitionProblem& problem, DeltaEvaluator& evaluator,
                    Assignment& u, std::int32_t max_sweeps,
                    std::uint64_t sweep_seed, std::int32_t inner_threads) {
  if (max_sweeps <= 0) return;
  evaluator.invalidate();  // `u` changed hands since the last polish
  const std::int32_t n = problem.num_components();
  const std::int32_t m = problem.num_partitions();
  const auto& sizes = problem.netlist().sizes();
  CapacityLedger ledger(u, sizes, problem.topology().capacities());
  constexpr double kEps = 1e-9;
  Rng rng(sweep_seed);

  const auto try_swap = [&](std::int32_t a, std::int32_t b) {
    if (a == b || u[a] == u[b]) return false;
    const double sa = sizes[static_cast<std::size_t>(a)];
    const double sb = sizes[static_cast<std::size_t>(b)];
    if (ledger.usage(u[a]) - sa + sb >
        ledger.capacity(u[a]) + CapacityLedger::kTolerance) {
      return false;
    }
    if (ledger.usage(u[b]) - sb + sa >
        ledger.capacity(u[b]) + CapacityLedger::kTolerance) {
      return false;
    }
    if (evaluator.swap_delta(u, a, b) >= -kEps) return false;
    const PartitionId pa = u[a];
    const PartitionId pb = u[b];
    ledger.remove(pa, sa);
    ledger.add(pb, sa);
    ledger.remove(pb, sb);
    ledger.add(pa, sb);
    evaluator.commit_swap(u, a, b);
    return true;
  };

  const auto& adjacency = problem.netlist().connection_matrix();
  for (std::int32_t sweep = 0; sweep < max_sweeps; ++sweep) {
    QBP_PROF_SCOPE("polish.sweep");
    bool improved = false;

    // Build all stale evaluator rows for the sweep up front, in parallel.
    // A row still valid when the serial scan below reaches it is byte-for-
    // byte what the lazy build would have produced (its component's
    // neighbors have not moved since, by definition of validity), so this
    // only shifts *when* rows are built -- results are unchanged, and at
    // inner_threads == 1 the prefetch is skipped to keep the serial path
    // free of double builds.
    if (inner_threads > 1) evaluator.prefetch_rows(u, inner_threads);

    // Move sweep: best capacity-feasible improving move per component,
    // selected from the evaluator's cached all-targets row.
    for (std::int32_t j = 0; j < n; ++j) {
      const std::span<const double> deltas = evaluator.move_deltas(u, j);
      PartitionId best_target = -1;
      double best_delta = -kEps;
      for (PartitionId i = 0; i < m; ++i) {
        if (i == u[j]) continue;
        if (!ledger.fits(i, sizes[static_cast<std::size_t>(j)])) continue;
        const double delta = deltas[static_cast<std::size_t>(i)];
        if (delta < best_delta) {
          best_delta = delta;
          best_target = i;
        }
      }
      if (best_target >= 0) {
        ledger.remove(u[j], sizes[static_cast<std::size_t>(j)]);
        ledger.add(best_target, sizes[static_cast<std::size_t>(j)]);
        evaluator.commit_move(u, j, best_target);
        improved = true;
      }
    }

    // Swap sweep (the move class GKL uses): connected pairs, constrained
    // pairs, and a random sample for pure capacity exchanges.
    for (std::int32_t a = 0; a < n; ++a) {
      for (const std::int32_t b : adjacency.row_indices(a)) {
        if (b > a && try_swap(a, b)) improved = true;
      }
      for (const std::int32_t b : problem.timing().partners(a)) {
        if (b > a && try_swap(a, b)) improved = true;
      }
    }
    for (std::int32_t k = 0; k < n; ++k) {
      const auto a = static_cast<std::int32_t>(
          rng.next_below(static_cast<std::uint64_t>(n)));
      const auto b = static_cast<std::int32_t>(
          rng.next_below(static_cast<std::uint64_t>(n)));
      if (try_swap(a, b)) improved = true;
    }

    if (!improved) break;
  }
}

/// Map a reduced-space BurkardResult back onto the original problem: lift
/// both incumbents, shift objectives by the folded constant, recompute the
/// penalized value from scratch on the original instance (the reduced-space
/// value is only offset-exact for capacity-feasible iterates), and
/// shadow-check the lifted claims against the original problem.
BurkardResult lift_burkard_result(const PartitionProblem& original,
                                  const ReducedProblem& reduced,
                                  BurkardResult result, double penalty) {
  const double offset = reduced.lift.objective_offset;
  result.best = reduced.lift.lift(result.best);
  result.best_penalized =
      QhatMatrix(original, penalty).penalized_value(result.best);
  if (result.found_feasible) {
    result.best_feasible = reduced.lift.lift(result.best_feasible);
    result.best_feasible_objective += offset;
  }
  for (double& incumbent : result.history) incumbent += offset;
  if (validation_enabled()) {
    ValidateOptions validate_options;
    validate_options.penalty = penalty;
    ReportedOutcome outcome;
    outcome.best = &result.best;
    outcome.best_penalized = result.best_penalized;
    if (result.found_feasible) {
      outcome.best_feasible = &result.best_feasible;
      outcome.best_feasible_objective = result.best_feasible_objective;
    }
    enforce(validate_outcome(original, outcome, validate_options),
            "presolve.lift(qbp)");
  }
  return result;
}

/// Exact remainder solution (RN) as a BurkardResult, lifted and checked.
BurkardResult rn_burkard_result(const PartitionProblem& original,
                                const ReducedProblem& reduced, double penalty) {
  BurkardResult result;
  result.best = reduced.rn_assignment;
  result.best_feasible = reduced.rn_assignment;
  result.best_feasible_objective = reduced.rn_objective;
  result.found_feasible = true;
  return lift_burkard_result(original, reduced, std::move(result), penalty);
}

BurkardResult solve_qbp(const PartitionProblem& problem, const Assignment& initial,
                        const BurkardOptions& options) {
  if (options.presolve.enabled) {
    const Timer timer;
    const bool needs_normalize =
        problem.alpha() != 1.0 || problem.beta() != 1.0;
    const ReducedProblem reduced =
        needs_normalize ? presolve(problem.normalized(), options.presolve)
                        : presolve(problem, options.presolve);
    BurkardOptions inner = options;
    inner.presolve.enabled = false;
    if (reduced.identity() && !reduced.rn_feasible) {
      // No rule fired: run on the untouched original, bit-identical to
      // presolve off.
      return solve_qbp(problem, initial, inner);
    }
    BurkardResult result;
    if (reduced.rn_feasible) {
      result = rn_burkard_result(problem, reduced, options.penalty);
    } else {
      const Assignment start = reduced.lift.restrict_to_reduced(initial);
      result = lift_burkard_result(problem, reduced,
                                   solve_qbp(reduced.problem, start, inner),
                                   options.penalty);
    }
    result.seconds = timer.seconds();
    result.seconds_best_start = result.seconds;
    return result;
  }

  QBP_CHECK_EQ(initial.num_components(), problem.num_components());
  QBP_CHECK(initial.is_complete()) << "the starting solution must satisfy C3";

  const Timer timer;
  const QhatMatrix qhat(problem, options.penalty);
  DeltaEvaluator evaluator(problem, options.penalty);
  const std::vector<double> omega = qhat.omega();  // STEP 2 bounds

  // Intra-solve thread budget; every hot phase below receives it.  The
  // shared pool fair-shares when several solves run concurrently.
  const std::int32_t inner = par::resolve_threads(options.inner_threads);

  // The flat eta / h vectors (r = i + j * M) are exactly the column-major
  // layout the GAP heuristic scans, so they bind zero-copy via cost_flat --
  // no per-iteration reshape allocation.
  GapProblem gap;
  gap.flat_agents = problem.num_partitions();
  gap.sizes = problem.netlist().sizes();
  gap.capacities = problem.topology().capacities();
  GapOptions gap_step4 = options.gap_step4;
  gap_step4.threads = inner;
  GapOptions gap_step6 = options.gap_step6;
  gap_step6.threads = inner;

  BurkardResult result;
  // STEP 2: u* <- u(1), z* <- u*^T Qhat u*.
  Assignment u = initial;
  result.best = u;
  result.best_penalized = qhat.penalized_value(u);

  const auto consider_feasible = [&](const Assignment& candidate) {
    if (!problem.satisfies_capacity(candidate) ||
        !problem.satisfies_timing(candidate)) {
      return;
    }
    const double objective = problem.objective(candidate);
    if (!result.found_feasible || objective < result.best_feasible_objective) {
      result.found_feasible = true;
      result.best_feasible = candidate;
      result.best_feasible_objective = objective;
    }
  };
  consider_feasible(u);

  const std::int64_t flat_size = problem.flat_size();
  std::vector<double> eta(static_cast<std::size_t>(flat_size), 0.0);
  std::vector<double> h(static_cast<std::size_t>(flat_size), 0.0);  // STEP 1

  for (std::int32_t k = 1; k <= options.iterations; ++k) {
    // STEP 3: eta gather and xi.
    double xi = 0.0;
    {
      QBP_PROF_SCOPE("burkard.step3_eta");
      qhat.eta(u, eta, inner);
      if (options.eta_includes_omega) {
        for (std::int32_t j = 0; j < problem.num_components(); ++j) {
          const std::int64_t r = problem.flat_index(u[j], j);
          eta[static_cast<std::size_t>(r)] += omega[static_cast<std::size_t>(r)];
        }
      }
      for (std::int32_t j = 0; j < problem.num_components(); ++j) {
        xi += omega[static_cast<std::size_t>(problem.flat_index(u[j], j))];
      }
    }

    // STEP 4: z = min_{u in S} eta . u  (a GAP; only the value is used).
    double z = 0.0;
    {
      QBP_PROF_SCOPE("burkard.step4_gap");
      gap.cost_flat = std::span<const double>(eta);
      const GapResult step4 = solve_gap(gap, gap_step4);
      if (!step4.feasible) ++result.infeasible_inner_solves;
      z = step4.cost;
    }

    // STEP 5: accumulate the normalized direction.  Element-wise over
    // fixed chunks: no FP reassociation, bit-identical at any thread count.
    {
      QBP_PROF_SCOPE("burkard.step5_h");
      const double scale = 1.0 / std::max(1.0, std::abs(z - xi));
      par::parallel_for(flat_size, /*grain=*/8192, inner,
                        [&](std::int64_t begin, std::int64_t end,
                            std::int32_t) {
                          // h[s] += eta[s] * scale over the chunk; the SIMD
                          // kernel is bit-identical to the scalar loop.
                          simd::axpy(scale, eta.data() + begin,
                                     h.data() + begin, end - begin);
                        });
    }

    // STEP 6: u(k+1) = argmin_{u in S} h . u.
    std::optional<GapResult> step6_result;
    {
      QBP_PROF_SCOPE("burkard.step6_gap");
      gap.cost_flat = std::span<const double>(h);
      step6_result = solve_gap(gap, gap_step6);
    }
    const GapResult& step6 = *step6_result;
    if (!step6.feasible) ++result.infeasible_inner_solves;
    Assignment next(step6.agent_of_item, problem.num_partitions());

    // Enhancement: polish the iterate into a penalized local minimum
    // (capacity-preserving moves only) before evaluating it.
    if (step6.feasible) {
      polish_iterate(problem, evaluator, next, options.polish_sweeps,
                     0x9b1eu ^ static_cast<std::uint64_t>(k), inner);
    }

    // STEP 7: incumbent update by penalized value; feasible incumbent is
    // tracked separately (Theorem 2 certification needs C2 to hold).
    const double penalized = qhat.penalized_value(next);
    if (penalized < result.best_penalized) {
      result.best_penalized = penalized;
      result.best = next;
    }
    if (step6.feasible) consider_feasible(next);

    if (options.record_history) result.history.push_back(result.best_penalized);
    result.iterations_run = k;
    u = std::move(next);

    // Periodic restart: re-aim the line search at the (perturbed)
    // incumbent so successive rounds explore different basins.
    if (options.restart_period > 0 && k % options.restart_period == 0) {
      std::fill(h.begin(), h.end(), 0.0);
      u = result.found_feasible ? result.best_feasible : result.best;
      if (options.restart_perturbation > 0.0) {
        Rng kick_rng(0xfeedu ^ static_cast<std::uint64_t>(k));
        const auto& sizes = problem.netlist().sizes();
        CapacityLedger ledger(u, sizes, problem.topology().capacities());
        const auto kicks = static_cast<std::int32_t>(
            options.restart_perturbation * problem.num_components());
        for (std::int32_t kick = 0; kick < kicks; ++kick) {
          const auto j = static_cast<std::int32_t>(kick_rng.next_below(
              static_cast<std::uint64_t>(problem.num_components())));
          const auto target = static_cast<PartitionId>(kick_rng.next_below(
              static_cast<std::uint64_t>(problem.num_partitions())));
          if (target == u[j] ||
              !ledger.fits(target, sizes[static_cast<std::size_t>(j)])) {
            continue;
          }
          ledger.remove(u[j], sizes[static_cast<std::size_t>(j)]);
          ledger.add(target, sizes[static_cast<std::size_t>(j)]);
          u.set(j, target);
        }
        // Descend from the kicked point (iterated local search): the kick
        // only diversifies if the following descent happens before the
        // global field re-absorbs it.
        polish_iterate(problem, evaluator, u, options.polish_sweeps,
                       0x15edu ^ static_cast<std::uint64_t>(k), inner);
        const double kicked = qhat.penalized_value(u);
        if (kicked < result.best_penalized) {
          result.best_penalized = kicked;
          result.best = u;
        }
        consider_feasible(u);
      }
    }

    log::debug("burkard iter ", k, ": penalized incumbent ",
               result.best_penalized, ", step-4 z = ", z);

    if (options.time_budget_seconds > 0.0 &&
        timer.seconds() >= options.time_budget_seconds) {
      break;
    }
    if (options.should_stop && options.should_stop()) break;
  }

  result.seconds = timer.seconds();
  result.seconds_best_start = result.seconds;
  return result;
}

BurkardResult solve_qbp_multistart(const PartitionProblem& problem,
                                   std::int32_t starts, std::uint64_t seed,
                                   const BurkardOptions& options) {
  QBP_CHECK_GE(starts, 1);
  if (options.presolve.enabled) {
    // Reduce once, share the reduced instance across every start.
    const Timer timer;
    const bool needs_normalize =
        problem.alpha() != 1.0 || problem.beta() != 1.0;
    const ReducedProblem reduced =
        needs_normalize ? presolve(problem.normalized(), options.presolve)
                        : presolve(problem, options.presolve);
    BurkardOptions inner = options;
    inner.presolve.enabled = false;
    if (reduced.identity() && !reduced.rn_feasible) {
      return solve_qbp_multistart(problem, starts, seed, inner);
    }
    BurkardResult result =
        reduced.rn_feasible
            ? rn_burkard_result(problem, reduced, options.penalty)
            : lift_burkard_result(
                  problem, reduced,
                  solve_qbp_multistart(reduced.problem, starts, seed, inner),
                  options.penalty);
    result.seconds = timer.seconds();
    return result;
  }
  const Timer timer;
  Rng rng(seed);
  BurkardResult best;
  bool have_best = false;
  for (std::int32_t attempt = 0; attempt < starts; ++attempt) {
    if (attempt > 0 && options.should_stop && options.should_stop()) break;
    Assignment start(problem.num_components(), problem.num_partitions());
    for (std::int32_t j = 0; j < problem.num_components(); ++j) {
      start.set(j, static_cast<PartitionId>(rng.next_below(
                       static_cast<std::uint64_t>(problem.num_partitions()))));
    }
    BurkardResult candidate = solve_qbp(problem, start, options);
    const bool better =
        !have_best ||
        (candidate.found_feasible &&
         (!best.found_feasible ||
          candidate.best_feasible_objective < best.best_feasible_objective)) ||
        (!candidate.found_feasible && !best.found_feasible &&
         candidate.best_penalized < best.best_penalized);
    if (better) {
      best = std::move(candidate);
      have_best = true;
    }
  }
  // Timing accounting: `seconds` is the total across all starts (what the
  // caller actually waited for); the winner's own runtime survives in
  // `seconds_best_start` (set by its solve_qbp call).
  best.seconds = timer.seconds();
  return best;
}

}  // namespace qbp
