// Generalized Burkard heuristic for the timing-embedded QBP
// (paper Section 4.2 STEP 1-8, with the Section 4.3 generalizations).
//
// The iteration linearizes min y^T Qhat y (Balas & Mazzola, Theorem 3 of
// the paper) around the current solution u^(k):
//
//   STEP 3   eta_s = sum_r qhat_{rs} u_r          (sparse gather)
//            xi    = sum_r omega_r u_r
//   STEP 4   z     = min_{u in S} eta . u          -> a GAP solve
//   STEP 5   h    += eta / max(1, |z - xi|)        (direction accumulation)
//   STEP 6   u'    = argmin_{u in S} h . u         -> a GAP solve
//   STEP 7   keep the best u seen (by y^T Qhat y)
//
// Differences from Burkard's original:
//   * S is {y : C1 (capacities) and C3 (GUB)} -- the inner subproblems are
//     Generalized Assignment Problems solved with the Martello-Toth-style
//     heuristic (assign/gap.hpp) instead of Linear Assignment Problems;
//   * Qhat is implicit and sparse: STEP 3 costs O((nnz(A)+nnz(Dc)) * M)
//     rather than (MN)^2 multiplications;
//   * alongside the best penalized incumbent the solver tracks the best
//     *feasible* incumbent (C1 and C2), because Theorem 2 only certifies
//     minimizers that come out violation-free;
//   * each STEP 6 iterate is optionally "polished" by a few greedy
//     single-move descent sweeps on the penalized objective before STEP 7
//     evaluates it (polish_sweeps).  The listed algorithm evaluates raw GAP
//     solutions, which on large tight instances oscillate a few dozen
//     violations away from feasibility; the polish converts the line
//     search's iterates into certified local minima at negligible cost and
//     is what the paper's own "enhancement" framing invites.  Setting
//     polish_sweeps = 0 recovers the literal listing (ablated in
//     bench_ablation_polish).
//
// "The search stops after a predetermined number of iterations.  The best
// result seen so far becomes the solution" -- iteration count is the only
// stopping rule, giving the user precise control over runtime.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "assign/gap.hpp"
#include "core/embedding.hpp"
#include "core/presolve.hpp"
#include "core/problem.hpp"

namespace qbp {

struct BurkardOptions {
  BurkardOptions() {
    // STEP 6 produces the next iterate: worth a strong argmin (pairwise
    // swaps matter under tight capacities).  STEP 4 only contributes the
    // scalar z to the STEP 5 normalization: a cheap solve suffices.
    gap_step6.improvement_passes = 4;
    gap_step6.swap_improvement = true;
    gap_step4.improvement_passes = 1;
    gap_step4.swap_improvement = false;
  }

  /// N_iterations of STEP 8.  The paper runs 100 per circuit.
  std::int32_t iterations = 100;
  /// Embedded timing-violation cost; kPaperPenalty = 50 by default.
  double penalty = kPaperPenalty;
  /// Include the omega_s u_s term in eta (equation (3) of the paper).  The
  /// listed STEP 3 omits it; both variants are supported and ablated.
  /// Default follows the listed algorithm (the eq.-3 variant tends to
  /// freeze the iteration at its starting point on large instances).
  bool eta_includes_omega = false;
  /// Inner GAP solver knobs for STEP 6 (strong) and STEP 4 (cheap).
  GapOptions gap_step6;
  GapOptions gap_step4;
  /// Iterate polishing (our enhancement, see header note): after STEP 6,
  /// run up to this many greedy single-move descent sweeps on the
  /// *penalized* objective (capacity-feasible moves only) before STEP 7
  /// evaluates the iterate.  0 reproduces the literal STEP 1-8 listing;
  /// the ablation bench quantifies the difference.
  std::int32_t polish_sweeps = 3;
  /// Intra-solve parallelism: threads for the hot phases of ONE solve (the
  /// STEP 3 eta gather, the GAP candidate scans of STEPs 4/6, the STEP 5
  /// accumulation, and the polish row prefetch), executed on the shared
  /// deterministic pool in util/parallel.  Results are bit-identical at
  /// every value -- this knob trades wall-clock only.  1 (default) keeps
  /// the hot loops on the calling thread; <= 0 means "all hardware".
  /// Orthogonal to portfolio `threads` (across-start parallelism); the
  /// pool fair-shares when both are active.
  std::int32_t inner_threads = 1;
  /// Restart the line search every `restart_period` iterations: h is reset
  /// to zero and the iteration continues from the best incumbent so far.
  /// Burkard's accumulation makes h a time-average -- after it converges to
  /// one mean field the iterates stop moving; restarting re-aims the search
  /// from the incumbent.  0 disables (the literal listing).
  std::int32_t restart_period = 12;
  /// On restart, kick this fraction of components to random
  /// capacity-feasible partitions before continuing, so successive
  /// restarts explore different basins instead of re-converging.
  double restart_perturbation = 0.10;
  /// Record the incumbent penalized value per iteration (for convergence
  /// plots); small, on by default.
  bool record_history = true;
  /// Optional wall-clock budget in seconds; <= 0 means unlimited.  Checked
  /// between iterations ("the user can have precise control over the total
  /// runtime" -- this adds the wall-clock variant of that control).
  double time_budget_seconds = 0.0;
  /// Cooperative cancellation hook, checked between iterations (and between
  /// starts in the multistart driver).  Empty means never stop.  The engine
  /// portfolio wires a std::stop_token through this to cancel stragglers.
  std::function<bool()> should_stop;
  /// Presolve the instance before iterating (core/presolve.hpp): the solve
  /// then runs normalize -> reduce -> solve(reduced) -> lift -> validate,
  /// with the lifted outcome shadow-checked against the *original* problem
  /// when validation is on.  Disabled by default at this layer -- the
  /// paper's listing runs on the raw instance, and inner solves (the B = 0
  /// initial construction, multilevel levels, portfolio starts on an
  /// already-reduced instance) must not re-reduce.  Entry points (CLI,
  /// service, bench harness) opt in.  When no rule fires the solve is
  /// bit-identical to presolve.enabled = false.
  PresolveOptions presolve{.enabled = false};
};

struct BurkardResult {
  /// Best solution by penalized value y^T Qhat y (always set).
  Assignment best;
  double best_penalized = 0.0;

  /// Best fully feasible solution (C1 and C2) and its *true* objective;
  /// only meaningful when found_feasible.
  Assignment best_feasible;
  double best_feasible_objective = 0.0;
  bool found_feasible = false;

  std::int32_t iterations_run = 0;
  /// Inner GAP solves whose result violated C1 (they still steer the line
  /// search but are never certified as incumbents).
  std::int32_t infeasible_inner_solves = 0;
  /// Incumbent penalized value after each iteration (empty unless
  /// record_history).
  std::vector<double> history;
  /// Total wall clock of the call that produced this result.  For
  /// solve_qbp_multistart this is the time across *all* starts, not just
  /// the winner's.
  double seconds = 0.0;
  /// Wall clock of the single winning start (== seconds for solve_qbp).
  double seconds_best_start = 0.0;
};

/// Run the heuristic from `initial` (any complete assignment -- Section 5:
/// "QBP can start from any random solution").
[[nodiscard]] BurkardResult solve_qbp(const PartitionProblem& problem,
                                      const Assignment& initial,
                                      const BurkardOptions& options = {});

class DeltaEvaluator;

/// The iterate polish as a standalone primitive: up to `max_sweeps` rounds
/// of best-improvement moves plus first-improvement swaps (connected pairs,
/// constrained pairs, and a seeded random sample) descending the *penalized*
/// objective, capacity C1 invariant throughout.  Deterministic in
/// `sweep_seed` and bit-identical at every `inner_threads` (the only
/// parallel phase is the evaluator row prefetch).  Used after STEP 6 inside
/// solve_qbp and as the per-level refinement of the multilevel V-cycle.
void polish_iterate(const PartitionProblem& problem, DeltaEvaluator& evaluator,
                    Assignment& u, std::int32_t max_sweeps,
                    std::uint64_t sweep_seed, std::int32_t inner_threads);

/// Map a reduced-space result (from a solve on ReducedProblem::problem) back
/// onto the original instance: lift both incumbents, shift objectives by the
/// folded constant, recompute the penalized value from scratch on the
/// original (the reduced value is only offset-exact for capacity-feasible
/// iterates), and -- when validation is enabled -- shadow-check the lifted
/// claims against the original problem.  Shared by solve_qbp, the multilevel
/// driver, and the engine pipeline.
[[nodiscard]] BurkardResult lift_burkard_result(const PartitionProblem& original,
                                                const ReducedProblem& reduced,
                                                BurkardResult result,
                                                double penalty);

/// The RN exact remainder solution as a lifted, validated BurkardResult.
/// Requires reduced.rn_feasible.
[[nodiscard]] BurkardResult rn_burkard_result(const PartitionProblem& original,
                                              const ReducedProblem& reduced,
                                              double penalty);

/// Multistart driver: `starts` independent runs from random assignments
/// seeded by `seed`, best feasible result wins (best penalized when none
/// is feasible).  Exploits the Section 5 observation that QBP is
/// insensitive to its start -- several cheap starts beat one long run on
/// rugged instances.
[[nodiscard]] BurkardResult solve_qbp_multistart(const PartitionProblem& problem,
                                                 std::int32_t starts,
                                                 std::uint64_t seed,
                                                 const BurkardOptions& options = {});

}  // namespace qbp
