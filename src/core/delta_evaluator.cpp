#include "core/delta_evaluator.hpp"

#include <algorithm>

#include "partition/cost.hpp"

#include "util/check.hpp"
#include "util/parallel.hpp"
#include "util/prof.hpp"

namespace qbp {

namespace delta_detail {

namespace {

/// Sum of (penalty - wire term) over the ordered violating pairs involving
/// `component` if it sat in partition `i`, with the position of one partner
/// optionally overridden (used by the swap variant; pass override = -1 for
/// moves).  Violations only occur on constrained pairs, so only the timing
/// partner list is scanned.
double violation_contribution(const PartitionProblem& problem, double penalty,
                              const Assignment& assignment,
                              std::int32_t component, PartitionId i,
                              std::int32_t override_partner,
                              PartitionId override_at,
                              std::int32_t skip_partner = -1) {
  const auto& topology = problem.topology();
  const auto& adjacency = problem.netlist().connection_matrix();
  const auto partners = problem.timing().partners(component);
  const auto bounds = problem.timing().bounds(component);
  double total = 0.0;
  for (std::size_t k = 0; k < partners.size(); ++k) {
    const std::int32_t partner = partners[k];
    if (partner == skip_partner) continue;
    const PartitionId other =
        partner == override_partner ? override_at : assignment[partner];
    if (other == Assignment::kUnassigned) continue;
    // Constraints hold for almost every pair almost all the time, so the
    // adjacency lookup (a binary search) only happens once a violation
    // actually fires.
    const bool forward = topology.delay(i, other) > bounds[k];
    const bool backward = topology.delay(other, i) > bounds[k];
    if (!forward && !backward) continue;
    const double wire_scale =
        problem.beta() * adjacency.value_or(component, partner, 0);
    if (forward) {
      total += penalty - wire_scale * topology.wire_cost(i, other);
    }
    if (backward) {
      total += penalty - wire_scale * topology.wire_cost(other, i);
    }
  }
  return total;
}

}  // namespace

double move_delta_penalized(const PartitionProblem& problem, double penalty,
                            const Assignment& assignment,
                            std::int32_t component, PartitionId target) {
  const PartitionId source = assignment[component];
  if (source == target) return 0.0;
  return move_delta_objective(problem.netlist(), problem.topology(),
                              problem.linear_cost_matrix(), problem.alpha(),
                              problem.beta(), assignment, component, target) +
         violation_contribution(problem, penalty, assignment, component, target,
                                -1, Assignment::kUnassigned) -
         violation_contribution(problem, penalty, assignment, component, source,
                                -1, Assignment::kUnassigned);
}

double swap_delta_penalized(const PartitionProblem& problem, double penalty,
                            const Assignment& assignment,
                            std::int32_t component_a, std::int32_t component_b) {
  const PartitionId pa = assignment[component_a];
  const PartitionId pb = assignment[component_b];
  if (pa == pb) return 0.0;

  // Penalized delta = objective delta + change in the violation correction
  // over the ordered constrained pairs involving a or b.  Each state's
  // correction counts a's pairs (with b's position overridden) plus b's
  // pairs, skipping the (a, b) pair in b's scan so it is counted once.
  const auto correction = [&](PartitionId at_a, PartitionId at_b) {
    return violation_contribution(problem, penalty, assignment, component_a,
                                  at_a, component_b, at_b) +
           violation_contribution(problem, penalty, assignment, component_b,
                                  at_b, component_a, at_a, component_a);
  };

  return swap_delta_objective(problem.netlist(), problem.topology(),
                              problem.linear_cost_matrix(), problem.alpha(),
                              problem.beta(), assignment, component_a,
                              component_b) +
         correction(pb, pa) - correction(pa, pb);
}

}  // namespace delta_detail

DeltaEvaluator::DeltaEvaluator(const PartitionProblem& problem, double penalty)
    : problem_(&problem),
      penalty_(penalty),
      rows_(static_cast<std::size_t>(problem.num_components())),
      deltas_(static_cast<std::size_t>(problem.num_partitions()), 0.0) {
  QBP_CHECK_GE(penalty, 0.0);
}

double DeltaEvaluator::move_delta(const Assignment& assignment,
                                  std::int32_t component,
                                  PartitionId target) const {
  if (penalty_ > 0.0) {
    return delta_detail::move_delta_penalized(*problem_, penalty_, assignment,
                                              component, target);
  }
  return move_delta_objective(problem_->netlist(), problem_->topology(),
                              problem_->linear_cost_matrix(), problem_->alpha(),
                              problem_->beta(), assignment, component, target);
}

double DeltaEvaluator::swap_delta(const Assignment& assignment,
                                  std::int32_t component_a,
                                  std::int32_t component_b) const {
  if (penalty_ > 0.0) {
    return delta_detail::swap_delta_penalized(*problem_, penalty_, assignment,
                                              component_a, component_b);
  }
  return swap_delta_objective(problem_->netlist(), problem_->topology(),
                              problem_->linear_cost_matrix(), problem_->alpha(),
                              problem_->beta(), assignment, component_a,
                              component_b);
}

void DeltaEvaluator::mark_dependents_stale(std::int32_t component) {
  for (const std::int32_t other :
       problem_->netlist().connection_matrix().row_indices(component)) {
    rows_[static_cast<std::size_t>(other)].valid = false;
  }
  for (const std::int32_t other : problem_->timing().partners(component)) {
    rows_[static_cast<std::size_t>(other)].valid = false;
  }
}

void DeltaEvaluator::build_row(const Assignment& assignment,
                               std::int32_t component, Row& row) const {
  const std::int32_t m = problem_->num_partitions();
  const auto& topology = problem_->topology();
  const auto& adjacency = problem_->netlist().connection_matrix();
  const double beta = problem_->beta();

  row.incident.assign(static_cast<std::size_t>(m), 0.0);

  // Linear term.
  if (!problem_->linear_cost_matrix().empty()) {
    for (PartitionId i = 0; i < m; ++i) {
      row.incident[static_cast<std::size_t>(i)] =
          problem_->alpha() * problem_->linear_cost(i, component);
    }
  }

  // Wire terms: both ordered directions per neighbor.
  const auto neighbors = adjacency.row_indices(component);
  const auto wires = adjacency.row_values(component);
  for (std::size_t k = 0; k < neighbors.size(); ++k) {
    const PartitionId other = assignment[neighbors[k]];
    if (other == Assignment::kUnassigned) continue;
    const double scale = beta * wires[k];
    for (PartitionId i = 0; i < m; ++i) {
      row.incident[static_cast<std::size_t>(i)] +=
          scale *
          (topology.wire_cost(i, other) + topology.wire_cost(other, i));
    }
  }

  // Penalized mode: for each constrained partner, a violating direction's
  // wire term is replaced by the flat penalty.
  if (penalty_ > 0.0) {
    const auto partners = problem_->timing().partners(component);
    const auto bounds = problem_->timing().bounds(component);
    for (std::size_t k = 0; k < partners.size(); ++k) {
      const PartitionId other = assignment[partners[k]];
      if (other == Assignment::kUnassigned) continue;
      const double wire_scale =
          beta * adjacency.value_or(component, partners[k], 0);
      for (PartitionId i = 0; i < m; ++i) {
        if (topology.delay(i, other) > bounds[k]) {
          row.incident[static_cast<std::size_t>(i)] +=
              penalty_ - wire_scale * topology.wire_cost(i, other);
        }
        if (topology.delay(other, i) > bounds[k]) {
          row.incident[static_cast<std::size_t>(i)] +=
              penalty_ - wire_scale * topology.wire_cost(other, i);
        }
      }
    }
  }
}

std::span<const double> DeltaEvaluator::move_deltas(const Assignment& assignment,
                                                    std::int32_t component) {
  Row& row = rows_[static_cast<std::size_t>(component)];
  if (row.valid) {
    ++hits_;
  } else {
    QBP_PROF_SCOPE("delta.row_build");
    ++misses_;
    build_row(assignment, component, row);
    row.valid = true;
  }
  const double baseline =
      row.incident[static_cast<std::size_t>(assignment[component])];
  for (std::size_t i = 0; i < deltas_.size(); ++i) {
    deltas_[i] = row.incident[i] - baseline;
  }
  return deltas_;
}

void DeltaEvaluator::commit_move(Assignment& assignment, std::int32_t component,
                                 PartitionId target) {
  assignment.set(component, target);
  mark_dependents_stale(component);
}

void DeltaEvaluator::commit_swap(Assignment& assignment,
                                 std::int32_t component_a,
                                 std::int32_t component_b) {
  const PartitionId pa = assignment[component_a];
  assignment.set(component_a, assignment[component_b]);
  assignment.set(component_b, pa);
  mark_dependents_stale(component_a);
  mark_dependents_stale(component_b);
}

void DeltaEvaluator::prefetch_rows(const Assignment& assignment,
                                   std::int32_t threads) {
  QBP_PROF_SCOPE("delta.prefetch");
  const auto n = static_cast<std::int64_t>(rows_.size());
  // Each chunk owns a disjoint slice of rows_, and build_row writes only
  // its own row, so the parallel build is race-free.  The miss counter is
  // summed from per-chunk partials afterwards (no atomics on results).
  const std::int64_t built = par::parallel_reduce(
      n, /*grain=*/32, threads, std::int64_t{0},
      [&](std::int64_t begin, std::int64_t end) {
        std::int64_t count = 0;
        for (std::int64_t j = begin; j < end; ++j) {
          Row& row = rows_[static_cast<std::size_t>(j)];
          if (row.valid) continue;
          build_row(assignment, static_cast<std::int32_t>(j), row);
          row.valid = true;
          ++count;
        }
        return count;
      },
      [](std::int64_t acc, std::int64_t part) { return acc + part; });
  misses_ += static_cast<std::uint64_t>(built);
}

void DeltaEvaluator::invalidate() {
  for (Row& row : rows_) row.valid = false;
}

}  // namespace qbp
