// Unified incremental cost evaluation for single moves and pairwise swaps.
//
// Every local-search loop in the library (the Burkard iterate polish, the
// GFM/GKL/SA baselines, the engine portfolio's solvers) needs the same two
// primitives: "what does the objective do if component j moves to partition
// i?" and "... if components a and b swap?".  Historically the penalized
// variants lived in QhatMatrix and the plain-objective variants in
// partition/cost.hpp, with the swap logic implemented twice.  This module is
// the single implementation:
//
//   * delta_detail::{move,swap}_delta_penalized are the one true penalized
//     deltas -- QhatMatrix::{move,swap}_delta_penalized delegate here, and
//     both are expressed as the plain-objective delta (partition/cost.hpp)
//     plus a timing-violation correction, so the wire/linear arithmetic
//     exists exactly once;
//   * DeltaEvaluator adds per-component contribution caching on top: the
//     full "incident cost of j by candidate partition" row is built once in
//     O((deg_A(j) + deg_Dc(j)) * M) and stays valid until a neighbor or
//     timing partner of j moves.  Staleness is pushed at commit time (a
//     commit marks the rows of the mover's neighbors and partners dirty in
//     O(degree)), so the freshness check on every read is O(1) -- reads
//     vastly outnumber commits in a polish sweep.  Loops that scan all M
//     targets of a component (the polish move sweep, FM-style gain updates)
//     get their deltas at amortized O(degree) instead of O(degree * M).
//
// The evaluator is not thread-safe; give each solver run its own instance
// (they are cheap: O(N) bookkeeping plus rows built on demand).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/problem.hpp"

namespace qbp {

namespace delta_detail {

/// Change in the penalized value y^T Qhat y (objective + penalty embedding)
/// if `component` moved to `target`.  Single shared implementation used by
/// QhatMatrix::move_delta_penalized and DeltaEvaluator.
[[nodiscard]] double move_delta_penalized(const PartitionProblem& problem,
                                          double penalty,
                                          const Assignment& assignment,
                                          std::int32_t component,
                                          PartitionId target);

/// Change in the penalized value if the two components exchanged partitions.
[[nodiscard]] double swap_delta_penalized(const PartitionProblem& problem,
                                          double penalty,
                                          const Assignment& assignment,
                                          std::int32_t component_a,
                                          std::int32_t component_b);

}  // namespace delta_detail

class DeltaEvaluator {
 public:
  /// `penalty > 0`: deltas are on the penalized objective y^T Qhat y (the
  /// metric Burkard's polish descends); `penalty == 0`: deltas are on the
  /// true objective (the metric the feasible-region baselines descend).
  /// Holds a reference; `problem` must outlive the evaluator.
  explicit DeltaEvaluator(const PartitionProblem& problem, double penalty = 0.0);

  [[nodiscard]] double penalty() const noexcept { return penalty_; }

  /// Exact one-off deltas (no caching).
  [[nodiscard]] double move_delta(const Assignment& assignment,
                                  std::int32_t component,
                                  PartitionId target) const;
  [[nodiscard]] double swap_delta(const Assignment& assignment,
                                  std::int32_t component_a,
                                  std::int32_t component_b) const;

  /// Deltas for moving `component` to every partition (entry [current] is
  /// 0).  Cached: the underlying incident-cost row survives until a
  /// neighbor or timing partner of `component` moves, so repeated calls are
  /// O(degree) instead of O(degree * M).  The returned span aliases an
  /// internal buffer invalidated by the next move_deltas call.
  [[nodiscard]] std::span<const double> move_deltas(const Assignment& assignment,
                                                    std::int32_t component);

  /// Apply a move/swap *through* the evaluator so cache freshness stamps
  /// stay correct.  Mutating the assignment behind the evaluator's back
  /// requires a subsequent invalidate().
  void commit_move(Assignment& assignment, std::int32_t component,
                   PartitionId target);
  void commit_swap(Assignment& assignment, std::int32_t component_a,
                   std::int32_t component_b);

  /// Build every currently-invalid row for `assignment` up front, in
  /// parallel through the shared util/parallel pool.  A row is a pure
  /// function of its component's neighbors'/partners' positions, so
  /// prefetching it produces the same bits lazy building would; a sweep
  /// that then invalidates some rows rebuilds those serially as before.
  /// Bit-identical results at every thread count -- only the timing (and
  /// the hit/miss counters) change.  Safe only while no other call is
  /// active on this evaluator.
  void prefetch_rows(const Assignment& assignment, std::int32_t threads);

  /// Drop all cached rows (the assignment changed externally).
  void invalidate();

  [[nodiscard]] std::uint64_t cache_hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t cache_misses() const noexcept { return misses_; }

 private:
  struct Row {
    /// Incident cost of the component by candidate partition: linear term
    /// plus both ordered wire terms per neighbor, with the penalty
    /// replacing a wire term whenever that direction violates its bound
    /// (penalized mode only).
    std::vector<double> incident;
    bool valid = false;
  };

  void build_row(const Assignment& assignment, std::int32_t component, Row& row) const;
  /// A commit of `component` invalidates the rows that depend on its
  /// position: its neighbors' and timing partners' (never its own -- a row
  /// does not depend on its own component's position).
  void mark_dependents_stale(std::int32_t component);

  const PartitionProblem* problem_;
  double penalty_;
  std::vector<Row> rows_;       // lazily built, one per component
  std::vector<double> deltas_;  // scratch returned by move_deltas
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace qbp
