#include "core/embedding.hpp"

namespace qbp {

EmbeddingAnalysis analyze_embedding(const PartitionProblem& problem,
                                    double penalty) {
  EmbeddingAnalysis analysis;

  // Sum |q| over the un-embedded Q.  With non-negative P and B this is
  //   beta * (sum of A entries, ordered) * max-block... exactly:
  //   sum_{j1 j2} sum_{i1 i2} beta * a_{j1 j2} * b_{i1 i2}
  //   = beta * sum(A) * sum(B), plus the diagonal alpha * sum(P).
  double sum_b = 0.0;
  const auto& topology = problem.topology();
  for (std::int32_t i1 = 0; i1 < topology.num_partitions(); ++i1) {
    for (std::int32_t i2 = 0; i2 < topology.num_partitions(); ++i2) {
      const double b = topology.wire_cost(i1, i2);
      sum_b += b < 0.0 ? -b : b;
    }
  }
  const double sum_a =
      static_cast<double>(problem.netlist().connection_matrix().sum());
  double sum_p = 0.0;
  const auto& p = problem.linear_cost_matrix();
  if (!p.empty()) {
    for (std::int32_t i = 0; i < p.rows(); ++i) {
      for (std::int32_t j = 0; j < p.cols(); ++j) {
        sum_p += p(i, j) < 0.0 ? -p(i, j) : p(i, j);
      }
    }
  }

  analysis.abs_sum = problem.beta() * sum_a * sum_b + problem.alpha() * sum_p;
  analysis.theorem1_threshold = 2.0 * analysis.abs_sum;
  analysis.penalty = penalty;
  analysis.provably_exact = penalty > analysis.theorem1_threshold;
  return analysis;
}

double theorem1_penalty(const PartitionProblem& problem) {
  return analyze_embedding(problem, 0.0).theorem1_threshold + 1.0;
}

}  // namespace qbp
