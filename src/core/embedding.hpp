// Penalty analysis for the constraint embedding (paper Theorems 1 and 2).
//
// Theorem 1 (Existence of Embedding): replacing every constraint-violating
// entry of Q by any U > 2 * sum |q_{r1 r2}| makes the unconstrained QBP
// *exactly* equivalent to the timing-constrained one.
//
// Theorem 2 (Sufficient Condition): any penalty works -- "no matter how
// slightly you raise the values" -- provided the minimizer found is
// timing-feasible; the paper runs its experiments with penalty = 50 to
// avoid the numerical trouble of huge U.  This module computes the provable
// Theorem 1 bound for an instance so callers (and the penalty ablation
// bench) can compare both regimes.
#pragma once

#include "core/problem.hpp"

namespace qbp {

struct EmbeddingAnalysis {
  /// sum over all r1, r2 of |q_{r1 r2}| for the un-embedded Q
  /// (= beta * sum(A) * sum(B) + alpha * sum(P) for non-negative inputs).
  double abs_sum = 0.0;
  /// The Theorem 1 threshold 2 * abs_sum; any penalty strictly above it is
  /// provably exact.
  double theorem1_threshold = 0.0;
  /// The penalty under analysis.
  double penalty = 0.0;
  /// penalty > theorem1_threshold: equivalence is unconditional.
  bool provably_exact = false;
};

[[nodiscard]] EmbeddingAnalysis analyze_embedding(const PartitionProblem& problem,
                                                  double penalty);

/// A penalty satisfying Theorem 1 for this instance (threshold + 1).
[[nodiscard]] double theorem1_penalty(const PartitionProblem& problem);

/// The paper's experimental default (Section 3.2: "In experiments we set
/// q-hat = 50 ... high enough for the optimization procedure to 'reject'
/// any timing violating assignments").
inline constexpr double kPaperPenalty = 50.0;

}  // namespace qbp
