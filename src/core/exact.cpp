#include "core/exact.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <vector>

#include "util/check.hpp"

namespace qbp {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

class Search {
 public:
  Search(const PartitionProblem& problem, const ExactOptions& options)
      : problem_(problem),
        options_(options),
        n_(problem.num_components()),
        m_(problem.num_partitions()),
        sizes_(problem.netlist().sizes()),
        assignment_(n_, m_),
        slack_(problem.topology().capacities()) {
    // Branch order: most connected (weighted degree), biggest first --
    // decisions with the most propagation happen at the top of the tree.
    order_.resize(static_cast<std::size_t>(n_));
    std::iota(order_.begin(), order_.end(), 0);
    const auto& adjacency = problem.netlist().connection_matrix();
    std::vector<double> score(static_cast<std::size_t>(n_), 0.0);
    for (std::int32_t j = 0; j < n_; ++j) {
      for (const auto w : adjacency.row_values(j)) {
        score[static_cast<std::size_t>(j)] += w;
      }
      score[static_cast<std::size_t>(j)] += sizes_[static_cast<std::size_t>(j)];
    }
    std::stable_sort(order_.begin(), order_.end(),
                     [&](std::int32_t a, std::int32_t b) {
                       return score[static_cast<std::size_t>(a)] >
                              score[static_cast<std::size_t>(b)];
                     });
  }

  ExactResult run() {
    if (options_.warm_start != nullptr &&
        problem_.is_feasible(*options_.warm_start)) {
      result_.best = *options_.warm_start;
      result_.objective = problem_.objective(*options_.warm_start);
      result_.found = true;
    }
    result_.proven_optimal = dfs(0, 0.0);
    return std::move(result_);
  }

 private:
  /// Placement cost of `component` at `partition` against placed partners.
  double placement_cost(std::int32_t component, PartitionId partition) const {
    double cost = problem_.alpha() * problem_.linear_cost(partition, component);
    const auto& adjacency = problem_.netlist().connection_matrix();
    const auto neighbors = adjacency.row_indices(component);
    const auto wires = adjacency.row_values(component);
    const auto& topology = problem_.topology();
    for (std::size_t k = 0; k < neighbors.size(); ++k) {
      const PartitionId other = assignment_[neighbors[k]];
      if (other == Assignment::kUnassigned) continue;
      cost += problem_.beta() * wires[k] *
              (topology.wire_cost(partition, other) +
               topology.wire_cost(other, partition));
    }
    return cost;
  }

  bool timing_ok(std::int32_t component, PartitionId partition) const {
    return problem_.timing().component_feasible_at(assignment_,
                                                   problem_.topology(),
                                                   component, partition);
  }

  /// Admissible completion bound for components order_[depth..): each can
  /// pay no less than its cheapest feasible-ignoring-capacity placement.
  double completion_bound(std::size_t depth) const {
    double bound = 0.0;
    for (std::size_t at = depth; at < order_.size(); ++at) {
      const std::int32_t j = order_[at];
      double cheapest = kInf;
      for (PartitionId i = 0; i < m_; ++i) {
        if (!timing_ok(j, i)) continue;
        cheapest = std::min(cheapest, placement_cost(j, i));
      }
      if (cheapest == kInf) return kInf;  // dead end regardless of capacity
      bound += cheapest;
    }
    return bound;
  }

  /// Returns false when the node budget ran out (result not proven).
  bool dfs(std::size_t depth, double cost_so_far) {
    if (++result_.nodes > options_.max_nodes) return false;
    if (depth == order_.size()) {
      if (!result_.found || cost_so_far < result_.objective) {
        result_.found = true;
        result_.objective = cost_so_far;
        result_.best = assignment_;
      }
      return true;
    }
    if (result_.found &&
        cost_so_far + completion_bound(depth) >= result_.objective) {
      return true;  // pruned, still exact
    }

    const std::int32_t j = order_[depth];
    // Try partitions cheapest-first so the incumbent tightens early.
    struct Option {
      PartitionId partition;
      double cost;
    };
    std::vector<Option> candidates;
    candidates.reserve(static_cast<std::size_t>(m_));
    for (PartitionId i = 0; i < m_; ++i) {
      if (slack_[static_cast<std::size_t>(i)] +
              CapacityLedger::kTolerance <
          sizes_[static_cast<std::size_t>(j)]) {
        continue;
      }
      if (!timing_ok(j, i)) continue;
      candidates.push_back({i, placement_cost(j, i)});
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Option& a, const Option& b) {
                return a.cost != b.cost ? a.cost < b.cost
                                        : a.partition < b.partition;
              });

    bool proven = true;
    for (const Option& option : candidates) {
      if (result_.found &&
          cost_so_far + option.cost >= result_.objective) {
        // Candidates are cost-sorted but the completion bound can still
        // shrink for later ones; only the immediate-cost test is monotone,
        // so keep scanning (cheap) rather than break.
        continue;
      }
      assignment_.set(j, option.partition);
      slack_[static_cast<std::size_t>(option.partition)] -=
          sizes_[static_cast<std::size_t>(j)];
      proven = dfs(depth + 1, cost_so_far + option.cost) && proven;
      slack_[static_cast<std::size_t>(option.partition)] +=
          sizes_[static_cast<std::size_t>(j)];
      assignment_.set(j, Assignment::kUnassigned);
      if (!proven && result_.nodes > options_.max_nodes) break;
    }
    return proven;
  }

  const PartitionProblem& problem_;
  const ExactOptions& options_;
  const std::int32_t n_;
  const std::int32_t m_;
  const std::vector<double> sizes_;
  std::vector<std::int32_t> order_;
  Assignment assignment_;
  std::vector<double> slack_;
  ExactResult result_;
};

}  // namespace

ExactResult solve_exact(const PartitionProblem& problem,
                        const ExactOptions& options) {
  QBP_CHECK(problem.validate().empty()) << problem.validate();
  Search search(problem, options);
  return search.run();
}

}  // namespace qbp
