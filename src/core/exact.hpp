// Exact branch-and-bound for the constrained partitioning problem.
//
// Depth-first search over components (most-connected first), pruning with:
//   * capacity:  a component only branches into partitions with room;
//   * timing:    candidate partitions must satisfy every constraint against
//                already-placed partners (C2 is pairwise, so this is exact);
//   * bound:     current cost + an admissible completion bound.  Each
//                unassigned component contributes at least its cheapest
//                placement against the *assigned* neighbors (non-negative
//                B/P make unassigned-unassigned interactions >= 0).
//
// Practical to ~20-30 components -- two orders of magnitude beyond the
// enumeration oracle in brute_force.hpp -- which makes exhaustive
// verification of the heuristics possible on non-trivial instances, and
// covers real micro-TCM sizing studies exactly.
#pragma once

#include <cstdint>

#include "core/problem.hpp"

namespace qbp {

struct ExactOptions {
  /// Node budget; the search reports proven_optimal = false when exceeded.
  std::int64_t max_nodes = 20'000'000;
  /// Optional warm-start incumbent (tightens pruning from the first node);
  /// must be complete if provided.
  const Assignment* warm_start = nullptr;
};

struct ExactResult {
  Assignment best;
  double objective = 0.0;
  bool found = false;           // a feasible assignment exists (and is in best)
  bool proven_optimal = false;  // search completed within the node budget
  std::int64_t nodes = 0;       // branch-and-bound nodes expanded
};

[[nodiscard]] ExactResult solve_exact(const PartitionProblem& problem,
                                      const ExactOptions& options = {});

}  // namespace qbp
