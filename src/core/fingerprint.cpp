#include "core/fingerprint.hpp"

#include <cstdint>

namespace qbp {

namespace {

// Section tags keep the flat word stream unambiguous: a capacities vector
// can never alias a sizes vector of the same values.
enum Tag : std::uint64_t {
  kShape = 0x5150u,  // "QP"
  kSizes = 1,
  kCapacities = 2,
  kWireCost = 3,
  kDelay = 4,
  kWires = 5,
  kTiming = 6,
  kLinear = 7,
};

}  // namespace

Hash128 problem_fingerprint(const PartitionProblem& problem) {
  const std::int32_t n = problem.num_components();
  const std::int32_t m = problem.num_partitions();
  const double alpha = problem.alpha();
  const double beta = problem.beta();

  StreamHasher hasher(0x71627061727464ULL);  // "qbpartd"
  hasher.absorb(static_cast<std::uint64_t>(Tag::kShape));
  hasher.absorb(n);
  hasher.absorb(m);

  hasher.absorb(static_cast<std::uint64_t>(Tag::kSizes));
  for (std::int32_t j = 0; j < n; ++j) {
    hasher.absorb(problem.netlist().component_size(j));
  }

  hasher.absorb(static_cast<std::uint64_t>(Tag::kCapacities));
  for (const double capacity : problem.topology().capacities()) {
    hasher.absorb(capacity);
  }

  // B' = beta * B: the normalized quadratic cost (dense, M is small).
  hasher.absorb(static_cast<std::uint64_t>(Tag::kWireCost));
  for (std::int32_t i1 = 0; i1 < m; ++i1) {
    for (std::int32_t i2 = 0; i2 < m; ++i2) {
      hasher.absorb(beta * problem.topology().wire_cost(i1, i2));
    }
  }

  hasher.absorb(static_cast<std::uint64_t>(Tag::kDelay));
  for (std::int32_t i1 = 0; i1 < m; ++i1) {
    for (std::int32_t i2 = 0; i2 < m; ++i2) {
      hasher.absorb(problem.topology().delay(i1, i2));
    }
  }

  // Wires from the merged, sorted connection matrix: duplicate bundles and
  // input ordering are already canonicalized away.  Upper triangle only (A
  // is symmetric by construction).
  hasher.absorb(static_cast<std::uint64_t>(Tag::kWires));
  const auto& connections = problem.netlist().connection_matrix();
  for (std::int32_t a = 0; a < n; ++a) {
    const auto neighbors = connections.row_indices(a);
    const auto weights = connections.row_values(a);
    for (std::size_t k = 0; k < neighbors.size(); ++k) {
      if (neighbors[k] <= a) continue;
      hasher.absorb(a);
      hasher.absorb(neighbors[k]);
      hasher.absorb(weights[k]);
    }
  }

  hasher.absorb(static_cast<std::uint64_t>(Tag::kTiming));
  const auto& timing = problem.timing().matrix();
  if (timing.rows() == n) {
    for (std::int32_t j = 0; j < n; ++j) {
      const auto partners = timing.row_indices(j);
      const auto bounds = timing.row_values(j);
      for (std::size_t k = 0; k < partners.size(); ++k) {
        if (partners[k] <= j) continue;
        hasher.absorb(j);
        hasher.absorb(partners[k]);
        hasher.absorb(bounds[k]);
      }
    }
  }

  // P' = alpha * P, nonzero entries only: an empty P, an all-zero P and a
  // zero alpha all contribute nothing (linear_cost() is 0 in each case).
  hasher.absorb(static_cast<std::uint64_t>(Tag::kLinear));
  const auto& p = problem.linear_cost_matrix();
  if (!p.empty() && alpha != 0.0) {
    for (std::int32_t i = 0; i < m; ++i) {
      for (std::int32_t j = 0; j < n; ++j) {
        const double cost = alpha * p(i, j);
        if (cost == 0.0) continue;
        hasher.absorb(i);
        hasher.absorb(j);
        hasher.absorb(cost);
      }
    }
  }

  return hasher.finish();
}

}  // namespace qbp
