// Canonical instance fingerprint: the cache key of the warm-start serving
// layer (service/cache.hpp).
//
// problem_fingerprint() hashes the *normalized* instance -- the PP(1, 1)
// equivalent with alpha folded into P and beta folded into B, exactly the
// semantics of PartitionProblem::normalized(), computed without building
// the copy.  Two problems that normalize to the same instance hash equal;
// in particular the fingerprint is invariant to
//
//   * input formatting: component/problem names, comment placement, line
//     order in the .qp source -- none of it reaches the hash;
//   * duplicate-wire ordering: bundles are absorbed from the merged,
//     sorted connection matrix (upper triangle), so `wire a b 2` equals
//     `wire b a 1` + `wire a b 1` in any order;
//   * linear-term representation: an absent P and an all-zero P (and any
//     alpha when P is zero) hash equal, because only nonzero alpha*P
//     entries are absorbed;
//   * the (alpha, beta) split: PP(2, 3) over (P, B) equals PP(1, 1) over
//     (2P, 3B).
//
// Everything that changes the optimization problem IS absorbed: N, M,
// sizes, capacities, wire bundles with multiplicities, B', D, the sparse
// Dc bounds, and nonzero P' entries -- each section behind a distinct tag
// so field sequences from different sections can never alias.
#pragma once

#include "core/problem.hpp"
#include "util/hash.hpp"

namespace qbp {

[[nodiscard]] Hash128 problem_fingerprint(const PartitionProblem& problem);

}  // namespace qbp
