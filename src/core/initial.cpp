#include "core/initial.hpp"

#include <algorithm>
#include <numeric>

#include "core/burkard.hpp"
#include "core/repair.hpp"
#include "partition/assignment.hpp"
#include "util/rng.hpp"

namespace qbp {

namespace {

Assignment random_assignment(const PartitionProblem& problem, Rng& rng) {
  Assignment assignment(problem.num_components(), problem.num_partitions());
  for (std::int32_t j = 0; j < problem.num_components(); ++j) {
    assignment.set(j, static_cast<PartitionId>(rng.next_below(
                          static_cast<std::uint64_t>(problem.num_partitions()))));
  }
  return assignment;
}

/// Place components one at a time (in `order`), choosing for each a
/// partition that keeps C1 and C2 satisfied against already-placed
/// components.  `pick` selects among the feasible candidates; falls back to
/// the max-slack partition when none is feasible.
template <typename Picker>
Assignment constructive(const PartitionProblem& problem,
                        std::span<const std::int32_t> order, Picker&& pick) {
  const std::int32_t m = problem.num_partitions();
  const auto& sizes = problem.netlist().sizes();
  Assignment assignment(problem.num_components(), m);
  CapacityLedger ledger(assignment, sizes, problem.topology().capacities());

  std::vector<PartitionId> candidates;
  for (const std::int32_t j : order) {
    candidates.clear();
    for (PartitionId i = 0; i < m; ++i) {
      if (!ledger.fits(i, sizes[static_cast<std::size_t>(j)])) continue;
      if (!problem.timing().component_feasible_at(assignment,
                                                  problem.topology(), j, i)) {
        continue;
      }
      candidates.push_back(i);
    }
    PartitionId chosen;
    if (!candidates.empty()) {
      chosen = pick(candidates, ledger);
    } else {
      // No fully feasible slot: take the emptiest one and let the caller
      // report infeasibility.
      chosen = 0;
      for (PartitionId i = 1; i < m; ++i) {
        if (ledger.slack(i) > ledger.slack(chosen)) chosen = i;
      }
    }
    assignment.set(j, chosen);
    ledger.add(chosen, sizes[static_cast<std::size_t>(j)]);
  }
  return assignment;
}

}  // namespace

InitialResult make_initial(const PartitionProblem& problem,
                           InitialStrategy strategy, std::uint64_t seed,
                           std::int32_t qbp_iterations) {
  Rng rng(seed);
  InitialResult result;

  switch (strategy) {
    case InitialStrategy::kRandom: {
      result.assignment = random_assignment(problem, rng);
      break;
    }
    case InitialStrategy::kRandomFeasible: {
      const auto order = random_permutation(problem.num_components(), rng);
      result.assignment = constructive(
          problem, order, [&](std::span<const PartitionId> candidates,
                              const CapacityLedger&) {
            return candidates[rng.pick_index(candidates)];
          });
      break;
    }
    case InitialStrategy::kGreedyBalanced: {
      std::vector<std::int32_t> order(
          static_cast<std::size_t>(problem.num_components()));
      std::iota(order.begin(), order.end(), 0);
      const auto& sizes = problem.netlist().sizes();
      std::stable_sort(order.begin(), order.end(),
                       [&](std::int32_t a, std::int32_t b) {
                         return sizes[static_cast<std::size_t>(a)] >
                                sizes[static_cast<std::size_t>(b)];
                       });
      result.assignment = constructive(
          problem, order, [&](std::span<const PartitionId> candidates,
                              const CapacityLedger& ledger) {
            PartitionId best = candidates.front();
            for (const PartitionId i : candidates) {
              if (ledger.slack(i) > ledger.slack(best)) best = i;
            }
            return best;
          });
      break;
    }
    case InitialStrategy::kQbpZeroWireCost: {
      const PartitionProblem relaxed = problem.with_zero_wire_cost();
      BurkardOptions options;
      options.iterations = qbp_iterations;
      options.record_history = false;
      // "A few iterations" normally suffice; on very tight instances finish
      // the last few violations with the min-conflicts repair.
      for (int attempt = 0; attempt < 4; ++attempt) {
        const Assignment start = random_assignment(problem, rng);
        const BurkardResult qbp = solve_qbp(relaxed, start, options);
        result.assignment = qbp.found_feasible ? qbp.best_feasible : qbp.best;
        if (qbp.found_feasible) break;
        if (problem.satisfies_capacity(result.assignment)) {
          RepairOptions repair_options;
          repair_options.seed = seed + 0x9e37u * static_cast<unsigned>(attempt + 1);
          const RepairResult repaired =
              repair_timing(problem, result.assignment, repair_options);
          result.assignment = repaired.assignment;
          if (repaired.feasible) break;
        }
      }
      break;
    }
  }

  result.feasible = problem.satisfies_capacity(result.assignment) &&
                    problem.satisfies_timing(result.assignment);
  return result;
}

}  // namespace qbp
