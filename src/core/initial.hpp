// Initial-solution construction.
//
// Section 5 of the paper: "For GFM and GKL, an initial feasible solution is
// needed ... The fastest way to obtain a initial feasible solution is to
// use QBP algorithm with matrix B set to all zeros.  This will generate an
// initial feasible solution in a few iterations.  This same initial
// solution is used for all three approaches."  kQbpZeroWireCost implements
// exactly that; the other strategies exist for the initial-robustness
// ablation ("QBP maintained the same kind of good results from any
// arbitrary initial solution").
#pragma once

#include <cstdint>

#include "core/problem.hpp"

namespace qbp {

enum class InitialStrategy {
  /// Uniform random partition per component; may violate C1 and C2.
  kRandom,
  /// Random order, random choice among partitions that keep C1 and C2
  /// satisfied against already-placed components; falls back to max-slack.
  kRandomFeasible,
  /// Biggest components first into the partition with the most remaining
  /// slack (capacity-driven, timing-checked).
  kGreedyBalanced,
  /// The paper's method: a short QBP run on the instance with B = 0.
  kQbpZeroWireCost,
};

struct InitialResult {
  Assignment assignment;
  /// C1 and C2 both hold.
  bool feasible = false;
};

/// Build a starting assignment; deterministic in `seed`.
/// `qbp_iterations` only applies to kQbpZeroWireCost ("a few iterations").
[[nodiscard]] InitialResult make_initial(const PartitionProblem& problem,
                                         InitialStrategy strategy,
                                         std::uint64_t seed,
                                         std::int32_t qbp_iterations = 12);

}  // namespace qbp
