#include "core/multilevel.hpp"

#include <algorithm>
#include <numeric>

#include "util/rng.hpp"
#include "util/timer.hpp"

#include "util/check.hpp"

namespace qbp {

CoarseProblem coarsen(const PartitionProblem& problem,
                      const CoarsenOptions& options) {
  const std::int32_t n = problem.num_components();
  const auto& adjacency = problem.netlist().connection_matrix();
  const auto& sizes = problem.netlist().sizes();

  double max_capacity = 0.0;
  for (const double c : problem.topology().capacities()) {
    max_capacity = std::max(max_capacity, c);
  }
  const double size_limit = max_capacity * options.max_cluster_capacity_fraction;

  // Heavy-edge matching in random visit order.
  Rng rng(options.seed);
  std::vector<std::int32_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(std::span<std::int32_t>(order));

  std::vector<std::int32_t> mate(static_cast<std::size_t>(n), -1);
  for (const std::int32_t j : order) {
    if (mate[static_cast<std::size_t>(j)] != -1) continue;
    const auto neighbors = adjacency.row_indices(j);
    const auto weights = adjacency.row_values(j);
    std::int32_t best = -1;
    std::int32_t best_weight = 0;
    for (std::size_t k = 0; k < neighbors.size(); ++k) {
      const std::int32_t other = neighbors[k];
      if (mate[static_cast<std::size_t>(other)] != -1) continue;
      if (sizes[static_cast<std::size_t>(j)] +
              sizes[static_cast<std::size_t>(other)] >
          size_limit) {
        continue;
      }
      if (weights[k] > best_weight ||
          (weights[k] == best_weight && best >= 0 && other < best)) {
        best_weight = weights[k];
        best = other;
      }
    }
    if (best >= 0) {
      mate[static_cast<std::size_t>(j)] = best;
      mate[static_cast<std::size_t>(best)] = j;
    }
  }

  // Assign cluster ids: matched pairs share one, singletons get their own.
  CoarseProblem coarse;
  coarse.cluster_of.assign(static_cast<std::size_t>(n), -1);
  std::int32_t next_cluster = 0;
  for (std::int32_t j = 0; j < n; ++j) {
    if (coarse.cluster_of[static_cast<std::size_t>(j)] != -1) continue;
    coarse.cluster_of[static_cast<std::size_t>(j)] = next_cluster;
    const std::int32_t partner = mate[static_cast<std::size_t>(j)];
    if (partner >= 0) coarse.cluster_of[static_cast<std::size_t>(partner)] = next_cluster;
    ++next_cluster;
  }
  coarse.num_clusters = next_cluster;

  // Coarse netlist: sizes add, wires re-accumulate between clusters.
  Netlist coarse_netlist(problem.netlist().name() + ".coarse");
  {
    std::vector<double> cluster_size(static_cast<std::size_t>(next_cluster), 0.0);
    for (std::int32_t j = 0; j < n; ++j) {
      cluster_size[static_cast<std::size_t>(
          coarse.cluster_of[static_cast<std::size_t>(j)])] +=
          sizes[static_cast<std::size_t>(j)];
    }
    for (std::int32_t c = 0; c < next_cluster; ++c) {
      coarse_netlist.add_component("cl" + std::to_string(c),
                                   cluster_size[static_cast<std::size_t>(c)]);
    }
  }
  const_cast<Netlist&>(problem.netlist()).finalize();
  for (const WireBundle& bundle : problem.netlist().bundles()) {
    const std::int32_t ca = coarse.cluster_of[static_cast<std::size_t>(bundle.a)];
    const std::int32_t cb = coarse.cluster_of[static_cast<std::size_t>(bundle.b)];
    if (ca != cb) coarse_netlist.add_wires(ca, cb, bundle.multiplicity);
  }
  coarse_netlist.finalize();

  // Coarse timing: tightest bound across each cluster pair; intra-cluster
  // constraints vanish (co-location has zero delay).
  TimingConstraints coarse_timing(next_cluster);
  problem.timing().matrix().for_each(
      [&](std::int32_t j1, std::int32_t j2, double bound) {
        if (j1 >= j2) return;
        const std::int32_t c1 = coarse.cluster_of[static_cast<std::size_t>(j1)];
        const std::int32_t c2 = coarse.cluster_of[static_cast<std::size_t>(j2)];
        if (c1 != c2) coarse_timing.add(c1, c2, bound);
      });

  // Coarse linear term: the cost of a cluster at partition i is the sum of
  // its members' costs there.
  Matrix<double> coarse_p;
  const auto& p = problem.linear_cost_matrix();
  if (!p.empty()) {
    coarse_p = Matrix<double>(problem.num_partitions(), next_cluster, 0.0);
    for (PartitionId i = 0; i < problem.num_partitions(); ++i) {
      for (std::int32_t j = 0; j < n; ++j) {
        coarse_p(i, coarse.cluster_of[static_cast<std::size_t>(j)]) += p(i, j);
      }
    }
  }

  coarse.problem = PartitionProblem(std::move(coarse_netlist),
                                    problem.topology(), std::move(coarse_timing),
                                    std::move(coarse_p), problem.alpha(),
                                    problem.beta());
  return coarse;
}

Assignment uncoarsen(const CoarseProblem& coarse,
                     const Assignment& coarse_assignment) {
  QBP_CHECK_EQ(coarse_assignment.num_components(), coarse.num_clusters);
  Assignment fine(static_cast<std::int32_t>(coarse.cluster_of.size()),
                  coarse_assignment.num_partitions());
  for (std::size_t j = 0; j < coarse.cluster_of.size(); ++j) {
    fine.set(static_cast<std::int32_t>(j),
             coarse_assignment[coarse.cluster_of[j]]);
  }
  return fine;
}

MultilevelResult solve_qbp_multilevel(const PartitionProblem& problem,
                                      const Assignment& initial,
                                      const MultilevelOptions& options) {
  if (options.presolve.enabled) {
    // Reduce once, build the whole V-cycle on the reduced instance, lift
    // the finest result back.  Identity reductions recurse untouched so the
    // run stays bit-identical to presolve off.
    const Timer timer;
    const bool needs_normalize =
        problem.alpha() != 1.0 || problem.beta() != 1.0;
    const ReducedProblem reduced =
        needs_normalize ? presolve(problem.normalized(), options.presolve)
                        : presolve(problem, options.presolve);
    MultilevelOptions inner = options;
    inner.presolve.enabled = false;
    inner.coarse_solver.presolve.enabled = false;
    inner.refine_solver.presolve.enabled = false;
    if (reduced.identity() && !reduced.rn_feasible) {
      return solve_qbp_multilevel(problem, initial, inner);
    }
    MultilevelResult lifted;
    const double penalty = options.refine_solver.penalty;
    if (reduced.rn_feasible) {
      lifted.finest = rn_burkard_result(problem, reduced, penalty);
    } else {
      const Assignment start = reduced.lift.restrict_to_reduced(initial);
      MultilevelResult run = solve_qbp_multilevel(reduced.problem, start, inner);
      lifted = std::move(run);
      lifted.finest = lift_burkard_result(problem, reduced,
                                          std::move(lifted.finest), penalty);
    }
    lifted.seconds = timer.seconds();
    return lifted;
  }

  const Timer timer;
  MultilevelResult result;

  // Build the coarsening hierarchy.  `levels` points into `coarse_levels`,
  // so the storage must never reallocate.
  std::vector<const PartitionProblem*> levels{&problem};
  std::vector<CoarseProblem> coarse_levels;
  coarse_levels.reserve(static_cast<std::size_t>(std::max(options.max_levels, 0)));
  result.level_sizes.push_back(problem.num_components());
  for (std::int32_t level = 0; level < options.max_levels; ++level) {
    CoarsenOptions coarsen_options = options.coarsen;
    coarsen_options.seed = options.coarsen.seed + static_cast<unsigned>(level);
    CoarseProblem next = coarsen(*levels.back(), coarsen_options);
    if (next.num_clusters >=
        static_cast<std::int32_t>(options.min_shrink *
                                  levels.back()->num_components())) {
      break;  // diminishing returns
    }
    coarse_levels.push_back(std::move(next));
    levels.push_back(&coarse_levels.back().problem);
    result.level_sizes.push_back(coarse_levels.back().num_clusters);
  }
  result.levels_used = static_cast<std::int32_t>(coarse_levels.size());

  // Project the seed assignment down to the coarsest level.
  Assignment seed = initial;
  for (const CoarseProblem& coarse : coarse_levels) {
    Assignment projected(coarse.num_clusters,
                         coarse.problem.num_partitions());
    for (std::size_t j = 0; j < coarse.cluster_of.size(); ++j) {
      // First member wins; members of a cluster usually agree after the
      // previous level's refinement anyway.
      const std::int32_t cluster = coarse.cluster_of[j];
      if (projected[cluster] == Assignment::kUnassigned) {
        projected.set(cluster, seed[static_cast<std::int32_t>(j)]);
      }
    }
    seed = std::move(projected);
  }

  // Solve coarsest, then refine upward.  The caller's stop hook rides along
  // into every per-level Burkard run.
  BurkardOptions coarse_options = options.coarse_solver;
  if (options.should_stop && !coarse_options.should_stop) {
    coarse_options.should_stop = options.should_stop;
  }
  BurkardOptions refine_options = options.refine_solver;
  if (options.should_stop && !refine_options.should_stop) {
    refine_options.should_stop = options.should_stop;
  }
  // A fired stop hook short-circuits each remaining run after one
  // iteration, so the projection still reaches the finest level and the
  // result keeps the fine problem's dimensions.
  BurkardResult run = solve_qbp(*levels.back(), seed, coarse_options);
  for (std::size_t level = coarse_levels.size(); level-- > 0;) {
    const Assignment& coarse_best =
        run.found_feasible ? run.best_feasible : run.best;
    const Assignment projected = uncoarsen(coarse_levels[level], coarse_best);
    run = solve_qbp(*levels[level], projected, refine_options);
  }

  result.finest = std::move(run);
  result.seconds = timer.seconds();
  return result;
}

}  // namespace qbp
