#include "core/multilevel.hpp"

#include <algorithm>
#include <numeric>

#include "core/delta_evaluator.hpp"
#include "core/qhat.hpp"
#include "core/repair.hpp"
#include "util/parallel.hpp"
#include "util/prof.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

#include "util/check.hpp"

namespace qbp {

CoarseProblem coarsen(const PartitionProblem& problem,
                      const CoarsenOptions& options) {
  QBP_PROF_SCOPE("multilevel.coarsen");
  const std::int32_t n = problem.num_components();
  // Built lazily and not thread-safe to build: touch it here, before the
  // parallel proposal scans read it.
  const auto& adjacency = problem.netlist().connection_matrix();
  const auto& sizes = problem.netlist().sizes();

  double max_capacity = 0.0;
  for (const double c : problem.topology().capacities()) {
    max_capacity = std::max(max_capacity, c);
  }
  const double size_limit = max_capacity * options.max_cluster_capacity_fraction;

  // Heavy-edge matching, parallel and deterministic.  Each round has two
  // phases: a PROPOSAL scan where every unmatched vertex picks its heaviest
  // still-unmatched, size-feasible neighbor (a pure function of the round's
  // frozen `mate` array -- chunks write disjoint `pref` slots, so any
  // thread count produces the same bits), then a serial COMMIT pass in a
  // seeded shuffled order that pairs vertices whose proposal still holds.
  // A second round matches vertices whose first choice was taken earlier in
  // the commit order; beyond two rounds the yield is negligible.
  Rng rng(options.seed);
  std::vector<std::int32_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(std::span<std::int32_t>(order));

  std::vector<std::int32_t> mate(static_cast<std::size_t>(n), -1);
  std::vector<std::int32_t> pref(static_cast<std::size_t>(n), -1);
  const std::int32_t rounds = std::max<std::int32_t>(1, options.rounds);
  for (std::int32_t round = 0; round < rounds; ++round) {
    par::parallel_for(
        n, /*grain=*/512, options.inner_threads,
        [&](std::int64_t chunk_begin, std::int64_t chunk_end, std::int32_t) {
          for (std::int32_t j = static_cast<std::int32_t>(chunk_begin);
               j < static_cast<std::int32_t>(chunk_end); ++j) {
            pref[static_cast<std::size_t>(j)] = -1;
            if (mate[static_cast<std::size_t>(j)] != -1) continue;
            const auto neighbors = adjacency.row_indices(j);
            const auto weights = adjacency.row_values(j);
            std::int32_t best = -1;
            std::int32_t best_weight = 0;
            for (std::size_t k = 0; k < neighbors.size(); ++k) {
              const std::int32_t other = neighbors[k];
              if (mate[static_cast<std::size_t>(other)] != -1) continue;
              if (sizes[static_cast<std::size_t>(j)] +
                      sizes[static_cast<std::size_t>(other)] >
                  size_limit) {
                continue;
              }
              if (weights[k] > best_weight ||
                  (weights[k] == best_weight && best >= 0 && other < best)) {
                best_weight = weights[k];
                best = other;
              }
            }
            pref[static_cast<std::size_t>(j)] = best;
          }
        });
    bool matched_any = false;
    for (const std::int32_t j : order) {
      if (mate[static_cast<std::size_t>(j)] != -1) continue;
      const std::int32_t partner = pref[static_cast<std::size_t>(j)];
      if (partner < 0 || mate[static_cast<std::size_t>(partner)] != -1) continue;
      mate[static_cast<std::size_t>(j)] = partner;
      mate[static_cast<std::size_t>(partner)] = j;
      matched_any = true;
    }
    if (!matched_any) break;  // a further round would propose the same pairs
  }

  // Assign cluster ids: matched pairs share one, singletons get their own.
  CoarseProblem coarse;
  coarse.cluster_of.assign(static_cast<std::size_t>(n), -1);
  std::int32_t next_cluster = 0;
  for (std::int32_t j = 0; j < n; ++j) {
    if (coarse.cluster_of[static_cast<std::size_t>(j)] != -1) continue;
    coarse.cluster_of[static_cast<std::size_t>(j)] = next_cluster;
    const std::int32_t partner = mate[static_cast<std::size_t>(j)];
    if (partner >= 0) coarse.cluster_of[static_cast<std::size_t>(partner)] = next_cluster;
    ++next_cluster;
  }
  coarse.num_clusters = next_cluster;

  // Coarse netlist: sizes add, wires re-accumulate between clusters.
  Netlist coarse_netlist(problem.netlist().name() + ".coarse");
  {
    std::vector<double> cluster_size(static_cast<std::size_t>(next_cluster), 0.0);
    for (std::int32_t j = 0; j < n; ++j) {
      cluster_size[static_cast<std::size_t>(
          coarse.cluster_of[static_cast<std::size_t>(j)])] +=
          sizes[static_cast<std::size_t>(j)];
    }
    for (std::int32_t c = 0; c < next_cluster; ++c) {
      coarse_netlist.add_component("cl" + std::to_string(c),
                                   cluster_size[static_cast<std::size_t>(c)]);
    }
  }
  // The PartitionProblem constructor finalized the fine netlist, so the
  // bundle list is already merged and sorted.
  for (const WireBundle& bundle : problem.netlist().bundles()) {
    const std::int32_t ca = coarse.cluster_of[static_cast<std::size_t>(bundle.a)];
    const std::int32_t cb = coarse.cluster_of[static_cast<std::size_t>(bundle.b)];
    if (ca != cb) coarse_netlist.add_wires(ca, cb, bundle.multiplicity);
  }
  coarse_netlist.finalize();

  // Coarse timing: tightest bound across each cluster pair; intra-cluster
  // constraints vanish (co-location has zero delay).
  TimingConstraints coarse_timing(next_cluster);
  problem.timing().matrix().for_each(
      [&](std::int32_t j1, std::int32_t j2, double bound) {
        if (j1 >= j2) return;
        const std::int32_t c1 = coarse.cluster_of[static_cast<std::size_t>(j1)];
        const std::int32_t c2 = coarse.cluster_of[static_cast<std::size_t>(j2)];
        if (c1 != c2) coarse_timing.add(c1, c2, bound);
      });

  // Coarse linear term: the cost of a cluster at partition i is the sum of
  // its members' costs there.
  Matrix<double> coarse_p;
  const auto& p = problem.linear_cost_matrix();
  if (!p.empty()) {
    coarse_p = Matrix<double>(problem.num_partitions(), next_cluster, 0.0);
    for (PartitionId i = 0; i < problem.num_partitions(); ++i) {
      for (std::int32_t j = 0; j < n; ++j) {
        coarse_p(i, coarse.cluster_of[static_cast<std::size_t>(j)]) += p(i, j);
      }
    }
  }

  coarse.problem = PartitionProblem(std::move(coarse_netlist),
                                    problem.topology(), std::move(coarse_timing),
                                    std::move(coarse_p), problem.alpha(),
                                    problem.beta());
  return coarse;
}

Assignment uncoarsen(const CoarseProblem& coarse,
                     const Assignment& coarse_assignment) {
  QBP_CHECK_EQ(coarse_assignment.num_components(), coarse.num_clusters);
  Assignment fine(static_cast<std::int32_t>(coarse.cluster_of.size()),
                  coarse_assignment.num_partitions());
  for (std::size_t j = 0; j < coarse.cluster_of.size(); ++j) {
    fine.set(static_cast<std::int32_t>(j),
             coarse_assignment[coarse.cluster_of[j]]);
  }
  return fine;
}

namespace {

/// Refine one uncoarsened level in place: polish (bounded best-improvement
/// descent on the penalized objective, C1 invariant), then -- if the
/// descent traded C2 away while a feasible point is in hand -- a
/// min-conflicts timing repair, keeping whichever feasible point has the
/// better true objective.  `u` enters as the projection and leaves as the
/// refined assignment; returns whether the refined `u` is fully feasible.
bool refine_level(const PartitionProblem& problem, Assignment& u,
                  const MultilevelOptions& options, std::uint64_t level_seed) {
  const Assignment projected = u;
  const bool projected_feasible = problem.is_feasible(projected);

  if (options.refine_passes > 0) {
    QBP_PROF_SCOPE("multilevel.refine.polish");
    DeltaEvaluator evaluator(problem, options.refine_solver.penalty);
    polish_iterate(problem, evaluator, u, options.refine_passes, level_seed,
                   options.refine_solver.inner_threads);
  }

  bool feasible = problem.is_feasible(u);
  if (!feasible && problem.satisfies_capacity(u)) {
    QBP_PROF_SCOPE("multilevel.refine.repair");
    RepairOptions repair_options;
    repair_options.seed = level_seed ^ 0x7e7a11ull;
    // A converging repair needs on the order of the violation count in
    // moves; the default 200n budget exists for cold starts.  Refinement
    // starts near-feasible, so cap the walk -- when it fails to converge
    // the result is discarded (projection fallback) and a longer walk
    // would only have burned the level's time budget.
    repair_options.max_moves = 10 * static_cast<std::int64_t>(problem.num_components());
    const RepairResult repaired = repair_timing(problem, u, repair_options);
    if (repaired.feasible) {
      u = repaired.assignment;
      feasible = true;
    }
  }
  // Project-then-refine never loses feasibility: if the projection was
  // feasible and the descent (plus repair) could not keep it, or kept it at
  // a worse true objective, fall back to the projection.
  if (projected_feasible) {
    if (!feasible || problem.objective(u) > problem.objective(projected)) {
      u = projected;
      feasible = true;
    }
  }
  return feasible;
}

/// Wrap a refined assignment as a BurkardResult so every level hands the
/// same shape upward whether or not it ran a full Burkard pass.
BurkardResult wrap_refined(const PartitionProblem& problem, Assignment u,
                           bool feasible, double penalty) {
  BurkardResult result;
  result.best_penalized = QhatMatrix(problem, penalty).penalized_value(u);
  if (feasible) {
    result.found_feasible = true;
    result.best_feasible_objective = problem.objective(u);
    result.best_feasible = u;
  }
  result.best = std::move(u);
  return result;
}

}  // namespace

MultilevelResult solve_qbp_multilevel(const PartitionProblem& problem,
                                      const Assignment& initial,
                                      const MultilevelOptions& options) {
  if (options.presolve.enabled) {
    // Reduce once, build the whole V-cycle on the reduced instance, lift
    // the finest result back.  Identity reductions recurse untouched so the
    // run stays bit-identical to presolve off.
    const Timer timer;
    const bool needs_normalize =
        problem.alpha() != 1.0 || problem.beta() != 1.0;
    const ReducedProblem reduced =
        needs_normalize ? presolve(problem.normalized(), options.presolve)
                        : presolve(problem, options.presolve);
    MultilevelOptions inner = options;
    inner.presolve.enabled = false;
    inner.coarse_solver.presolve.enabled = false;
    inner.refine_solver.presolve.enabled = false;
    if (reduced.identity() && !reduced.rn_feasible) {
      return solve_qbp_multilevel(problem, initial, inner);
    }
    MultilevelResult lifted;
    const double penalty = options.refine_solver.penalty;
    if (reduced.rn_feasible) {
      lifted.finest = rn_burkard_result(problem, reduced, penalty);
    } else {
      const Assignment start = reduced.lift.restrict_to_reduced(initial);
      MultilevelResult run = solve_qbp_multilevel(reduced.problem, start, inner);
      lifted = std::move(run);
      lifted.finest = lift_burkard_result(problem, reduced,
                                          std::move(lifted.finest), penalty);
    }
    lifted.seconds = timer.seconds();
    return lifted;
  }

  const Timer timer;
  MultilevelResult result;

  // Build the coarsening hierarchy.  `levels` points into `coarse_levels`,
  // so the storage must never reallocate -- reserve the depth cap up front.
  const std::int32_t total_levels = std::clamp<std::int32_t>(
      options.max_levels, 1, MultilevelOptions::kMaxLevels);
  std::vector<const PartitionProblem*> levels{&problem};
  std::vector<CoarseProblem> coarse_levels;
  coarse_levels.reserve(static_cast<std::size_t>(total_levels));
  result.level_sizes.push_back(problem.num_components());
  {
    const Timer coarsen_timer;
    while (static_cast<std::int32_t>(levels.size()) < total_levels &&
           levels.back()->num_components() > options.coarsest_target) {
      CoarsenOptions coarsen_options = options.coarsen;
      coarsen_options.seed =
          options.coarsen.seed +
          static_cast<std::uint64_t>(coarse_levels.size());
      CoarseProblem next = coarsen(*levels.back(), coarsen_options);
      if (next.num_clusters >=
          static_cast<std::int32_t>(options.min_shrink *
                                    levels.back()->num_components())) {
        break;  // diminishing returns
      }
      coarse_levels.push_back(std::move(next));
      levels.push_back(&coarse_levels.back().problem);
      result.level_sizes.push_back(coarse_levels.back().num_clusters);
    }
    result.coarsen_seconds = coarsen_timer.seconds();
  }
  result.levels_used = static_cast<std::int32_t>(coarse_levels.size());

  // Project the seed assignment down to the coarsest level.  Cluster
  // members always share one projected partition (both mates inherit the
  // first member's choice), so warm starts survive the descent intact.
  Assignment seed = initial;
  for (const CoarseProblem& coarse : coarse_levels) {
    Assignment projected(coarse.num_clusters,
                         coarse.problem.num_partitions());
    for (std::size_t j = 0; j < coarse.cluster_of.size(); ++j) {
      // First member wins; members of a cluster usually agree after the
      // previous level's refinement anyway.
      const std::int32_t cluster = coarse.cluster_of[j];
      if (projected[cluster] == Assignment::kUnassigned) {
        projected.set(cluster, seed[static_cast<std::int32_t>(j)]);
      }
    }
    seed = std::move(projected);
  }

  // Solve the coarsest level, then uncoarsen-and-refine upward.  The
  // caller's stop hook rides along into every per-level solver run; once it
  // fires, the remaining levels project without refining so the result
  // still reaches the fine problem's dimensions.
  BurkardOptions coarse_options = options.coarse_solver;
  if (options.should_stop && !coarse_options.should_stop) {
    coarse_options.should_stop = options.should_stop;
  }
  BurkardOptions refine_options = options.refine_solver;
  if (options.should_stop && !refine_options.should_stop) {
    refine_options.should_stop = options.should_stop;
  }
  BurkardResult run;
  {
    QBP_PROF_SCOPE("multilevel.coarse_solve");
    run = solve_qbp(*levels.back(), seed, coarse_options);
  }
  for (std::size_t level = coarse_levels.size(); level-- > 0;) {
    const PartitionProblem& fine = *levels[level];
    const Assignment& coarse_best =
        run.found_feasible ? run.best_feasible : run.best;
    Assignment u = uncoarsen(coarse_levels[level], coarse_best);
    const bool stopped = options.should_stop && options.should_stop();
    if (stopped) {
      const bool projected_feasible = fine.is_feasible(u);
      run = wrap_refined(fine, std::move(u), projected_feasible,
                         refine_options.penalty);
      continue;
    }
    const std::uint64_t level_seed =
        options.coarsen.seed * 0x9e3779b97f4a7c15ull +
        static_cast<std::uint64_t>(level);
    const bool feasible = refine_level(fine, u, options, level_seed);
    if (options.refine_burkard_max_n > 0 &&
        fine.num_components() <= options.refine_burkard_max_n) {
      QBP_PROF_SCOPE("multilevel.refine.burkard");
      run = solve_qbp(fine, u, refine_options);
    } else {
      run = wrap_refined(fine, std::move(u), feasible, refine_options.penalty);
    }
  }

  result.finest = std::move(run);
  result.seconds = timer.seconds();
  return result;
}

}  // namespace qbp
