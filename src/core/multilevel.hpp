// Multilevel V-cycle QBP partitioning (extension beyond the paper).
//
// The paper's heuristic scales to hundreds of components; the standard way
// to push it further (and the direction the field took after 1993) is a
// multilevel scheme:
//
//   1. COARSEN: heavy-edge matching merges strongly-connected component
//      pairs into clusters (sizes add, wires re-accumulate between
//      clusters, timing constraints keep the tightest bound across the cut
//      pairs; intra-cluster constraints vanish -- co-location has delay
//      D(i,i) = 0, so merging can never violate a pairwise bound).  The
//      hierarchy grows until `max_levels` levels exist, the coarsest level
//      reaches `coarsest_target` clusters, or a level shrinks by less than
//      the `min_shrink` floor.
//   2. SOLVE the coarsest PP with the Burkard heuristic (cheap: few
//      clusters, same partitions).  Warm-start compatible: the caller's
//      `initial` is projected down the hierarchy and seeds this solve, so
//      the engine Portfolio's warm-start injection flows straight through.
//   3. UNCOARSEN one level: every component inherits its cluster's
//      partition.  The projection is exact -- it preserves C1 (cluster
//      sizes are member sums), C2 (the coarse bound is the tightest fine
//      bound) and the objective (intra-cluster wires cost B(i,i) = 0).
//   4. REFINE at that level: `refine_passes` bounded best-improvement
//      sweeps through the shared DeltaEvaluator (dirty-flag cached deltas),
//      a min-conflicts timing repair when the descent traded feasibility
//      away, and -- on levels small enough to afford it -- a full Burkard
//      run (`refine_burkard_max_n`).  Repeat 3-4 up to the finest level.
//
// Determinism: bit-identical results at every thread count.  The matching
// runs as parallel proposal rounds (each vertex's preferred partner is a
// pure function of the round's frozen matching state) followed by a serial
// commit in a seeded deterministic order; refinement inherits the
// determinism of polish_iterate / solve_qbp.
#pragma once

#include <cstdint>
#include <vector>

#include "core/burkard.hpp"
#include "core/problem.hpp"

namespace qbp {

struct CoarseProblem {
  PartitionProblem problem;
  /// cluster_of[fine_component] = coarse component id.
  std::vector<std::int32_t> cluster_of;
  std::int32_t num_clusters = 0;
};

struct CoarsenOptions {
  /// A pair may merge only if the merged size fits the largest partition
  /// times this factor (guards against unplaceable super-components).
  double max_cluster_capacity_fraction = 0.5;
  /// Deterministic tie-breaking seed for the matching commit order.
  std::uint64_t seed = 1;
  /// Proposal/commit rounds per level: later rounds re-propose vertices
  /// whose preferred partner was taken by an earlier commit.  Four rounds
  /// keep the per-level shrink near the 0.5 ideal even when many first
  /// choices collide (two leave ~25-40% of the mass unmatched on dense
  /// levels, stalling the hierarchy before `coarsest_target`).
  std::int32_t rounds = 4;
  /// Threads for the proposal scans (util/parallel pool).  Results are
  /// bit-identical at every value; this knob trades wall-clock only.
  std::int32_t inner_threads = 1;
};

/// One level of heavy-edge-matching coarsening.  Unmatched components
/// become singleton clusters.  num_clusters < N whenever any wire connects
/// two mergeable components.
[[nodiscard]] CoarseProblem coarsen(const PartitionProblem& problem,
                                    const CoarsenOptions& options = {});

/// Project a coarse assignment back to the fine components.
[[nodiscard]] Assignment uncoarsen(const CoarseProblem& coarse,
                                   const Assignment& coarse_assignment);

struct MultilevelOptions {
  /// Total levels in the hierarchy *including* the finest: 1 disables
  /// coarsening entirely (the run is then bit-identical to solve_qbp with
  /// `coarse_solver` on the original problem), 2 adds one coarse level, and
  /// so on.  Values above kMaxLevels are clamped.
  std::int32_t max_levels = 20;
  /// Stop coarsening when a level shrinks the problem by less than this
  /// factor (next_clusters >= min_shrink * current_components).
  double min_shrink = 0.9;
  /// Stop coarsening once a level has at most this many clusters; the
  /// Burkard heuristic is strong at this size, so going deeper only loses
  /// structure.
  std::int32_t coarsest_target = 200;
  /// Bounded best-improvement refinement sweeps per uncoarsened level
  /// (polish_iterate: DeltaEvaluator move sweep + swap sweeps, C1
  /// invariant).  0 disables per-level refinement.
  std::int32_t refine_passes = 3;
  /// Levels with at most this many components additionally get a full
  /// `refine_solver` Burkard run from the refined projection; larger levels
  /// rely on the polish/repair refinement alone (a full run there would
  /// cost as much as the flat solve the V-cycle exists to avoid).  0
  /// disables the per-level Burkard runs everywhere.
  std::int32_t refine_burkard_max_n = 0;
  /// Burkard budget on the coarsest problem.
  BurkardOptions coarse_solver;
  /// Burkard budget for the small-level refinement runs; its `penalty` and
  /// `inner_threads` also drive the polish refinement on every level.
  BurkardOptions refine_solver;
  CoarsenOptions coarsen;
  /// Cooperative cancellation hook, forwarded into every per-level solver
  /// run and checked between levels (a fired hook skips the remaining
  /// refinement work while the projection still reaches the finest level).
  /// Empty = never stop.
  std::function<bool()> should_stop;
  /// Presolve the instance before building the V-cycle (core/presolve.hpp);
  /// the whole hierarchy is then built on the reduced instance and the
  /// finest result is lifted back.  Disabled by default at this layer (see
  /// BurkardOptions::presolve); per-level Burkard presolve is always forced
  /// off -- reducing an already-reduced level would only waste time.
  PresolveOptions presolve{.enabled = false};

  /// Hard cap on hierarchy depth (the level storage is reserved up front so
  /// the per-level problem pointers stay stable).
  static constexpr std::int32_t kMaxLevels = 64;

  MultilevelOptions() {
    coarse_solver.iterations = 80;
    refine_solver.iterations = 30;
  }
};

struct MultilevelResult {
  BurkardResult finest;             // the final refinement run's result
  std::int32_t levels_used = 0;     // coarsening levels actually applied
  std::vector<std::int32_t> level_sizes;  // component count per level, fine->coarse
  double seconds = 0.0;
  /// Wall clock spent building the coarsening hierarchy (subset of
  /// `seconds`).
  double coarsen_seconds = 0.0;
};

/// Full V-cycle from `initial` (used only to seed the coarsest solve).
[[nodiscard]] MultilevelResult solve_qbp_multilevel(
    const PartitionProblem& problem, const Assignment& initial,
    const MultilevelOptions& options = {});

}  // namespace qbp
