// Multilevel QBP partitioning (extension beyond the paper).
//
// The paper's heuristic scales to hundreds of components; the standard way
// to push it further (and the direction the field took after 1993) is a
// multilevel scheme:
//
//   1. COARSEN: heavy-edge matching merges strongly-connected component
//      pairs into clusters (sizes add, wires re-accumulate between
//      clusters, timing constraints keep the tightest bound across the cut
//      pairs; intra-cluster constraints vanish -- co-location has delay
//      D(i,i) = 0, so merging can never violate a pairwise bound).
//   2. SOLVE the coarse PP with the Burkard heuristic (cheap: fewer
//      components, same partitions).
//   3. UNCOARSEN: every component inherits its cluster's partition.
//   4. REFINE: a short Burkard run on the full problem from the projected
//      assignment.
//
// One coarsening level usually halves the component count; `max_levels`
// controls the depth of the V-cycle.
#pragma once

#include <cstdint>
#include <vector>

#include "core/burkard.hpp"
#include "core/problem.hpp"

namespace qbp {

struct CoarseProblem {
  PartitionProblem problem;
  /// cluster_of[fine_component] = coarse component id.
  std::vector<std::int32_t> cluster_of;
  std::int32_t num_clusters = 0;
};

struct CoarsenOptions {
  /// A pair may merge only if the merged size fits the largest partition
  /// times this factor (guards against unplaceable super-components).
  double max_cluster_capacity_fraction = 0.5;
  /// Deterministic tie-breaking seed for the matching order.
  std::uint64_t seed = 1;
};

/// One level of heavy-edge-matching coarsening.  Unmatched components
/// become singleton clusters.  num_clusters < N whenever any wire connects
/// two mergeable components.
[[nodiscard]] CoarseProblem coarsen(const PartitionProblem& problem,
                                    const CoarsenOptions& options = {});

/// Project a coarse assignment back to the fine components.
[[nodiscard]] Assignment uncoarsen(const CoarseProblem& coarse,
                                   const Assignment& coarse_assignment);

struct MultilevelOptions {
  std::int32_t max_levels = 2;
  /// Stop coarsening when a level shrinks the problem by less than this.
  double min_shrink = 0.9;
  /// Burkard budget on the coarsest problem.
  BurkardOptions coarse_solver;
  /// Burkard budget for each refinement level (runs from the projection).
  BurkardOptions refine_solver;
  CoarsenOptions coarsen;
  /// Cooperative cancellation hook, forwarded into every per-level Burkard
  /// run (a fired hook short-circuits each run after one iteration while
  /// the projection still reaches the finest level).  Empty = never stop.
  std::function<bool()> should_stop;
  /// Presolve the instance before building the V-cycle (core/presolve.hpp);
  /// the whole hierarchy is then built on the reduced instance and the
  /// finest result is lifted back.  Disabled by default at this layer (see
  /// BurkardOptions::presolve); per-level Burkard presolve is always forced
  /// off -- reducing an already-reduced level would only waste time.
  PresolveOptions presolve{.enabled = false};

  MultilevelOptions() {
    coarse_solver.iterations = 80;
    refine_solver.iterations = 30;
  }
};

struct MultilevelResult {
  BurkardResult finest;             // the final refinement run's result
  std::int32_t levels_used = 0;     // coarsening levels actually applied
  std::vector<std::int32_t> level_sizes;  // component count per level, fine->coarse
  double seconds = 0.0;
};

/// Full V-cycle from `initial` (used only to seed the coarsest solve).
[[nodiscard]] MultilevelResult solve_qbp_multilevel(
    const PartitionProblem& problem, const Assignment& initial,
    const MultilevelOptions& options = {});

}  // namespace qbp
