#include "core/presolve.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "core/brute_force.hpp"
#include "util/check.hpp"
#include "util/flat_map.hpp"
#include "util/prof.hpp"
#include "util/timer.hpp"

namespace qbp {

namespace {

/// Mutable working state of one reduction run.  Everything is indexed by
/// ORIGINAL component id; removed components are simply marked dead and
/// their rows cleared, so the rule scans never renumber mid-run.
struct Reducer {
  const PartitionProblem& problem;
  const PresolveOptions& options;
  std::int32_t n = 0;
  std::int32_t m = 0;

  std::vector<double> sizes;              // aggregated by R2 merges
  std::vector<char> alive;
  std::vector<char> r1_blocked;           // carries a discharged timing bound
  std::vector<PartitionId> fixed_at;      // R0 result, -1 while free
  // Sparse symmetric wire weights among free components (both directions
  // stored, like Netlist's connection matrix).  int64: merged multiplicities
  // can exceed a single bundle's int32 range before the rebuild checks.
  std::vector<FlatMap<std::int32_t, std::int64_t>> adj;
  // Sparse symmetric timing bounds among free components.
  std::vector<FlatMap<std::int32_t, double>> tc;
  Matrix<double> p;                       // m x n working linear costs
  bool emit_p = false;                    // reduced problem needs a P matrix
  std::vector<double> cap;                // capacities minus forced occupancy
  double reserved = 0.0;                  // R1 everywhere-reservation total
  // A timing bound forces co-location iff it is below this (see R2): the
  // tightest bound any pair of distinct partitions can satisfy.
  double min_separable_bound = std::numeric_limits<double>::infinity();
  bool zero_delay_diagonal = true;
  double offset = 0.0;

  PresolveStats stats;
  std::vector<LiftAction> actions;

  Reducer(const PartitionProblem& prob, const PresolveOptions& opts)
      : problem(prob), options(opts) {
    n = problem.num_components();
    m = problem.num_partitions();
    sizes = problem.netlist().sizes();
    alive.assign(static_cast<std::size_t>(n), 1);
    r1_blocked.assign(static_cast<std::size_t>(n), 0);
    fixed_at.assign(static_cast<std::size_t>(n), -1);

    adj.resize(static_cast<std::size_t>(n));
    const auto& a = problem.netlist().connection_matrix();
    for (std::int32_t j = 0; j < n; ++j) {
      const auto cols = a.row_indices(j);
      const auto vals = a.row_values(j);
      adj[static_cast<std::size_t>(j)].reserve(cols.size());
      for (std::size_t e = 0; e < cols.size(); ++e) {
        adj[static_cast<std::size_t>(j)][cols[e]] = vals[e];
      }
    }

    tc.resize(static_cast<std::size_t>(n));
    if (problem.timing().num_components() > 0) {
      for (std::int32_t j = 0; j < n; ++j) {
        const auto partners = problem.timing().partners(j);
        const auto bounds = problem.timing().bounds(j);
        tc[static_cast<std::size_t>(j)].reserve(partners.size());
        for (std::size_t e = 0; e < partners.size(); ++e) {
          tc[static_cast<std::size_t>(j)][partners[e]] = bounds[e];
        }
      }
    }

    p = Matrix<double>(m, n, 0.0);
    const Matrix<double>& original_p = problem.linear_cost_matrix();
    if (!original_p.empty()) {
      emit_p = true;
      for (PartitionId i = 0; i < m; ++i) {
        for (std::int32_t j = 0; j < n; ++j) p(i, j) = original_p(i, j);
      }
    }

    cap = problem.topology().capacities();
    const auto& d = problem.topology().delay();
    for (PartitionId i1 = 0; i1 < m; ++i1) {
      if (d(i1, i1) != 0.0) zero_delay_diagonal = false;
      for (PartitionId i2 = 0; i2 < m; ++i2) {
        if (i1 == i2) continue;
        // A pair (i1, i2) satisfies a bound b iff both directions do.
        min_separable_bound =
            std::min(min_separable_bound, std::max(d(i1, i2), d(i2, i1)));
      }
    }
  }

  [[nodiscard]] bool fits(std::int32_t j, PartitionId i) const noexcept {
    return sizes[static_cast<std::size_t>(j)] <=
           cap[static_cast<std::size_t>(i)] + CapacityLedger::kTolerance;
  }

  /// The timing bound between fixed partition q and any capacity-feasible
  /// placement of free component t never binds (checked in both delay
  /// directions, mirroring TimingConstraints::violations).
  [[nodiscard]] bool vacuous_for(PartitionId q, std::int32_t t,
                                 double bound) const {
    const auto& d = problem.topology().delay();
    for (PartitionId i = 0; i < m; ++i) {
      if (!fits(t, i)) continue;
      if (d(q, i) > bound || d(i, q) > bound) return false;
    }
    return true;
  }

  void push_merge(std::int32_t gone, std::int32_t rep) {
    LiftAction action;
    action.kind = LiftAction::Kind::kMerge;
    action.component = gone;
    action.other = rep;
    actions.push_back(std::move(action));
    ++stats.r2;
    ++stats.components_removed;
  }

  /// Merge `gone` into representative `rep` (forced co-location).
  void merge(std::int32_t rep, std::int32_t gone) {
    push_merge(gone, rep);
    alive[static_cast<std::size_t>(gone)] = 0;
    sizes[static_cast<std::size_t>(rep)] += sizes[static_cast<std::size_t>(gone)];
    r1_blocked[static_cast<std::size_t>(rep)] =
        static_cast<char>(r1_blocked[static_cast<std::size_t>(rep)] |
                          r1_blocked[static_cast<std::size_t>(gone)]);

    const auto& b = problem.topology().wire_cost();
    for (const auto& [t, w] : adj[static_cast<std::size_t>(gone)]) {
      adj[static_cast<std::size_t>(t)].erase(gone);
      if (t == rep) {
        // Intra-pair wires cost w * (B(i, i) + B(i, i)) when co-located at i
        // (the objective's ordered double sum visits the bundle twice) --
        // zero for validated topologies, folded into the column otherwise.
        for (PartitionId i = 0; i < m; ++i) {
          if (b(i, i) != 0.0) {
            p(i, rep) += static_cast<double>(w) * (b(i, i) + b(i, i));
            emit_p = true;
          }
        }
        continue;
      }
      adj[static_cast<std::size_t>(rep)][t] += w;
      adj[static_cast<std::size_t>(t)][rep] += w;
    }
    adj[static_cast<std::size_t>(gone)].clear();

    for (const auto& [t, bound] : tc[static_cast<std::size_t>(gone)]) {
      tc[static_cast<std::size_t>(t)].erase(gone);
      if (t == rep) continue;  // the pair's own bound: D(i, i) = 0 <= bound
      auto tighten = [bound](FlatMap<std::int32_t, double>& row,
                             std::int32_t key) {
        if (double* existing = row.find(key)) {
          *existing = std::min(*existing, bound);
        } else {
          row[key] = bound;
        }
      };
      tighten(tc[static_cast<std::size_t>(rep)], t);
      tighten(tc[static_cast<std::size_t>(t)], rep);
    }
    tc[static_cast<std::size_t>(gone)].clear();

    for (PartitionId i = 0; i < m; ++i) p(i, rep) += p(i, gone);
  }

  /// One R2 scan: find and apply the first forced co-location, restarting
  /// until none remains.  Merges are rare, so the rescan is cheap.
  bool run_r2() {
    if (!zero_delay_diagonal) return false;  // co-location cost not constant
    bool changed = false;
    bool found = true;
    while (found) {
      found = false;
      for (std::int32_t j = 0; j < n && !found; ++j) {
        if (!alive[static_cast<std::size_t>(j)]) continue;
        for (const auto& [k, bound] : tc[static_cast<std::size_t>(j)]) {
          if (k <= j) continue;
          if (bound >= min_separable_bound) continue;
          merge(j, k);
          changed = true;
          found = true;
          break;
        }
      }
    }
    return changed;
  }

  /// Fix `j` at `q`: fold its costs and charge its size.  Preconditions:
  /// q is capacity-feasible and every timing bound of j is vacuous.
  void fix(std::int32_t j, PartitionId q) {
    offset += p(q, j);
    const auto& b = problem.topology().wire_cost();
    for (const auto& [t, w] : adj[static_cast<std::size_t>(j)]) {
      adj[static_cast<std::size_t>(t)].erase(j);
      // The objective's ordered double sum counts the (j, t) bundle in both
      // directions, so the fold must too.
      for (PartitionId i = 0; i < m; ++i) {
        p(i, t) += static_cast<double>(w) * (b(q, i) + b(i, q));
      }
      emit_p = true;
    }
    adj[static_cast<std::size_t>(j)].clear();
    for (const auto& [t, bound] : tc[static_cast<std::size_t>(j)]) {
      (void)bound;
      tc[static_cast<std::size_t>(t)].erase(j);
      // The bound was vacuous over t's capacity-feasible set, so it is
      // dropped from the reduced instance -- but t may no longer be
      // R1-eliminated: R1's lift places its component by cost alone, and
      // only capacity-feasible placements are covered by the vacuity proof.
      r1_blocked[static_cast<std::size_t>(t)] = 1;
    }
    tc[static_cast<std::size_t>(j)].clear();
    cap[static_cast<std::size_t>(q)] -= sizes[static_cast<std::size_t>(j)];
    QBP_CHECK(cap[static_cast<std::size_t>(q)] >= -CapacityLedger::kTolerance)
        << "presolve R0 overfilled partition " << q;
    alive[static_cast<std::size_t>(j)] = 0;
    fixed_at[static_cast<std::size_t>(j)] = q;

    LiftAction action;
    action.kind = LiftAction::Kind::kFix;
    action.component = j;
    action.partition = q;
    actions.push_back(std::move(action));
    ++stats.r0;
    ++stats.components_removed;
  }

  bool run_r0() {
    bool changed = false;
    for (std::int32_t j = 0; j < n; ++j) {
      if (!alive[static_cast<std::size_t>(j)]) continue;
      std::int32_t fits_count = 0;
      PartitionId q = -1;
      for (PartitionId i = 0; i < m; ++i) {
        if (!fits(j, i)) continue;
        ++fits_count;
        if (fits_count > 1) break;
        q = i;
      }
      if (fits_count == 0) {
        stats.proven_infeasible = true;
        return changed;
      }
      if (fits_count > 1) continue;
      // Singleton {q}: fixable only when every timing bound against a free
      // partner is vacuous wherever that partner can still go; otherwise
      // defer -- the partner may itself become forced in a later pass.
      bool all_vacuous = true;
      for (const auto& [t, bound] : tc[static_cast<std::size_t>(j)]) {
        if (!vacuous_for(q, t, bound)) {
          all_vacuous = false;
          break;
        }
      }
      if (!all_vacuous) continue;
      fix(j, q);
      changed = true;
    }
    return changed;
  }

  bool run_r1() {
    bool changed = false;
    const auto& b = problem.topology().wire_cost();
    for (std::int32_t j = 0; j < n; ++j) {
      if (!alive[static_cast<std::size_t>(j)]) continue;
      if (r1_blocked[static_cast<std::size_t>(j)]) continue;
      if (!tc[static_cast<std::size_t>(j)].empty()) continue;
      if (adj[static_cast<std::size_t>(j)].size() > 1) continue;
      const double min_cap = *std::min_element(cap.begin(), cap.end());
      const double size = sizes[static_cast<std::size_t>(j)];
      if (size > options.r1_max_size_fraction * min_cap) continue;
      if (reserved + size > options.r1_max_reserve_fraction * min_cap) continue;

      LiftAction action;
      action.kind = LiftAction::Kind::kEliminate;
      action.component = j;
      if (adj[static_cast<std::size_t>(j)].empty()) {
        // Degree 0: the whole column is a constant choice.
        PartitionId best_i = 0;
        double best = p(0, j);
        for (PartitionId i = 1; i < m; ++i) {
          if (p(i, j) < best) {
            best = p(i, j);
            best_i = i;
          }
        }
        offset += best;
        action.other = -1;
        action.response.push_back(best_i);
      } else {
        const auto [k, w] = *adj[static_cast<std::size_t>(j)].begin();
        action.other = k;
        action.response.resize(static_cast<std::size_t>(m));
        // Both wire-cost directions, matching the objective's ordered sum.
        for (PartitionId ik = 0; ik < m; ++ik) {
          PartitionId best_i = 0;
          double best =
              p(0, j) + static_cast<double>(w) * (b(0, ik) + b(ik, 0));
          for (PartitionId i = 1; i < m; ++i) {
            const double cost =
                p(i, j) + static_cast<double>(w) * (b(i, ik) + b(ik, i));
            if (cost < best) {
              best = cost;
              best_i = i;
            }
          }
          action.response[static_cast<std::size_t>(ik)] = best_i;
          p(ik, k) += best;
        }
        emit_p = true;
        adj[static_cast<std::size_t>(k)].erase(j);
        adj[static_cast<std::size_t>(j)].clear();
      }
      reserved += size;
      alive[static_cast<std::size_t>(j)] = 0;
      actions.push_back(std::move(action));
      ++stats.r1;
      ++stats.components_removed;
      changed = true;
    }
    return changed;
  }

  void run() {
    while (stats.passes < options.max_passes) {
      ++stats.passes;
      bool changed = false;
      if (options.rule_r2) changed = run_r2() || changed;
      if (stats.proven_infeasible) return;
      if (options.rule_r0) changed = run_r0() || changed;
      if (stats.proven_infeasible) return;
      if (options.rule_r1) changed = run_r1() || changed;
      if (!changed) return;
    }
  }

  /// Rebuild a dense PP(1,1) instance over the surviving components.
  [[nodiscard]] PartitionProblem build_reduced(
      const std::vector<std::int32_t>& order) const {
    const auto n_free = static_cast<std::int32_t>(order.size());
    std::vector<std::int32_t> red_of(static_cast<std::size_t>(n), -1);
    for (std::int32_t r = 0; r < n_free; ++r) {
      red_of[static_cast<std::size_t>(order[static_cast<std::size_t>(r)])] = r;
    }

    Netlist netlist(problem.netlist().name());
    for (const std::int32_t j : order) {
      netlist.add_component(problem.netlist().component(j).name,
                            sizes[static_cast<std::size_t>(j)]);
    }
    for (const std::int32_t j : order) {
      for (const auto& [t, w] : adj[static_cast<std::size_t>(j)]) {
        if (t <= j) continue;
        QBP_CHECK(w > 0 && w <= std::numeric_limits<std::int32_t>::max())
            << "merged wire multiplicity out of range: " << w;
        netlist.add_wires(red_of[static_cast<std::size_t>(j)],
                          red_of[static_cast<std::size_t>(t)],
                          static_cast<std::int32_t>(w));
      }
    }

    PartitionTopology topology = problem.topology();
    {
      std::vector<double> capacities = cap;
      for (double& c : capacities) c -= reserved;
      topology.set_capacities(std::move(capacities));
    }

    TimingConstraints timing(n_free);
    for (const std::int32_t j : order) {
      for (const auto& [t, bound] : tc[static_cast<std::size_t>(j)]) {
        if (t <= j) continue;
        timing.add(red_of[static_cast<std::size_t>(j)],
                   red_of[static_cast<std::size_t>(t)], bound);
      }
    }

    Matrix<double> reduced_p;
    if (emit_p) {
      reduced_p = Matrix<double>(m, n_free);
      for (PartitionId i = 0; i < m; ++i) {
        for (std::int32_t r = 0; r < n_free; ++r) {
          reduced_p(i, r) = p(i, order[static_cast<std::size_t>(r)]);
        }
      }
    }

    return PartitionProblem(std::move(netlist), std::move(topology),
                            std::move(timing), std::move(reduced_p));
  }
};

void publish_counters(const PresolveStats& stats) {
  if (!prof::enabled()) return;
  static const prof::PhaseId kR0 = prof::register_phase("presolve.r0");
  static const prof::PhaseId kR1 = prof::register_phase("presolve.r1");
  static const prof::PhaseId kR2 = prof::register_phase("presolve.r2");
  static const prof::PhaseId kRn = prof::register_phase("presolve.rn");
  static const prof::PhaseId kRemoved =
      prof::register_phase("presolve.components_removed");
  prof::record_events(kR0, stats.r0);
  prof::record_events(kR1, stats.r1);
  prof::record_events(kR2, stats.r2);
  prof::record_events(kRn, stats.rn);
  prof::record_events(kRemoved, stats.components_removed);
}

}  // namespace

Assignment SolutionLift::lift(const Assignment& reduced) const {
  QBP_CHECK_EQ(reduced.num_components(),
               static_cast<std::int32_t>(orig_of.size()))
      << "lift expects an assignment of the reduced instance";
  QBP_CHECK(reduced.is_complete()) << "lift expects a complete assignment";
  Assignment original(num_original, num_partitions);
  for (std::size_t r = 0; r < orig_of.size(); ++r) {
    original.set(orig_of[r], reduced[static_cast<std::int32_t>(r)]);
  }
  // Reverse replay: an action's referenced component (`other`) was removed
  // only by a *later* action, so it is always placed first.
  for (auto it = actions.rbegin(); it != actions.rend(); ++it) {
    const LiftAction& action = *it;
    switch (action.kind) {
      case LiftAction::Kind::kFix:
        original.set(action.component, action.partition);
        break;
      case LiftAction::Kind::kMerge: {
        const PartitionId at = original[action.other];
        QBP_CHECK(at != Assignment::kUnassigned)
            << "lift: merge representative " << action.other
            << " placed after member " << action.component;
        original.set(action.component, at);
        break;
      }
      case LiftAction::Kind::kEliminate: {
        if (action.other < 0) {
          original.set(action.component, action.response.front());
          break;
        }
        const PartitionId at = original[action.other];
        QBP_CHECK(at != Assignment::kUnassigned)
            << "lift: neighbor " << action.other << " placed after eliminated "
            << action.component;
        original.set(action.component,
                     action.response[static_cast<std::size_t>(at)]);
        break;
      }
    }
  }
  QBP_CHECK(original.is_complete()) << "lift must place every component";
  return original;
}

Assignment SolutionLift::restrict_to_reduced(const Assignment& original) const {
  QBP_CHECK_EQ(original.num_components(), num_original);
  Assignment reduced(static_cast<std::int32_t>(orig_of.size()), num_partitions);
  for (std::size_t r = 0; r < orig_of.size(); ++r) {
    reduced.set(static_cast<std::int32_t>(r), original[orig_of[r]]);
  }
  return reduced;
}

ReducedProblem presolve(const PartitionProblem& problem,
                        const PresolveOptions& options) {
  QBP_PROF_SCOPE("presolve.seconds");
  const Timer timer;

  ReducedProblem out;
  out.lift.num_original = problem.num_components();
  out.lift.num_partitions = problem.num_partitions();

  if (!options.enabled) {
    out.problem = problem;
    out.lift.orig_of.resize(static_cast<std::size_t>(problem.num_components()));
    for (std::int32_t j = 0; j < problem.num_components(); ++j) {
      out.lift.orig_of[static_cast<std::size_t>(j)] = j;
    }
    return out;
  }

  QBP_CHECK(problem.alpha() == 1.0 && problem.beta() == 1.0)
      << "presolve expects a normalized PP(1,1) instance "
         "(PartitionProblem::normalized())";

  Reducer reducer(problem, options);
  reducer.run();
  out.stats = reducer.stats;

  if (reducer.stats.proven_infeasible || reducer.actions.empty()) {
    // Identity: hand the caller an unmodified copy so a solver run on it is
    // bit-identical to a run on the input.  (A proven-infeasible instance
    // also takes this path: the solver reports infeasibility the same way
    // it would without presolve.)
    out.problem = problem;
    out.lift.orig_of.resize(static_cast<std::size_t>(problem.num_components()));
    for (std::int32_t j = 0; j < problem.num_components(); ++j) {
      out.lift.orig_of[static_cast<std::size_t>(j)] = j;
    }
  } else {
    out.lift.objective_offset = reducer.offset;
    out.lift.actions = std::move(reducer.actions);
    for (std::int32_t j = 0; j < reducer.n; ++j) {
      if (reducer.alive[static_cast<std::size_t>(j)]) {
        out.lift.orig_of.push_back(j);
      }
    }
    out.problem = reducer.build_reduced(out.lift.orig_of);
  }

  // RN: brute-force tiny remainders (including tiny *identity* instances --
  // an exact answer is always at least as good as a heuristic one).
  const auto n_free = static_cast<std::int32_t>(out.lift.orig_of.size());
  if (options.rule_rn && !out.stats.proven_infeasible &&
      n_free <= options.rn_max_components && n_free > 0) {
    const double enumerations =
        std::pow(static_cast<double>(problem.num_partitions()),
                 static_cast<double>(n_free));
    if (enumerations <= static_cast<double>(1 << 22)) {
      const BruteForceResult exact = brute_force_constrained(out.problem);
      out.rn_solved = true;
      out.rn_feasible = exact.found;
      if (exact.found) {
        out.rn_assignment = exact.best;
        out.rn_objective = exact.value;
        out.stats.rn = n_free;
      }
    }
  }

  out.stats.seconds = timer.seconds();
  publish_counters(out.stats);
  return out;
}

}  // namespace qbp
