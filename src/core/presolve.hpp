// Presolve: exactness-preserving reductions applied before any solver runs.
//
// PBQP solvers routinely shrink quadratic-assignment instances with a small
// set of local reductions before the expensive part starts (libfirm's kaps:
// R0 trivial nodes, RI/RII low-degree eliminations, RN brute force on tiny
// remainders).  The same idea applies to the paper's PP(alpha, beta): many
// components have forced or mergeable assignments that can be discharged in
// O(N + nnz) before the first Burkard iteration pays for their y variables.
//
// Rules, iterated to a fixed point (kaps-style counters in PresolveStats):
//
//   R0  forced fix.  A component whose capacity-feasible partition set is a
//       singleton {q} is fixed at q, its linear cost folded into the
//       constant offset, its wire costs folded into its neighbors' linear
//       columns, and its capacity charged against partition q.  A component
//       with an *empty* set proves the instance infeasible.  Timing
//       constraints against still-free partners are only discharged when
//       vacuous over the partner's capacity-feasible set; otherwise the fix
//       is deferred (possibly forever -- the solver then handles it).
//   R1  low-degree elimination.  A component with no timing constraints and
//       at most one free wire neighbor is removed; its optimal response to
//       each neighbor placement is precomputed into a response table (the
//       PBQP RI/RII move) and the response cost folded into the neighbor's
//       linear column.  Exactness under the *global* capacity constraint C1
//       is bought by reserving the component's size from every partition's
//       capacity in the reduced instance, so the lift-time placement always
//       fits; the r1_* caps bound how much feasible region that reservation
//       may cost.
//   R2  must-co-locate merge.  A timing bound that no pair of *distinct*
//       partitions can satisfy forces its endpoints into the same partition;
//       the pair is merged into a super-component (sizes summed, wire rows
//       aggregated, timing bounds min-combined, linear columns added),
//       exactly like the multilevel coarsener's matching contraction.
//   RN  remainder brute force.  When the fixed point leaves at most
//       rn_max_components free components, the reduced instance is solved
//       *exactly* with core/brute_force and the heuristic solve is skipped.
//
// The output is a ReducedProblem: the shrunken PP(1,1) instance plus an
// invertible SolutionLift mapping reduced-space assignments back to the
// original component set (and original-space starts forward).  Lifting adds
// objective_offset to the reduced objective; for capacity-feasible solutions
// the lifted assignment is feasible for the *original* problem whenever the
// reduced one is feasible for the reduced problem (see DESIGN.md section 12
// for the correctness argument).  Callers must present a normalized
// PP(1, 1) instance -- PartitionProblem::normalized() folds alpha/beta
// without changing objective values.
#pragma once

#include <cstdint>
#include <vector>

#include "core/problem.hpp"

namespace qbp {

struct PresolveOptions {
  /// Master switch.  presolve() returns an identity reduction when false;
  /// layers that embed these options (BurkardOptions, MultilevelOptions)
  /// default it OFF so inner solves never re-reduce, and entry points (CLI,
  /// service, bench harness) opt in.
  bool enabled = true;
  bool rule_r0 = true;
  bool rule_r1 = true;
  bool rule_r2 = true;
  bool rule_rn = true;
  /// Fixed-point iteration cap; each pass tries R2, R0, R1 once.
  std::int32_t max_passes = 32;
  /// RN fires when at most this many free components remain (and the
  /// enumeration stays within the brute-force work budget).
  std::int32_t rn_max_components = 4;
  /// R1 guard: an eliminated component's size must not exceed this fraction
  /// of the smallest partition capacity, and the cumulative reservation must
  /// stay under r1_max_reserve_fraction of it.  Both bound how much of the
  /// feasible region the everywhere-reservation may cost.
  double r1_max_size_fraction = 0.05;
  double r1_max_reserve_fraction = 0.25;
};

/// kaps-style reduction counters plus bookkeeping of one presolve() call.
struct PresolveStats {
  std::int32_t r0 = 0;  // components fixed
  std::int32_t r1 = 0;  // components eliminated into response tables
  std::int32_t r2 = 0;  // components merged away
  std::int32_t rn = 0;  // components solved exactly by the RN brute force
  std::int32_t components_removed = 0;  // r0 + r1 + r2
  std::int32_t passes = 0;
  double seconds = 0.0;
  /// R0 found a component with no capacity-feasible partition: the original
  /// instance has no feasible solution.  The reduction returns identity so
  /// the solver still runs (and reports infeasibility) exactly as without
  /// presolve.
  bool proven_infeasible = false;

  friend bool operator==(const PresolveStats&, const PresolveStats&) = default;
};

/// One replayable reduction step, recorded in application order and replayed
/// in reverse by SolutionLift::lift (so every referenced component is placed
/// before its dependents).
struct LiftAction {
  enum class Kind : std::uint8_t {
    kFix,        // component forced to `partition` (R0)
    kMerge,      // component co-located with representative `other` (R2)
    kEliminate,  // component placed via `response` table (R1)
  };
  Kind kind = Kind::kFix;
  /// Original-space id of the removed component.
  std::int32_t component = -1;
  /// kMerge: surviving representative; kEliminate: the one free neighbor at
  /// elimination time (-1 when the component had degree 0).
  std::int32_t other = -1;
  /// kFix: the forced partition.
  PartitionId partition = -1;
  /// kEliminate: best own placement per neighbor partition (length M), or a
  /// single entry when other == -1.
  std::vector<PartitionId> response;
};

/// Invertible mapping between the reduced and original solution spaces.
struct SolutionLift {
  std::int32_t num_original = 0;
  std::int32_t num_partitions = 0;
  /// Constant objective mass folded out of the instance: for any complete
  /// reduced assignment u, original_objective(lift(u)) = reduced_objective(u)
  /// + objective_offset (exactly, up to floating-point summation order).
  double objective_offset = 0.0;
  /// Reduced index -> original component id (ascending).
  std::vector<std::int32_t> orig_of;
  std::vector<LiftAction> actions;

  [[nodiscard]] bool identity() const noexcept { return actions.empty(); }

  /// Complete reduced-space assignment -> complete original-space assignment.
  [[nodiscard]] Assignment lift(const Assignment& reduced) const;

  /// Original-space assignment -> reduced-space start (surviving
  /// representatives keep their original partition; removed components are
  /// dropped).  Used to carry an explicit initial solution into the reduced
  /// solve.
  [[nodiscard]] Assignment restrict_to_reduced(const Assignment& original) const;
};

/// Result of presolve(): the instance to hand to a solver plus the lift.
struct ReducedProblem {
  /// The reduced PP(1,1) instance.  When identity() this is an unmodified
  /// copy of the input, so a solver run on it is bit-identical to a run on
  /// the input itself.
  PartitionProblem problem;
  SolutionLift lift;
  PresolveStats stats;

  /// RN ran the exact brute force on the remainder.
  bool rn_solved = false;
  /// ... and found a feasible optimum (rn_assignment / rn_objective below,
  /// both in *reduced* space).  When rn_solved && !rn_feasible the reduced
  /// instance -- hence the original -- has no feasible solution.
  bool rn_feasible = false;
  Assignment rn_assignment;
  double rn_objective = 0.0;

  [[nodiscard]] bool identity() const noexcept { return lift.identity(); }
};

/// Reduce `problem` (which must be normalized: alpha == beta == 1) to a
/// fixed point of the enabled rules.  Deterministic: rules scan components
/// in ascending id order and break ties toward the lowest partition id.
/// Publishes presolve.{r0,r1,r2,rn,components_removed,seconds} counters to
/// util/prof when profiling is enabled.
[[nodiscard]] ReducedProblem presolve(const PartitionProblem& problem,
                                      const PresolveOptions& options = {});

}  // namespace qbp
