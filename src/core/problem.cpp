#include "core/problem.hpp"

#include <sstream>

#include "partition/cost.hpp"

#include "util/check.hpp"

namespace qbp {

PartitionProblem::PartitionProblem(Netlist netlist, PartitionTopology topology,
                                   TimingConstraints timing, Matrix<double> p,
                                   double alpha, double beta)
    : netlist_(std::move(netlist)),
      topology_(std::move(topology)),
      timing_(std::move(timing)),
      p_(std::move(p)),
      alpha_(alpha),
      beta_(beta) {
  netlist_.finalize();
  // Build the lazily-cached derived structures eagerly.  Their const
  // accessors then only ever *read* the cache, which makes a constructed
  // problem safe to share across concurrent solver threads (the engine
  // portfolio relies on this).
  (void)netlist_.connection_matrix();
  (void)timing_.matrix();
}

std::vector<std::uint8_t> PartitionProblem::to_y(const Assignment& assignment) const {
  QBP_CHECK_EQ(assignment.num_components(), num_components());
  QBP_CHECK(assignment.is_complete());
  std::vector<std::uint8_t> y(static_cast<std::size_t>(flat_size()), 0);
  for (std::int32_t j = 0; j < num_components(); ++j) {
    y[static_cast<std::size_t>(flat_index(assignment[j], j))] = 1;
  }
  return y;
}

Assignment PartitionProblem::from_y(const std::vector<std::uint8_t>& y) const {
  QBP_CHECK_EQ(static_cast<std::int64_t>(y.size()), flat_size());
  Assignment assignment(num_components(), num_partitions());
  for (std::int64_t r = 0; r < flat_size(); ++r) {
    if (y[static_cast<std::size_t>(r)] != 0) {
      QBP_CHECK(assignment[component_of(r)] == Assignment::kUnassigned)
          << "y has more than one 1 in a component column (violates C3)";
      assignment.set(component_of(r), partition_of(r));
    }
  }
  QBP_CHECK(assignment.is_complete())
      << "y misses a component (violates C3)";
  return assignment;
}

bool PartitionProblem::satisfies_capacity(const Assignment& assignment) const {
  return qbp::satisfies_capacity(assignment, netlist_.sizes(),
                                 topology_.capacities());
}

bool PartitionProblem::satisfies_timing(const Assignment& assignment) const {
  return timing_.is_feasible(assignment, topology_);
}

bool PartitionProblem::is_feasible(const Assignment& assignment) const {
  return assignment.is_complete() && satisfies_capacity(assignment) &&
         satisfies_timing(assignment);
}

double PartitionProblem::objective(const Assignment& assignment) const {
  return qbp::objective(netlist_, topology_, p_, alpha_, beta_, assignment);
}

double PartitionProblem::wirelength(const Assignment& assignment) const {
  return qbp::wirelength(netlist_, topology_, assignment);
}

PartitionProblem PartitionProblem::normalized() const {
  const std::int32_t m = num_partitions();
  Matrix<double> scaled_b(m, m, 0.0);
  Matrix<double> delay(m, m, 0.0);
  for (std::int32_t i1 = 0; i1 < m; ++i1) {
    for (std::int32_t i2 = 0; i2 < m; ++i2) {
      scaled_b(i1, i2) = beta_ * topology_.wire_cost(i1, i2);
      delay(i1, i2) = topology_.delay(i1, i2);
    }
  }
  Matrix<double> scaled_p = p_;
  if (!scaled_p.empty()) {
    for (std::int32_t i = 0; i < scaled_p.rows(); ++i) {
      for (std::int32_t j = 0; j < scaled_p.cols(); ++j) {
        scaled_p(i, j) *= alpha_;
      }
    }
  }
  return PartitionProblem(
      netlist_,
      PartitionTopology::custom(std::move(scaled_b), std::move(delay),
                                topology_.capacities()),
      timing_, std::move(scaled_p), 1.0, 1.0);
}

PartitionProblem PartitionProblem::with_zero_wire_cost() const {
  const std::int32_t m = num_partitions();
  Matrix<double> zero_b(m, m, 0.0);
  Matrix<double> delay(m, m, 0.0);
  for (std::int32_t i1 = 0; i1 < m; ++i1) {
    for (std::int32_t i2 = 0; i2 < m; ++i2) delay(i1, i2) = topology_.delay(i1, i2);
  }
  return PartitionProblem(
      netlist_,
      PartitionTopology::custom(std::move(zero_b), std::move(delay),
                                topology_.capacities()),
      timing_, p_, alpha_, beta_);
}

PartitionProblem PartitionProblem::without_timing() const {
  return PartitionProblem(netlist_, topology_,
                          TimingConstraints(num_components()), p_, alpha_, beta_);
}

std::string PartitionProblem::validate() const {
  if (auto message = netlist_.validate(); !message.empty()) {
    return "netlist: " + message;
  }
  if (auto message = topology_.validate(); !message.empty()) {
    return "topology: " + message;
  }
  if (timing_.num_components() != num_components()) {
    return "timing constraints sized for a different component count";
  }
  if (!p_.empty()) {
    if (p_.rows() != num_partitions() || p_.cols() != num_components()) {
      return "linear cost matrix P is not M x N";
    }
    for (std::int32_t i = 0; i < p_.rows(); ++i) {
      for (std::int32_t j = 0; j < p_.cols(); ++j) {
        if (p_(i, j) < 0.0) {
          std::ostringstream out;
          out << "P(" << i << ", " << j
              << ") is negative; the QBP linearization assumes a "
                 "non-negative cost matrix (Section 4.1)";
          return out.str();
        }
      }
    }
  }
  if (alpha_ < 0.0 || beta_ < 0.0) return "alpha and beta must be non-negative";
  if (netlist_.total_size() > topology_.total_capacity()) {
    return "total component size exceeds total capacity; no feasible "
           "assignment exists";
  }
  return {};
}

}  // namespace qbp
