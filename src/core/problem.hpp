// The partitioning problem PP(alpha, beta) (paper Section 2.1).
//
// Aggregates every input of the formulation:
//   circuit side:    netlist (components J with sizes s_j, wires A),
//                    timing constraints Dc;
//   partition side:  topology (capacities c_i, wire costs B, delays D);
//   linear term:     M x N assignment-preference matrix P (may be empty);
//   scaling:         alpha (linear term), beta (quadratic term).
//
// Also owns the flat index convention of Section 3.1: the binary matrix
// [x_ij] is flattened column-by-column into a vector y of length M*N with
//
//   r = i + j * M      (0-based; the paper writes r = i + (j-1)M, 1-based)
//
// so that y_r = x_ij.  flat_index / partition_of / component_of implement
// the bijection.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "partition/assignment.hpp"
#include "partition/topology.hpp"
#include "sparse/dense.hpp"
#include "timing/constraints.hpp"

namespace qbp {

class PartitionProblem {
 public:
  PartitionProblem() = default;

  /// P may be empty (0 x 0) when there is no linear term.
  PartitionProblem(Netlist netlist, PartitionTopology topology,
                   TimingConstraints timing, Matrix<double> p = {},
                   double alpha = 1.0, double beta = 1.0);

  [[nodiscard]] const Netlist& netlist() const noexcept { return netlist_; }
  [[nodiscard]] const PartitionTopology& topology() const noexcept {
    return topology_;
  }
  [[nodiscard]] const TimingConstraints& timing() const noexcept { return timing_; }
  [[nodiscard]] const Matrix<double>& linear_cost_matrix() const noexcept {
    return p_;
  }
  [[nodiscard]] double alpha() const noexcept { return alpha_; }
  [[nodiscard]] double beta() const noexcept { return beta_; }

  [[nodiscard]] std::int32_t num_components() const noexcept {
    return netlist_.num_components();
  }
  [[nodiscard]] std::int32_t num_partitions() const noexcept {
    return topology_.num_partitions();
  }
  /// Length of the flattened solution vector y (MN).
  [[nodiscard]] std::int64_t flat_size() const noexcept {
    return static_cast<std::int64_t>(num_components()) * num_partitions();
  }

  /// Linear cost p_ij (0 when P is empty).
  [[nodiscard]] double linear_cost(PartitionId i, std::int32_t j) const noexcept {
    return p_.empty() ? 0.0 : p_(i, j);
  }

  // --- Section 3.1 flattening -------------------------------------------
  [[nodiscard]] std::int64_t flat_index(PartitionId i, std::int32_t j) const noexcept {
    return static_cast<std::int64_t>(i) +
           static_cast<std::int64_t>(j) * num_partitions();
  }
  [[nodiscard]] PartitionId partition_of(std::int64_t r) const noexcept {
    return static_cast<PartitionId>(r % num_partitions());
  }
  [[nodiscard]] std::int32_t component_of(std::int64_t r) const noexcept {
    return static_cast<std::int32_t>(r / num_partitions());
  }

  /// Binary y vector of a complete assignment (C3 holds by construction).
  [[nodiscard]] std::vector<std::uint8_t> to_y(const Assignment& assignment) const;

  /// Assignment from a y vector; requires exactly one 1 per component (C3).
  [[nodiscard]] Assignment from_y(const std::vector<std::uint8_t>& y) const;

  // --- constraints --------------------------------------------------------
  /// C1 for a complete assignment.
  [[nodiscard]] bool satisfies_capacity(const Assignment& assignment) const;
  /// C2 for a complete assignment.
  [[nodiscard]] bool satisfies_timing(const Assignment& assignment) const;
  /// C1 and C2 (C3 is implied by completeness).
  [[nodiscard]] bool is_feasible(const Assignment& assignment) const;

  /// The true objective alpha * linear + beta * quadratic (no penalties).
  [[nodiscard]] double objective(const Assignment& assignment) const;

  /// Reported wirelength metric (each wire counted once); the tables'
  /// "cost" column.
  [[nodiscard]] double wirelength(const Assignment& assignment) const;

  // --- Section 3 scaling ---------------------------------------------------
  /// The equivalent PP(1, 1) instance: P' = alpha * P folded in, B' = beta *
  /// B folded in (scaling B is equivalent to scaling A and keeps wire
  /// multiplicities integral).  Timing constraints and capacities unchanged.
  [[nodiscard]] PartitionProblem normalized() const;

  /// Copy with the quadratic term disabled (B = 0): the instance used to
  /// produce initial feasible solutions ("use QBP algorithm with matrix B
  /// set to all zeros", Section 5).
  [[nodiscard]] PartitionProblem with_zero_wire_cost() const;

  /// Copy with all timing constraints dropped (Table II's relaxed setting).
  [[nodiscard]] PartitionProblem without_timing() const;

  /// Structural validation of all inputs; empty string when consistent.
  [[nodiscard]] std::string validate() const;

 private:
  Netlist netlist_;
  PartitionTopology topology_;
  TimingConstraints timing_;
  Matrix<double> p_;
  double alpha_ = 1.0;
  double beta_ = 1.0;
};

}  // namespace qbp
