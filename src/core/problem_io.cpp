#include "core/problem_io.hpp"

#include <cmath>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "netlist/nets.hpp"
#include "util/strings.hpp"

namespace qbp {

namespace {

// Resource guards: a hostile or corrupted file must produce a descriptive
// ParseResult, never an allocation failure or an overflowed int32.  The
// service boundary (qbpartd) parses untrusted bytes, so these are load-
// bearing, not cosmetic.  M partitions allocate two M x M double matrices
// (2 * 8 MB at the cap); wire multiplicities accumulate into int32 totals.
constexpr long long kMaxPartitions = 1024;
constexpr long long kMaxWireMultiplicity = 1000000000;  // 1e9
// Caps on the *totals*, not just per-line values: duplicate wire lines (and
// repeated nets over the same pins) are combined by addition in
// Netlist::finalize() / Csr::from_triplets, so per-pair multiplicities must
// stay int32-safe after any amount of combining.  Capping the file-wide sum
// at 1e9 (< INT32_MAX) makes overflow unreachable.  The bundle cap bounds
// memory against nets with huge pin lists (a k-pin `net` expands to
// k*(k-1)/2 stored bundles).
constexpr long long kMaxTotalWires = kMaxWireMultiplicity;
constexpr long long kMaxWireBundles = 4000000;

ParseResult fail(int line_number, std::string_view what) {
  std::ostringstream out;
  out << "line " << line_number << ": " << what;
  return {false, out.str()};
}

struct Builder {
  std::string name = "unnamed";
  double alpha = 1.0;
  double beta = 1.0;
  Netlist netlist;
  bool have_topology = false;
  std::int32_t m = 0;
  // Grid form...
  bool is_grid = false;
  std::int32_t grid_rows = 0;
  std::int32_t grid_cols = 0;
  CostKind metric = CostKind::kManhattan;
  // ... or custom matrices.
  Matrix<double> bcost;
  Matrix<double> delay;
  std::vector<bool> bcost_row_seen;
  std::vector<bool> delay_row_seen;
  std::vector<double> capacities;
  bool have_capacities = false;
  std::vector<Triplet<double>> constraints;
  std::vector<Triplet<double>> linear_entries;
  // Running totals guarded by kMaxTotalWires / kMaxWireBundles.
  long long total_wires = 0;
  long long total_bundles = 0;
};

bool parse_metric(std::string_view token, CostKind& out) {
  if (token == "unit") {
    out = CostKind::kUnit;
  } else if (token == "manhattan") {
    out = CostKind::kManhattan;
  } else if (token == "quadratic") {
    out = CostKind::kQuadratic;
  } else {
    return false;
  }
  return true;
}

const char* metric_name(CostKind kind) {
  switch (kind) {
    case CostKind::kUnit: return "unit";
    case CostKind::kManhattan: return "manhattan";
    case CostKind::kQuadratic: return "quadratic";
  }
  return "manhattan";
}

}  // namespace

ParseResult read_problem(std::istream& in, PartitionProblem& out) {
  Builder builder;
  std::string line;
  int line_number = 0;

  const auto component_in_range = [&](long long id) {
    return id >= 0 && id < builder.netlist.num_components();
  };
  const auto partition_in_range = [&](long long id) {
    return id >= 0 && id < builder.m;
  };

  while (std::getline(in, line)) {
    ++line_number;
    std::string_view text = line;
    if (const auto hash = text.find('#'); hash != std::string_view::npos) {
      text = text.substr(0, hash);
    }
    const auto fields = split_whitespace(text);
    if (fields.empty()) continue;
    const std::string_view keyword = fields[0];

    if (keyword == "problem") {
      if (fields.size() != 2) return fail(line_number, "expected: problem <name>");
      builder.name = std::string(fields[1]);
      builder.netlist.set_name(builder.name);
    } else if (keyword == "alpha" || keyword == "beta") {
      double value = 0.0;
      if (fields.size() != 2 || !parse_double(fields[1], value) || value < 0.0) {
        return fail(line_number, "expected a non-negative number");
      }
      (keyword == "alpha" ? builder.alpha : builder.beta) = value;
    } else if (keyword == "topology") {
      if (builder.have_topology) return fail(line_number, "duplicate topology");
      if (fields.size() == 5 && fields[1] == "grid") {
        long long rows = 0;
        long long cols = 0;
        if (!parse_int(fields[2], rows) || !parse_int(fields[3], cols) ||
            rows < 1 || cols < 1) {
          return fail(line_number, "grid dimensions must be positive integers");
        }
        if (rows > kMaxPartitions || cols > kMaxPartitions ||
            rows * cols > kMaxPartitions) {
          return fail(line_number, "grid has too many partitions (limit " +
                                       std::to_string(kMaxPartitions) + ")");
        }
        if (!parse_metric(fields[4], builder.metric)) {
          return fail(line_number, "metric must be unit|manhattan|quadratic");
        }
        builder.is_grid = true;
        builder.grid_rows = static_cast<std::int32_t>(rows);
        builder.grid_cols = static_cast<std::int32_t>(cols);
        builder.m = builder.grid_rows * builder.grid_cols;
      } else if (fields.size() == 3 && fields[1] == "custom") {
        long long m = 0;
        if (!parse_int(fields[2], m) || m < 1) {
          return fail(line_number, "custom topology needs a positive size");
        }
        if (m > kMaxPartitions) {
          return fail(line_number, "custom topology too large (limit " +
                                       std::to_string(kMaxPartitions) + ")");
        }
        builder.m = static_cast<std::int32_t>(m);
        builder.bcost = Matrix<double>(builder.m, builder.m, 0.0);
        builder.delay = Matrix<double>(builder.m, builder.m, 0.0);
        builder.bcost_row_seen.assign(static_cast<std::size_t>(builder.m), false);
        builder.delay_row_seen.assign(static_cast<std::size_t>(builder.m), false);
      } else {
        return fail(line_number,
                    "expected: topology grid <rows> <cols> <metric> | "
                    "topology custom <M>");
      }
      builder.have_topology = true;
    } else if (keyword == "bcost" || keyword == "delay") {
      if (!builder.have_topology || builder.is_grid) {
        return fail(line_number, "matrix rows require `topology custom` first");
      }
      long long row = 0;
      if (fields.size() != static_cast<std::size_t>(builder.m) + 2 ||
          !parse_int(fields[1], row) || !partition_in_range(row)) {
        return fail(line_number, "expected: <keyword> <row> and M values");
      }
      auto& matrix = keyword == "bcost" ? builder.bcost : builder.delay;
      auto& seen = keyword == "bcost" ? builder.bcost_row_seen
                                      : builder.delay_row_seen;
      for (std::int32_t c = 0; c < builder.m; ++c) {
        double value = 0.0;
        if (!parse_double(fields[static_cast<std::size_t>(c) + 2], value)) {
          return fail(line_number, "malformed matrix value");
        }
        matrix(static_cast<std::int32_t>(row), c) = value;
      }
      seen[static_cast<std::size_t>(row)] = true;
    } else if (keyword == "capacities") {
      if (!builder.have_topology) {
        return fail(line_number, "capacities require a topology first");
      }
      if (fields.size() != static_cast<std::size_t>(builder.m) + 1) {
        return fail(line_number, "expected one capacity per partition");
      }
      builder.capacities.resize(static_cast<std::size_t>(builder.m));
      for (std::int32_t i = 0; i < builder.m; ++i) {
        double value = 0.0;
        if (!parse_double(fields[static_cast<std::size_t>(i) + 1], value) ||
            value < 0.0) {
          return fail(line_number, "capacities must be non-negative numbers");
        }
        builder.capacities[static_cast<std::size_t>(i)] = value;
      }
      builder.have_capacities = true;
    } else if (keyword == "component") {
      if (fields.size() != 3) {
        return fail(line_number, "expected: component <name> <size>");
      }
      double size = 0.0;
      if (!parse_double(fields[2], size) || !(size > 0.0)) {
        return fail(line_number, "component size must be positive");
      }
      builder.netlist.add_component(std::string(fields[1]), size);
    } else if (keyword == "wire") {
      long long a = 0;
      long long b = 0;
      long long mult = 0;
      if (fields.size() != 4 || !parse_int(fields[1], a) ||
          !parse_int(fields[2], b) || !parse_int(fields[3], mult)) {
        return fail(line_number, "expected: wire <a> <b> <multiplicity>");
      }
      if (!component_in_range(a) || !component_in_range(b) || a == b ||
          mult <= 0 || mult > kMaxWireMultiplicity) {
        return fail(line_number, "bad wire endpoints or multiplicity");
      }
      builder.total_wires += mult;
      if (builder.total_wires > kMaxTotalWires) {
        return fail(line_number, "total wire multiplicity exceeds limit " +
                                     std::to_string(kMaxTotalWires));
      }
      if (++builder.total_bundles > kMaxWireBundles) {
        return fail(line_number, "too many wire bundles (limit " +
                                     std::to_string(kMaxWireBundles) + ")");
      }
      builder.netlist.add_wires(static_cast<ComponentId>(a),
                                static_cast<ComponentId>(b),
                                static_cast<std::int32_t>(mult));
    } else if (keyword == "net" || keyword == "netstar") {
      if (fields.size() < 4) {
        return fail(line_number, "expected: net <weight> <pin> <pin> [...]");
      }
      long long weight = 0;
      if (!parse_int(fields[1], weight) || weight <= 0 ||
          weight > kMaxWireMultiplicity) {
        return fail(line_number, "net weight must be a positive integer");
      }
      std::vector<ComponentId> pins;
      for (std::size_t k = 2; k < fields.size(); ++k) {
        long long pin = 0;
        if (!parse_int(fields[k], pin) || !component_in_range(pin)) {
          return fail(line_number, "net pin out of range");
        }
        pins.push_back(static_cast<ComponentId>(pin));
      }
      for (std::size_t x = 0; x < pins.size(); ++x) {
        for (std::size_t y = x + 1; y < pins.size(); ++y) {
          if (pins[x] == pins[y]) {
            return fail(line_number, "net lists a pin twice");
          }
        }
      }
      // Budget the expansion before performing it; checking pairs against
      // the bundle cap first keeps pairs * weight within int64.
      const auto npins = static_cast<long long>(pins.size());
      const long long pairs =
          keyword == "net" ? npins * (npins - 1) / 2 : npins - 1;
      if (builder.total_bundles + pairs > kMaxWireBundles) {
        return fail(line_number, "too many wire bundles (limit " +
                                     std::to_string(kMaxWireBundles) + ")");
      }
      builder.total_bundles += pairs;
      builder.total_wires += pairs * weight;
      if (builder.total_wires > kMaxTotalWires) {
        return fail(line_number, "total wire multiplicity exceeds limit " +
                                     std::to_string(kMaxTotalWires));
      }
      if (keyword == "net") {
        for (std::size_t x = 0; x < pins.size(); ++x) {
          for (std::size_t y = x + 1; y < pins.size(); ++y) {
            builder.netlist.add_wires(pins[x], pins[y],
                                      static_cast<std::int32_t>(weight));
          }
        }
      } else {
        for (std::size_t y = 1; y < pins.size(); ++y) {
          builder.netlist.add_wires(pins.front(), pins[y],
                                    static_cast<std::int32_t>(weight));
        }
      }
    } else if (keyword == "constraint") {
      long long a = 0;
      long long b = 0;
      double bound = 0.0;
      if (fields.size() != 4 || !parse_int(fields[1], a) ||
          !parse_int(fields[2], b) || !parse_double(fields[3], bound)) {
        return fail(line_number, "expected: constraint <a> <b> <max_delay>");
      }
      if (!component_in_range(a) || !component_in_range(b) || a == b ||
          bound < 0.0 || !std::isfinite(bound)) {
        return fail(line_number, "bad constraint endpoints or bound");
      }
      builder.constraints.push_back({static_cast<std::int32_t>(a),
                                     static_cast<std::int32_t>(b), bound});
    } else if (keyword == "linear") {
      long long i = 0;
      long long j = 0;
      double cost = 0.0;
      if (fields.size() != 4 || !parse_int(fields[1], i) ||
          !parse_int(fields[2], j) || !parse_double(fields[3], cost)) {
        return fail(line_number, "expected: linear <i> <j> <cost>");
      }
      if (!partition_in_range(i) || !component_in_range(j) || cost < 0.0) {
        return fail(line_number, "bad linear entry (partition/component/cost)");
      }
      builder.linear_entries.push_back({static_cast<std::int32_t>(i),
                                        static_cast<std::int32_t>(j), cost});
    } else {
      return fail(line_number, "unknown keyword '" + std::string(keyword) + "'");
    }
  }

  if (in.bad()) return {false, "I/O error while reading"};
  if (!builder.have_topology) return {false, "missing topology"};
  if (builder.netlist.num_components() == 0) {
    return {false, "problem has no components (truncated file?)"};
  }
  if (!builder.is_grid) {
    for (std::int32_t i = 0; i < builder.m; ++i) {
      if (!builder.bcost_row_seen[static_cast<std::size_t>(i)] ||
          !builder.delay_row_seen[static_cast<std::size_t>(i)]) {
        std::ostringstream message;
        message << "custom topology is missing bcost/delay row " << i;
        return {false, message.str()};
      }
    }
  }
  if (!builder.have_capacities) return {false, "missing capacities"};

  PartitionTopology topology =
      builder.is_grid
          ? PartitionTopology::grid(builder.grid_rows, builder.grid_cols,
                                    builder.metric)
          : PartitionTopology::custom(std::move(builder.bcost),
                                      std::move(builder.delay),
                                      builder.capacities);
  topology.set_capacities(builder.capacities);

  TimingConstraints timing(builder.netlist.num_components());
  for (const auto& entry : builder.constraints) {
    timing.add(entry.row, entry.col, entry.value);
  }

  Matrix<double> p;
  if (!builder.linear_entries.empty()) {
    p = Matrix<double>(builder.m, builder.netlist.num_components(), 0.0);
    for (const auto& entry : builder.linear_entries) {
      p(entry.row, entry.col) = entry.value;
    }
  }

  out = PartitionProblem(std::move(builder.netlist), std::move(topology),
                         std::move(timing), std::move(p), builder.alpha,
                         builder.beta);
  if (auto message = out.validate(); !message.empty()) {
    return {false, "inconsistent problem: " + message};
  }
  return {};
}

ParseResult read_problem_file(const std::string& path, PartitionProblem& out) {
  std::ifstream in(path);
  if (!in) return {false, "cannot open '" + path + "' for reading"};
  return read_problem(in, out);
}

void write_problem(std::ostream& out, const PartitionProblem& problem) {
  const auto& topology = problem.topology();
  const std::int32_t m = problem.num_partitions();

  out << "# qbpart problem\n";
  out << "problem "
      << (problem.netlist().name().empty() ? "unnamed" : problem.netlist().name())
      << "\n";
  out << "alpha " << format_double(problem.alpha(), 6) << "\n";
  out << "beta " << format_double(problem.beta(), 6) << "\n";

  // Emit a grid header when the topology still matches one of the grid
  // metrics exactly; otherwise fall back to explicit matrices.
  bool wrote_grid = false;
  if (topology.grid_cols() > 0) {
    const std::int32_t cols = topology.grid_cols();
    const std::int32_t rows = m / cols;
    for (const CostKind metric :
         {CostKind::kUnit, CostKind::kManhattan, CostKind::kQuadratic}) {
      const auto reference = PartitionTopology::grid(rows, cols, metric);
      if (reference.wire_cost() == topology.wire_cost() &&
          reference.delay() == topology.delay()) {
        out << "topology grid " << rows << " " << cols << " "
            << metric_name(metric) << "\n";
        wrote_grid = true;
        break;
      }
    }
  }
  if (!wrote_grid) {
    out << "topology custom " << m << "\n";
    for (std::int32_t i = 0; i < m; ++i) {
      out << "bcost " << i;
      for (std::int32_t c = 0; c < m; ++c) {
        out << " " << format_double(topology.wire_cost(i, c), 6);
      }
      out << "\n";
    }
    for (std::int32_t i = 0; i < m; ++i) {
      out << "delay " << i;
      for (std::int32_t c = 0; c < m; ++c) {
        out << " " << format_double(topology.delay(i, c), 6);
      }
      out << "\n";
    }
  }
  out << "capacities";
  for (const double capacity : topology.capacities()) {
    out << " " << format_double(capacity, 6);
  }
  out << "\n";

  for (const auto& component : problem.netlist().components()) {
    out << "component " << component.name << " "
        << format_double(component.size, 6) << "\n";
  }
  const_cast<Netlist&>(problem.netlist()).finalize();
  for (const auto& bundle : problem.netlist().bundles()) {
    out << "wire " << bundle.a << " " << bundle.b << " " << bundle.multiplicity
        << "\n";
  }
  problem.timing().matrix().for_each(
      [&](std::int32_t a, std::int32_t b, double bound) {
        if (a < b) out << "constraint " << a << " " << b << " "
                       << format_double(bound, 6) << "\n";
      });
  const auto& p = problem.linear_cost_matrix();
  if (!p.empty()) {
    for (std::int32_t i = 0; i < p.rows(); ++i) {
      for (std::int32_t j = 0; j < p.cols(); ++j) {
        if (p(i, j) != 0.0) {
          out << "linear " << i << " " << j << " " << format_double(p(i, j), 6)
              << "\n";
        }
      }
    }
  }
}

bool write_problem_file(const std::string& path, const PartitionProblem& problem) {
  std::ofstream out(path);
  if (!out) return false;
  write_problem(out, problem);
  return static_cast<bool>(out);
}

ParseResult read_assignment(std::istream& in, std::int32_t num_components,
                            std::int32_t num_partitions, Assignment& out) {
  out = Assignment(num_components, num_partitions);
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    std::string_view text = line;
    if (const auto hash = text.find('#'); hash != std::string_view::npos) {
      text = text.substr(0, hash);
    }
    const auto fields = split_whitespace(text);
    if (fields.empty()) continue;
    if (fields[0] != "assign" || fields.size() != 3) {
      return fail(line_number, "expected: assign <component> <partition>");
    }
    long long component = 0;
    long long partition = 0;
    if (!parse_int(fields[1], component) || !parse_int(fields[2], partition) ||
        component < 0 || component >= num_components || partition < 0 ||
        partition >= num_partitions) {
      return fail(line_number, "assign indices out of range");
    }
    if (out[static_cast<std::int32_t>(component)] != Assignment::kUnassigned) {
      return fail(line_number, "component assigned twice");
    }
    out.set(static_cast<std::int32_t>(component),
            static_cast<PartitionId>(partition));
  }
  if (!out.is_complete()) return {false, "assignment misses components"};
  return {};
}

void write_assignment(std::ostream& out, const Assignment& assignment) {
  out << "# qbpart assignment\n";
  for (std::int32_t j = 0; j < assignment.num_components(); ++j) {
    out << "assign " << j << " " << assignment[j] << "\n";
  }
}

bool write_assignment_file(const std::string& path, const Assignment& assignment) {
  std::ofstream out(path);
  if (!out) return false;
  write_assignment(out, assignment);
  return static_cast<bool>(out);
}

ParseResult read_assignment_file(const std::string& path,
                                 std::int32_t num_components,
                                 std::int32_t num_partitions, Assignment& out) {
  std::ifstream in(path);
  if (!in) return {false, "cannot open '" + path + "' for reading"};
  return read_assignment(in, num_components, num_partitions, out);
}

}  // namespace qbp
