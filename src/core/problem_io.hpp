// Whole-problem text format (".qp") and assignment files.
//
// A PartitionProblem bundles a netlist, a topology, timing constraints and
// an optional linear cost matrix; this module persists all of it in one
// line-oriented file so instances can be shipped to the CLI partitioner,
// diffed, and attached to bug reports.  Grammar ('#' starts a comment):
//
//   problem <name>
//   alpha <value>                       (default 1)
//   beta <value>                        (default 1)
//   topology grid <rows> <cols> <unit|manhattan|quadratic>
//   topology custom <M>                 (then M `bcost` and M `delay` rows)
//   bcost <i> <v_0> ... <v_{M-1}>
//   delay <i> <v_0> ... <v_{M-1}>
//   capacities <c_0> ... <c_{M-1}>
//   component <name> <size>
//   wire <a> <b> <multiplicity>
//   net <weight> <pin> <pin> [pin ...]  (clique-expanded on read)
//   netstar <weight> <pin> <pin> [...]  (star-expanded on read)
//   constraint <a> <b> <max_delay>
//   linear <i> <j> <cost>               (sparse P entries; P exists iff any)
//
// Components must precede wires/nets/constraints/linear entries; a
// topology line must precede capacities.  write_problem emits canonical
// form (grid topologies are preserved as `topology grid` when they were
// built that way and the metric is recoverable; otherwise `custom`).
#pragma once

#include <iosfwd>
#include <string>

#include "core/problem.hpp"
#include "netlist/io.hpp"

namespace qbp {

/// Parse a problem; on failure returns ok=false with a line-numbered
/// message and leaves `out` unspecified.
[[nodiscard]] ParseResult read_problem(std::istream& in, PartitionProblem& out);
[[nodiscard]] ParseResult read_problem_file(const std::string& path,
                                            PartitionProblem& out);

void write_problem(std::ostream& out, const PartitionProblem& problem);
[[nodiscard]] bool write_problem_file(const std::string& path,
                                      const PartitionProblem& problem);

/// Assignment files: one `assign <component> <partition>` line per
/// component, any order, every component exactly once.
[[nodiscard]] ParseResult read_assignment(std::istream& in,
                                          std::int32_t num_components,
                                          std::int32_t num_partitions,
                                          Assignment& out);
void write_assignment(std::ostream& out, const Assignment& assignment);
[[nodiscard]] bool write_assignment_file(const std::string& path,
                                         const Assignment& assignment);
[[nodiscard]] ParseResult read_assignment_file(const std::string& path,
                                               std::int32_t num_components,
                                               std::int32_t num_partitions,
                                               Assignment& out);

}  // namespace qbp
