#include "core/qhat.hpp"

#include <algorithm>

#include "core/delta_evaluator.hpp"
#include "partition/cost.hpp"
#include "util/parallel.hpp"
#include "util/simd.hpp"

#include "util/check.hpp"

namespace qbp {

QhatMatrix::QhatMatrix(const PartitionProblem& problem, double penalty)
    : problem_(&problem), penalty_(penalty) {
  QBP_CHECK_GT(penalty, 0.0) << "Q-hat penalty must be positive";
}

bool QhatMatrix::violates(PartitionId i1, std::int32_t j1, PartitionId i2,
                          std::int32_t j2) const {
  if (j1 == j2) return false;
  const double bound = problem_->timing().max_delay(j1, j2);
  return problem_->topology().delay(i1, i2) > bound;
}

double QhatMatrix::entry(std::int64_t r1, std::int64_t r2) const {
  const PartitionId i1 = problem_->partition_of(r1);
  const std::int32_t j1 = problem_->component_of(r1);
  const PartitionId i2 = problem_->partition_of(r2);
  const std::int32_t j2 = problem_->component_of(r2);

  if (violates(i1, j1, i2, j2)) return penalty_;
  if (j1 == j2) {
    // Same component: only the diagonal carries cost (the linear term);
    // off-diagonal same-column pairs can never be jointly active under C3.
    return r1 == r2 ? problem_->alpha() * problem_->linear_cost(i1, j1) : 0.0;
  }
  const auto wires = problem_->netlist().connection_matrix().value_or(j1, j2, 0);
  if (wires == 0) return 0.0;
  return problem_->beta() * wires * problem_->topology().wire_cost(i1, i2);
}

std::int64_t QhatMatrix::ordered_violations(const Assignment& assignment) const {
  std::int64_t count = 0;
  problem_->timing().matrix().for_each(
      [&](std::int32_t j1, std::int32_t j2, double bound) {
        const PartitionId p1 = assignment[j1];
        const PartitionId p2 = assignment[j2];
        if (p1 == Assignment::kUnassigned || p2 == Assignment::kUnassigned) return;
        if (problem_->topology().delay(p1, p2) > bound) ++count;
      });
  return count;
}

double QhatMatrix::penalized_value(const Assignment& assignment) const {
  // y^T Qhat y = true objective + penalty for every ordered violating pair
  // - the wire term those violating pairs would otherwise have contributed.
  double value = problem_->objective(assignment);
  const auto& adjacency = problem_->netlist().connection_matrix();
  problem_->timing().matrix().for_each(
      [&](std::int32_t j1, std::int32_t j2, double bound) {
        const PartitionId p1 = assignment[j1];
        const PartitionId p2 = assignment[j2];
        if (p1 == Assignment::kUnassigned || p2 == Assignment::kUnassigned) return;
        if (problem_->topology().delay(p1, p2) > bound) {
          const auto wires = adjacency.value_or(j1, j2, 0);
          value += penalty_ - problem_->beta() * wires *
                                  problem_->topology().wire_cost(p1, p2);
        }
      });
  return value;
}

double QhatMatrix::move_delta_penalized(const Assignment& assignment,
                                        std::int32_t component,
                                        PartitionId target) const {
  return delta_detail::move_delta_penalized(*problem_, penalty_, assignment,
                                            component, target);
}

double QhatMatrix::swap_delta_penalized(const Assignment& assignment,
                                        std::int32_t component_a,
                                        std::int32_t component_b) const {
  return delta_detail::swap_delta_penalized(*problem_, penalty_, assignment,
                                            component_a, component_b);
}

void QhatMatrix::eta(const Assignment& u, std::span<double> eta,
                     std::int32_t threads) const {
  const std::int32_t m = problem_->num_partitions();
  const std::int32_t n = problem_->num_components();
  QBP_DCHECK(static_cast<std::int64_t>(eta.size()) == problem_->flat_size());
  QBP_DCHECK(u.is_complete());

  const auto& adjacency = problem_->netlist().connection_matrix();
  const auto& topology = problem_->topology();
  const double beta = problem_->beta();

  // Column j2 of the gather touches only eta[flat_index(0..m, j2)], so a
  // chunk of components owns a disjoint slice of the flat buffer: the
  // parallel gather writes the same bits as the serial loop.
  par::parallel_for(n, /*grain=*/64, threads, [&](std::int64_t chunk_begin,
                                                  std::int64_t chunk_end,
                                                  std::int32_t /*chunk*/) {
  for (std::int32_t j2 = static_cast<std::int32_t>(chunk_begin);
       j2 < static_cast<std::int32_t>(chunk_end); ++j2) {
    double* column = eta.data() + problem_->flat_index(0, j2);
    std::fill(column, column + m, 0.0);

    // Wire blocks: sum over neighbors j1 of beta * a * B(u(j1), i2).  The
    // M-length accumulation is the eta gather's hot axpy; the SIMD kernel
    // is bit-identical to this loop's scalar form (util/simd.hpp).
    const auto neighbors = adjacency.row_indices(j2);
    const auto wires = adjacency.row_values(j2);
    for (std::size_t k = 0; k < neighbors.size(); ++k) {
      const PartitionId from = u[neighbors[k]];
      const double scale = beta * wires[k];
      const auto b_row = topology.wire_cost().row(from);
      simd::axpy(scale, b_row.data(), column, m);
    }

    // Constraint blocks: where D(u(j1), i2) > Dc(j1, j2) the Qhat entry is
    // the flat penalty, replacing the wire term accumulated above.
    const auto partners = problem_->timing().partners(j2);
    const auto bounds = problem_->timing().bounds(j2);
    for (std::size_t k = 0; k < partners.size(); ++k) {
      const std::int32_t j1 = partners[k];
      const PartitionId from = u[j1];
      const double bound = bounds[k];
      const auto wire = adjacency.value_or(j1, j2, 0);
      for (std::int32_t i2 = 0; i2 < m; ++i2) {
        if (topology.delay(from, i2) > bound) {
          column[i2] += penalty_ - beta * wire * topology.wire_cost(from, i2);
        }
      }
    }

    // Diagonal: q-hat(r, r) = alpha * p contributes when u_r = 1.
    column[u[j2]] += problem_->alpha() * problem_->linear_cost(u[j2], j2);
  }
  });
}

std::vector<double> QhatMatrix::omega() const {
  const std::int32_t m = problem_->num_partitions();
  const std::int32_t n = problem_->num_components();
  std::vector<double> omega(static_cast<std::size_t>(problem_->flat_size()), 0.0);

  const auto& adjacency = problem_->netlist().connection_matrix();
  const auto& topology = problem_->topology();
  const double beta = problem_->beta();

  // Worst-case wire cost from partition i1 to anywhere.
  std::vector<double> max_b(static_cast<std::size_t>(m), 0.0);
  for (std::int32_t i1 = 0; i1 < m; ++i1) {
    for (std::int32_t i2 = 0; i2 < m; ++i2) {
      max_b[static_cast<std::size_t>(i1)] =
          std::max(max_b[static_cast<std::size_t>(i1)], topology.wire_cost(i1, i2));
    }
  }

  for (std::int32_t j1 = 0; j1 < n; ++j1) {
    const auto neighbors = adjacency.row_indices(j1);
    const auto wires = adjacency.row_values(j1);
    const auto partners = problem_->timing().partners(j1);
    for (PartitionId i1 = 0; i1 < m; ++i1) {
      // Under C3 every other component contributes exactly one entry of its
      // M-block; bound each block's max.  Constrained pairs can hit the
      // penalty; connected pairs can hit beta * a * max_b.
      double bound = problem_->alpha() * problem_->linear_cost(i1, j1);
      std::size_t wire_at = 0;
      std::size_t partner_at = 0;
      while (wire_at < neighbors.size() || partner_at < partners.size()) {
        const std::int32_t next_wire = wire_at < neighbors.size()
                                           ? neighbors[wire_at]
                                           : problem_->num_components();
        const std::int32_t next_partner = partner_at < partners.size()
                                              ? partners[partner_at]
                                              : problem_->num_components();
        if (next_wire < next_partner) {
          bound += beta * wires[wire_at] * max_b[static_cast<std::size_t>(i1)];
          ++wire_at;
        } else if (next_partner < next_wire) {
          bound += penalty_;
          ++partner_at;
        } else {
          bound += std::max(penalty_, beta * wires[wire_at] *
                                          max_b[static_cast<std::size_t>(i1)]);
          ++wire_at;
          ++partner_at;
        }
      }
      omega[static_cast<std::size_t>(problem_->flat_index(i1, j1))] = bound;
    }
  }
  return omega;
}

std::int64_t QhatMatrix::nominal_nonzeros() const {
  const auto m = static_cast<std::int64_t>(problem_->num_partitions());
  const std::int64_t wire_entries =
      static_cast<std::int64_t>(problem_->netlist().connection_matrix().nonzeros()) *
      m * m;
  const std::int64_t constraint_entries =
      static_cast<std::int64_t>(problem_->timing().matrix().nonzeros()) * m * m;
  return wire_entries + constraint_entries + problem_->flat_size();
}

Matrix<double> QhatMatrix::materialize() const {
  const std::int64_t size = problem_->flat_size();
  QBP_CHECK_LE(size, 4096) << "materialize() is for tiny test instances only";
  Matrix<double> dense(static_cast<std::int32_t>(size),
                       static_cast<std::int32_t>(size), 0.0);
  for (std::int64_t r1 = 0; r1 < size; ++r1) {
    for (std::int64_t r2 = 0; r2 < size; ++r2) {
      dense(static_cast<std::int32_t>(r1), static_cast<std::int32_t>(r2)) =
          entry(r1, r2);
    }
  }
  return dense;
}

}  // namespace qbp
