// The implicit constraint-embedded cost matrix Q-hat (paper Sections 3-4).
//
// Entry semantics, for r1 = (i1, j1) and r2 = (i2, j2):
//
//   q-hat(r1, r2) = PENALTY                          if D(i1,i2) > Dc(j1,j2)
//                 = alpha * p_{i1 j1}                if r1 == r2
//                 = 0                                if j1 == j2, i1 != i2
//                 = beta * a_{j1 j2} * b_{i1 i2}     otherwise
//
// matching the worked example of Section 3.3 (a timing-violating pair's
// entry is the flat penalty 50, *replacing* the wire term; the diagonal
// carries the linear costs p; same-component off-diagonal blocks are zero
// because C3 means they can never be jointly active).
//
// Q-hat is never materialized (Section 4.3): entries are generated on
// demand from the CSR connection matrix A, the dense M x M matrix B, the
// diagonal P and the sparse Dc.  `materialize()` exists for tests on tiny
// instances only.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/problem.hpp"
#include "sparse/dense.hpp"

namespace qbp {

class QhatMatrix {
 public:
  /// Holds a reference to `problem`; the problem must outlive this object.
  /// `penalty` is the embedded timing-violation cost (the paper uses 50;
  /// Theorem 2 shows any value works as long as the found minimum is
  /// violation-free, Theorem 1 gives a sufficient magnitude).
  QhatMatrix(const PartitionProblem& problem, double penalty);

  [[nodiscard]] double penalty() const noexcept { return penalty_; }
  [[nodiscard]] std::int64_t flat_size() const noexcept {
    return problem_->flat_size();
  }

  /// Single entry q-hat(r1, r2); O(log degree).
  [[nodiscard]] double entry(std::int64_t r1, std::int64_t r2) const;

  /// y^T Q-hat y for the y vector of a complete assignment:
  /// true objective plus penalty * (number of ordered timing-violating
  /// pairs).  O(bundles + constraints), never O((MN)^2).
  [[nodiscard]] double penalized_value(const Assignment& assignment) const;

  /// Number of ordered (j1, j2) pairs whose constraint is violated -- the
  /// difference between penalized_value and the true objective, divided by
  /// the penalty.
  [[nodiscard]] std::int64_t ordered_violations(const Assignment& assignment) const;

  /// Change in penalized_value if `component` moved to `target`, everything
  /// else fixed.  O(degree in A + degree in Dc).  Delegates to the shared
  /// implementation in core/delta_evaluator.hpp (the DeltaEvaluator adds
  /// per-component caching on top for all-targets scans).
  [[nodiscard]] double move_delta_penalized(const Assignment& assignment,
                                            std::int32_t component,
                                            PartitionId target) const;

  /// Change in penalized_value if the two components exchanged partitions.
  /// O(degree(j1) + degree(j2)) over both A and Dc.
  [[nodiscard]] double swap_delta_penalized(const Assignment& assignment,
                                            std::int32_t component_a,
                                            std::int32_t component_b) const;

  /// STEP 3 gather: eta[s] = sum_r q-hat(r, s) * u_r for a complete
  /// assignment u; `eta` must have flat_size() entries.
  /// O((nnz(A) + nnz(Dc)) * M) via the sparse representation.
  /// `threads > 1` gathers columns in parallel through util/parallel --
  /// each component's column is written by exactly one chunk, so the
  /// result is bit-identical at every thread count.
  void eta(const Assignment& u, std::span<double> eta,
           std::int32_t threads = 1) const;

  /// Upper bounds omega_r >= max_{y in S} sum_s q-hat(r, s) y_s of
  /// equation (2); computed once per solve.  Exploits C3: each component
  /// contributes its worst single entry.
  [[nodiscard]] std::vector<double> omega() const;

  /// Count of structurally non-zero entries the sparse representation can
  /// produce (wire blocks + constraint blocks + diagonal); for reporting.
  [[nodiscard]] std::int64_t nominal_nonzeros() const;

  /// Dense Q-hat; quadratic memory -- tests and the Section 3.3 example only.
  [[nodiscard]] Matrix<double> materialize() const;

 private:
  /// True iff placing j1 in i1 and j2 in i2 violates the (j1, j2) timing
  /// constraint in the ordered direction D(i1, i2) > Dc(j1, j2).
  [[nodiscard]] bool violates(PartitionId i1, std::int32_t j1, PartitionId i2,
                              std::int32_t j2) const;

  const PartitionProblem* problem_;
  double penalty_;
};

}  // namespace qbp
