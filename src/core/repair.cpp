#include "core/repair.hpp"

#include <bit>
#include <vector>

#include "util/rng.hpp"

#include "util/check.hpp"

namespace qbp {

namespace {

/// Violated-constraint count of `component` if it sat in `target`.
std::int32_t conflicts_at(const PartitionProblem& problem,
                          const Assignment& assignment, std::int32_t component,
                          PartitionId target) {
  const auto partners = problem.timing().partners(component);
  const auto bounds = problem.timing().bounds(component);
  std::int32_t conflicts = 0;
  for (std::size_t k = 0; k < partners.size(); ++k) {
    const PartitionId other = assignment[partners[k]];
    if (other == Assignment::kUnassigned) continue;
    if (problem.topology().delay(target, other) > bounds[k] ||
        problem.topology().delay(other, target) > bounds[k]) {
      ++conflicts;
    }
  }
  return conflicts;
}

/// 0/1 membership over component ids with O(log n) update and O(log n)
/// select-kth (Fenwick tree).  Selecting the k-th smallest member id is
/// index-compatible with scanning components in ascending order, so the
/// min-conflicts loop below draws the same component the old full-rescan
/// implementation drew -- bit-identical walks, O(n) less work per move.
class ConflictedSet {
 public:
  explicit ConflictedSet(std::int32_t n)
      : member_(static_cast<std::size_t>(n), 0),
        tree_(static_cast<std::size_t>(n) + 1, 0) {}

  void set(std::int32_t id, bool member) {
    const auto slot = static_cast<std::size_t>(id);
    if (static_cast<bool>(member_[slot]) == member) return;
    member_[slot] = member ? 1 : 0;
    const std::int32_t delta = member ? 1 : -1;
    for (std::size_t i = slot + 1; i < tree_.size(); i += i & (~i + 1)) {
      tree_[i] += delta;
    }
    count_ += delta;
  }

  [[nodiscard]] std::int64_t count() const noexcept { return count_; }

  /// Id of the k-th smallest member (0-based; requires k < count()).
  [[nodiscard]] std::int32_t select(std::int64_t k) const {
    std::size_t pos = 0;
    std::int64_t remaining = k + 1;
    for (std::size_t mask = std::bit_floor(tree_.size() - 1); mask > 0;
         mask >>= 1) {
      const std::size_t next = pos + mask;
      if (next < tree_.size() && tree_[next] < remaining) {
        pos = next;
        remaining -= tree_[next];
      }
    }
    return static_cast<std::int32_t>(pos);
  }

 private:
  std::vector<char> member_;
  std::vector<std::int32_t> tree_;
  std::int64_t count_ = 0;
};

}  // namespace

RepairResult repair_timing(const PartitionProblem& problem,
                           const Assignment& start, const RepairOptions& options) {
  QBP_CHECK(start.is_complete()) << "repair requires a complete assignment";
  const std::int32_t n = problem.num_components();
  const std::int32_t m = problem.num_partitions();
  const auto& sizes = problem.netlist().sizes();

  RepairResult result;
  result.assignment = start;
  Assignment& assignment = result.assignment;
  CapacityLedger ledger(assignment, sizes, problem.topology().capacities());
  Rng rng(options.seed);

  const std::int64_t budget =
      options.max_moves >= 0 ? options.max_moves
                             : 200 * static_cast<std::int64_t>(n);

  // Conflict counts are maintained incrementally: moving component j can
  // only change the violation status of constraints incident to j, i.e. the
  // counts of j and its timing partners.  One O(total Dc entries) scan here,
  // then O(degree^2) per move instead of the O(n * degree) full rescan.
  std::vector<std::int32_t> conflict_count(static_cast<std::size_t>(n), 0);
  ConflictedSet conflicted(n);
  for (std::int32_t j = 0; j < n; ++j) {
    if (problem.timing().partners(j).empty()) continue;
    conflict_count[static_cast<std::size_t>(j)] =
        conflicts_at(problem, assignment, j, assignment[j]);
    conflicted.set(j, conflict_count[static_cast<std::size_t>(j)] > 0);
  }
  const auto recount = [&](std::int32_t j) {
    if (problem.timing().partners(j).empty()) return;
    conflict_count[static_cast<std::size_t>(j)] =
        conflicts_at(problem, assignment, j, assignment[j]);
    conflicted.set(j, conflict_count[static_cast<std::size_t>(j)] > 0);
  };

  std::vector<PartitionId> best_targets;
  while (result.moves < budget) {
    if (conflicted.count() == 0) break;

    const std::int32_t j =
        conflicted.select(static_cast<std::int64_t>(rng.next_below(
            static_cast<std::uint64_t>(conflicted.count()))));
    const std::int32_t current_conflicts =
        conflict_count[static_cast<std::size_t>(j)];

    // Best capacity-feasible target by conflict count (<= current; sideways
    // allowed so the walk can escape plateaus), random tie-break.  With
    // probability `noise` take any capacity-feasible target instead.
    best_targets.clear();
    if (rng.next_bool(options.noise)) {
      for (PartitionId i = 0; i < m; ++i) {
        if (i != assignment[j] &&
            ledger.fits(i, sizes[static_cast<std::size_t>(j)])) {
          best_targets.push_back(i);
        }
      }
    } else {
      std::int32_t best_conflicts = current_conflicts;
      for (PartitionId i = 0; i < m; ++i) {
        if (i == assignment[j]) continue;
        if (!ledger.fits(i, sizes[static_cast<std::size_t>(j)])) continue;
        const std::int32_t conflicts = conflicts_at(problem, assignment, j, i);
        if (conflicts < best_conflicts) {
          best_conflicts = conflicts;
          best_targets.assign(1, i);
        } else if (conflicts == best_conflicts) {
          best_targets.push_back(i);
        }
      }
    }
    if (best_targets.empty()) {
      ++result.moves;  // stuck on this component this round; try another
      continue;
    }
    const PartitionId target = best_targets[rng.pick_index(best_targets)];
    ledger.remove(assignment[j], sizes[static_cast<std::size_t>(j)]);
    ledger.add(target, sizes[static_cast<std::size_t>(j)]);
    assignment.set(j, target);
    ++result.moves;
    recount(j);
    for (const std::int32_t partner : problem.timing().partners(j)) {
      recount(partner);
    }
  }

  result.feasible = problem.satisfies_capacity(assignment) &&
                    problem.satisfies_timing(assignment);
  return result;
}

}  // namespace qbp
