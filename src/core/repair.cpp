#include "core/repair.hpp"

#include <vector>

#include "util/rng.hpp"

#include "util/check.hpp"

namespace qbp {

namespace {

/// Violated-constraint count of `component` if it sat in `target`.
std::int32_t conflicts_at(const PartitionProblem& problem,
                          const Assignment& assignment, std::int32_t component,
                          PartitionId target) {
  const auto partners = problem.timing().partners(component);
  const auto bounds = problem.timing().bounds(component);
  std::int32_t conflicts = 0;
  for (std::size_t k = 0; k < partners.size(); ++k) {
    const PartitionId other = assignment[partners[k]];
    if (other == Assignment::kUnassigned) continue;
    if (problem.topology().delay(target, other) > bounds[k] ||
        problem.topology().delay(other, target) > bounds[k]) {
      ++conflicts;
    }
  }
  return conflicts;
}

}  // namespace

RepairResult repair_timing(const PartitionProblem& problem,
                           const Assignment& start, const RepairOptions& options) {
  QBP_CHECK(start.is_complete()) << "repair requires a complete assignment";
  const std::int32_t n = problem.num_components();
  const std::int32_t m = problem.num_partitions();
  const auto& sizes = problem.netlist().sizes();

  RepairResult result;
  result.assignment = start;
  Assignment& assignment = result.assignment;
  CapacityLedger ledger(assignment, sizes, problem.topology().capacities());
  Rng rng(options.seed);

  const std::int64_t budget =
      options.max_moves >= 0 ? options.max_moves
                             : 200 * static_cast<std::int64_t>(n);

  std::vector<std::int32_t> conflicted;
  std::vector<PartitionId> best_targets;
  while (result.moves < budget) {
    // Components currently involved in at least one violated constraint.
    conflicted.clear();
    for (std::int32_t j = 0; j < n; ++j) {
      if (problem.timing().partners(j).empty()) continue;
      if (conflicts_at(problem, assignment, j, assignment[j]) > 0) {
        conflicted.push_back(j);
      }
    }
    if (conflicted.empty()) break;

    const std::int32_t j = conflicted[rng.pick_index(conflicted)];
    const std::int32_t current_conflicts =
        conflicts_at(problem, assignment, j, assignment[j]);

    // Best capacity-feasible target by conflict count (<= current; sideways
    // allowed so the walk can escape plateaus), random tie-break.  With
    // probability `noise` take any capacity-feasible target instead.
    best_targets.clear();
    if (rng.next_bool(options.noise)) {
      for (PartitionId i = 0; i < m; ++i) {
        if (i != assignment[j] &&
            ledger.fits(i, sizes[static_cast<std::size_t>(j)])) {
          best_targets.push_back(i);
        }
      }
    } else {
      std::int32_t best_conflicts = current_conflicts;
      for (PartitionId i = 0; i < m; ++i) {
        if (i == assignment[j]) continue;
        if (!ledger.fits(i, sizes[static_cast<std::size_t>(j)])) continue;
        const std::int32_t conflicts = conflicts_at(problem, assignment, j, i);
        if (conflicts < best_conflicts) {
          best_conflicts = conflicts;
          best_targets.assign(1, i);
        } else if (conflicts == best_conflicts) {
          best_targets.push_back(i);
        }
      }
    }
    if (best_targets.empty()) {
      ++result.moves;  // stuck on this component this round; try another
      continue;
    }
    const PartitionId target = best_targets[rng.pick_index(best_targets)];
    ledger.remove(assignment[j], sizes[static_cast<std::size_t>(j)]);
    ledger.add(target, sizes[static_cast<std::size_t>(j)]);
    assignment.set(j, target);
    ++result.moves;
  }

  result.feasible = problem.satisfies_capacity(assignment) &&
                    problem.satisfies_timing(assignment);
  return result;
}

}  // namespace qbp
