// Min-conflicts timing repair.
//
// The Burkard iteration is a global line search: it drives the violation
// count down fast but -- being built from simultaneous whole-circuit GAP
// solves -- can plateau with a handful of residual violations on very tight
// constraint sets.  This utility finishes the job locally: repeatedly pick
// a component involved in a violated constraint and move it to the
// capacity-feasible partition with the fewest resulting violations
// (sideways moves allowed, random tie-breaking).  Used by make_initial as a
// fallback, and available to users whose hand-made assignments need
// legalizing.
#pragma once

#include <cstdint>

#include "core/problem.hpp"

namespace qbp {

struct RepairOptions {
  /// Move budget; -1 means 200 * N.
  std::int64_t max_moves = -1;
  /// WalkSAT-style noise: probability of moving a conflicted component to a
  /// random capacity-feasible partition instead of the min-conflict one;
  /// breaks deadlocks where every single move looks non-improving.
  double noise = 0.08;
  std::uint64_t seed = 1;
};

struct RepairResult {
  Assignment assignment;
  bool feasible = false;  // C1 and C2 both hold on exit
  std::int64_t moves = 0;
};

/// `start` must be complete and capacity-feasible; capacity stays satisfied
/// throughout (only C2 is being repaired).
[[nodiscard]] RepairResult repair_timing(const PartitionProblem& problem,
                                         const Assignment& start,
                                         const RepairOptions& options = {});

}  // namespace qbp
