#include "core/report.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "partition/cost.hpp"
#include "util/strings.hpp"

#include "util/check.hpp"

namespace qbp {

SolutionReport make_report(const PartitionProblem& problem,
                           const Assignment& assignment) {
  QBP_CHECK(assignment.is_complete());
  SolutionReport report;

  report.wirelength = problem.wirelength(assignment);
  report.quadratic_term =
      quadratic_cost(problem.netlist(), problem.topology(), assignment);
  report.linear_term = linear_cost(problem.linear_cost_matrix(), assignment);
  report.objective = problem.alpha() * report.linear_term +
                     problem.beta() * report.quadratic_term;

  report.capacity_ok = problem.satisfies_capacity(assignment);
  report.timing_violations =
      problem.timing().violations(assignment, problem.topology());
  report.timing_ok = report.timing_violations == 0;

  // Per-partition usage.
  const auto& sizes = problem.netlist().sizes();
  report.partitions.resize(static_cast<std::size_t>(problem.num_partitions()));
  for (PartitionId i = 0; i < problem.num_partitions(); ++i) {
    auto& usage = report.partitions[static_cast<std::size_t>(i)];
    usage.partition = i;
    usage.capacity = problem.topology().capacity(i);
  }
  for (std::int32_t j = 0; j < problem.num_components(); ++j) {
    auto& usage = report.partitions[static_cast<std::size_t>(assignment[j])];
    usage.usage += sizes[static_cast<std::size_t>(j)];
    ++usage.components;
  }

  // Wire distribution by routing distance (delay matrix).
  const_cast<Netlist&>(problem.netlist()).finalize();
  for (const WireBundle& bundle : problem.netlist().bundles()) {
    const double distance =
        problem.topology().delay(assignment[bundle.a], assignment[bundle.b]);
    const auto bucket = static_cast<std::size_t>(std::lround(distance));
    if (report.wires_at_distance.size() <= bucket) {
      report.wires_at_distance.resize(bucket + 1, 0);
    }
    report.wires_at_distance[bucket] += bundle.multiplicity;
  }

  // Timing slack statistics over the constrained pairs.
  report.min_timing_slack = std::numeric_limits<double>::infinity();
  report.critical_constraints = 0;
  bool any_constraint = false;
  problem.timing().matrix().for_each(
      [&](std::int32_t j1, std::int32_t j2, double bound) {
        if (j1 >= j2) return;
        any_constraint = true;
        const double used = std::max(
            problem.topology().delay(assignment[j1], assignment[j2]),
            problem.topology().delay(assignment[j2], assignment[j1]));
        const double slack = bound - used;
        report.min_timing_slack = std::min(report.min_timing_slack, slack);
        if (slack == 0.0) ++report.critical_constraints;
      });
  if (!any_constraint) report.min_timing_slack = 0.0;

  if (prof::enabled()) report.phases = prof::snapshot();
  return report;
}

std::string to_string(const SolutionReport& report) {
  std::ostringstream out;
  out << "objective " << format_double(report.objective, 1) << " (linear "
      << format_double(report.linear_term, 1) << ", quadratic "
      << format_double(report.quadratic_term, 1) << ", wirelength "
      << format_double(report.wirelength, 1) << ")\n";
  out << "capacity: " << (report.capacity_ok ? "ok" : "VIOLATED")
      << ", timing: "
      << (report.timing_ok
              ? "ok"
              : "VIOLATED (" + std::to_string(report.timing_violations) +
                    " pairs)")
      << ", min slack " << format_double(report.min_timing_slack, 2)
      << ", critical constraints " << report.critical_constraints << "\n";
  out << "partition utilization:\n";
  for (const auto& usage : report.partitions) {
    const double percent =
        usage.capacity > 0.0 ? usage.usage / usage.capacity * 100.0 : 0.0;
    out << "  " << usage.partition << ": "
        << format_double(usage.usage, 1) << " / "
        << format_double(usage.capacity, 1) << " (" << format_double(percent, 0)
        << "%), " << usage.components << " components\n";
  }
  out << "wires by routing distance:";
  for (std::size_t d = 0; d < report.wires_at_distance.size(); ++d) {
    out << " d" << d << "=" << report.wires_at_distance[d];
  }
  out << "\n";
  if (!report.phases.empty()) out << prof::to_string(report.phases);
  return out.str();
}

}  // namespace qbp
