// Human-readable quality report for a solved assignment: the summary a
// designer reads after a partitioning run -- per-partition utilization,
// cut-wire distribution by routing distance, timing-slack statistics, and
// the two objective terms.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/problem.hpp"
#include "util/prof.hpp"

namespace qbp {

struct PartitionUsage {
  PartitionId partition = 0;
  double usage = 0.0;
  double capacity = 0.0;
  std::int32_t components = 0;
};

struct SolutionReport {
  // Objective breakdown.
  double wirelength = 0.0;       // each wire once
  double quadratic_term = 0.0;   // paper's ordered double sum
  double linear_term = 0.0;
  double objective = 0.0;        // alpha * linear + beta * quadratic

  // Constraint status.
  bool capacity_ok = false;
  bool timing_ok = false;
  std::int64_t timing_violations = 0;  // violated unordered pairs

  // Structure.
  std::vector<PartitionUsage> partitions;
  /// wires_at_distance[d] = wire count routed at delay-matrix distance d
  /// (index capped at the max distance found; [0] = intra-partition).
  std::vector<std::int64_t> wires_at_distance;
  /// Minimum slack over satisfied constraints: min (Dc - D); negative when
  /// violations exist.
  double min_timing_slack = 0.0;
  /// Constraints with zero slack (met exactly) -- the critical set.
  std::int64_t critical_constraints = 0;

  /// Where the run spent its time: the phase profiler's buckets at report
  /// time (empty unless profiling is on -- see util/prof.hpp).  Snapshot
  /// totals are process-wide, so a driver timing several runs should
  /// prof::reset() between them.
  prof::PhaseReport phases;
};

/// Build the report; `assignment` must be complete.
[[nodiscard]] SolutionReport make_report(const PartitionProblem& problem,
                                         const Assignment& assignment);

/// Multi-line rendering for terminals / logs.
[[nodiscard]] std::string to_string(const SolutionReport& report);

}  // namespace qbp
