#include "core/special_cases.hpp"

#include "util/check.hpp"


namespace qbp {

PartitionProblem make_qap_problem(const Matrix<std::int32_t>& flow,
                                  const Matrix<double>& distance) {
  const std::int32_t n = flow.rows();
  QBP_CHECK_EQ(flow.cols(), n);
  QBP_CHECK(distance.rows() == n && distance.cols() == n)
      << "distance matrix must be " << n << " x " << n;

  Netlist netlist("qap");
  for (std::int32_t j = 0; j < n; ++j) {
    netlist.add_component("f" + std::to_string(j), 1.0);
  }
  for (std::int32_t a = 0; a < n; ++a) {
    for (std::int32_t b = a + 1; b < n; ++b) {
      const std::int32_t traffic = flow(a, b) + flow(b, a);
      if (traffic > 0) netlist.add_wires(a, b, traffic);
    }
  }

  Matrix<double> b_matrix = distance;
  Matrix<double> d_matrix = distance;
  PartitionTopology topology = PartitionTopology::custom(
      std::move(b_matrix), std::move(d_matrix),
      std::vector<double>(static_cast<std::size_t>(n), 1.0));

  return PartitionProblem(std::move(netlist), std::move(topology),
                          TimingConstraints(n), Matrix<double>{},
                          /*alpha=*/0.0, /*beta=*/1.0);
}

PartitionProblem make_lap_problem(const Matrix<double>& cost) {
  const std::int32_t n = cost.rows();
  QBP_CHECK_EQ(cost.cols(), n);

  Netlist netlist("lap");
  for (std::int32_t j = 0; j < n; ++j) {
    netlist.add_component("t" + std::to_string(j), 1.0);
  }
  // P rows are agents = partitions; cost is already M x N with M = N.
  Matrix<double> zero_b(n, n, 0.0);
  Matrix<double> zero_d(n, n, 0.0);
  PartitionTopology topology = PartitionTopology::custom(
      std::move(zero_b), std::move(zero_d),
      std::vector<double>(static_cast<std::size_t>(n), 1.0));
  return PartitionProblem(std::move(netlist), std::move(topology),
                          TimingConstraints(n), cost, /*alpha=*/1.0,
                          /*beta=*/0.0);
}

PartitionProblem make_gap_problem(const Matrix<double>& cost,
                                  std::span<const double> sizes,
                                  std::span<const double> capacities) {
  const std::int32_t m = cost.rows();
  const std::int32_t n = cost.cols();
  QBP_CHECK_EQ(static_cast<std::size_t>(n), sizes.size());
  QBP_CHECK_EQ(static_cast<std::size_t>(m), capacities.size());

  Netlist netlist("gap");
  for (std::int32_t j = 0; j < n; ++j) {
    netlist.add_component("item" + std::to_string(j),
                          sizes[static_cast<std::size_t>(j)]);
  }
  Matrix<double> zero_b(m, m, 0.0);
  Matrix<double> zero_d(m, m, 0.0);
  PartitionTopology topology = PartitionTopology::custom(
      std::move(zero_b), std::move(zero_d),
      std::vector<double>(capacities.begin(), capacities.end()));
  return PartitionProblem(std::move(netlist), std::move(topology),
                          TimingConstraints(n), cost, /*alpha=*/1.0,
                          /*beta=*/0.0);
}

}  // namespace qbp
