// The paper's Section 2.2 taxonomy as constructors: every classical
// assignment problem is a PartitionProblem with particular settings.
//
//   2.2.1  MCM/TCM re-assignment  = PP(1,0) with the deviation matrix P
//          (see partition/deviation.hpp)
//   2.2.2  Generalized Assignment = PP(1,0), no timing constraints
//          Linear Assignment      = GAP with M = N, unit sizes/capacities
//   2.2.3  Quadratic Assignment   = PP(alpha,beta), M = N, unit
//          sizes/capacities, no timing constraints
//
// These helpers make the reductions executable -- tests cross-check the
// QBP solver against the dedicated LAP/GAP solvers through them.
#pragma once

#include <span>

#include "core/problem.hpp"

namespace qbp {

/// Quadratic Assignment: `flow(j1, j2)` units of traffic between facilities,
/// `distance` between locations (used as both B and D; no timing
/// constraints).  Flows are symmetrized (f + f^T) when building the
/// netlist, which preserves the objective whenever `distance` is symmetric.
/// M = N, unit sizes and capacities: assignments are permutations.
[[nodiscard]] PartitionProblem make_qap_problem(const Matrix<std::int32_t>& flow,
                                                const Matrix<double>& distance);

/// Linear Assignment as PP(1,0): cost(i, j) of giving task j to agent i,
/// M = N, unit sizes and capacities.
[[nodiscard]] PartitionProblem make_lap_problem(const Matrix<double>& cost);

/// Generalized Assignment as PP(1,0): arbitrary item sizes and agent
/// capacities, no timing constraints.
[[nodiscard]] PartitionProblem make_gap_problem(const Matrix<double>& cost,
                                                std::span<const double> sizes,
                                                std::span<const double> capacities);

}  // namespace qbp
