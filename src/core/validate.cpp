#include "core/validate.hpp"

#include <atomic>
#include <cmath>
#include <sstream>
#include <utility>

#include "core/delta_evaluator.hpp"
#include "core/qhat.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace qbp {

namespace {

std::atomic<bool> g_validation_enabled{
#ifdef QBPART_VALIDATE_DEFAULT_ON
    true
#else
    false
#endif
};

/// Mixed absolute/relative closeness for recomputed-vs-reported numbers.
bool close(double a, double b, double tolerance) {
  const double scale = std::max({1.0, std::abs(a), std::abs(b)});
  return std::abs(a - b) <= tolerance * scale;
}

/// Structural sanity of one reported assignment: right size, complete (C3),
/// every partition id in range.  Returns false when follow-up numeric
/// checks would be meaningless.
bool check_structure(const PartitionProblem& problem,
                     const Assignment& assignment, std::string_view label,
                     ValidationReport& report) {
  if (assignment.num_components() != problem.num_components()) {
    std::ostringstream out;
    out << label << " has " << assignment.num_components()
        << " components, problem has " << problem.num_components();
    report.issues.push_back(out.str());
    return false;
  }
  bool structurally_sound = true;
  for (std::int32_t j = 0; j < assignment.num_components(); ++j) {
    const PartitionId p = assignment[j];
    if (p == Assignment::kUnassigned) {
      std::ostringstream out;
      out << label << " leaves component " << j << " unassigned (violates C3)";
      report.issues.push_back(out.str());
      structurally_sound = false;
    } else if (p < 0 || p >= problem.num_partitions()) {
      std::ostringstream out;
      out << label << " places component " << j << " in partition " << p
          << " outside [0, " << problem.num_partitions() << ")";
      report.issues.push_back(out.str());
      structurally_sound = false;
    }
  }
  return structurally_sound;
}

}  // namespace

bool validation_enabled() noexcept {
  return g_validation_enabled.load(std::memory_order_relaxed);
}

void set_validation_enabled(bool enabled) noexcept {
  g_validation_enabled.store(enabled, std::memory_order_relaxed);
}

std::string ValidationReport::to_string() const {
  std::string joined;
  for (const std::string& issue : issues) {
    if (!joined.empty()) joined += "; ";
    joined += issue;
  }
  return joined;
}

void ValidationReport::merge(ValidationReport other) {
  for (std::string& issue : other.issues) {
    issues.push_back(std::move(issue));
  }
}

ValidationReport validate_outcome(const PartitionProblem& problem,
                                  const ReportedOutcome& reported,
                                  const ValidateOptions& options) {
  ValidationReport report;
  if (reported.best == nullptr) {
    report.issues.emplace_back("no best assignment was reported");
    return report;
  }

  if (check_structure(problem, *reported.best, "best", report)) {
    const QhatMatrix qhat(problem, options.penalty);
    const double recomputed = qhat.penalized_value(*reported.best);
    if (!close(recomputed, reported.best_penalized, options.tolerance)) {
      std::ostringstream out;
      out << "reported penalized value " << reported.best_penalized
          << " != recomputed " << recomputed << " (penalty "
          << options.penalty << ")";
      report.issues.push_back(out.str());
    }
  }

  if (reported.best_feasible != nullptr &&
      check_structure(problem, *reported.best_feasible, "best_feasible",
                      report)) {
    if (!problem.satisfies_capacity(*reported.best_feasible)) {
      report.issues.emplace_back(
          "best_feasible violates a capacity constraint (C1)");
    }
    if (!problem.satisfies_timing(*reported.best_feasible)) {
      report.issues.emplace_back(
          "best_feasible violates a timing constraint (C2)");
    }
    const double recomputed = problem.objective(*reported.best_feasible);
    if (!close(recomputed, reported.best_feasible_objective,
               options.tolerance)) {
      std::ostringstream out;
      out << "reported feasible objective " << reported.best_feasible_objective
          << " != recomputed " << recomputed;
      report.issues.push_back(out.str());
    }
  }
  return report;
}

ValidationReport validate_deltas(const PartitionProblem& problem,
                                 const Assignment& assignment,
                                 const ValidateOptions& options) {
  ValidationReport report;
  if (!check_structure(problem, assignment, "delta-check assignment", report)) {
    return report;
  }
  const std::int32_t n = problem.num_components();
  const std::int32_t m = problem.num_partitions();
  if (n == 0 || m < 2 || options.delta_samples <= 0) return report;

  Rng rng(options.seed);
  const QhatMatrix qhat(problem, options.penalty);
  DeltaEvaluator evaluator(problem, options.penalty);
  const double base = qhat.penalized_value(assignment);
  Assignment scratch = assignment;

  for (std::int32_t k = 0; k < options.delta_samples; ++k) {
    const auto j = static_cast<std::int32_t>(
        rng.next_below(static_cast<std::uint64_t>(n)));
    const auto target = static_cast<PartitionId>(
        rng.next_below(static_cast<std::uint64_t>(m)));

    // Three independently computed values for the same move: the cached
    // DeltaEvaluator row, the QhatMatrix one-off delta, and the ground
    // truth of mutating a copy and re-evaluating from scratch.
    const std::span<const double> row = evaluator.move_deltas(assignment, j);
    const double cached = row[static_cast<std::size_t>(target)];
    const double one_off = qhat.move_delta_penalized(assignment, j, target);
    scratch.set(j, target);
    const double full = qhat.penalized_value(scratch) - base;
    scratch.set(j, assignment[j]);

    if (!close(cached, full, options.tolerance) ||
        !close(one_off, full, options.tolerance)) {
      std::ostringstream out;
      out << "move delta mismatch for component " << j << " -> partition "
          << target << ": cached " << cached << ", one-off " << one_off
          << ", full recompute " << full;
      report.issues.push_back(out.str());
    }
  }

  for (std::int32_t k = 0; k < options.delta_samples / 2; ++k) {
    const auto j1 = static_cast<std::int32_t>(
        rng.next_below(static_cast<std::uint64_t>(n)));
    const auto j2 = static_cast<std::int32_t>(
        rng.next_below(static_cast<std::uint64_t>(n)));
    if (j1 == j2) continue;

    const double incremental = evaluator.swap_delta(assignment, j1, j2);
    const double one_off = qhat.swap_delta_penalized(assignment, j1, j2);
    scratch.set(j1, assignment[j2]);
    scratch.set(j2, assignment[j1]);
    const double full = qhat.penalized_value(scratch) - base;
    scratch.set(j1, assignment[j1]);
    scratch.set(j2, assignment[j2]);

    if (!close(incremental, full, options.tolerance) ||
        !close(one_off, full, options.tolerance)) {
      std::ostringstream out;
      out << "swap delta mismatch for components (" << j1 << ", " << j2
          << "): evaluator " << incremental << ", one-off " << one_off
          << ", full recompute " << full;
      report.issues.push_back(out.str());
    }
  }
  return report;
}

void enforce(const ValidationReport& report, std::string_view context) {
  QBP_CHECK(report.ok()) << context << ": " << report.to_string();
}

}  // namespace qbp
