// Shadow validator: independent re-verification of solver outcomes.
//
// Every solver in the library reports three things it computed
// incrementally -- a best assignment, its penalized value y^T Qhat y, and
// (when found) a feasible incumbent with its true objective.  Incremental
// bookkeeping is exactly where silent corruption hides: a stale delta cache,
// a capacity ledger that drifted, an objective accumulated with a sign
// error.  The shadow validator recomputes everything from scratch and
// compares:
//
//   * structural feasibility -- C3 completeness, partition ids in range,
//     and (for a claimed-feasible incumbent) C1 capacity and C2 timing
//     checked against the problem definition, not the solver's ledger;
//   * reported numbers -- the penalized value and true objective recomputed
//     via QhatMatrix / PartitionProblem::objective and compared within a
//     tolerance;
//   * incremental machinery -- sampled move/swap deltas from DeltaEvaluator
//     (both the cached move_deltas row and the one-off paths) cross-checked
//     against QhatMatrix's delta and against a full from-scratch
//     re-evaluation of the mutated assignment.
//
// A non-empty report routed through enforce() fires the contract framework
// (util/check.hpp), so the configured fail mode decides what a violation
// does: abort (tests, CLI), throw qbp::ContractViolation (the daemon fails
// one job and survives), or log-and-count (audit mode).
//
// The validator is O(full re-evaluation) per call -- run it per solver
// result, never per iteration.  It is off by default; the QBPART_VALIDATE
// CMake option flips the compile-time default, set_validation_enabled()
// flips it at runtime, and the service protocol's per-job "validate" flag
// overrides it for one job (see engine/portfolio.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/embedding.hpp"
#include "core/problem.hpp"

namespace qbp {

/// Process-wide default for shadow validation.  Compile-time default is ON
/// when built with -DQBPART_VALIDATE=ON, otherwise OFF.
[[nodiscard]] bool validation_enabled() noexcept;
void set_validation_enabled(bool enabled) noexcept;

struct ValidateOptions {
  /// Penalty the reported penalized values are measured in (must match the
  /// solver that produced them; Solver::penalized_with() reports it).
  double penalty = kPaperPenalty;
  /// Tolerance for recomputed-vs-reported comparisons:
  /// |a - b| <= tolerance * max(1, |a|, |b|).
  double tolerance = 1e-6;
  /// Number of sampled moves (and half as many swaps) for the
  /// DeltaEvaluator cross-check.
  std::int32_t delta_samples = 16;
  /// Seed of the sampling stream (deterministic validator).
  std::uint64_t seed = 1993;
};

struct ValidationReport {
  std::vector<std::string> issues;

  [[nodiscard]] bool ok() const noexcept { return issues.empty(); }
  /// All issues joined with "; " (empty string when ok).
  [[nodiscard]] std::string to_string() const;
  /// Append another report's issues to this one.
  void merge(ValidationReport other);
};

/// What a solver claims about its outcome, in primitives (the engine layer
/// adapts its SolverResult onto this; core cannot depend on engine).
struct ReportedOutcome {
  /// Best-by-penalized-value assignment; required.
  const Assignment* best = nullptr;
  double best_penalized = 0.0;
  /// Feasible incumbent; nullptr when the solver found none.
  const Assignment* best_feasible = nullptr;
  double best_feasible_objective = 0.0;
};

/// Recompute feasibility and objectives from scratch and compare with the
/// reported numbers.  Does not sample deltas (see validate_deltas).
[[nodiscard]] ValidationReport validate_outcome(
    const PartitionProblem& problem, const ReportedOutcome& reported,
    const ValidateOptions& options = {});

/// Cross-check the incremental delta machinery at `assignment`: sampled
/// moves and swaps evaluated through DeltaEvaluator (cached and one-off
/// paths) and QhatMatrix::{move,swap}_delta_penalized must all agree with a
/// full from-scratch re-evaluation of the mutated assignment.
[[nodiscard]] ValidationReport validate_deltas(
    const PartitionProblem& problem, const Assignment& assignment,
    const ValidateOptions& options = {});

/// Route a report through the contract framework: a non-ok report fires one
/// contract violation carrying `context` and every issue, honoring the
/// configured fail mode (abort / throw / log-and-count).  No-op when ok.
void enforce(const ValidationReport& report, std::string_view context);

}  // namespace qbp
