#include "engine/adapters.hpp"

#include <utility>

#include "core/initial.hpp"
#include "core/qhat.hpp"
#include "core/repair.hpp"

namespace qbp::engine {

namespace {

std::function<bool()> stop_hook(const std::stop_token& stop) {
  if (!stop.stop_possible()) return {};
  return [stop] { return stop.stop_requested(); };
}

/// Legalize a start for the feasible-region solvers.  Deterministic in
/// (assignment, seed): min-conflicts timing repair when capacity already
/// holds, else the paper's B = 0 construction.
InitialResult feasible_start(const PartitionProblem& problem,
                             const StartPoint& start) {
  InitialResult out;
  out.assignment = start.assignment;
  out.feasible = problem.is_feasible(start.assignment);
  if (out.feasible) return out;

  if (problem.satisfies_capacity(start.assignment)) {
    RepairOptions repair_options;
    repair_options.seed = start.seed;
    RepairResult repaired =
        repair_timing(problem, start.assignment, repair_options);
    if (repaired.feasible) {
      out.assignment = std::move(repaired.assignment);
      out.feasible = true;
      return out;
    }
  }
  return make_initial(problem, InitialStrategy::kQbpZeroWireCost, start.seed);
}

/// Normalized result for a feasible-region solver that produced
/// `assignment` with true objective `objective` (penalized value equals the
/// objective because the walk never violates C1/C2).
SolverResult feasible_outcome(std::string solver_name, Assignment assignment,
                              double objective, std::int64_t iterations,
                              double seconds, const std::stop_token& stop) {
  SolverResult result;
  result.solver = std::move(solver_name);
  result.best = assignment;
  result.best_penalized = objective;
  result.best_feasible = std::move(assignment);
  result.best_feasible_objective = objective;
  result.found_feasible = true;
  result.iterations = iterations;
  result.seconds = seconds;
  result.cancelled = stop.stop_requested();
  return result;
}

/// Outcome when no feasible start could be built: report the raw start.
SolverResult infeasible_outcome(std::string solver_name,
                                const PartitionProblem& problem,
                                const StartPoint& start) {
  SolverResult result;
  result.solver = std::move(solver_name);
  result.best = start.assignment;
  result.best_penalized =
      QhatMatrix(problem, kPaperPenalty).penalized_value(start.assignment);
  result.found_feasible = false;
  return result;
}

}  // namespace

SolverResult BurkardSolver::solve(const PartitionProblem& problem,
                                  const StartPoint& start,
                                  std::stop_token stop) const {
  BurkardOptions options = options_;
  if (!options.should_stop) options.should_stop = stop_hook(stop);
  BurkardResult run = solve_qbp(problem, start.assignment, options);

  SolverResult result;
  result.solver = std::string(name());
  result.best = std::move(run.best);
  result.best_penalized = run.best_penalized;
  result.best_feasible = std::move(run.best_feasible);
  result.best_feasible_objective = run.best_feasible_objective;
  result.found_feasible = run.found_feasible;
  result.history = std::move(run.history);
  result.iterations = run.iterations_run;
  result.seconds = run.seconds;
  result.cancelled = stop.stop_requested();
  return result;
}

SolverResult MultilevelSolver::solve(const PartitionProblem& problem,
                                     const StartPoint& start,
                                     std::stop_token stop) const {
  MultilevelOptions options = options_;
  if (!options.should_stop) options.should_stop = stop_hook(stop);
  MultilevelResult run = solve_qbp_multilevel(problem, start.assignment, options);

  SolverResult result;
  result.solver = std::string(name());
  result.best = std::move(run.finest.best);
  result.best_penalized = run.finest.best_penalized;
  result.best_feasible = std::move(run.finest.best_feasible);
  result.best_feasible_objective = run.finest.best_feasible_objective;
  result.found_feasible = run.finest.found_feasible;
  result.history = std::move(run.finest.history);
  result.iterations = run.finest.iterations_run;
  result.seconds = run.seconds;
  result.cancelled = stop.stop_requested();
  return result;
}

SolverResult GfmSolver::solve(const PartitionProblem& problem,
                              const StartPoint& start,
                              std::stop_token stop) const {
  const InitialResult initial = feasible_start(problem, start);
  if (!initial.feasible) {
    return infeasible_outcome(std::string(name()), problem, start);
  }
  GfmOptions options = options_;
  if (!options.should_stop) options.should_stop = stop_hook(stop);
  GfmResult run = solve_gfm(problem, initial.assignment, options);
  return feasible_outcome(std::string(name()), std::move(run.assignment),
                          run.objective, run.passes, run.seconds, stop);
}

SolverResult GklSolver::solve(const PartitionProblem& problem,
                              const StartPoint& start,
                              std::stop_token stop) const {
  const InitialResult initial = feasible_start(problem, start);
  if (!initial.feasible) {
    return infeasible_outcome(std::string(name()), problem, start);
  }
  GklOptions options = options_;
  if (!options.should_stop) options.should_stop = stop_hook(stop);
  GklResult run = solve_gkl(problem, initial.assignment, options);
  return feasible_outcome(std::string(name()), std::move(run.assignment),
                          run.objective, run.outer_loops, run.seconds, stop);
}

SolverResult SaSolver::solve(const PartitionProblem& problem,
                             const StartPoint& start,
                             std::stop_token stop) const {
  const InitialResult initial = feasible_start(problem, start);
  if (!initial.feasible) {
    return infeasible_outcome(std::string(name()), problem, start);
  }
  SaOptions options = options_;
  options.seed = start.seed;
  if (!options.should_stop) options.should_stop = stop_hook(stop);
  SaResult run = solve_sa(problem, initial.assignment, options);
  return feasible_outcome(std::string(name()), std::move(run.assignment),
                          run.objective, run.temperature_steps, run.seconds,
                          stop);
}

std::unique_ptr<Solver> make_solver(std::string_view solver_name) {
  if (solver_name == "qbp") return std::make_unique<BurkardSolver>();
  if (solver_name == "multilevel") return std::make_unique<MultilevelSolver>();
  if (solver_name == "gfm") return std::make_unique<GfmSolver>();
  if (solver_name == "gkl") return std::make_unique<GklSolver>();
  if (solver_name == "sa") return std::make_unique<SaSolver>();
  return nullptr;
}

}  // namespace qbp::engine
