// Solver-interface adapters for every optimizer in the library.
//
// Each adapter owns a frozen copy of the underlying solver's options and is
// stateless across solve() calls, so one instance can serve any number of
// concurrent portfolio starts.  Cancellation: the std::stop_token is wired
// into the `should_stop` hook each options struct now carries.
//
// Feasible-start solvers (GFM/GKL/SA -- their walks never leave the
// feasible region) legalize an infeasible StartPoint deterministically:
// min-conflicts timing repair from the given assignment when capacity
// already holds, otherwise the paper's B = 0 construction (Section 5), both
// seeded by StartPoint::seed.  If no feasible start can be built the
// adapter returns found_feasible = false with the start itself as `best`.
#pragma once

#include <algorithm>

#include "baselines/gfm.hpp"
#include "baselines/gkl.hpp"
#include "baselines/sa.hpp"
#include "core/burkard.hpp"
#include "core/multilevel.hpp"
#include "engine/solver.hpp"

namespace qbp::engine {

/// The paper's generalized Burkard heuristic ("qbp").
class BurkardSolver final : public Solver {
 public:
  explicit BurkardSolver(BurkardOptions options = {}) : options_(options) {}
  [[nodiscard]] std::string_view name() const override { return "qbp"; }
  using Solver::solve;
  [[nodiscard]] SolverResult solve(const PartitionProblem& problem,
                                   const StartPoint& start,
                                   std::stop_token stop) const override;
  [[nodiscard]] double penalized_with() const override {
    return options_.penalty;
  }
  [[nodiscard]] std::int32_t inner_threads() const override {
    return options_.inner_threads;
  }

 private:
  BurkardOptions options_;
};

/// Multilevel V-cycle around the Burkard heuristic ("multilevel").
class MultilevelSolver final : public Solver {
 public:
  explicit MultilevelSolver(MultilevelOptions options = {})
      : options_(options) {}
  [[nodiscard]] std::string_view name() const override { return "multilevel"; }
  using Solver::solve;
  [[nodiscard]] SolverResult solve(const PartitionProblem& problem,
                                   const StartPoint& start,
                                   std::stop_token stop) const override;
  /// The finest-level result comes from the refinement solver.
  [[nodiscard]] double penalized_with() const override {
    return options_.refine_solver.penalty;
  }
  /// Per-level Burkard runs inherit their own inner_threads knobs; report
  /// the larger so the portfolio sizes the pool for the hungriest level.
  [[nodiscard]] std::int32_t inner_threads() const override {
    return std::max(options_.coarse_solver.inner_threads,
                    options_.refine_solver.inner_threads);
  }

 private:
  MultilevelOptions options_;
};

/// Generalized Fiduccia-Mattheyses baseline ("gfm").
class GfmSolver final : public Solver {
 public:
  explicit GfmSolver(GfmOptions options = {}) : options_(options) {}
  [[nodiscard]] std::string_view name() const override { return "gfm"; }
  using Solver::solve;
  [[nodiscard]] SolverResult solve(const PartitionProblem& problem,
                                   const StartPoint& start,
                                   std::stop_token stop) const override;
  /// Feasible-region walk: penalized == objective; the infeasible-start
  /// fallback reports a kPaperPenalty-penalized value (the base default).
  [[nodiscard]] double penalized_with() const override {
    return kPaperPenalty;
  }

 private:
  GfmOptions options_;
};

/// Generalized Kernighan-Lin baseline ("gkl").
class GklSolver final : public Solver {
 public:
  explicit GklSolver(GklOptions options = {}) : options_(options) {}
  [[nodiscard]] std::string_view name() const override { return "gkl"; }
  using Solver::solve;
  [[nodiscard]] SolverResult solve(const PartitionProblem& problem,
                                   const StartPoint& start,
                                   std::stop_token stop) const override;
  /// Feasible-region walk: penalized == objective; the infeasible-start
  /// fallback reports a kPaperPenalty-penalized value (the base default).
  [[nodiscard]] double penalized_with() const override {
    return kPaperPenalty;
  }

 private:
  GklOptions options_;
};

/// Simulated-annealing baseline ("sa").  StartPoint::seed drives the walk,
/// overriding SaOptions::seed.
class SaSolver final : public Solver {
 public:
  explicit SaSolver(SaOptions options = {}) : options_(options) {}
  [[nodiscard]] std::string_view name() const override { return "sa"; }
  using Solver::solve;
  [[nodiscard]] SolverResult solve(const PartitionProblem& problem,
                                   const StartPoint& start,
                                   std::stop_token stop) const override;
  /// Feasible-region walk: penalized == objective; the infeasible-start
  /// fallback reports a kPaperPenalty-penalized value (the base default).
  [[nodiscard]] double penalized_with() const override {
    return kPaperPenalty;
  }

 private:
  SaOptions options_;
};

}  // namespace qbp::engine
