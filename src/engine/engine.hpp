// Umbrella header for the solver-engine layer: the Solver interface and
// normalized SolverResult, adapters for every optimizer in the library, the
// parallel portfolio/multistart driver, and the shared DeltaEvaluator
// (which lives in core/ so the Burkard polish can use it, and is re-exported
// here as part of the engine surface).
#pragma once

#include "core/delta_evaluator.hpp"
#include "engine/adapters.hpp"
#include "engine/portfolio.hpp"
#include "engine/solver.hpp"
