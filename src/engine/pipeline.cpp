#include "engine/pipeline.hpp"

#include <string>
#include <utility>

#include "core/qhat.hpp"
#include "core/validate.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace qbp::engine {

SolvePipeline::SolvePipeline(const PartitionProblem& problem,
                             PipelineOptions options)
    : original_(problem), options_(std::move(options)) {
  if (options_.presolve.enabled) {
    const bool needs_normalize =
        original_.alpha() != 1.0 || original_.beta() != 1.0;
    reduced_ = needs_normalize
                   ? presolve(original_.normalized(), options_.presolve)
                   : presolve(original_, options_.presolve);
  } else {
    // --presolve=off: no normalization either, so the solve runs on the raw
    // instance exactly as it did before the pipeline existed.
    reduced_ = presolve(original_, options_.presolve);
  }
}

void SolvePipeline::lift_result(SolverResult& result, double penalty) const {
  if (result.best.num_components() !=
      static_cast<std::int32_t>(reduced_.lift.orig_of.size())) {
    return;  // skipped/errored slot: nothing to lift
  }
  result.best = reduced_.lift.lift(result.best);
  result.best_penalized =
      QhatMatrix(original_, penalty).penalized_value(result.best);
  if (result.found_feasible) {
    result.best_feasible = reduced_.lift.lift(result.best_feasible);
    result.best_feasible_objective += reduced_.lift.objective_offset;
  }
  for (double& incumbent : result.history) {
    incumbent += reduced_.lift.objective_offset;
  }
}

void SolvePipeline::validate_lifted(const SolverResult& result,
                                    double penalty) const {
  const bool validate =
      options_.portfolio.validate.value_or(validation_enabled());
  if (!validate) return;
  if (result.best.num_components() != original_.num_components()) return;
  ValidateOptions validate_options;
  validate_options.penalty = penalty;
  ReportedOutcome outcome;
  outcome.best = &result.best;
  outcome.best_penalized = result.best_penalized;
  if (result.found_feasible) {
    outcome.best_feasible = &result.best_feasible;
    outcome.best_feasible_objective = result.best_feasible_objective;
  }
  enforce(validate_outcome(original_, outcome, validate_options),
          "pipeline.lift");
}

SolverResult SolvePipeline::rn_result(const Solver& solver) const {
  QBP_CHECK(reduced_.rn_feasible);
  SolverResult result;
  result.solver = std::string(solver.name());
  result.best = reduced_.lift.lift(reduced_.rn_assignment);
  result.best_penalized =
      QhatMatrix(original_, solver.penalized_with()).penalized_value(result.best);
  result.best_feasible = result.best;
  result.best_feasible_objective =
      reduced_.rn_objective + reduced_.lift.objective_offset;
  result.found_feasible = true;
  return result;
}

PipelineResult SolvePipeline::run(const Solver& solver,
                                  std::int32_t starts) const {
  const Timer timer;
  PipelineResult out;
  out.presolve = reduced_.stats;
  out.reduced = reduced();

  if (reduced_.rn_feasible) {
    // The remainder was solved exactly; running heuristic starts could only
    // tie.  Collapse the portfolio to one synthesized result.
    out.rn_exact = true;
    SolverResult exact = rn_result(solver);
    validate_lifted(exact, solver.penalized_with());
    exact.validated =
        options_.portfolio.validate.value_or(validation_enabled());
    out.portfolio.best = exact;
    out.portfolio.best_start = 0;
    if (options_.portfolio.keep_start_results) {
      out.portfolio.starts.push_back(std::move(exact));
    }
    out.portfolio.starts_run = 1;
    out.portfolio.threads_used = 1;
    if (out.portfolio.best.validated) out.portfolio.starts_validated = 1;
    out.portfolio.seconds = timer.seconds();
    out.seconds = timer.seconds();
    return out;
  }

  // The injected warm-start initial (if any) lives in original space; the
  // portfolio runs on the reduced instance, so restrict it first.
  PortfolioOptions portfolio_options = options_.portfolio;
  if (portfolio_options.initial.has_value() && reduced()) {
    portfolio_options.initial =
        reduced_.lift.restrict_to_reduced(*portfolio_options.initial);
  }
  const Portfolio portfolio(portfolio_options);
  out.portfolio = portfolio.run(reduced_.problem, solver, starts);
  if (reduced()) {
    // The portfolio audited each start against the reduced instance; lift
    // everything back and re-check the winner against the original.
    lift_result(out.portfolio.best, solver.penalized_with());
    for (SolverResult& start_result : out.portfolio.starts) {
      lift_result(start_result, solver.penalized_with());
      validate_lifted(start_result, solver.penalized_with());
    }
    validate_lifted(out.portfolio.best, solver.penalized_with());
  }
  out.seconds = timer.seconds();
  return out;
}

SolverResult SolvePipeline::solve_one(const Solver& solver,
                                      const StartPoint& start) const {
  const Timer timer;
  if (reduced_.rn_feasible) {
    SolverResult exact = rn_result(solver);
    validate_lifted(exact, solver.penalized_with());
    exact.seconds = timer.seconds();
    return exact;
  }
  StartPoint reduced_start{reduced_.lift.restrict_to_reduced(start.assignment),
                           start.seed};
  SolverResult result =
      solver.solve(reduced_.problem, reduced_start, std::stop_token());
  if (reduced()) {
    lift_result(result, solver.penalized_with());
    validate_lifted(result, solver.penalized_with());
  }
  result.seconds = timer.seconds();
  return result;
}

}  // namespace qbp::engine
