// SolvePipeline: the explicit normalize -> presolve -> solve(reduced) ->
// lift -> validate path every entry point shares.
//
// The pipeline wraps any Solver (or a whole portfolio of starts of one) and
// owns the instance-level work that must happen exactly once per job rather
// than once per start:
//
//   normalize   fold alpha/beta into P/B (skipped when already PP(1,1), so
//               the common case stays bit-identical to the raw solve path);
//   presolve    run core/presolve to a fixed point, producing the reduced
//               instance and the SolutionLift;
//   solve       run the wrapped solver / portfolio on the *reduced* problem
//               -- all starts share one ReducedProblem;
//   lift        map every produced result back to original-space components,
//               shift objectives by the folded constant, and recompute
//               penalized values from scratch on the original instance;
//   validate    shadow-check the lifted winner (and, when start results are
//               kept, every lifted start) against the ORIGINAL problem with
//               core/validate, firing a contract violation on any mismatch.
//
// When presolve reduces nothing the pipeline degenerates to a plain
// Portfolio::run on an untouched copy of the input -- results are
// bit-identical to not using the pipeline at all.  When RN solved the whole
// remainder exactly, the solver never runs: the portfolio collapses to a
// single synthesized result carrying the lifted exact optimum.
//
// Determinism: presolve is deterministic, the portfolio's determinism
// contract is unchanged (start points remain pure functions of (seed,
// index), now over the reduced component count), and lifting is a pure
// function of the winning result -- so the pipeline preserves bit-identical
// outcomes across thread counts and inner_threads values.
#pragma once

#include <cstdint>

#include "core/presolve.hpp"
#include "engine/portfolio.hpp"
#include "engine/solver.hpp"

namespace qbp::engine {

struct PipelineOptions {
  /// Reduction configuration; `enabled` defaults ON at this layer (the
  /// pipeline IS the opt-in; pass enabled = false for a --presolve=off run).
  PresolveOptions presolve;
  /// Portfolio configuration for run(); also supplies the validate override
  /// used for the post-lift shadow check (nullopt = process default).
  PortfolioOptions portfolio;
};

struct PipelineResult {
  /// Portfolio outcome with every assignment, objective and history lifted
  /// to original space.  For rn_exact runs this is a synthesized
  /// single-start portfolio carrying the exact optimum.
  PortfolioResult portfolio;
  PresolveStats presolve;
  /// Presolve changed the instance (stats.components_removed > 0).
  bool reduced = false;
  /// RN solved the remainder exactly; the wrapped solver never ran.
  bool rn_exact = false;
  /// Whole-pipeline wall clock (presolve + solve + lift + validate).
  double seconds = 0.0;
};

class SolvePipeline {
 public:
  /// Normalizes and presolves `problem` once, up front.  The pipeline keeps
  /// its own copies; the caller's problem need not outlive it.
  explicit SolvePipeline(const PartitionProblem& problem,
                         PipelineOptions options = {});

  [[nodiscard]] const PartitionProblem& original() const noexcept {
    return original_;
  }
  /// The instance solvers actually run on (== an unmodified copy of
  /// original() when nothing reduced).
  [[nodiscard]] const PartitionProblem& reduced_problem() const noexcept {
    return reduced_.problem;
  }
  [[nodiscard]] const PresolveStats& presolve_stats() const noexcept {
    return reduced_.stats;
  }
  [[nodiscard]] const SolutionLift& lift() const noexcept {
    return reduced_.lift;
  }
  [[nodiscard]] bool reduced() const noexcept { return !reduced_.identity(); }

  /// `starts` runs of `solver` on the reduced instance (one presolve shared
  /// across all of them), lifted and validated.
  [[nodiscard]] PipelineResult run(const Solver& solver,
                                   std::int32_t starts) const;

  /// One run from an explicit start point (restricted into reduced space),
  /// lifted and validated.  For callers that construct their own initial
  /// solution instead of sampling portfolio starts.
  [[nodiscard]] SolverResult solve_one(const Solver& solver,
                                       const StartPoint& start) const;

 private:
  /// Lift one reduced-space result to original space in place.
  void lift_result(SolverResult& result, double penalty) const;
  /// Shadow-check a lifted result against the original problem.
  void validate_lifted(const SolverResult& result, double penalty) const;
  /// The RN exact optimum as a synthesized, lifted SolverResult.
  [[nodiscard]] SolverResult rn_result(const Solver& solver) const;

  PartitionProblem original_;
  ReducedProblem reduced_;
  PipelineOptions options_;
};

}  // namespace qbp::engine
