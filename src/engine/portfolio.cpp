#include "engine/portfolio.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "core/validate.hpp"
#include "util/check.hpp"
#include "util/log.hpp"
#include "util/parallel.hpp"
#include "util/prof.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace qbp::engine {

namespace {

/// Start i's StartPoint: a pure function of (master seed, i, injected
/// initial).  A fresh master Rng is forked per index -- fork() reads but
/// never advances the master state -- so any thread can derive any start
/// independently.  Start 0 uses the injected initial assignment when the
/// options carry one of the right shape (the warm-start injection point);
/// its seed is derived exactly as for a random start.
StartPoint make_start(const PartitionProblem& problem,
                      const PortfolioOptions& options, std::int32_t index) {
  Rng master(options.seed);
  Rng stream = master.fork(static_cast<std::uint64_t>(index));
  StartPoint start;
  start.seed = stream();
  if (index == 0 && options.initial.has_value() &&
      options.initial->num_components() == problem.num_components() &&
      options.initial->num_partitions() == problem.num_partitions() &&
      options.initial->is_complete()) {
    start.assignment = *options.initial;
    return start;
  }
  start.assignment =
      Assignment(problem.num_components(), problem.num_partitions());
  for (std::int32_t j = 0; j < problem.num_components(); ++j) {
    start.assignment.set(
        j, static_cast<PartitionId>(stream.next_below(
               static_cast<std::uint64_t>(problem.num_partitions()))));
  }
  return start;
}

/// Shadow-audit one completed start: recompute the reported numbers from
/// scratch and cross-check the delta machinery, then route any mismatch
/// through the contract framework (fail-mode aware).  Throws
/// qbp::ContractViolation in throw mode; the worker catches it and turns
/// the start into an errored slot.
void audit_result(const PartitionProblem& problem, const Solver& solver,
                  std::int32_t index, SolverResult& slot) {
  ValidateOptions audit;
  audit.penalty = solver.penalized_with();
  ReportedOutcome outcome;
  outcome.best = &slot.best;
  outcome.best_penalized = slot.best_penalized;
  if (slot.found_feasible) {
    outcome.best_feasible = &slot.best_feasible;
    outcome.best_feasible_objective = slot.best_feasible_objective;
  }
  ValidationReport report = validate_outcome(problem, outcome, audit);
  if (slot.best.is_complete()) {
    report.merge(validate_deltas(problem, slot.best, audit));
  }
  std::string context = "shadow validation failed for start ";
  context += std::to_string(index);
  context += " (";
  context += slot.solver;
  context += ")";
  enforce(report, context);
  slot.validated = true;
}

}  // namespace

PortfolioResult Portfolio::run(const PartitionProblem& problem,
                               const Solver& solver,
                               std::int32_t starts) const {
  QBP_CHECK_GE(starts, 0);
  std::vector<const Solver*> list(static_cast<std::size_t>(starts), &solver);
  return run(problem, list);
}

PortfolioResult Portfolio::run(
    const PartitionProblem& problem,
    std::span<const Solver* const> start_solvers) const {
  const Timer timer;
  const auto num_starts = static_cast<std::int32_t>(start_solvers.size());

  PortfolioResult result;
  if (num_starts == 0) {
    result.seconds = timer.seconds();
    return result;
  }

  std::int32_t threads = options_.threads;
  if (threads <= 0) {
    threads = static_cast<std::int32_t>(std::thread::hardware_concurrency());
  }
  threads = std::clamp(threads, 1, num_starts);

  // Nested-parallelism arbitration: when starts carry an inner_threads
  // budget, grow the shared util/parallel pool once up front (instead of
  // every start racing to spawn helpers mid-solve) and let the pool's
  // fair-share tokens split helpers among the starts running concurrently.
  // Scheduling only -- per-start results are bit-identical regardless.
  std::int32_t inner = 1;
  for (const Solver* start_solver : start_solvers) {
    inner = std::max(inner, par::resolve_threads(start_solver->inner_threads()));
  }
  if (inner > 1) {
    const std::int64_t helpers =
        static_cast<std::int64_t>(threads) * inner - 1;
    par::Pool::instance().warm(static_cast<std::int32_t>(
        std::min<std::int64_t>(helpers, par::kMaxHelpers)));
    log::debug("portfolio: ", threads, " start workers x ", inner,
               " inner threads fair-share ", par::fair_share_base(),
               " pool slots");
  }

  const bool cancel_enabled = !std::isnan(options_.cancel_objective);
  const bool validate_on = options_.validate.value_or(validation_enabled());

  std::vector<SolverResult> slots(static_cast<std::size_t>(num_starts));
  std::vector<std::uint8_t> ran(static_cast<std::size_t>(num_starts), 0);
  std::atomic<std::int32_t> next{0};
  std::stop_source cancel;

  // Job-level cancellation: relay the external token (if any) onto the
  // internal cancel source, so one mechanism stops both pending and
  // in-flight starts.  The callback fires immediately if the token already
  // did.
  std::optional<std::stop_callback<std::function<void()>>> relay;
  if (options_.stop.stop_possible()) {
    relay.emplace(options_.stop,
                  std::function<void()>([&cancel] { cancel.request_stop(); }));
  }

  const auto worker = [&] {
    for (;;) {
      const std::int32_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= num_starts) break;
      SolverResult& slot = slots[static_cast<std::size_t>(i)];
      if (cancel.stop_requested()) {
        // Skipped before launch: record the solver it would have run.
        slot.solver = std::string(start_solvers[i]->name());
        slot.cancelled = true;
        continue;
      }
      std::string prefix = "s";
      prefix += std::to_string(i);
      prefix += ' ';
      log::set_thread_prefix(std::move(prefix));
      const StartPoint start = make_start(problem, options_, i);
      // Error containment: an uncaught exception in a jthread worker is
      // std::terminate, so a throwing solve (or a shadow-audit violation in
      // throw mode) must land in the slot, not escape.  The errored start
      // is excluded from selection; the rest of the portfolio proceeds.
      try {
        QBP_PROF_SCOPE("portfolio.start");
        slot = start_solvers[i]->solve(problem, start, cancel.get_token());
        if (validate_on) audit_result(problem, *start_solvers[i], i, slot);
      } catch (const std::exception& e) {
        slot.error = e.what();
        if (slot.solver.empty()) {
          slot.solver = std::string(start_solvers[i]->name());
        }
        log::error("portfolio start ", i, " failed: ", slot.error);
      }
      ran[static_cast<std::size_t>(i)] = 1;
      if (cancel_enabled && slot.error.empty() && slot.found_feasible &&
          slot.best_feasible_objective <= options_.cancel_objective) {
        cancel.request_stop();
      }
    }
    log::set_thread_prefix({});
  };

  {
    // Portfolio starts run whole solver instances and must join before the
    // deterministic selection scan; the shared work pool serves the *inner*
    // parallelism of each start instead.
    std::vector<std::jthread> pool;  // qbp-lint: allow(raw-thread)
    pool.reserve(static_cast<std::size_t>(threads));
    for (std::int32_t t = 0; t < threads; ++t) pool.emplace_back(worker);
  }  // jthreads join here

  // Deterministic selection: first index that beats everything before it
  // under the strict better_result() order, scanning slots in index order.
  for (std::int32_t i = 0; i < num_starts; ++i) {
    const SolverResult& slot = slots[static_cast<std::size_t>(i)];
    if (!ran[static_cast<std::size_t>(i)]) {
      ++result.starts_skipped;
      continue;
    }
    ++result.starts_run;
    if (slot.cancelled) ++result.starts_cancelled;
    if (slot.validated) ++result.starts_validated;
    result.seconds_total += slot.seconds;
    if (!slot.error.empty()) {
      ++result.starts_errored;
      continue;  // never selectable
    }
    if (result.best_start < 0 ||
        better_result(slot, slots[static_cast<std::size_t>(result.best_start)])) {
      result.best_start = i;
    }
  }
  if (result.best_start >= 0) {
    result.best = slots[static_cast<std::size_t>(result.best_start)];
    result.seconds_best_start = result.best.seconds;
  }
  if (options_.keep_start_results) {
    result.starts = std::move(slots);
  }
  result.threads_used = threads;
  result.seconds = timer.seconds();

  log::info("portfolio: ", result.starts_run, "/", num_starts, " starts on ",
            threads, " threads, best start ", result.best_start, ", wall ",
            result.seconds, " s, total work ", result.seconds_total, " s");
  return result;
}

}  // namespace qbp::engine
