// Parallel portfolio / multistart driver over the Solver interface.
//
// The paper's Section 5 observation -- QBP is insensitive to its starting
// solution, so several cheap starts beat one long run -- is exactly the
// property a portfolio exploits: K independent starts (of one solver, or a
// heterogeneous mix) run concurrently on a thread pool and the best outcome
// wins.
//
// Determinism contract (the property the engine tests pin down):
//
//   * start i's StartPoint (initial assignment + RNG seed) is a pure
//     function of (master seed, i), derived through util/rng's fork()
//     sub-stream mechanism -- never of which thread picks the start up;
//   * results land in an index-addressed slot array and the winner is the
//     first slot under the strict better_result() order, so selection is
//     independent of completion order;
//   * therefore: same master seed + same start list => bit-identical chosen
//     assignment for any thread count, as long as early-cancel is disabled.
//
// Early-cancel (`cancel_objective`) trades that guarantee for latency: once
// any completed start is feasible at or below the threshold, in-flight
// starts are cancelled cooperatively and pending ones are skipped.  Which
// starts complete then depends on timing, so enable it only when any
// solution under the threshold is acceptable.
//
// Wall-clock accounting is total, not winner-only: `seconds` is what the
// caller actually waited, `seconds_total` the CPU-time-like sum over all
// starts, `seconds_best_start` the winner's own runtime.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <stop_token>
#include <vector>

#include "engine/solver.hpp"

namespace qbp::engine {

struct PortfolioOptions {
  /// Worker threads; 0 means std::thread::hardware_concurrency() (at least
  /// 1), capped at the number of starts.
  std::int32_t threads = 0;
  /// Master seed; start i's stream is fork(i) of it.
  std::uint64_t seed = 1993;
  /// Early-cancel threshold on the *true* objective of a feasible result;
  /// NaN (default) disables.  See the determinism note above.
  double cancel_objective = std::numeric_limits<double>::quiet_NaN();
  /// Keep every start's SolverResult in PortfolioResult::starts (index
  /// order).  Turn off to save memory on huge fan-outs.
  bool keep_start_results = true;
  /// External job-level cancellation (deadline enforcement, client cancel):
  /// when this token fires, in-flight starts are cancelled cooperatively and
  /// pending ones are skipped, exactly like an early-cancel trigger.  The
  /// default token can never fire and costs nothing.  A run whose token
  /// fires keeps the determinism guarantee only for the starts that already
  /// completed.
  std::stop_token stop{};
  /// Explicit initial assignment for start 0 (the warm-start injection
  /// point): when set and complete for the problem being solved, start 0
  /// begins from this assignment instead of the seed-derived random one;
  /// its RNG seed is still forked from the master seed as usual.  Starts
  /// 1..K-1 are unaffected.  Determinism is preserved: start points stay a
  /// pure function of (master seed, index, injected initial), independent
  /// of thread count.
  std::optional<Assignment> initial;
  /// Shadow-validate every completed start (core/validate.hpp): recompute
  /// feasibility and objectives from scratch and cross-check the delta
  /// machinery, firing a contract violation on mismatch.  nullopt defers to
  /// the process default (qbp::validation_enabled(), i.e. the
  /// QBPART_VALIDATE build option or set_validation_enabled()); the service
  /// layer sets this per job.
  std::optional<bool> validate;
};

struct PortfolioResult {
  /// Winner under better_result(), copied out of `starts`.
  SolverResult best;
  /// Index of the winning start; -1 when no start ran.
  std::int32_t best_start = -1;
  /// Per-start outcomes in index order (empty unless keep_start_results;
  /// skipped starts hold a default SolverResult with cancelled = true).
  std::vector<SolverResult> starts;

  /// Wall clock of the whole portfolio call.
  double seconds = 0.0;
  /// Sum of per-start runtimes (total work, ~CPU time across the pool).
  double seconds_total = 0.0;
  /// The winning start's own runtime.
  double seconds_best_start = 0.0;

  std::int32_t starts_run = 0;        // actually executed
  std::int32_t starts_cancelled = 0;  // executed but saw the stop token fire
  std::int32_t starts_skipped = 0;    // never started (early-cancel)
  std::int32_t starts_errored = 0;    // threw (solve or audit); not selectable
  std::int32_t starts_validated = 0;  // shadow-audited clean
  std::int32_t threads_used = 0;
};

class Portfolio {
 public:
  explicit Portfolio(PortfolioOptions options = {}) : options_(options) {}

  [[nodiscard]] const PortfolioOptions& options() const noexcept {
    return options_;
  }

  /// K starts of one solver.
  [[nodiscard]] PortfolioResult run(const PartitionProblem& problem,
                                    const Solver& solver,
                                    std::int32_t starts) const;

  /// Heterogeneous portfolio: one start per listed solver (entries may
  /// repeat; all pointers must be non-null and outlive the call).
  [[nodiscard]] PortfolioResult run(
      const PartitionProblem& problem,
      std::span<const Solver* const> start_solvers) const;

 private:
  PortfolioOptions options_;
};

}  // namespace qbp::engine
