// The solver-engine layer: one interface every optimizer plugs into.
//
// The library grew four independent heuristics (Burkard QBP, GFM, GKL, SA)
// plus the multilevel V-cycle, each with its own options/result structs.
// Drivers that want to treat them interchangeably -- the parallel portfolio,
// the CLI, the experiment harness -- program against this layer instead:
//
//   * SolverResult is the normalized outcome: the best solution by
//     *penalized* value (always set), the best fully *feasible* incumbent
//     (paper constraints C1 + C2) when one was found, the incumbent history,
//     and wall-clock/iteration accounting;
//   * Solver::solve(problem, start, stop_token) runs one optimization from
//     one StartPoint.  Implementations must be `const` (no mutable state
//     across calls) so a single Solver instance can serve many concurrent
//     portfolio starts;
//   * cancellation is cooperative via std::stop_token: implementations poll
//     it at iteration granularity and return their best-so-far when it
//     fires (result.cancelled = true).
//
// Adapters for the concrete optimizers live in engine/adapters.hpp; the
// parallel multistart/portfolio driver in engine/portfolio.hpp.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <stop_token>
#include <string>
#include <string_view>
#include <vector>

#include "core/embedding.hpp"
#include "core/problem.hpp"

namespace qbp::engine {

/// One start of a (multistart) run: the initial assignment plus the RNG
/// stream seed a stochastic solver should use.  Portfolio derives both
/// deterministically from the master seed and the start index, so a start's
/// outcome never depends on which thread runs it.
struct StartPoint {
  Assignment assignment;
  std::uint64_t seed = 0;
};

/// Normalized solver outcome (the common denominator of BurkardResult,
/// GfmResult, GklResult, SaResult and MultilevelResult).
struct SolverResult {
  /// Name of the producing solver (adapter-provided, e.g. "qbp", "sa").
  std::string solver;

  /// Best solution by penalized value y^T Qhat y; always set.  For
  /// feasible-region solvers (GFM/GKL/SA) this equals best_feasible and the
  /// penalized value equals the true objective (no violations).
  Assignment best;
  double best_penalized = std::numeric_limits<double>::infinity();

  /// Best fully feasible solution (C1 and C2) and its *true* objective;
  /// only meaningful when found_feasible.
  Assignment best_feasible;
  double best_feasible_objective = 0.0;
  bool found_feasible = false;

  /// Incumbent trajectory where the underlying solver records one.
  std::vector<double> history;

  /// Solver-specific progress unit (Burkard iterations, SA temperature
  /// steps, FM/KL passes).
  std::int64_t iterations = 0;
  double seconds = 0.0;
  /// The stop token fired while this run was in flight.
  bool cancelled = false;

  /// Non-empty when the solve (or its shadow audit, under throw mode)
  /// failed with an exception: carries the what() text.  Errored results
  /// are excluded from portfolio selection and counted in starts_errored.
  std::string error;
  /// The shadow validator (core/validate.hpp) audited this result and found
  /// no issue.  A failed audit lands in `error` (throw mode) or is logged
  /// and counted (log-and-count mode) instead.
  bool validated = false;
};

/// Strict "is `a` a better outcome than `b`" -- the selection rule every
/// driver shares: a feasible result beats any infeasible one; feasible
/// results compare by true objective; infeasible ones by penalized value.
/// Strictness (ties are not "better") makes first-wins scans deterministic.
[[nodiscard]] inline bool better_result(const SolverResult& a,
                                        const SolverResult& b) {
  if (a.found_feasible != b.found_feasible) return a.found_feasible;
  if (a.found_feasible) {
    return a.best_feasible_objective < b.best_feasible_objective;
  }
  return a.best_penalized < b.best_penalized;
}

class Solver {
 public:
  virtual ~Solver() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Run one optimization from `start`.  `start.assignment` must be
  /// complete (C3); it need not be feasible -- solvers that require a
  /// feasible start legalize it first (deterministically in `start.seed`).
  /// Implementations poll `stop` at iteration granularity.
  [[nodiscard]] virtual SolverResult solve(const PartitionProblem& problem,
                                           const StartPoint& start,
                                           std::stop_token stop) const = 0;

  /// Convenience overload: run to completion.
  [[nodiscard]] SolverResult solve(const PartitionProblem& problem,
                                   const StartPoint& start) const {
    return solve(problem, start, std::stop_token());
  }

  /// The penalty this solver's best_penalized values are measured in
  /// (y^T Qhat y with this embedded timing-violation cost).  The shadow
  /// validator recomputes penalized values with the same constant, so
  /// adapters with a configurable penalty must override.
  [[nodiscard]] virtual double penalized_with() const { return kPaperPenalty; }

  /// The intra-solve thread budget one solve() call may use on the shared
  /// util/parallel pool (the `inner_threads` knob; <= 0 means "all
  /// hardware").  The portfolio reads it to size and fair-share the pool
  /// across concurrent starts.  Purely a scheduling hint: results are
  /// bit-identical at every value.
  [[nodiscard]] virtual std::int32_t inner_threads() const { return 1; }
};

/// Build a solver by name: "qbp", "multilevel", "gfm", "gkl", "sa".
/// Returns nullptr for unknown names.  Defined in adapters.cpp.
[[nodiscard]] std::unique_ptr<Solver> make_solver(std::string_view name);

}  // namespace qbp::engine
