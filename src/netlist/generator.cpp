#include "netlist/generator.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.hpp"

namespace qbp {

namespace {

/// Manhattan distance between two slots on a row-major grid.
std::int32_t slot_distance(std::int32_t a, std::int32_t b,
                           std::int32_t grid_width) {
  const std::int32_t ax = a % grid_width;
  const std::int32_t ay = a / grid_width;
  const std::int32_t bx = b % grid_width;
  const std::int32_t by = b / grid_width;
  return std::abs(ax - bx) + std::abs(ay - by);
}

/// Longest-processing-time style balanced placement: biggest components
/// first, each into the currently least-loaded slot.  Guarantees the hidden
/// placement is close to size-balanced, so capacities derived from it leave
/// genuine slack.
std::vector<std::int32_t> balanced_hidden_placement(
    const std::vector<double>& sizes, std::int32_t num_slots, Rng& rng) {
  const auto n = static_cast<std::int32_t>(sizes.size());
  std::vector<std::int32_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(std::span<std::int32_t>(order));  // random tie-breaking
  std::stable_sort(order.begin(), order.end(),
                   [&](std::int32_t a, std::int32_t b) {
                     return sizes[static_cast<std::size_t>(a)] >
                            sizes[static_cast<std::size_t>(b)];
                   });
  std::vector<double> load(static_cast<std::size_t>(num_slots), 0.0);
  std::vector<std::int32_t> slot_of(static_cast<std::size_t>(n), 0);
  for (const std::int32_t j : order) {
    const auto lightest =
        std::min_element(load.begin(), load.end()) - load.begin();
    slot_of[static_cast<std::size_t>(j)] = static_cast<std::int32_t>(lightest);
    load[static_cast<std::size_t>(lightest)] += sizes[static_cast<std::size_t>(j)];
  }
  return slot_of;
}

}  // namespace

GeneratedNetlist generate_netlist(const RandomNetlistSpec& spec) {
  QBP_CHECK_GE(spec.num_components, 2);
  QBP_CHECK(spec.num_slots >= 1 && spec.grid_width >= 1)
      << "generator needs at least one slot and a positive grid width";
  QBP_CHECK_GE(spec.total_wires, spec.num_components - 1)
      << "too few wires to connect every component";

  Rng rng(spec.seed);
  Rng size_rng = rng.fork(1);
  Rng place_rng = rng.fork(2);
  Rng wire_rng = rng.fork(3);

  GeneratedNetlist result;
  result.spec = spec;
  result.netlist.set_name(spec.name);

  // --- component sizes: clamped log-normal, ~2 orders of magnitude spread.
  const double lo = spec.size_median / spec.size_span;
  const double hi = spec.size_median * spec.size_span;
  std::vector<double> sizes;
  sizes.reserve(static_cast<std::size_t>(spec.num_components));
  for (std::int32_t j = 0; j < spec.num_components; ++j) {
    const double raw =
        size_rng.next_log_normal(std::log(spec.size_median), spec.size_sigma);
    sizes.push_back(std::clamp(raw, lo, hi));
  }
  for (std::int32_t j = 0; j < spec.num_components; ++j) {
    result.netlist.add_component("u" + std::to_string(j),
                                 sizes[static_cast<std::size_t>(j)]);
  }

  // --- hidden placement (size-balanced over the slot grid).
  result.hidden_slot =
      balanced_hidden_placement(sizes, spec.num_slots, place_rng);

  // Components grouped by hidden slot, and for every slot the list of
  // components in slots at Manhattan distance <= 1 ("nearby pool").
  std::vector<std::vector<std::int32_t>> slot_members(
      static_cast<std::size_t>(spec.num_slots));
  for (std::int32_t j = 0; j < spec.num_components; ++j) {
    slot_members[static_cast<std::size_t>(
                     result.hidden_slot[static_cast<std::size_t>(j)])]
        .push_back(j);
  }
  std::vector<std::vector<std::int32_t>> nearby_pool(
      static_cast<std::size_t>(spec.num_slots));
  for (std::int32_t s = 0; s < spec.num_slots; ++s) {
    for (std::int32_t t = 0; t < spec.num_slots; ++t) {
      if (slot_distance(s, t, spec.grid_width) <= 1) {
        const auto& members = slot_members[static_cast<std::size_t>(t)];
        nearby_pool[static_cast<std::size_t>(s)].insert(
            nearby_pool[static_cast<std::size_t>(s)].end(), members.begin(),
            members.end());
      }
    }
  }

  const auto pick_partner = [&](std::int32_t a) -> std::int32_t {
    const std::int32_t slot_a =
        result.hidden_slot[static_cast<std::size_t>(a)];
    const auto& pool = nearby_pool[static_cast<std::size_t>(slot_a)];
    for (int attempt = 0; attempt < 16; ++attempt) {
      std::int32_t b;
      if (wire_rng.next_bool(spec.locality) && pool.size() > 1) {
        b = pool[wire_rng.pick_index(pool)];
      } else {
        b = static_cast<std::int32_t>(wire_rng.next_below(
            static_cast<std::uint64_t>(spec.num_components)));
      }
      if (b != a) return b;
    }
    // Degenerate pools: deterministic fallback.
    return (a + 1) % spec.num_components;
  };

  // --- wires.  First a random spanning tree so no component is isolated,
  // then the remaining budget as locality-biased random pairs.
  std::int64_t remaining = spec.total_wires;
  std::vector<std::int32_t> tree_order(
      static_cast<std::size_t>(spec.num_components));
  std::iota(tree_order.begin(), tree_order.end(), 0);
  wire_rng.shuffle(std::span<std::int32_t>(tree_order));
  for (std::int32_t k = 1; k < spec.num_components; ++k) {
    // Attach to a random earlier node, preferring a nearby one.
    std::int32_t parent = tree_order[static_cast<std::size_t>(
        wire_rng.next_below(static_cast<std::uint64_t>(k)))];
    const std::int32_t child = tree_order[static_cast<std::size_t>(k)];
    if (wire_rng.next_bool(spec.locality)) {
      // Scan a few earlier nodes for one in a nearby slot.
      for (int attempt = 0; attempt < 8; ++attempt) {
        const std::int32_t candidate = tree_order[static_cast<std::size_t>(
            wire_rng.next_below(static_cast<std::uint64_t>(k)))];
        if (slot_distance(
                result.hidden_slot[static_cast<std::size_t>(candidate)],
                result.hidden_slot[static_cast<std::size_t>(child)],
                spec.grid_width) <= 1) {
          parent = candidate;
          break;
        }
      }
    }
    result.netlist.add_wires(parent, child, 1);
    --remaining;
  }

  while (remaining > 0) {
    const std::int32_t a = static_cast<std::int32_t>(wire_rng.next_below(
        static_cast<std::uint64_t>(spec.num_components)));
    const std::int32_t b = pick_partner(a);
    result.netlist.add_wires(a, b, 1);
    --remaining;
  }

  result.netlist.finalize();
  QBP_CHECK_EQ(result.netlist.total_wires(), spec.total_wires);
  return result;
}

}  // namespace qbp
