// Synthetic netlist generator.
//
// The paper evaluates on 7 proprietary industrial circuits (ckta..cktg,
// Table I) whose raw data is not available.  This generator produces
// MCNC-style synthetic circuits matched to the published statistics:
//   - component count N and total wire count (sum of multiplicities),
//   - component sizes spanning about two orders of magnitude ("different
//     sizes ranging about 2 orders of magnitude in the same circuit"),
//   - sparse, locality-biased connectivity.
//
// Locality is produced with a *hidden placement*: every component is
// assigned to one of `num_slots` slots arranged on a grid, wires prefer
// endpoints whose slots are close, and the hidden placement is returned to
// the caller.  Downstream, workload::make_circuit uses the hidden placement
// to (a) size partition capacities so a feasible solution exists by
// construction and (b) derive timing constraints that the hidden placement
// satisfies -- mirroring how the paper's constraints are "driven by system
// cycle time" on circuits that do fit their target module.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "util/rng.hpp"

namespace qbp {

struct RandomNetlistSpec {
  std::string name = "random";
  std::int32_t num_components = 100;
  /// Target total wire count (sum of bundle multiplicities); the generator
  /// hits this exactly.  Must be >= num_components - 1 (a spanning tree is
  /// laid first so no component is isolated).
  std::int64_t total_wires = 500;
  /// Hidden placement slots; normally equals the number of partitions the
  /// circuit will later be partitioned into.
  std::int32_t num_slots = 16;
  /// Grid width for the slot array (slots are laid row-major); 4 x 4 for the
  /// paper's 16-partition experiments.
  std::int32_t grid_width = 4;
  /// Probability that a wire is "local": its second endpoint is drawn from
  /// slots at Manhattan distance <= 1 of the first endpoint's slot.
  double locality = 0.65;
  /// Component size distribution: log-normal(log(size_median), size_sigma),
  /// clamped to [size_median / size_span, size_median * size_span].
  double size_median = 2.5;
  double size_sigma = 0.85;
  double size_span = 10.0;  // => max/min ratio ~ size_span^2 = 100x
  std::uint64_t seed = 1;
};

struct GeneratedNetlist {
  Netlist netlist;
  /// Hidden slot of each component (size N, values in [0, num_slots)).
  std::vector<std::int32_t> hidden_slot;
  RandomNetlistSpec spec;
};

/// Generate a netlist; deterministic in `spec.seed`.
[[nodiscard]] GeneratedNetlist generate_netlist(const RandomNetlistSpec& spec);

}  // namespace qbp
