#include "netlist/io.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/strings.hpp"

namespace qbp {

namespace {
ParseResult fail(int line_number, std::string_view what) {
  std::ostringstream out;
  out << "line " << line_number << ": " << what;
  return {false, out.str()};
}
}  // namespace

ParseResult read_netlist(std::istream& in, Netlist& out) {
  out = Netlist{};
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    std::string_view text = line;
    if (const auto hash = text.find('#'); hash != std::string_view::npos) {
      text = text.substr(0, hash);
    }
    const auto fields = split_whitespace(text);
    if (fields.empty()) continue;

    const std::string_view keyword = fields[0];
    if (keyword == "circuit") {
      if (fields.size() != 2) return fail(line_number, "expected: circuit <name>");
      out.set_name(std::string(fields[1]));
    } else if (keyword == "component") {
      if (fields.size() != 3) {
        return fail(line_number, "expected: component <name> <size>");
      }
      double size = 0.0;
      if (!parse_double(fields[2], size) || !(size > 0.0)) {
        return fail(line_number, "component size must be a positive number");
      }
      out.add_component(std::string(fields[1]), size);
    } else if (keyword == "wire") {
      if (fields.size() != 4) {
        return fail(line_number, "expected: wire <a> <b> <multiplicity>");
      }
      long long a = 0;
      long long b = 0;
      long long mult = 0;
      if (!parse_int(fields[1], a) || !parse_int(fields[2], b) ||
          !parse_int(fields[3], mult)) {
        return fail(line_number, "wire fields must be integers");
      }
      if (a < 0 || a >= out.num_components() || b < 0 ||
          b >= out.num_components()) {
        return fail(line_number, "wire endpoint out of range");
      }
      if (a == b) return fail(line_number, "wire endpoints must differ");
      if (mult <= 0) return fail(line_number, "wire multiplicity must be positive");
      out.add_wires(static_cast<ComponentId>(a), static_cast<ComponentId>(b),
                    static_cast<std::int32_t>(mult));
    } else {
      return fail(line_number, "unknown keyword '" + std::string(keyword) + "'");
    }
  }
  return {};
}

ParseResult read_netlist_file(const std::string& path, Netlist& out) {
  std::ifstream in(path);
  if (!in) return {false, "cannot open '" + path + "' for reading"};
  return read_netlist(in, out);
}

void write_netlist(std::ostream& out, const Netlist& netlist) {
  const_cast<Netlist&>(netlist).finalize();
  out << "# qbpart netlist\n";
  out << "circuit " << (netlist.name().empty() ? "unnamed" : netlist.name())
      << "\n";
  for (const auto& component : netlist.components()) {
    out << "component " << component.name << " "
        << format_double(component.size, 6) << "\n";
  }
  for (const auto& bundle : netlist.bundles()) {
    out << "wire " << bundle.a << " " << bundle.b << " " << bundle.multiplicity
        << "\n";
  }
}

bool write_netlist_file(const std::string& path, const Netlist& netlist) {
  std::ofstream out(path);
  if (!out) return false;
  write_netlist(out, netlist);
  return static_cast<bool>(out);
}

}  // namespace qbp
