// Plain-text netlist format (".qn").
//
// Grammar (line oriented, '#' starts a comment):
//   circuit <name>
//   component <name> <size>
//   wire <component_index_a> <component_index_b> <multiplicity>
//
// Component indices refer to the order of `component` lines (0-based).  The
// format is deliberately minimal -- it exists so generated circuits can be
// persisted, diffed, and fed to the example binaries, not to compete with
// EDIF/Bookshelf.
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/netlist.hpp"

namespace qbp {

/// Result of a parse; on failure `ok` is false and `message` holds a
/// line-numbered diagnostic.
struct ParseResult {
  bool ok = true;
  std::string message;
};

/// Parse a netlist from a stream; on failure `out` is left unspecified.
[[nodiscard]] ParseResult read_netlist(std::istream& in, Netlist& out);

/// Parse from a file path.
[[nodiscard]] ParseResult read_netlist_file(const std::string& path, Netlist& out);

/// Serialize in canonical form (finalized bundles, sorted).
void write_netlist(std::ostream& out, const Netlist& netlist);

/// Write to a file path; returns false if the file cannot be opened.
[[nodiscard]] bool write_netlist_file(const std::string& path, const Netlist& netlist);

}  // namespace qbp
