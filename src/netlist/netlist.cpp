#include "netlist/netlist.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <utility>

#include "util/check.hpp"

namespace qbp {

ComponentId Netlist::add_component(std::string component_name, double size) {
  components_.push_back({std::move(component_name), size});
  sizes_.push_back(size);
  return static_cast<ComponentId>(components_.size() - 1);
}

Netlist Netlist::from_sorted_parts(std::string name,
                                   std::vector<Component> components,
                                   std::vector<WireBundle> bundles) {
  Netlist netlist{std::move(name)};
  netlist.components_ = std::move(components);
  netlist.sizes_.reserve(netlist.components_.size());
  for (const Component& component : netlist.components_) {
    netlist.sizes_.push_back(component.size);
  }

  // Multiplicities are checked here; ordering and endpoint ranges are
  // checked by from_symmetric_pairs below on the same arrays.
  std::vector<std::int32_t> a(bundles.size());
  std::vector<std::int32_t> b(bundles.size());
  std::vector<std::int32_t> multiplicity(bundles.size());
  for (std::size_t k = 0; k < bundles.size(); ++k) {
    QBP_CHECK_GT(bundles[k].multiplicity, 0)
        << "wire multiplicity must be positive";
    a[k] = bundles[k].a;
    b[k] = bundles[k].b;
    multiplicity[k] = bundles[k].multiplicity;
  }
  netlist.adjacency_ = Csr<std::int32_t>::from_symmetric_pairs(
      netlist.num_components(), a, b, multiplicity);
  netlist.bundles_ = std::move(bundles);
  netlist.bundles_dirty_ = false;
  netlist.adjacency_dirty_ = false;
  return netlist;
}

void Netlist::add_wires(ComponentId a, ComponentId b, std::int32_t multiplicity) {
  // Always-on: this is a boundary the parsers (problem_io, netlist/io) feed
  // from untrusted bytes.  Under the server's throw mode a violation fails
  // the one job instead of aborting the daemon.
  QBP_CHECK_NE(a, b) << "self-loop wires are not allowed";
  QBP_CHECK_GT(multiplicity, 0) << "wire multiplicity must be positive";
  if (a > b) std::swap(a, b);
  bundles_.push_back({a, b, multiplicity});
  bundles_dirty_ = true;
  adjacency_dirty_ = true;
}

double Netlist::total_size() const noexcept {
  double total = 0.0;
  for (const auto& c : components_) total += c.size;
  return total;
}

std::int64_t Netlist::total_wires() const noexcept {
  std::int64_t total = 0;
  for (const auto& bundle : bundles_) total += bundle.multiplicity;
  return total;
}

std::int64_t Netlist::num_connected_pairs() const {
  const_cast<Netlist*>(this)->finalize();
  return static_cast<std::int64_t>(bundles_.size());
}

void Netlist::finalize() {
  if (!bundles_dirty_) return;
  std::sort(bundles_.begin(), bundles_.end(),
            [](const WireBundle& x, const WireBundle& y) {
              return x.a != y.a ? x.a < y.a : x.b < y.b;
            });
  std::size_t out = 0;
  for (std::size_t k = 0; k < bundles_.size(); ++k) {
    if (out > 0 && bundles_[out - 1].a == bundles_[k].a &&
        bundles_[out - 1].b == bundles_[k].b) {
      bundles_[out - 1].multiplicity += bundles_[k].multiplicity;
    } else {
      bundles_[out++] = bundles_[k];
    }
  }
  bundles_.resize(out);
  bundles_dirty_ = false;
}

const Csr<std::int32_t>& Netlist::connection_matrix() const {
  if (adjacency_dirty_) {
    const_cast<Netlist*>(this)->finalize();
    std::vector<Triplet<std::int32_t>> triplets;
    triplets.reserve(2 * bundles_.size());
    for (const auto& bundle : bundles_) {
      triplets.push_back({bundle.a, bundle.b, bundle.multiplicity});
      triplets.push_back({bundle.b, bundle.a, bundle.multiplicity});
    }
    adjacency_ = Csr<std::int32_t>::from_triplets(num_components(),
                                                  num_components(),
                                                  std::move(triplets));
    adjacency_dirty_ = false;
  }
  return adjacency_;
}

std::int32_t Netlist::degree(ComponentId id) const {
  return static_cast<std::int32_t>(connection_matrix().row_indices(id).size());
}

std::string Netlist::validate() const {
  const auto n = num_components();
  for (std::int32_t j = 0; j < n; ++j) {
    if (!(components_[static_cast<std::size_t>(j)].size > 0.0)) {
      std::ostringstream out;
      out << "component " << j << " ('"
          << components_[static_cast<std::size_t>(j)].name
          << "') has non-positive size "
          << components_[static_cast<std::size_t>(j)].size;
      return out.str();
    }
  }
  for (const auto& bundle : bundles_) {
    if (bundle.a < 0 || bundle.a >= n || bundle.b < 0 || bundle.b >= n) {
      std::ostringstream out;
      out << "wire bundle (" << bundle.a << ", " << bundle.b
          << ") references a component outside [0, " << n << ")";
      return out.str();
    }
    if (bundle.a == bundle.b) {
      std::ostringstream out;
      out << "wire bundle on component " << bundle.a << " is a self-loop";
      return out.str();
    }
    if (bundle.multiplicity <= 0) {
      std::ostringstream out;
      out << "wire bundle (" << bundle.a << ", " << bundle.b
          << ") has non-positive multiplicity " << bundle.multiplicity;
      return out.str();
    }
  }
  return {};
}

}  // namespace qbp
