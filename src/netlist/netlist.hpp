// Circuit netlist: components with silicon-area sizes, connected by wire
// bundles.
//
// The paper's input "I. Descriptions of the Circuit" maps onto this type:
//   - J, the set of N components, with sizes s_j           -> components()
//   - A, the N x N interconnection matrix a_{j1 j2}        -> connection_matrix()
// Wires are physically undirected; a bundle between (a, b) with multiplicity
// w contributes a_{ab} = a_{ba} = w, matching the symmetric A of the paper's
// Section 3.3 example ("five wires connecting a and b" => A[a][b] =
// A[b][a] = 5).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sparse/csr.hpp"

namespace qbp {

using ComponentId = std::int32_t;

struct Component {
  std::string name;
  /// Silicon area demand (the paper's s_j); arbitrary positive real.
  double size = 1.0;
};

/// A bundle of `multiplicity` parallel wires between two distinct components.
struct WireBundle {
  ComponentId a = 0;
  ComponentId b = 0;
  std::int32_t multiplicity = 1;

  friend bool operator==(const WireBundle&, const WireBundle&) = default;
};

class Netlist {
 public:
  Netlist() = default;
  explicit Netlist(std::string name) : name_(std::move(name)) {}

  /// Bulk construction from pre-normalized parts.  `bundles` must already
  /// be in finalize() order: strictly ascending by (a, b), each a < b and
  /// in range, positive multiplicities -- verified in one linear pass
  /// (QBP_CHECK; the parts arrive from possibly hostile wire frames).
  /// Skips the per-element add_wires() replay, the finalize() sort and the
  /// from_triplets sort: the symmetric connection matrix is built directly
  /// in O(N + W), and the result is value-identical to the incremental
  /// path.  This is the wire decoder's fast path for frames whose bundle
  /// list is in canonical (re-encoded) order.
  [[nodiscard]] static Netlist from_sorted_parts(
      std::string name, std::vector<Component> components,
      std::vector<WireBundle> bundles);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Append a component; returns its id (dense, 0-based).
  ComponentId add_component(std::string component_name, double size);

  /// Add `multiplicity` wires between distinct components a and b.
  /// Repeated calls for the same pair accumulate.
  void add_wires(ComponentId a, ComponentId b, std::int32_t multiplicity = 1);

  [[nodiscard]] std::int32_t num_components() const noexcept {
    return static_cast<std::int32_t>(components_.size());
  }

  [[nodiscard]] const Component& component(ComponentId id) const noexcept {
    return components_[static_cast<std::size_t>(id)];
  }

  [[nodiscard]] const std::vector<Component>& components() const noexcept {
    return components_;
  }

  [[nodiscard]] double component_size(ComponentId id) const noexcept {
    return components_[static_cast<std::size_t>(id)].size;
  }

  /// All component sizes as a dense vector (the paper's s vector).  The
  /// reference stays valid until the next add_component(); it is maintained
  /// eagerly so concurrent readers of a finalized netlist never race on a
  /// lazy build.  Returning a reference (not a fresh vector) keeps spans
  /// taken over it valid -- binding a span to a by-value accessor's
  /// temporary is the bug class qbp_lint's `dangling-span` rule exists for.
  [[nodiscard]] const std::vector<double>& sizes() const noexcept {
    return sizes_;
  }

  /// Sum of all component sizes.
  [[nodiscard]] double total_size() const noexcept;

  /// Raw bundles as added (duplicates possible until finalize()).
  [[nodiscard]] const std::vector<WireBundle>& bundles() const noexcept {
    return bundles_;
  }

  /// Total wire count Sum of multiplicities over unordered pairs -- the
  /// "# of wires" column of the paper's Table I.
  [[nodiscard]] std::int64_t total_wires() const noexcept;

  /// Number of distinct connected unordered pairs.
  [[nodiscard]] std::int64_t num_connected_pairs() const;

  /// Merge duplicate bundles and sort them; idempotent.  connection_matrix()
  /// and neighbor queries call this lazily, but callers mutating a shared
  /// netlist may want to invoke it explicitly.
  void finalize();

  /// The symmetric interconnection matrix A (CSR, both directions stored).
  /// Built lazily and cached; invalidated by add_wires().  The lazy build
  /// is NOT thread-safe: build it once (PartitionProblem's constructor
  /// does) before sharing the netlist across reader threads.
  [[nodiscard]] const Csr<std::int32_t>& connection_matrix() const;

  /// Degree (number of distinct neighbors) of a component.
  [[nodiscard]] std::int32_t degree(ComponentId id) const;

  /// Basic structural validation: ids in range, no self-loops,
  /// positive sizes and multiplicities.  Returns an empty string when valid,
  /// else a human-readable description of the first problem found.
  [[nodiscard]] std::string validate() const;

 private:
  std::string name_;
  std::vector<Component> components_;
  std::vector<double> sizes_;  // mirrors components_[i].size
  mutable std::vector<WireBundle> bundles_;
  mutable bool bundles_dirty_ = false;
  mutable bool adjacency_dirty_ = true;
  mutable Csr<std::int32_t> adjacency_;
};

}  // namespace qbp
