#include "netlist/nets.hpp"

#include <algorithm>
#include <sstream>

namespace qbp {

std::string HyperNetlist::validate() const {
  for (std::size_t k = 0; k < components_.size(); ++k) {
    if (!(components_[k].size > 0.0)) {
      std::ostringstream out;
      out << "component " << k << " has non-positive size";
      return out.str();
    }
  }
  for (std::size_t k = 0; k < nets_.size(); ++k) {
    const Net& net = nets_[k];
    if (net.pins.size() < 2) {
      std::ostringstream out;
      out << "net " << k << " ('" << net.name << "') has fewer than 2 pins";
      return out.str();
    }
    if (net.weight <= 0) {
      std::ostringstream out;
      out << "net " << k << " has non-positive weight";
      return out.str();
    }
    std::vector<ComponentId> sorted = net.pins;
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
      std::ostringstream out;
      out << "net " << k << " lists a component twice";
      return out.str();
    }
    if (sorted.front() < 0 || sorted.back() >= num_components()) {
      std::ostringstream out;
      out << "net " << k << " references a component out of range";
      return out.str();
    }
  }
  return {};
}

Netlist HyperNetlist::expand(NetExpansion model) const {
  Netlist flat(name_);
  for (const Component& component : components_) {
    flat.add_component(component.name, component.size);
  }
  for (const Net& net : nets_) {
    switch (model) {
      case NetExpansion::kClique:
        for (std::size_t a = 0; a < net.pins.size(); ++a) {
          for (std::size_t b = a + 1; b < net.pins.size(); ++b) {
            flat.add_wires(net.pins[a], net.pins[b], net.weight);
          }
        }
        break;
      case NetExpansion::kStar:
        for (std::size_t b = 1; b < net.pins.size(); ++b) {
          flat.add_wires(net.pins.front(), net.pins[b], net.weight);
        }
        break;
    }
  }
  flat.finalize();
  return flat;
}

std::int64_t HyperNetlist::total_pins() const noexcept {
  std::int64_t pins = 0;
  for (const Net& net : nets_) pins += static_cast<std::int64_t>(net.pins.size());
  return pins;
}

std::int64_t expanded_pair_count(const Net& net, NetExpansion model) {
  const auto k = static_cast<std::int64_t>(net.pins.size());
  switch (model) {
    case NetExpansion::kClique: return k * (k - 1) / 2;
    case NetExpansion::kStar: return k - 1;
  }
  return 0;
}

}  // namespace qbp
