// Multi-pin net support (extension beyond the paper).
//
// The paper's A matrix models point-to-point wire counts; real netlists
// contain multi-pin nets.  This module expands hyperedges into the wire
// bundles the rest of the library consumes, with the two standard models:
//
//   kClique -- every pin pair gets `weight` wires.  Exact for 2-pin nets,
//              overcounts the wiring of large nets (k(k-1)/2 pairs), but
//              keeps the quadratic form faithful to "every pair apart
//              costs".
//   kStar   -- the first pin (the driver) connects to every sink with
//              `weight` wires: k-1 pairs, the usual linear-size
//              approximation.
//
// Expansion happens before problem construction, so the QBP formulation,
// baselines and cost models are untouched.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace qbp {

struct Net {
  std::string name;
  std::vector<ComponentId> pins;  // >= 2 distinct components
  std::int32_t weight = 1;        // wires contributed per expanded pair
};

enum class NetExpansion { kClique, kStar };

/// A netlist-with-hyperedges front end; `expand()` produces the flat
/// Netlist used everywhere else.
class HyperNetlist {
 public:
  HyperNetlist() = default;
  explicit HyperNetlist(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  ComponentId add_component(std::string component_name, double size) {
    components_.push_back({std::move(component_name), size});
    return static_cast<ComponentId>(components_.size() - 1);
  }

  /// Add a net over >= 2 distinct pins; duplicate pins are rejected by
  /// validate().  Returns the net index.
  std::int32_t add_net(std::string net_name, std::vector<ComponentId> pins,
                       std::int32_t weight = 1) {
    nets_.push_back({std::move(net_name), std::move(pins), weight});
    return static_cast<std::int32_t>(nets_.size() - 1);
  }

  [[nodiscard]] std::int32_t num_components() const noexcept {
    return static_cast<std::int32_t>(components_.size());
  }
  [[nodiscard]] const std::vector<Net>& nets() const noexcept { return nets_; }
  [[nodiscard]] const std::vector<Component>& components() const noexcept {
    return components_;
  }

  /// Structural validation; empty string when consistent.
  [[nodiscard]] std::string validate() const;

  /// Flatten to a pairwise netlist under the chosen expansion model.
  [[nodiscard]] Netlist expand(NetExpansion model) const;

  /// Total pins over all nets (a common netlist size metric).
  [[nodiscard]] std::int64_t total_pins() const noexcept;

 private:
  std::string name_;
  std::vector<Component> components_;
  std::vector<Net> nets_;
};

/// Number of wire-bundle pairs `net` expands to under `model`.
[[nodiscard]] std::int64_t expanded_pair_count(const Net& net, NetExpansion model);

}  // namespace qbp
