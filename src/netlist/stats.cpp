#include "netlist/stats.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

#include "util/strings.hpp"

namespace qbp {

NetlistStats compute_stats(const Netlist& netlist) {
  NetlistStats stats;
  stats.name = netlist.name();
  stats.num_components = netlist.num_components();
  stats.num_connected_pairs = netlist.num_connected_pairs();
  stats.total_wires = netlist.total_wires();
  stats.total_size = netlist.total_size();

  stats.min_size = std::numeric_limits<double>::infinity();
  stats.max_size = 0.0;
  for (const auto& component : netlist.components()) {
    stats.min_size = std::min(stats.min_size, component.size);
    stats.max_size = std::max(stats.max_size, component.size);
  }
  if (stats.num_components == 0) stats.min_size = 0.0;
  stats.size_ratio = stats.min_size > 0.0 ? stats.max_size / stats.min_size : 0.0;

  std::int64_t degree_sum = 0;
  for (ComponentId j = 0; j < stats.num_components; ++j) {
    const std::int32_t deg = netlist.degree(j);
    degree_sum += deg;
    stats.max_degree = std::max(stats.max_degree, deg);
    if (deg == 0) ++stats.isolated_components;
  }
  stats.avg_degree = stats.num_components > 0
                         ? static_cast<double>(degree_sum) / stats.num_components
                         : 0.0;
  return stats;
}

std::string to_string(const NetlistStats& stats) {
  std::ostringstream out;
  out << stats.name << ": N=" << stats.num_components
      << " pairs=" << stats.num_connected_pairs << " wires=" << stats.total_wires
      << " size[" << format_double(stats.min_size, 2) << ", "
      << format_double(stats.max_size, 2) << "]"
      << " (ratio " << format_double(stats.size_ratio, 1) << ")"
      << " avg_deg=" << format_double(stats.avg_degree, 2)
      << " max_deg=" << stats.max_degree;
  return out.str();
}

}  // namespace qbp
