// Summary statistics of a netlist, used by bench_table1 to print the
// analogue of the paper's Table I and by tests to pin the generator's
// output to its targets.
#pragma once

#include <cstdint>
#include <string>

#include "netlist/netlist.hpp"

namespace qbp {

struct NetlistStats {
  std::string name;
  std::int32_t num_components = 0;
  std::int64_t num_connected_pairs = 0;  // distinct unordered pairs
  std::int64_t total_wires = 0;          // sum of bundle multiplicities
  double total_size = 0.0;
  double min_size = 0.0;
  double max_size = 0.0;
  /// max_size / min_size: the paper notes sizes "ranging about 2 orders of
  /// magnitude in the same circuit".
  double size_ratio = 0.0;
  double avg_degree = 0.0;
  std::int32_t max_degree = 0;
  std::int32_t isolated_components = 0;  // components with no wires
};

[[nodiscard]] NetlistStats compute_stats(const Netlist& netlist);

/// One-line human-readable rendering.
[[nodiscard]] std::string to_string(const NetlistStats& stats);

}  // namespace qbp
