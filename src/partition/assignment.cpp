#include "partition/assignment.hpp"

#include <sstream>

#include "util/strings.hpp"

#include "util/check.hpp"

namespace qbp {

bool Assignment::is_complete() const noexcept {
  for (const PartitionId p : partition_of_) {
    if (p == kUnassigned) return false;
  }
  return true;
}

std::vector<std::int32_t> Assignment::members_of(PartitionId partition) const {
  std::vector<std::int32_t> members;
  for (std::int32_t j = 0; j < num_components(); ++j) {
    if (partition_of_[static_cast<std::size_t>(j)] == partition) {
      members.push_back(j);
    }
  }
  return members;
}

CapacityLedger::CapacityLedger(const Assignment& assignment,
                               std::span<const double> sizes,
                               std::span<const double> capacities)
    : usage_(capacities.size(), 0.0),
      capacity_(capacities.begin(), capacities.end()) {
  QBP_CHECK_EQ(static_cast<std::size_t>(assignment.num_components()),
               sizes.size());
  for (std::int32_t j = 0; j < assignment.num_components(); ++j) {
    const PartitionId p = assignment[j];
    if (p != Assignment::kUnassigned) {
      usage_[static_cast<std::size_t>(p)] += sizes[static_cast<std::size_t>(j)];
    }
  }
}

std::int32_t CapacityLedger::violations() const noexcept {
  std::int32_t count = 0;
  for (std::size_t i = 0; i < usage_.size(); ++i) {
    if (usage_[i] > capacity_[i] + kTolerance) ++count;
  }
  return count;
}

double CapacityLedger::total_overflow() const noexcept {
  double overflow = 0.0;
  for (std::size_t i = 0; i < usage_.size(); ++i) {
    if (usage_[i] > capacity_[i]) overflow += usage_[i] - capacity_[i];
  }
  return overflow;
}

bool satisfies_capacity(const Assignment& assignment,
                        std::span<const double> sizes,
                        std::span<const double> capacities) {
  if (!assignment.is_complete()) return false;
  const CapacityLedger ledger(assignment, sizes, capacities);
  return ledger.violations() == 0;
}

std::string capacity_report(const Assignment& assignment,
                            std::span<const double> sizes,
                            std::span<const double> capacities) {
  const CapacityLedger ledger(assignment, sizes, capacities);
  std::ostringstream out;
  for (std::size_t i = 0; i < capacities.size(); ++i) {
    const auto partition = static_cast<PartitionId>(i);
    out << "partition " << i << ": "
        << format_double(ledger.usage(partition), 2) << " / "
        << format_double(ledger.capacity(partition), 2)
        << (ledger.usage(partition) >
                    ledger.capacity(partition) + CapacityLedger::kTolerance
                ? "  OVERFLOW"
                : "")
        << "\n";
  }
  return out.str();
}

}  // namespace qbp
