// Assignment of components to partitions (the paper's map A : J -> I) and a
// capacity ledger for incremental algorithms.
//
// The assignment is stored densely as `partition_of[j]`; kUnassigned marks
// components not yet placed (used while constructive heuristics run).  A
// complete assignment with no kUnassigned entries corresponds to an
// [x_ij] matrix satisfying constraint C3 (every component in exactly one
// partition) by construction.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "partition/topology.hpp"

namespace qbp {

class Assignment {
 public:
  static constexpr PartitionId kUnassigned = -1;

  Assignment() = default;
  Assignment(std::int32_t num_components, std::int32_t num_partitions)
      : partition_of_(static_cast<std::size_t>(num_components), kUnassigned),
        num_partitions_(num_partitions) {}

  /// Wrap an explicit mapping (values must be kUnassigned or in [0, M)).
  Assignment(std::vector<PartitionId> partition_of, std::int32_t num_partitions)
      : partition_of_(std::move(partition_of)), num_partitions_(num_partitions) {}

  [[nodiscard]] std::int32_t num_components() const noexcept {
    return static_cast<std::int32_t>(partition_of_.size());
  }
  [[nodiscard]] std::int32_t num_partitions() const noexcept {
    return num_partitions_;
  }

  [[nodiscard]] PartitionId operator[](std::int32_t component) const noexcept {
    return partition_of_[static_cast<std::size_t>(component)];
  }

  void set(std::int32_t component, PartitionId partition) noexcept {
    partition_of_[static_cast<std::size_t>(component)] = partition;
  }

  [[nodiscard]] bool is_complete() const noexcept;

  [[nodiscard]] std::span<const PartitionId> raw() const noexcept {
    return partition_of_;
  }

  /// Components currently assigned to `partition` (O(N) scan).
  [[nodiscard]] std::vector<std::int32_t> members_of(PartitionId partition) const;

  friend bool operator==(const Assignment&, const Assignment&) = default;

 private:
  std::vector<PartitionId> partition_of_;
  std::int32_t num_partitions_ = 0;
};

/// Per-partition size usage, maintained incrementally; checks the paper's
/// C1 (capacity) constraints.
class CapacityLedger {
 public:
  CapacityLedger() = default;

  /// Build from a (possibly partial) assignment.
  CapacityLedger(const Assignment& assignment, std::span<const double> sizes,
                 std::span<const double> capacities);

  [[nodiscard]] double usage(PartitionId partition) const noexcept {
    return usage_[static_cast<std::size_t>(partition)];
  }
  [[nodiscard]] double capacity(PartitionId partition) const noexcept {
    return capacity_[static_cast<std::size_t>(partition)];
  }
  [[nodiscard]] double slack(PartitionId partition) const noexcept {
    return capacity(partition) - usage(partition);
  }

  /// Would moving a component of `size` into `partition` keep C1 satisfied?
  [[nodiscard]] bool fits(PartitionId partition, double size) const noexcept {
    return usage(partition) + size <= capacity(partition) + kTolerance;
  }

  void add(PartitionId partition, double size) noexcept {
    usage_[static_cast<std::size_t>(partition)] += size;
  }
  void remove(PartitionId partition, double size) noexcept {
    usage_[static_cast<std::size_t>(partition)] -= size;
  }

  /// Number of partitions whose usage exceeds capacity (plus tolerance).
  [[nodiscard]] std::int32_t violations() const noexcept;

  /// Total overflow mass above capacity, summed over partitions.
  [[nodiscard]] double total_overflow() const noexcept;

  /// Floating-point slack for capacity comparisons; component sizes are
  /// O(1..100) so an absolute epsilon is appropriate.
  static constexpr double kTolerance = 1e-9;

 private:
  std::vector<double> usage_;
  std::vector<double> capacity_;
};

/// True when `assignment` is complete and satisfies the capacity
/// constraints C1 for the given sizes/capacities.
[[nodiscard]] bool satisfies_capacity(const Assignment& assignment,
                                      std::span<const double> sizes,
                                      std::span<const double> capacities);

/// Human-readable capacity report (usage / capacity per partition).
[[nodiscard]] std::string capacity_report(const Assignment& assignment,
                                          std::span<const double> sizes,
                                          std::span<const double> capacities);

}  // namespace qbp
