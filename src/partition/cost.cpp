#include "partition/cost.hpp"

#include "util/check.hpp"


namespace qbp {

double wirelength(const Netlist& netlist, const PartitionTopology& topology,
                  const Assignment& assignment) {
  QBP_DCHECK(assignment.is_complete());
  const_cast<Netlist&>(netlist).finalize();
  double total = 0.0;
  for (const WireBundle& bundle : netlist.bundles()) {
    total += bundle.multiplicity *
             topology.wire_cost(assignment[bundle.a], assignment[bundle.b]);
  }
  return total;
}

double quadratic_cost(const Netlist& netlist, const PartitionTopology& topology,
                      const Assignment& assignment) {
  QBP_DCHECK(assignment.is_complete());
  const_cast<Netlist&>(netlist).finalize();
  double total = 0.0;
  for (const WireBundle& bundle : netlist.bundles()) {
    const PartitionId pa = assignment[bundle.a];
    const PartitionId pb = assignment[bundle.b];
    // a_{ab} = a_{ba} = multiplicity; the ordered double sum visits both.
    total += bundle.multiplicity *
             (topology.wire_cost(pa, pb) + topology.wire_cost(pb, pa));
  }
  return total;
}

double linear_cost(const Matrix<double>& p, const Assignment& assignment) {
  if (p.empty()) return 0.0;
  QBP_DCHECK(p.cols() == assignment.num_components());
  double total = 0.0;
  for (std::int32_t j = 0; j < assignment.num_components(); ++j) {
    const PartitionId partition = assignment[j];
    QBP_DCHECK(partition != Assignment::kUnassigned);
    total += p(partition, j);
  }
  return total;
}

double objective(const Netlist& netlist, const PartitionTopology& topology,
                 const Matrix<double>& p, double alpha, double beta,
                 const Assignment& assignment) {
  return alpha * linear_cost(p, assignment) +
         beta * quadratic_cost(netlist, topology, assignment);
}

double move_delta_quadratic(const Netlist& netlist,
                            const PartitionTopology& topology,
                            const Assignment& assignment,
                            std::int32_t component, PartitionId target) {
  const PartitionId source = assignment[component];
  if (source == target) return 0.0;
  const auto& adjacency = netlist.connection_matrix();
  const auto neighbors = adjacency.row_indices(component);
  const auto weights = adjacency.row_values(component);
  double delta = 0.0;
  for (std::size_t k = 0; k < neighbors.size(); ++k) {
    const PartitionId other = assignment[neighbors[k]];
    delta += weights[k] *
             (topology.wire_cost(target, other) + topology.wire_cost(other, target) -
              topology.wire_cost(source, other) - topology.wire_cost(other, source));
  }
  return delta;
}

double move_delta_objective(const Netlist& netlist,
                            const PartitionTopology& topology,
                            const Matrix<double>& p, double alpha, double beta,
                            const Assignment& assignment,
                            std::int32_t component, PartitionId target) {
  const PartitionId source = assignment[component];
  double delta =
      beta * move_delta_quadratic(netlist, topology, assignment, component, target);
  if (!p.empty()) {
    delta += alpha * (p(target, component) - p(source, component));
  }
  return delta;
}

double swap_delta_objective(const Netlist& netlist,
                            const PartitionTopology& topology,
                            const Matrix<double>& p, double alpha, double beta,
                            const Assignment& assignment,
                            std::int32_t component_a, std::int32_t component_b) {
  const PartitionId pa = assignment[component_a];
  const PartitionId pb = assignment[component_b];
  if (pa == pb) return 0.0;
  const auto& adjacency = netlist.connection_matrix();

  // Quadratic cost incident to {a, b} given (partition of a, partition of b);
  // the a-b bundle itself is accounted once, in a's row.
  const auto incident = [&](PartitionId part_a, PartitionId part_b) {
    double total = 0.0;
    const auto neighbors_a = adjacency.row_indices(component_a);
    const auto weights_a = adjacency.row_values(component_a);
    for (std::size_t k = 0; k < neighbors_a.size(); ++k) {
      const std::int32_t other = neighbors_a[k];
      const PartitionId part_other =
          other == component_b ? part_b : assignment[other];
      total += weights_a[k] * (topology.wire_cost(part_a, part_other) +
                               topology.wire_cost(part_other, part_a));
    }
    const auto neighbors_b = adjacency.row_indices(component_b);
    const auto weights_b = adjacency.row_values(component_b);
    for (std::size_t k = 0; k < neighbors_b.size(); ++k) {
      const std::int32_t other = neighbors_b[k];
      if (other == component_a) continue;
      const PartitionId part_other = assignment[other];
      total += weights_b[k] * (topology.wire_cost(part_b, part_other) +
                               topology.wire_cost(part_other, part_b));
    }
    return total;
  };

  double delta = beta * (incident(pb, pa) - incident(pa, pb));
  if (!p.empty()) {
    delta += alpha * (p(pb, component_a) - p(pa, component_a) +
                      p(pa, component_b) - p(pb, component_b));
  }
  return delta;
}

}  // namespace qbp
