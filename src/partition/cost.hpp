// Cost evaluation for assignments: the two terms of the paper's objective
//
//   minimize  alpha * SUM p_ij x_ij  +  beta * SUM a_{j1 j2} b_{i1 i2} x_{i1 j1} x_{i2 j2}
//
// Conventions.  The netlist stores physical (undirected) wire bundles while
// the paper's A matrix is symmetric, so the quadratic double sum over
// *ordered* pairs counts every bundle twice: quadratic_cost == 2 * wirelength
// whenever B is symmetric.  The experiment tables report `wirelength`
// (each wire counted once, as a human reads "total Manhattan wire length");
// the solvers optimize the quadratic form -- the two differ by a constant
// factor and have identical minimizers.
#pragma once

#include <span>

#include "netlist/netlist.hpp"
#include "partition/assignment.hpp"
#include "partition/topology.hpp"
#include "sparse/dense.hpp"

namespace qbp {

/// SUM over unordered bundles of multiplicity * B(part(a), part(b)).
/// This is the "cost (total Manhattan wire length)" column of Tables II/III
/// when B is the Manhattan metric.  Precondition: assignment is complete.
[[nodiscard]] double wirelength(const Netlist& netlist,
                                const PartitionTopology& topology,
                                const Assignment& assignment);

/// The paper's quadratic term over ordered pairs:
/// SUM_{j1, j2} a_{j1 j2} * b_{part(j1) part(j2)}.
[[nodiscard]] double quadratic_cost(const Netlist& netlist,
                                    const PartitionTopology& topology,
                                    const Assignment& assignment);

/// The paper's linear term SUM_j p_{part(j), j}; `linear_cost(P, A)` with an
/// empty P (0 x 0) is 0.
[[nodiscard]] double linear_cost(const Matrix<double>& p,
                                 const Assignment& assignment);

/// alpha * linear + beta * quadratic.
[[nodiscard]] double objective(const Netlist& netlist,
                               const PartitionTopology& topology,
                               const Matrix<double>& p, double alpha, double beta,
                               const Assignment& assignment);

/// Change in quadratic_cost if `component` moved from its current partition
/// to `target` (everything else fixed).  O(degree(component)).
[[nodiscard]] double move_delta_quadratic(const Netlist& netlist,
                                          const PartitionTopology& topology,
                                          const Assignment& assignment,
                                          std::int32_t component,
                                          PartitionId target);

/// Change in the full objective for the same move.
[[nodiscard]] double move_delta_objective(const Netlist& netlist,
                                          const PartitionTopology& topology,
                                          const Matrix<double>& p, double alpha,
                                          double beta,
                                          const Assignment& assignment,
                                          std::int32_t component,
                                          PartitionId target);

/// Change in the full objective if two components swap partitions.
/// O(degree(a) + degree(b)).
[[nodiscard]] double swap_delta_objective(const Netlist& netlist,
                                          const PartitionTopology& topology,
                                          const Matrix<double>& p, double alpha,
                                          double beta,
                                          const Assignment& assignment,
                                          std::int32_t component_a,
                                          std::int32_t component_b);

}  // namespace qbp
