#include "partition/deviation.hpp"

#include "util/check.hpp"


namespace qbp {

Matrix<double> deviation_cost_matrix(const PartitionTopology& topology,
                                     std::span<const double> sizes,
                                     const Assignment& initial) {
  const std::int32_t m = topology.num_partitions();
  const std::int32_t n = initial.num_components();
  QBP_DCHECK(static_cast<std::size_t>(n) == sizes.size());
  QBP_DCHECK(initial.is_complete());
  Matrix<double> p(m, n, 0.0);
  for (std::int32_t j = 0; j < n; ++j) {
    const PartitionId home = initial[j];
    for (PartitionId i = 0; i < m; ++i) {
      p(i, j) = sizes[static_cast<std::size_t>(j)] * topology.slot_distance(i, home);
    }
  }
  return p;
}

double total_deviation(const PartitionTopology& topology,
                       std::span<const double> sizes, const Assignment& initial,
                       const Assignment& current) {
  QBP_DCHECK(initial.num_components() == current.num_components());
  double total = 0.0;
  for (std::int32_t j = 0; j < current.num_components(); ++j) {
    total += sizes[static_cast<std::size_t>(j)] *
             topology.slot_distance(current[j], initial[j]);
  }
  return total;
}

std::int32_t components_moved(const Assignment& initial,
                              const Assignment& current) {
  QBP_DCHECK(initial.num_components() == current.num_components());
  std::int32_t moved = 0;
  for (std::int32_t j = 0; j < current.num_components(); ++j) {
    if (initial[j] != current[j]) ++moved;
  }
  return moved;
}

}  // namespace qbp
