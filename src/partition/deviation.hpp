// MCM/TCM deviation cost (paper Section 2.2.1).
//
// Given an initial manual assignment A_initial, the linear cost matrix
//
//   p_ij = s_j * Manhattan_distance(i, A_initial(j))
//
// makes PP(1, 0) the "minimum deviation re-assignment" problem: find a
// feasible assignment that moves components as little as possible, with
// larger components more expensive to move.
#pragma once

#include <span>

#include "partition/assignment.hpp"
#include "partition/topology.hpp"
#include "sparse/dense.hpp"

namespace qbp {

/// Build the M x N deviation-cost matrix from an initial assignment.
/// Distances come from PartitionTopology::slot_distance.
[[nodiscard]] Matrix<double> deviation_cost_matrix(
    const PartitionTopology& topology, std::span<const double> sizes,
    const Assignment& initial);

/// Total deviation of `current` from `initial` (equals
/// linear_cost(deviation_cost_matrix(...), current)).
[[nodiscard]] double total_deviation(const PartitionTopology& topology,
                                     std::span<const double> sizes,
                                     const Assignment& initial,
                                     const Assignment& current);

/// Number of components whose partition differs between the two assignments.
[[nodiscard]] std::int32_t components_moved(const Assignment& initial,
                                            const Assignment& current);

}  // namespace qbp
