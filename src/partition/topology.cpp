#include "partition/topology.hpp"

#include <cmath>
#include <sstream>

#include "util/check.hpp"

namespace qbp {

PartitionTopology PartitionTopology::grid(std::int32_t rows, std::int32_t cols,
                                          CostKind cost_kind, double capacity) {
  QBP_CHECK(rows >= 1 && cols >= 1)
      << "grid topology needs at least a 1x1 grid";
  const std::int32_t m = rows * cols;
  PartitionTopology topo;
  topo.grid_cols_ = cols;
  topo.capacities_.assign(static_cast<std::size_t>(m), capacity);
  topo.b_ = Matrix<double>(m, m, 0.0);
  topo.d_ = Matrix<double>(m, m, 0.0);
  for (std::int32_t i1 = 0; i1 < m; ++i1) {
    for (std::int32_t i2 = 0; i2 < m; ++i2) {
      const double dist = std::abs(i1 % cols - i2 % cols) +
                          std::abs(i1 / cols - i2 / cols);
      topo.d_(i1, i2) = dist;
      switch (cost_kind) {
        case CostKind::kUnit: topo.b_(i1, i2) = i1 == i2 ? 0.0 : 1.0; break;
        case CostKind::kManhattan: topo.b_(i1, i2) = dist; break;
        case CostKind::kQuadratic: topo.b_(i1, i2) = dist * dist; break;
      }
    }
  }
  return topo;
}

PartitionTopology PartitionTopology::custom(Matrix<double> wire_cost,
                                            Matrix<double> delay,
                                            std::vector<double> capacities) {
  const auto m = static_cast<std::int32_t>(capacities.size());
  QBP_CHECK(wire_cost.rows() == m && wire_cost.cols() == m)
      << "wire-cost matrix must be " << m << " x " << m;
  QBP_CHECK(delay.rows() == m && delay.cols() == m)
      << "delay matrix must be " << m << " x " << m;
  (void)m;
  PartitionTopology topo;
  topo.b_ = std::move(wire_cost);
  topo.d_ = std::move(delay);
  topo.capacities_ = std::move(capacities);
  topo.grid_cols_ = 0;
  return topo;
}

void PartitionTopology::set_capacities(std::vector<double> capacities) {
  QBP_CHECK_EQ(static_cast<std::int32_t>(capacities.size()), num_partitions());
  capacities_ = std::move(capacities);
}

double PartitionTopology::total_capacity() const noexcept {
  double total = 0.0;
  for (double c : capacities_) total += c;
  return total;
}

double PartitionTopology::slot_distance(PartitionId i1, PartitionId i2) const noexcept {
  if (grid_cols_ > 0) {
    return std::abs(grid_x(i1) - grid_x(i2)) + std::abs(grid_y(i1) - grid_y(i2));
  }
  return d_(i1, i2);
}

std::string PartitionTopology::validate() const {
  const std::int32_t m = num_partitions();
  if (b_.rows() != m || b_.cols() != m) return "wire-cost matrix B is not M x M";
  if (d_.rows() != m || d_.cols() != m) return "delay matrix D is not M x M";
  for (std::int32_t i = 0; i < m; ++i) {
    if (capacities_[static_cast<std::size_t>(i)] < 0.0) {
      std::ostringstream out;
      out << "partition " << i << " has negative capacity";
      return out.str();
    }
    if (b_(i, i) != 0.0) {
      std::ostringstream out;
      out << "B(" << i << ", " << i << ") must be zero (intra-partition wires are free)";
      return out.str();
    }
    if (d_(i, i) != 0.0) {
      std::ostringstream out;
      out << "D(" << i << ", " << i << ") must be zero";
      return out.str();
    }
    for (std::int32_t i2 = 0; i2 < m; ++i2) {
      if (b_(i, i2) < 0.0) return "B has a negative entry";
      if (d_(i, i2) < 0.0) return "D has a negative entry";
    }
  }
  return {};
}

}  // namespace qbp
