// Fixed partition topology: the paper's "II. Descriptions of Partitions".
//
//   - I, the set of M partitions, each with a capacity c_i    -> capacities()
//   - B, the M x M wire-routing cost matrix b_{i1 i2}         -> wire_cost()
//   - D, the M x M routing-delay matrix D(i1, i2)             -> delay()
//
// B and D are independent inputs ("we don't assume any relationship between
// B and D in our formulation"), though the common case -- and the paper's
// experiments -- uses Manhattan distances on a grid of module slots for
// both.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sparse/dense.hpp"

namespace qbp {

using PartitionId = std::int32_t;

/// Interconnection cost metric used when deriving B from slot geometry.
enum class CostKind {
  kUnit,       // b = 1 for distinct partitions: total wire crossings
  kManhattan,  // b = Manhattan distance: total Manhattan wire length
  kQuadratic,  // b = squared Manhattan distance
};

class PartitionTopology {
 public:
  PartitionTopology() = default;

  /// Grid of rows x cols slots (row-major ids); B per `cost_kind`, D equal to
  /// Manhattan distance (the paper's Figure 1 setting: "adjacent partitions
  /// are distance 1 apart").  Capacities are initialized to `capacity` each.
  static PartitionTopology grid(std::int32_t rows, std::int32_t cols,
                                CostKind cost_kind = CostKind::kManhattan,
                                double capacity = 1.0);

  /// Fully custom topology; B and D must be M x M, capacities length M.
  static PartitionTopology custom(Matrix<double> wire_cost, Matrix<double> delay,
                                  std::vector<double> capacities);

  [[nodiscard]] std::int32_t num_partitions() const noexcept {
    return static_cast<std::int32_t>(capacities_.size());
  }

  [[nodiscard]] const Matrix<double>& wire_cost() const noexcept { return b_; }
  [[nodiscard]] const Matrix<double>& delay() const noexcept { return d_; }

  [[nodiscard]] double wire_cost(PartitionId i1, PartitionId i2) const noexcept {
    return b_(i1, i2);
  }
  [[nodiscard]] double delay(PartitionId i1, PartitionId i2) const noexcept {
    return d_(i1, i2);
  }

  [[nodiscard]] const std::vector<double>& capacities() const noexcept {
    return capacities_;
  }
  [[nodiscard]] double capacity(PartitionId i) const noexcept {
    return capacities_[static_cast<std::size_t>(i)];
  }
  void set_capacity(PartitionId i, double capacity) {
    capacities_[static_cast<std::size_t>(i)] = capacity;
  }
  void set_capacities(std::vector<double> capacities);

  [[nodiscard]] double total_capacity() const noexcept;

  /// For grid-built topologies: the slot coordinates of a partition.
  /// (0, 0) for custom topologies.
  [[nodiscard]] std::int32_t grid_x(PartitionId i) const noexcept {
    return grid_cols_ > 0 ? i % grid_cols_ : 0;
  }
  [[nodiscard]] std::int32_t grid_y(PartitionId i) const noexcept {
    return grid_cols_ > 0 ? i / grid_cols_ : 0;
  }

  /// Manhattan distance between two partitions' grid slots; falls back to
  /// the delay matrix for custom topologies.
  [[nodiscard]] double slot_distance(PartitionId i1, PartitionId i2) const noexcept;

  /// Grid width for grid-built topologies, 0 for custom ones.
  [[nodiscard]] std::int32_t grid_cols() const noexcept { return grid_cols_; }

  /// Structural validation (square matrices, non-negative capacities, zero
  /// diagonals).  Empty string when valid.
  [[nodiscard]] std::string validate() const;

 private:
  Matrix<double> b_;
  Matrix<double> d_;
  std::vector<double> capacities_;
  std::int32_t grid_cols_ = 0;  // 0 for custom topologies
};

}  // namespace qbp
