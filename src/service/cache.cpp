#include "service/cache.hpp"

#include <algorithm>
#include <utility>

namespace qbp::service {

namespace {

/// Hash the instance parts the ECO path treats as immutable: normalized
/// wire costs B', delays D, nonzero linear costs P' and the sparse timing
/// bounds Dc.  Sizes, capacities and bundles are deliberately excluded --
/// those are the "edits" an ECO re-solve absorbs.
Hash128 structure_hash(const PartitionProblem& problem) {
  const std::int32_t n = problem.num_components();
  const std::int32_t m = problem.num_partitions();
  StreamHasher hasher(0x65636fULL);  // "eco"
  hasher.absorb(n);
  hasher.absorb(m);
  for (std::int32_t i1 = 0; i1 < m; ++i1) {
    for (std::int32_t i2 = 0; i2 < m; ++i2) {
      hasher.absorb(problem.beta() * problem.topology().wire_cost(i1, i2));
      hasher.absorb(problem.topology().delay(i1, i2));
    }
  }
  const auto& p = problem.linear_cost_matrix();
  if (!p.empty() && problem.alpha() != 0.0) {
    for (std::int32_t i = 0; i < m; ++i) {
      for (std::int32_t j = 0; j < n; ++j) {
        const double cost = problem.alpha() * p(i, j);
        if (cost == 0.0) continue;
        hasher.absorb(i);
        hasher.absorb(j);
        hasher.absorb(cost);
      }
    }
  }
  const auto& timing = problem.timing().matrix();
  if (timing.rows() == n) {
    for (std::int32_t j = 0; j < n; ++j) {
      const auto partners = timing.row_indices(j);
      const auto bounds = timing.row_values(j);
      for (std::size_t k = 0; k < partners.size(); ++k) {
        if (partners[k] <= j) continue;
        hasher.absorb(j);
        hasher.absorb(partners[k]);
        hasher.absorb(bounds[k]);
      }
    }
  }
  return hasher.finish();
}

}  // namespace

ProblemDigest make_digest(const PartitionProblem& problem) {
  ProblemDigest digest;
  digest.num_components = problem.num_components();
  digest.num_partitions = problem.num_partitions();
  digest.fingerprint = problem_fingerprint(problem);
  digest.structure = structure_hash(problem);
  digest.sizes = problem.netlist().sizes();
  digest.capacities = problem.topology().capacities();

  const auto& connections = problem.netlist().connection_matrix();
  digest.bundles.reserve(
      static_cast<std::size_t>(problem.netlist().num_connected_pairs()));
  for (std::int32_t a = 0; a < digest.num_components; ++a) {
    const auto neighbors = connections.row_indices(a);
    const auto weights = connections.row_values(a);
    for (std::size_t k = 0; k < neighbors.size(); ++k) {
      if (neighbors[k] <= a) continue;
      digest.bundles.push_back({a, neighbors[k], weights[k]});
    }
  }
  return digest;
}

Hash128 spec_fingerprint(const SolverSpec& spec, bool effective_validate) {
  StreamHasher hasher(0x73706563ULL);  // "spec"
  hasher.absorb_bytes(spec.method);
  hasher.absorb(spec.starts);
  hasher.absorb(spec.iterations);
  hasher.absorb(spec.seed);
  hasher.absorb(static_cast<std::uint64_t>(effective_validate ? 1 : 0));
  hasher.absorb(static_cast<std::uint64_t>(spec.presolve ? 1 : 0));
  hasher.absorb(spec.presolve_rn);
  hasher.absorb_bytes(spec.presolve_rules);
  // The V-cycle shape changes the answer (threads do not, so they stay
  // excluded above).
  hasher.absorb(spec.ml_levels);
  hasher.absorb(spec.ml_min_shrink);
  hasher.absorb(spec.ml_refine_passes);
  return hasher.finish();
}

Hash128 combine_keys(const Hash128& problem, const Hash128& spec) {
  StreamHasher hasher(0x6b6579ULL);  // "key"
  hasher.absorb(problem.hi);
  hasher.absorb(problem.lo);
  hasher.absorb(spec.hi);
  hasher.absorb(spec.lo);
  return hasher.finish();
}

std::int64_t digest_edit_distance(const ProblemDigest& a,
                                  const ProblemDigest& b, std::int64_t limit) {
  if (a.num_components != b.num_components ||
      a.num_partitions != b.num_partitions || !(a.structure == b.structure)) {
    return limit + 1;
  }
  std::int64_t edits = 0;
  for (std::size_t j = 0; j < a.sizes.size(); ++j) {
    if (a.sizes[j] != b.sizes[j] && ++edits > limit) return limit + 1;
  }
  for (std::size_t i = 0; i < a.capacities.size(); ++i) {
    if (a.capacities[i] != b.capacities[i] && ++edits > limit) return limit + 1;
  }
  // Bundles are sorted by (a, b); one merge scan counts the symmetric
  // difference, with a multiplicity change costing one edit.
  std::size_t ia = 0;
  std::size_t ib = 0;
  const auto pair_less = [](const WireBundle& x, const WireBundle& y) {
    return x.a != y.a ? x.a < y.a : x.b < y.b;
  };
  while (ia < a.bundles.size() || ib < b.bundles.size()) {
    if (ia == a.bundles.size()) {
      ++ib;
      ++edits;
    } else if (ib == b.bundles.size()) {
      ++ia;
      ++edits;
    } else if (pair_less(a.bundles[ia], b.bundles[ib])) {
      ++ia;
      ++edits;
    } else if (pair_less(b.bundles[ib], a.bundles[ia])) {
      ++ib;
      ++edits;
    } else {
      if (a.bundles[ia].multiplicity != b.bundles[ib].multiplicity) ++edits;
      ++ia;
      ++ib;
    }
    if (edits > limit) return limit + 1;
  }
  return edits;
}

std::int64_t SolutionCache::entry_bytes(const Entry& entry) {
  return static_cast<std::int64_t>(
      sizeof(Entry) + entry.solve.solver.size() +
      entry.solve.assignment.size() * sizeof(std::int32_t) +
      entry.digest.sizes.size() * sizeof(double) +
      entry.digest.capacities.size() * sizeof(double) +
      entry.digest.bundles.size() * sizeof(WireBundle));
}

bool SolutionCache::find_exact(const Hash128& key, CachedSolve& out) {
  if (!enabled()) return false;
  const sync::MutexLock lock(mutex_);
  const auto found = index_.find(key);
  if (found == index_.end()) {
    ++stats_.misses;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, found->second);  // bump recency
  ++stats_.hits;
  out = found->second->solve;
  return true;
}

bool SolutionCache::find_nearest(const Hash128& spec,
                                 const ProblemDigest& digest,
                                 std::int64_t max_edits, Neighbor& out) {
  if (!enabled()) return false;
  const sync::MutexLock lock(mutex_);
  std::size_t scanned = 0;
  const Entry* best = nullptr;
  std::int64_t best_edits = max_edits + 1;
  for (const Entry& entry : lru_) {
    if (!(entry.spec == spec) ||
        entry.digest.num_components != digest.num_components ||
        entry.digest.num_partitions != digest.num_partitions) {
      continue;
    }
    if (++scanned > kNearestScanCap) break;
    // Only feasible cached solves make usable warm starts.
    if (!entry.solve.feasible) continue;
    const std::int64_t edits =
        digest_edit_distance(entry.digest, digest, best_edits - 1);
    if (edits < best_edits) {
      best = &entry;
      best_edits = edits;
      if (best_edits == 0) break;  // cannot improve (exact twin)
    }
  }
  if (best == nullptr || best_edits > max_edits) return false;
  out.solve = best->solve;
  out.edits = best_edits;
  return true;
}

void SolutionCache::insert(const Hash128& key, const Hash128& spec,
                           ProblemDigest digest, CachedSolve solve) {
  if (!enabled()) return;
  const sync::MutexLock lock(mutex_);
  if (const auto found = index_.find(key); found != index_.end()) {
    // Refresh in place (a re-solve of a cached instance, e.g. cache-off
    // then cache-on traffic): same key, same deterministic payload.
    stats_.bytes -= entry_bytes(*found->second);
    found->second->digest = std::move(digest);
    found->second->solve = std::move(solve);
    stats_.bytes += entry_bytes(*found->second);
    lru_.splice(lru_.begin(), lru_, found->second);
    ++stats_.inserts;
    return;
  }
  lru_.push_front(Entry{key, spec, std::move(digest), std::move(solve), 0});
  lru_.front().bytes = entry_bytes(lru_.front());
  stats_.bytes += lru_.front().bytes;
  index_.emplace(key, lru_.begin());
  ++stats_.entries;
  ++stats_.inserts;
  while (static_cast<std::size_t>(stats_.entries) > capacity_) {
    const Entry& victim = lru_.back();
    stats_.bytes -= victim.bytes;
    index_.erase(victim.key);
    lru_.pop_back();
    --stats_.entries;
    ++stats_.evictions;
  }
}

CacheStats SolutionCache::stats() const {
  const sync::MutexLock lock(mutex_);
  return stats_;
}

}  // namespace qbp::service
