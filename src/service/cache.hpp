// Bounded LRU solution cache: the storage half of warm-start serving.
//
// qbpartd traffic is dominated by re-submissions of identical or
// near-identical problems (the paper's own flagship application, Section
// 2.2.1 PP(1,0), is re-assignment after an engineering change).  The cache
// remembers finished solves keyed by the canonical instance fingerprint
// (core/fingerprint.hpp) combined with a solver-spec fingerprint, and
// supports two lookups:
//
//   find_exact    the submitted (problem, spec) pair was solved before:
//                 return the stored result verbatim.  Exact hits are
//                 bit-identical to the original solve by construction --
//                 the assignment bytes come straight out of the entry.
//   find_nearest  no exact entry, but a *structurally compatible* neighbor
//                 exists (same shape N x M, identical B'/D/P'/Dc, same
//                 spec) within a bounded edit distance over component
//                 sizes, wire bundles and capacities: return it as the
//                 warm-start seed for the ECO re-solve path (service/eco).
//
// Eviction is plain LRU over a fixed entry capacity; every entry carries a
// byte estimate so the stats surface can report resident size.  All
// operations are mutex-guarded (workers share one cache); stats counters
// are plain fields read under the same mutex.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <string>
#include <vector>

#include "core/fingerprint.hpp"
#include "core/problem.hpp"
#include "netlist/netlist.hpp"
#include "service/protocol.hpp"
#include "util/annotations.hpp"
#include "util/hash.hpp"

namespace qbp::service {

/// Structural digest kept per entry for the ECO diff: everything needed to
/// compute an edit distance against a submitted problem without re-reading
/// the cached instance.
struct ProblemDigest {
  std::int32_t num_components = 0;
  std::int32_t num_partitions = 0;
  /// Full canonical fingerprint (the exact-match half of the cache key).
  Hash128 fingerprint;
  /// Hash over the parts an ECO warm start cannot absorb as "edits": the
  /// normalized B', the delay matrix D, nonzero P' entries and the sparse
  /// Dc bounds.  find_nearest requires this to match exactly.
  Hash128 structure;
  std::vector<double> sizes;
  std::vector<double> capacities;
  /// Canonical merged bundles (a < b, sorted) from the connection matrix.
  std::vector<WireBundle> bundles;
};

[[nodiscard]] ProblemDigest make_digest(const PartitionProblem& problem);

/// Fingerprint of the solve configuration that shapes the *result*:
/// method, starts, iterations, seed, the presolve configuration and the
/// resolved validate flag.  threads/inner_threads are excluded -- the
/// engine's determinism contract makes results bit-identical across them.
[[nodiscard]] Hash128 spec_fingerprint(const SolverSpec& spec,
                                       bool effective_validate);

/// The exact-match cache key: problem fingerprint x spec fingerprint.
[[nodiscard]] Hash128 combine_keys(const Hash128& problem,
                                   const Hash128& spec);

/// Edit distance between two same-shape digests: differing component
/// sizes + differing capacities + symmetric difference of the canonical
/// bundle lists (a multiplicity change counts one edit).  Returns
/// `limit + 1` as soon as the running count exceeds `limit`, and for
/// digests whose shape or structure hash differ.
[[nodiscard]] std::int64_t digest_edit_distance(const ProblemDigest& a,
                                                const ProblemDigest& b,
                                                std::int64_t limit);

/// The result payload a cache entry stores: everything run_job needs to
/// reconstruct a JobResult (id/queue_wait/solve_s are per-submission and
/// stamped fresh on a hit).
struct CachedSolve {
  std::string solver;
  bool feasible = false;
  double objective = 0.0;
  double best_penalized = 0.0;
  std::vector<std::int32_t> assignment;
  std::int32_t starts_run = 0;
  std::int32_t starts_validated = 0;
  std::int32_t presolve_r0 = 0;
  std::int32_t presolve_r1 = 0;
  std::int32_t presolve_r2 = 0;
  std::int32_t presolve_rn = 0;
  std::int32_t presolve_removed = 0;
  double presolve_s = 0.0;
};

struct CacheStats {
  std::int64_t hits = 0;       // exact-key lookups that found an entry
  std::int64_t misses = 0;     // exact-key lookups that found none
  std::int64_t evictions = 0;  // entries displaced by LRU pressure
  std::int64_t inserts = 0;    // successful insert/update calls
  std::int64_t entries = 0;    // resident entries
  std::int64_t bytes = 0;      // estimated resident payload bytes
};

class SolutionCache {
 public:
  /// `capacity` is an entry count; 0 disables the cache entirely (every
  /// lookup misses without touching stats, inserts are dropped).
  explicit SolutionCache(std::size_t capacity) : capacity_(capacity) {}

  [[nodiscard]] bool enabled() const noexcept { return capacity_ > 0; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Exact lookup; bumps the entry's recency and the hit/miss counters.
  [[nodiscard]] bool find_exact(const Hash128& key, CachedSolve& out);

  struct Neighbor {
    CachedSolve solve;
    std::int64_t edits = 0;
  };

  /// Best structurally-compatible entry for `digest` under `max_edits`,
  /// restricted to entries solved with the same spec fingerprint.  Scans
  /// most-recent-first, capped at kNearestScanCap candidates.  Does not
  /// touch hit/miss counters (the ECO layer accounts warm starts itself).
  [[nodiscard]] bool find_nearest(const Hash128& spec,
                                  const ProblemDigest& digest,
                                  std::int64_t max_edits, Neighbor& out);

  /// Insert or refresh the entry under `key`; evicts LRU entries above
  /// capacity.
  void insert(const Hash128& key, const Hash128& spec, ProblemDigest digest,
              CachedSolve solve);

  [[nodiscard]] CacheStats stats() const;

  /// Default ECO edit budget for an N-component instance.
  [[nodiscard]] static std::int64_t default_edit_budget(
      std::int32_t num_components) {
    return std::max<std::int64_t>(64, num_components / 8);
  }

  /// Bound on how many same-spec entries one find_nearest call diffs.
  static constexpr std::size_t kNearestScanCap = 32;

 private:
  struct Entry {
    Hash128 key;
    Hash128 spec;
    ProblemDigest digest;
    CachedSolve solve;
    std::int64_t bytes = 0;
  };

  static std::int64_t entry_bytes(const Entry& entry);

  mutable sync::Mutex mutex_;
  std::size_t capacity_ = 0;  // immutable after construction
  // front = most recently used
  std::list<Entry> lru_ QBP_GUARDED_BY(mutex_);
  std::map<Hash128, std::list<Entry>::iterator> index_ QBP_GUARDED_BY(mutex_);
  // entries/bytes mirror lru_; counters monotone
  CacheStats stats_ QBP_GUARDED_BY(mutex_);
};

}  // namespace qbp::service
