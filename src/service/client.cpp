#include "service/client.hpp"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "util/wire.hpp"

namespace qbp::service {

TcpClient::~TcpClient() { close(); }

void TcpClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  pending_.clear();
}

bool TcpClient::connect(std::uint16_t port) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    error_ = std::strerror(errno);
    return false;
  }
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&address),
                sizeof address) < 0) {
    error_ = std::strerror(errno);
    close();
    return false;
  }
  return true;
}

bool TcpClient::send_line(std::string_view line) {
  std::string buffer(line);
  buffer.push_back('\n');
  return send_bytes(buffer);
}

bool TcpClient::send_bytes(std::string_view bytes) {
  if (fd_ < 0) {
    error_ = "not connected";
    return false;
  }
  while (!bytes.empty()) {
    const ssize_t written =
        ::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL);
    if (written < 0) {
      if (errno == EINTR) continue;
      error_ = std::strerror(errno);
      return false;
    }
    bytes.remove_prefix(static_cast<std::size_t>(written));
  }
  return true;
}

bool TcpClient::read_line(std::string& out) {
  if (fd_ < 0) {
    error_ = "not connected";
    return false;
  }
  for (;;) {
    const std::size_t newline = pending_.find('\n');
    if (newline != std::string::npos) {
      out = pending_.substr(0, newline);
      pending_.erase(0, newline + 1);
      return true;
    }
    char buffer[4096];
    const ssize_t count = ::read(fd_, buffer, sizeof buffer);
    if (count < 0) {
      if (errno == EINTR) continue;
      error_ = std::strerror(errno);
      return false;
    }
    if (count == 0) {
      error_ = "connection closed";
      return false;
    }
    pending_.append(buffer, static_cast<std::size_t>(count));
  }
}

bool TcpClient::read_frame(std::uint8_t& type, std::string& payload) {
  if (fd_ < 0) {
    error_ = "not connected";
    return false;
  }
  for (;;) {
    wire::FrameView frame;
    std::string frame_error;
    switch (wire::peek_frame(pending_, frame, frame_error)) {
      case wire::FrameStatus::kFrame:
        type = frame.type;
        payload.assign(frame.payload.data(), frame.payload.size());
        pending_.erase(0, frame.frame_size);
        return true;
      case wire::FrameStatus::kBad:
        error_ = frame_error;
        return false;
      case wire::FrameStatus::kIncomplete:
        break;
    }
    char buffer[4096];
    const ssize_t count = ::read(fd_, buffer, sizeof buffer);
    if (count < 0) {
      if (errno == EINTR) continue;
      error_ = std::strerror(errno);
      return false;
    }
    if (count == 0) {
      error_ = "connection closed";
      return false;
    }
    pending_.append(buffer, static_cast<std::size_t>(count));
  }
}

}  // namespace qbp::service
