// Minimal qbpartd client: a blocking TCP connection to a local server
// speaking either edge framing (NDJSON lines or binary wire frames --
// docs/PROTOCOL.md), plus helpers shared by qbpart_submit and the service
// tests.  Pipe mode needs no client class at all -- requests are plain
// NDJSON lines on stdin -- so the interesting part here is only
// connect/send/recv with message buffering.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace qbp::service {

class TcpClient {
 public:
  TcpClient() = default;
  ~TcpClient();

  TcpClient(const TcpClient&) = delete;
  TcpClient& operator=(const TcpClient&) = delete;

  /// Connect to 127.0.0.1:`port`.  False on failure; see error().
  [[nodiscard]] bool connect(std::uint16_t port);

  /// Send one request line (newline appended here).  False on failure.
  [[nodiscard]] bool send_line(std::string_view line);

  /// Block until one full response line arrives (newline stripped).
  /// False on EOF or error.
  [[nodiscard]] bool read_line(std::string& out);

  /// Send raw bytes verbatim (a pre-encoded wire frame).  False on failure.
  [[nodiscard]] bool send_bytes(std::string_view bytes);

  /// Block until one full binary frame arrives; yields its message type and
  /// payload bytes.  False on EOF, socket error, or a malformed frame.
  [[nodiscard]] bool read_frame(std::uint8_t& type, std::string& payload);

  void close();

  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }
  [[nodiscard]] const std::string& error() const noexcept { return error_; }

 private:
  int fd_ = -1;
  std::string pending_;
  std::string error_;
};

}  // namespace qbp::service
