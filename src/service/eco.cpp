#include "service/eco.hpp"

#include <string>
#include <vector>

#include "core/delta_evaluator.hpp"
#include "core/qhat.hpp"
#include "core/repair.hpp"
#include "partition/assignment.hpp"

namespace qbp::service {

namespace {

/// Deterministic C1 legalization: for each overfull partition (ascending
/// id), repeatedly move its largest member (lowest id among ties) to the
/// fitting partition with the most slack (lowest id among ties).  Returns
/// false when some component fits nowhere or the move budget runs out --
/// the caller then reports infeasible and the job falls back to cold.
bool legalize_capacity(const PartitionProblem& problem, Assignment& assignment,
                       std::int64_t& moves) {
  const std::vector<double>& sizes = problem.netlist().sizes();
  const std::int32_t n = problem.num_components();
  const std::int32_t m = problem.num_partitions();
  CapacityLedger ledger(assignment, sizes, problem.topology().capacities());
  const std::int64_t budget = 4 * static_cast<std::int64_t>(n) + 16;
  std::int64_t used = 0;
  for (PartitionId i = 0; i < m; ++i) {
    while (ledger.slack(i) < -CapacityLedger::kTolerance) {
      if (++used > budget) return false;
      std::int32_t mover = -1;
      for (std::int32_t j = 0; j < n; ++j) {
        if (assignment[j] != i) continue;
        if (mover < 0 || sizes[static_cast<std::size_t>(j)] >
                             sizes[static_cast<std::size_t>(mover)]) {
          mover = j;
        }
      }
      if (mover < 0) return false;  // empty yet overfull: capacities < 0
      const double size = sizes[static_cast<std::size_t>(mover)];
      PartitionId target = -1;
      for (PartitionId t = 0; t < m; ++t) {
        if (t == i || !ledger.fits(t, size)) continue;
        if (target < 0 || ledger.slack(t) > ledger.slack(target)) target = t;
      }
      if (target < 0) return false;
      ledger.remove(i, size);
      ledger.add(target, size);
      assignment.set(mover, target);
      ++moves;
    }
  }
  return true;
}

/// Best-improvement move sweeps on the true objective, restricted to moves
/// that keep C1 (ledger) and C2 (per-component timing check) satisfied.
/// Returns the number of committed moves.
std::int64_t polish(const PartitionProblem& problem, Assignment& assignment,
                    const EcoOptions& options, std::stop_token stop,
                    bool& cancelled) {
  const std::vector<double>& sizes = problem.netlist().sizes();
  const std::int32_t n = problem.num_components();
  const std::int32_t m = problem.num_partitions();
  DeltaEvaluator evaluator(problem, /*penalty=*/0.0);
  CapacityLedger ledger(assignment, sizes, problem.topology().capacities());
  const auto& timing = problem.timing();
  const auto& topology = problem.topology();
  std::int64_t commits = 0;
  for (std::int32_t sweep = 0; sweep < options.max_sweeps; ++sweep) {
    bool moved = false;
    for (std::int32_t j = 0; j < n; ++j) {
      if (stop.stop_requested()) {
        cancelled = true;
        return commits;
      }
      const std::span<const double> deltas =
          evaluator.move_deltas(assignment, j);
      const PartitionId from = assignment[j];
      const double size = sizes[static_cast<std::size_t>(j)];
      PartitionId best = -1;
      double best_delta = -options.min_gain;
      for (PartitionId t = 0; t < m; ++t) {
        if (t == from) continue;
        if (!(deltas[static_cast<std::size_t>(t)] < best_delta)) continue;
        if (!ledger.fits(t, size)) continue;
        if (!timing.component_feasible_at(assignment, topology, j, t)) continue;
        best = t;
        best_delta = deltas[static_cast<std::size_t>(t)];
      }
      if (best < 0) continue;
      ledger.remove(from, size);
      ledger.add(best, size);
      evaluator.commit_move(assignment, j, best);
      ++commits;
      moved = true;
    }
    if (!moved) break;
  }
  return commits;
}

}  // namespace

engine::SolverResult EcoPolishSolver::solve(const PartitionProblem& problem,
                                            const engine::StartPoint& start,
                                            std::stop_token stop) const {
  engine::SolverResult result;
  result.solver = std::string(name());
  Assignment assignment = start.assignment;
  std::int64_t moves = 0;

  const auto finish = [&](bool feasible) {
    result.best = assignment;
    result.best_penalized =
        QhatMatrix(problem, penalized_with()).penalized_value(assignment);
    if (feasible) {
      result.best_feasible = assignment;
      result.best_feasible_objective = problem.objective(assignment);
      result.found_feasible = true;
    }
    result.iterations = moves;
    return result;
  };

  if (!assignment.is_complete() || !legalize_capacity(problem, assignment, moves)) {
    return finish(false);
  }

  // Timing repair (min-conflicts) from the legalized start; preserves C1.
  RepairOptions repair_options;
  repair_options.seed = start.seed;
  RepairResult repaired = repair_timing(problem, assignment, repair_options);
  moves += repaired.moves;
  if (!repaired.feasible) {
    assignment = repaired.assignment;
    return finish(false);
  }
  assignment = repaired.assignment;

  bool cancelled = false;
  moves += polish(problem, assignment, options_, stop, cancelled);
  result.cancelled = cancelled;
  return finish(true);
}

}  // namespace qbp::service
