// The ECO re-solve path: turn a cached neighbor's assignment into a
// solution of the *submitted* problem at a fraction of a cold solve.
//
// An engineering-change re-submission differs from its cached neighbor by
// a bounded number of size/wire/capacity edits (service/cache.hpp's
// find_nearest guarantees the bound), so the cached assignment is already
// near-optimal for the new instance.  EcoPolishSolver is a full
// engine::Solver whose solve() runs the repair-and-polish recipe:
//
//   1. capacity legalization: deterministically move the largest
//      components out of overfull partitions into the best-slack fitting
//      one (shrunk sizes and lowered capacities are the only way C1 can
//      break, so this is usually a no-op);
//   2. timing repair: core/repair.hpp min-conflicts, seeded from the
//      StartPoint (C2 can only break when wire edits shifted nothing --
//      Dc and D are identical by the structure-hash gate -- so this too
//      is usually a no-op on a feasible seed);
//   3. polish: DeltaEvaluator(penalty = 0) best-improvement move sweeps
//      restricted to feasibility-preserving moves (C1 via CapacityLedger,
//      C2 via TimingConstraints::component_feasible_at), until a sweep
//      finds nothing or the sweep cap / stop token fires.
//
// When any step fails to reach feasibility the result comes back
// found_feasible = false and the caller (service/job.cpp) falls back to a
// cold solve -- the warm path can degrade latency, never answers.
//
// Plugged into the portfolio through the initial-assignment injection
// point (PortfolioOptions::initial), so the warm run inherits the whole
// pipeline: per-start shadow audit, lift (identity here -- the warm
// pipeline runs presolve-off), and the job-level stop token.
#pragma once

#include <cstdint>

#include "engine/solver.hpp"

namespace qbp::service {

struct EcoOptions {
  /// Polish sweep cap; each sweep is one best-improvement pass over all
  /// components.
  std::int32_t max_sweeps = 8;
  /// Ignore move deltas better by less than this (FP noise guard).
  double min_gain = 1e-9;
};

class EcoPolishSolver final : public engine::Solver {
 public:
  explicit EcoPolishSolver(EcoOptions options = {}) : options_(options) {}

  [[nodiscard]] std::string_view name() const override { return "eco"; }

  [[nodiscard]] engine::SolverResult solve(const PartitionProblem& problem,
                                           const engine::StartPoint& start,
                                           std::stop_token stop) const override;

 private:
  EcoOptions options_;
};

}  // namespace qbp::service
