#include "service/job.hpp"

#include <exception>
#include <memory>
#include <sstream>
#include <utility>

#include "core/problem_io.hpp"
#include "engine/engine.hpp"
#include "engine/pipeline.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace qbp::service {

namespace {

/// Build the engine solver for a spec; nullptr for unknown method names.
std::unique_ptr<engine::Solver> make_spec_solver(const SolverSpec& spec) {
  if (spec.method == "qbp") {
    BurkardOptions options;
    options.iterations = spec.iterations;
    options.inner_threads = spec.inner_threads;
    return std::make_unique<engine::BurkardSolver>(options);
  }
  if (spec.method == "multilevel" && spec.inner_threads != 1) {
    MultilevelOptions options;
    options.coarse_solver.inner_threads = spec.inner_threads;
    options.refine_solver.inner_threads = spec.inner_threads;
    return std::make_unique<engine::MultilevelSolver>(options);
  }
  return engine::make_solver(spec.method);
}

JobResult error_result(const Job& job, std::string reason) {
  JobResult result;
  result.id = job.id;
  result.status = "error";
  result.reason = std::move(reason);
  return result;
}

}  // namespace

JobResult run_job(const Job& job) {
  const Timer timer;

  PartitionProblem problem;
  try {
    std::istringstream in(job.problem_text);
    if (const auto parsed = read_problem(in, problem); !parsed.ok) {
      return error_result(job, "problem parse failed: " + parsed.message);
    }
  } catch (const std::exception& failure) {
    // Under the daemon's throw fail mode a contract violation at the parse
    // boundary (netlist/csr/timing construction) surfaces here as
    // qbp::ContractViolation: the job fails with a descriptive reason, the
    // server survives.
    return error_result(job, std::string("problem rejected: ") + failure.what());
  }

  const auto solver = make_spec_solver(job.solver);
  if (solver == nullptr) {
    return error_result(job, "unknown solver method '" + job.solver.method +
                                 "' (qbp|multilevel|gfm|gkl|sa)");
  }

  engine::PipelineOptions options;
  options.presolve.enabled = job.solver.presolve;
  options.presolve.rn_max_components = job.solver.presolve_rn;
  options.portfolio.seed = job.solver.seed;
  options.portfolio.threads = job.solver.threads;
  options.portfolio.keep_start_results = false;
  options.portfolio.validate = job.solver.validate;  // absent = default
  if (job.stop != nullptr) options.portfolio.stop = job.stop->get_token();

  engine::PipelineResult pipeline_result;
  try {
    // Every job runs the shared normalize -> presolve -> solve -> lift ->
    // validate path; with presolve off (or nothing reducible) this is
    // bit-identical to a plain Portfolio::run.
    const engine::SolvePipeline pipeline(problem, options);
    pipeline_result = pipeline.run(*solver, job.solver.starts);
  } catch (const std::exception& failure) {
    // The solvers themselves don't throw, but allocation can; a job must
    // never take the server down.
    return error_result(job, std::string("solve failed: ") + failure.what());
  }
  const engine::PortfolioResult& portfolio = pipeline_result.portfolio;

  JobResult result;
  result.id = job.id;
  result.solve_s = timer.seconds();
  result.starts_run = portfolio.starts_run;
  result.starts_validated = portfolio.starts_validated;
  result.presolve_r0 = pipeline_result.presolve.r0;
  result.presolve_r1 = pipeline_result.presolve.r1;
  result.presolve_r2 = pipeline_result.presolve.r2;
  result.presolve_rn = pipeline_result.presolve.rn;
  result.presolve_removed = pipeline_result.presolve.components_removed;
  result.presolve_s = pipeline_result.presolve.seconds;

  const StopCause cause = job.cause();
  const bool interrupted =
      cause != StopCause::kNone &&
      (portfolio.starts_skipped > 0 || portfolio.starts_cancelled > 0 ||
       portfolio.starts_run == 0);
  if (interrupted) {
    result.status =
        cause == StopCause::kDeadline ? "deadline_exceeded" : "cancelled";
  }

  if (portfolio.best_start >= 0) {
    const engine::SolverResult& best = portfolio.best;
    result.solver = best.solver;
    result.feasible = best.found_feasible;
    result.best_penalized = best.best_penalized;
    if (best.found_feasible) {
      result.objective = best.best_feasible_objective;
      const Assignment& chosen = best.best_feasible;
      result.assignment.reserve(
          static_cast<std::size_t>(chosen.num_components()));
      for (std::int32_t j = 0; j < chosen.num_components(); ++j) {
        result.assignment.push_back(chosen[j]);
      }
    }
    if (result.status.empty()) {
      result.status = best.found_feasible ? "ok" : "infeasible";
    }
  } else if (result.status.empty()) {
    // Nothing selectable: either every start errored (solve threw, or the
    // shadow audit failed under throw mode), or no start ran at all (an
    // empty portfolio, which request validation should have prevented).
    result.status = "error";
    result.reason = portfolio.starts_errored > 0
                        ? "all " + std::to_string(portfolio.starts_errored) +
                              " starts failed"
                        : "no portfolio start ran";
  }

  log::info("job ", job.id, ": status=", result.status,
            " feasible=", result.feasible ? 1 : 0,
            " objective=", result.objective, " solve_s=", result.solve_s);
  return result;
}

}  // namespace qbp::service
