#include "service/job.hpp"

#include <exception>
#include <istream>
#include <memory>
#include <optional>
#include <streambuf>
#include <utility>

#include "core/fingerprint.hpp"
#include "core/problem_io.hpp"
#include "core/validate.hpp"
#include "engine/engine.hpp"
#include "engine/pipeline.hpp"
#include "partition/deviation.hpp"
#include "service/cache.hpp"
#include "service/eco.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace qbp::service {

namespace {

/// Build the engine solver for a spec; nullptr for unknown method names.
std::unique_ptr<engine::Solver> make_spec_solver(const SolverSpec& spec) {
  if (spec.method == "qbp") {
    BurkardOptions options;
    options.iterations = spec.iterations;
    options.inner_threads = spec.inner_threads;
    return std::make_unique<engine::BurkardSolver>(options);
  }
  if (spec.method == "multilevel") {
    MultilevelOptions options;
    options.coarsen.inner_threads = spec.inner_threads;
    options.coarse_solver.inner_threads = spec.inner_threads;
    options.refine_solver.inner_threads = spec.inner_threads;
    // Sentinels (0 / 0.0 / -1) keep the core/multilevel.hpp defaults.
    if (spec.ml_levels > 0) options.max_levels = spec.ml_levels;
    if (spec.ml_min_shrink > 0.0) options.min_shrink = spec.ml_min_shrink;
    if (spec.ml_refine_passes >= 0) {
      options.refine_passes = spec.ml_refine_passes;
    }
    return std::make_unique<engine::MultilevelSolver>(options);
  }
  return engine::make_solver(spec.method);
}

JobResult error_result(const Job& job, std::string reason) {
  JobResult result;
  result.id = job.id;
  result.status = "error";
  result.reason = std::move(reason);
  return result;
}

/// Read-only streambuf over the job's problem text.  read_problem consumes
/// an std::istream; going through this instead of istringstream avoids
/// copying the full problem text once per job.
class TextBuf : public std::streambuf {
 public:
  explicit TextBuf(const std::string& text) {
    // std::streambuf needs char*; the get area is never written through.
    char* base = const_cast<char*>(text.data());
    setg(base, base, base + text.size());
  }
};

void apply_presolve_spec(engine::PipelineOptions& options,
                         const SolverSpec& spec) {
  options.presolve.enabled = spec.presolve;
  options.presolve.rn_max_components = spec.presolve_rn;
  const std::string& rules = spec.presolve_rules;
  options.presolve.rule_r0 = rules.find("r0") != std::string::npos;
  options.presolve.rule_r1 = rules.find("r1") != std::string::npos;
  options.presolve.rule_r2 = rules.find("r2") != std::string::npos;
  options.presolve.rule_rn = rules.find("rn") != std::string::npos;
}

CachedSolve to_cached(const JobResult& result) {
  CachedSolve cached;
  cached.solver = result.solver;
  cached.feasible = result.feasible;
  cached.objective = result.objective;
  cached.best_penalized = result.best_penalized;
  cached.assignment = result.assignment;
  cached.starts_run = result.starts_run;
  cached.starts_validated = result.starts_validated;
  cached.presolve_r0 = result.presolve_r0;
  cached.presolve_r1 = result.presolve_r1;
  cached.presolve_r2 = result.presolve_r2;
  cached.presolve_rn = result.presolve_rn;
  cached.presolve_removed = result.presolve_removed;
  cached.presolve_s = result.presolve_s;
  return cached;
}

/// Reconstruct a JobResult from a cache entry: stored payload verbatim
/// (assignment bytes included -- the bit-identical guarantee), fresh
/// per-submission stamps.
JobResult from_cached(const Job& job, const CachedSolve& cached) {
  JobResult result;
  result.id = job.id;
  result.status = cached.feasible ? "ok" : "infeasible";
  result.solver = cached.solver;
  result.feasible = cached.feasible;
  result.objective = cached.objective;
  result.best_penalized = cached.best_penalized;
  result.assignment = cached.assignment;
  result.starts_run = cached.starts_run;
  result.starts_validated = cached.starts_validated;
  result.presolve_r0 = cached.presolve_r0;
  result.presolve_r1 = cached.presolve_r1;
  result.presolve_r2 = cached.presolve_r2;
  result.presolve_rn = cached.presolve_rn;
  result.presolve_removed = cached.presolve_removed;
  result.presolve_s = cached.presolve_s;
  result.cache_hit = true;
  return result;
}

/// The ECO warm re-solve: polish the cached neighbor's assignment against
/// the submitted problem and accept only a fully re-validated feasible
/// answer.  Returns false (leaving `out` untouched) whenever anything --
/// shape mismatch, interruption, infeasible repair, failed validation --
/// suggests the cold path should run instead.
bool try_warm_solve(const Job& job, const PartitionProblem& problem,
                    const SolutionCache::Neighbor& neighbor, JobResult& out) {
  const std::int32_t n = problem.num_components();
  if (static_cast<std::int32_t>(neighbor.solve.assignment.size()) != n) {
    return false;
  }
  Assignment seed(neighbor.solve.assignment, problem.num_partitions());

  const EcoPolishSolver eco;
  engine::PipelineOptions options;
  // The warm run works on the raw submitted instance: no presolve, one
  // start, the cached assignment injected as that start's initial.
  options.presolve.enabled = false;
  options.portfolio.seed = job.solver.seed;
  options.portfolio.threads = 1;
  options.portfolio.keep_start_results = false;
  options.portfolio.validate = job.solver.validate;
  options.portfolio.initial = seed;
  if (job.stop != nullptr) options.portfolio.stop = job.stop->get_token();

  engine::PipelineResult pipeline_result;
  try {
    const engine::SolvePipeline pipeline(problem, options);
    pipeline_result = pipeline.run(eco, /*starts=*/1);
  } catch (const std::exception& failure) {
    log::warn("job ", job.id, ": warm solve failed (", failure.what(),
              "), falling back to cold");
    return false;
  }
  // Interrupted (deadline/cancel): let the cold path produce the status.
  if (job.cause() != StopCause::kNone) return false;

  const engine::PortfolioResult& portfolio = pipeline_result.portfolio;
  if (portfolio.best_start < 0) return false;
  const engine::SolverResult& best = portfolio.best;
  if (!best.found_feasible || best.cancelled || !best.error.empty()) {
    return false;
  }

  // Unconditional acceptance gate, independent of the validate flag: the
  // warm answer must be feasible for the *submitted* problem and its
  // objective is recomputed from scratch.  A warm start may only ever cost
  // latency, never correctness.
  const Assignment& chosen = best.best_feasible;
  if (!chosen.is_complete() || !problem.is_feasible(chosen)) return false;

  out = JobResult{};
  out.id = job.id;
  out.status = "ok";
  out.solver = std::string(eco.name());
  out.feasible = true;
  out.objective = problem.objective(chosen);
  out.best_penalized = best.best_penalized;
  out.assignment.reserve(static_cast<std::size_t>(n));
  for (std::int32_t j = 0; j < n; ++j) out.assignment.push_back(chosen[j]);
  out.starts_run = portfolio.starts_run;
  out.starts_validated = portfolio.starts_validated;
  out.warm_start = true;
  out.eco_edits = static_cast<std::int32_t>(neighbor.edits);
  out.eco_repairs = components_moved(seed, chosen);
  return true;
}

}  // namespace

JobResult run_job(const Job& job) { return run_job(job, nullptr); }

JobResult run_job(const Job& job, SolutionCache* cache) {
  const Timer timer;

  // Binary submits arrive pre-parsed (service/wire.hpp kProblemStruct);
  // everything below sees the same value-identical instance either way.
  PartitionProblem parsed;
  if (job.problem == nullptr) {
    try {
      TextBuf buffer(job.problem_text);
      std::istream in(&buffer);
      if (const auto status = read_problem(in, parsed); !status.ok) {
        return error_result(job, "problem parse failed: " + status.message);
      }
    } catch (const std::exception& failure) {
      // Under the daemon's throw fail mode a contract violation at the parse
      // boundary (netlist/csr/timing construction) surfaces here as
      // qbp::ContractViolation: the job fails with a descriptive reason, the
      // server survives.
      return error_result(job,
                          std::string("problem rejected: ") + failure.what());
    }
  }
  const PartitionProblem& problem =
      job.problem != nullptr ? *job.problem : parsed;

  // Cache lookup: exact fingerprint hit first, then the ECO neighbor path.
  const bool use_cache =
      cache != nullptr && cache->enabled() && job.use_cache;
  Hash128 cache_key;
  Hash128 spec_fp;
  // Computed at most once per job: the warm-start lookup and the cold-path
  // insert share the same digest (it used to be rebuilt for the insert).
  std::optional<ProblemDigest> digest;
  if (use_cache) {
    const bool effective_validate =
        job.solver.validate.value_or(validation_enabled());
    spec_fp = spec_fingerprint(job.solver, effective_validate);
    cache_key = combine_keys(problem_fingerprint(problem), spec_fp);
    CachedSolve hit;
    if (cache->find_exact(cache_key, hit)) {
      JobResult result = from_cached(job, hit);
      result.solve_s = timer.seconds();
      log::info("job ", job.id, ": cache hit, objective=", result.objective);
      return result;
    }
    if (job.warm_start) {
      digest = make_digest(problem);
      SolutionCache::Neighbor neighbor;
      if (cache->find_nearest(spec_fp, *digest,
                              SolutionCache::default_edit_budget(
                                  problem.num_components()),
                              neighbor)) {
        JobResult warm;
        if (try_warm_solve(job, problem, neighbor, warm)) {
          warm.solve_s = timer.seconds();
          cache->insert(cache_key, spec_fp, std::move(*digest),
                        to_cached(warm));
          log::info("job ", job.id, ": warm start (", neighbor.edits,
                    " edits, ", warm.eco_repairs,
                    " repairs), objective=", warm.objective,
                    " solve_s=", warm.solve_s);
          return warm;
        }
      }
    }
  }

  const auto solver = make_spec_solver(job.solver);
  if (solver == nullptr) {
    return error_result(job, "unknown solver method '" + job.solver.method +
                                 "' (qbp|multilevel|gfm|gkl|sa)");
  }

  engine::PipelineOptions options;
  apply_presolve_spec(options, job.solver);
  options.portfolio.seed = job.solver.seed;
  options.portfolio.threads = job.solver.threads;
  options.portfolio.keep_start_results = false;
  options.portfolio.validate = job.solver.validate;  // absent = default
  if (job.stop != nullptr) options.portfolio.stop = job.stop->get_token();

  engine::PipelineResult pipeline_result;
  try {
    // Every job runs the shared normalize -> presolve -> solve -> lift ->
    // validate path; with presolve off (or nothing reducible) this is
    // bit-identical to a plain Portfolio::run.
    const engine::SolvePipeline pipeline(problem, options);
    pipeline_result = pipeline.run(*solver, job.solver.starts);
  } catch (const std::exception& failure) {
    // The solvers themselves don't throw, but allocation can; a job must
    // never take the server down.
    return error_result(job, std::string("solve failed: ") + failure.what());
  }
  const engine::PortfolioResult& portfolio = pipeline_result.portfolio;

  JobResult result;
  result.id = job.id;
  result.solve_s = timer.seconds();
  result.starts_run = portfolio.starts_run;
  result.starts_validated = portfolio.starts_validated;
  result.presolve_r0 = pipeline_result.presolve.r0;
  result.presolve_r1 = pipeline_result.presolve.r1;
  result.presolve_r2 = pipeline_result.presolve.r2;
  result.presolve_rn = pipeline_result.presolve.rn;
  result.presolve_removed = pipeline_result.presolve.components_removed;
  result.presolve_s = pipeline_result.presolve.seconds;

  const StopCause cause = job.cause();
  const bool interrupted =
      cause != StopCause::kNone &&
      (portfolio.starts_skipped > 0 || portfolio.starts_cancelled > 0 ||
       portfolio.starts_run == 0);
  if (interrupted) {
    result.status =
        cause == StopCause::kDeadline ? "deadline_exceeded" : "cancelled";
  }

  if (portfolio.best_start >= 0) {
    const engine::SolverResult& best = portfolio.best;
    result.solver = best.solver;
    result.feasible = best.found_feasible;
    result.best_penalized = best.best_penalized;
    if (best.found_feasible) {
      result.objective = best.best_feasible_objective;
      const Assignment& chosen = best.best_feasible;
      result.assignment.reserve(
          static_cast<std::size_t>(chosen.num_components()));
      for (std::int32_t j = 0; j < chosen.num_components(); ++j) {
        result.assignment.push_back(chosen[j]);
      }
    }
    if (result.status.empty()) {
      result.status = best.found_feasible ? "ok" : "infeasible";
    }
  } else if (result.status.empty()) {
    // Nothing selectable: either every start errored (solve threw, or the
    // shadow audit failed under throw mode), or no start ran at all (an
    // empty portfolio, which request validation should have prevented).
    result.status = "error";
    result.reason = portfolio.starts_errored > 0
                        ? "all " + std::to_string(portfolio.starts_errored) +
                              " starts failed"
                        : "no portfolio start ran";
  }

  // Only uninterrupted feasible answers are worth remembering.
  if (use_cache && result.status == "ok") {
    cache->insert(cache_key, spec_fp,
                  digest.has_value() ? std::move(*digest)
                                     : make_digest(problem),
                  to_cached(result));
  }

  log::info("job ", job.id, ": status=", result.status,
            " feasible=", result.feasible ? 1 : 0,
            " objective=", result.objective, " solve_s=", result.solve_s);
  return result;
}

}  // namespace qbp::service
