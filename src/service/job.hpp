// One accepted partitioning job: the parsed submit request plus the
// server-side state that travels with it through the queue and the worker
// pool -- arrival sequence number, deadline clock, the per-job stop source
// (fired by the deadline watchdog or a cancel request), and the response
// sink of the connection that submitted it.
//
// Job execution (`run_job`) is a pure function of (problem text, solver
// spec, stop token): it parses the problem via core/problem_io, builds the
// engine solver named by the spec, and runs one deterministic
// engine::Portfolio.  Determinism: same spec + seed => bit-identical
// assignment for any thread/worker count (the Portfolio contract), so a
// load-shedding retry against a different server instance reproduces the
// original answer exactly.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <stop_token>
#include <string>

#include "service/protocol.hpp"

namespace qbp::service {

/// Why a job's stop source fired; decides the reported status.
enum class StopCause : int { kNone = 0, kDeadline = 1, kCancel = 2 };

struct Job {
  using Clock = std::chrono::steady_clock;
  /// Receives one finished response line (no trailing newline).
  using Sink = std::function<void(const std::string&)>;

  std::string id;
  std::int64_t seq = 0;       // arrival order; FIFO tie-break within priority
  std::int32_t priority = 0;  // higher first
  SolverSpec solver;
  std::string problem_text;
  /// Pre-parsed problem from a binary kProblemStruct submit
  /// (service/wire.hpp); when set, run_job skips the text parse entirely.
  /// Value-identical to parsing problem_text, so cache fingerprints and
  /// results are bit-identical across framings.
  std::shared_ptr<const PartitionProblem> problem;
  /// Request-level cache opt-outs (protocol "cache"/"warm_start" fields).
  bool use_cache = true;
  bool warm_start = true;
  /// The submitting connection spoke binary framing; finish_job renders
  /// the result as a wire frame instead of an NDJSON line.
  bool binary_respond = false;

  Clock::time_point submitted_at{};
  Clock::time_point deadline{Clock::time_point::max()};
  bool has_deadline = false;

  /// Shared with the cancel registry and the deadline watchdog.
  std::shared_ptr<std::stop_source> stop;
  std::shared_ptr<std::atomic<int>> stop_cause;  // StopCause as int
  Sink respond;

  void fire_stop(StopCause cause) const {
    if (stop == nullptr) return;
    int expected = static_cast<int>(StopCause::kNone);
    stop_cause->compare_exchange_strong(expected, static_cast<int>(cause));
    stop->request_stop();
  }
  [[nodiscard]] StopCause cause() const noexcept {
    return stop_cause == nullptr
               ? StopCause::kNone
               : static_cast<StopCause>(stop_cause->load());
  }
};

class SolutionCache;  // service/cache.hpp

/// Solve `job` to completion (or until its stop token fires) and return the
/// normalized result.  Never throws across this boundary: problem parse
/// failures and unknown solver names come back as status "error".
/// `queue_wait_s` is stamped by the caller (the worker knows when the job
/// left the queue).
///
/// With a cache (and the job opted in), the flow is: exact fingerprint hit
/// -> return the stored result bit-identical (`cache_hit`); structurally
/// compatible neighbor within the edit budget -> ECO warm re-solve
/// (service/eco.hpp), shadow-validated from scratch against the *submitted*
/// problem (`warm_start`); otherwise -- or when the warm result fails
/// validation -- a cold solve, whose "ok" result is inserted for next time.
[[nodiscard]] JobResult run_job(const Job& job, SolutionCache* cache);

/// Cache-free overload: identical to pre-cache behaviour.
[[nodiscard]] JobResult run_job(const Job& job);

}  // namespace qbp::service
