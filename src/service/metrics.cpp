#include "service/metrics.hpp"

#include <algorithm>
#include <array>

namespace qbp::service {

namespace {

// 1 ms .. 64 s, doubling: 17 finite buckets plus the implicit +inf.
constexpr std::array<double, 17> kLatencyBounds = {
    0.001, 0.002, 0.004, 0.008, 0.016, 0.032, 0.064, 0.128, 0.256,
    0.512, 1.024, 2.048, 4.096, 8.192, 16.384, 32.768, 65.536};

}  // namespace

std::size_t Counter::stripe_index() noexcept {
  static std::atomic<std::size_t> next_slot{0};
  thread_local const std::size_t slot =
      next_slot.fetch_add(1, std::memory_order_relaxed);
  return slot & (kStripes - 1);
}

Histogram::Histogram(std::span<const double> bounds)
    : bounds_(bounds.begin(), bounds.end()),
      bucket_counts_(bounds.size() + 1, 0) {}

void Histogram::observe(double value) noexcept {
  // bounds_ is immutable after construction, so the bucket search can run
  // before taking the lock; the critical section is five plain updates.
  const auto bucket = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  const sync::MutexLock lock(mutex_);
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
  ++bucket_counts_[bucket];
}

Histogram::Snapshot Histogram::snapshot() const {
  const sync::MutexLock lock(mutex_);
  Snapshot snap;
  snap.count = count_;
  snap.sum = sum_;
  snap.min = count_ > 0 ? min_ : 0.0;
  snap.max = count_ > 0 ? max_ : 0.0;
  snap.bounds = bounds_;
  snap.bucket_counts = bucket_counts_;
  return snap;
}

std::span<const double> Histogram::latency_bounds() noexcept {
  return kLatencyBounds;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const sync::MutexLock lock(mutex_);
  for (auto& entry : counters_) {
    if (entry.name == name) return *entry.instrument;
  }
  counters_.push_back({std::string(name), std::make_unique<Counter>()});
  return *counters_.back().instrument;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const sync::MutexLock lock(mutex_);
  for (auto& entry : gauges_) {
    if (entry.name == name) return *entry.instrument;
  }
  gauges_.push_back({std::string(name), std::make_unique<Gauge>()});
  return *gauges_.back().instrument;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::span<const double> bounds) {
  const sync::MutexLock lock(mutex_);
  for (auto& entry : histograms_) {
    if (entry.name == name) return *entry.instrument;
  }
  histograms_.push_back(
      {std::string(name), std::make_unique<Histogram>(bounds)});
  return *histograms_.back().instrument;
}

json::Value MetricsRegistry::to_json() const {
  const sync::MutexLock lock(mutex_);

  json::Value counters = json::Value::object();
  for (const auto& entry : counters_) {
    counters.set(entry.name, entry.instrument->value());
  }
  json::Value gauges = json::Value::object();
  for (const auto& entry : gauges_) {
    gauges.set(entry.name, entry.instrument->value());
  }
  json::Value histograms = json::Value::object();
  for (const auto& entry : histograms_) {
    const Histogram::Snapshot snap = entry.instrument->snapshot();
    json::Value one = json::Value::object();
    one.set("count", snap.count);
    one.set("sum", snap.sum);
    one.set("min", snap.min);
    one.set("max", snap.max);
    if (!snap.bounds.empty()) {
      // Cumulative "le" buckets in the Prometheus style.
      json::Value buckets = json::Value::array();
      std::int64_t cumulative = 0;
      for (std::size_t k = 0; k < snap.bounds.size(); ++k) {
        cumulative += snap.bucket_counts[k];
        json::Value bucket = json::Value::object();
        bucket.set("le", snap.bounds[k]);
        bucket.set("count", cumulative);
        buckets.push_back(std::move(bucket));
      }
      json::Value inf_bucket = json::Value::object();
      inf_bucket.set("le", "+inf");
      inf_bucket.set("count", snap.count);
      buckets.push_back(std::move(inf_bucket));
      one.set("buckets", std::move(buckets));
    }
    histograms.set(entry.name, std::move(one));
  }

  json::Value out = json::Value::object();
  out.set("counters", std::move(counters));
  out.set("gauges", std::move(gauges));
  out.set("histograms", std::move(histograms));
  return out;
}

}  // namespace qbp::service
