// In-process metrics for the qbpartd job server.
//
// Three instrument kinds, all safe for concurrent writers:
//
//   * Counter   -- monotonically increasing event count.  Writes are
//                  striped across cache-line-padded per-thread slots (the
//                  util/prof thread-local-bucket pattern) so hot request
//                  counters never bounce one cache line between workers;
//                  the stripes are merged when a snapshot reads value().
//   * Gauge     -- instantaneous level, e.g. queue depth (atomic set/add;
//                  set() semantics rule out striping, and gauges change at
//                  queue granularity, not per-frame).
//   * Histogram -- observation distribution with fixed bucket upper bounds
//                  plus count/sum/min/max (one small mutex per histogram:
//                  observations happen at job granularity, never in solver
//                  inner loops; the bucket search runs outside the lock).
//
// The MetricsRegistry owns every instrument by name and renders one JSON
// snapshot for the `stats` protocol request and the periodic stderr line.
// Instruments are created on first access and the returned references stay
// valid for the registry's lifetime, so hot paths can cache them.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/annotations.hpp"
#include "util/json.hpp"

namespace qbp::service {

class Counter {
 public:
  void inc(std::int64_t delta = 1) noexcept {
    stripes_[stripe_index()].value.fetch_add(delta,
                                             std::memory_order_relaxed);
  }
  /// Merge all stripes.  Monotone for any single stripe, so a concurrent
  /// reader may see a value between two increments but never a decrease
  /// from its own previous read of a quiescent counter.
  [[nodiscard]] std::int64_t value() const noexcept {
    std::int64_t total = 0;
    for (const Stripe& stripe : stripes_) {
      total += stripe.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  static constexpr std::size_t kStripes = 8;  // power of two
  struct alignas(64) Stripe {
    std::atomic<std::int64_t> value{0};
  };
  /// Stable per-thread stripe slot, assigned round-robin on first use so
  /// worker threads land on distinct stripes (hashing std::thread::id
  /// offers no such guarantee for a handful of threads).
  [[nodiscard]] static std::size_t stripe_index() noexcept;

  std::array<Stripe, kStripes> stripes_;
};

class Gauge {
 public:
  void set(std::int64_t value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  void add(std::int64_t delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

class Histogram {
 public:
  /// `bounds` are the inclusive bucket upper limits in increasing order; an
  /// implicit +inf bucket catches the rest.  Empty bounds give a summary-
  /// only instrument (count/sum/min/max), which is what the objective
  /// metric uses where no universal bucket scale exists.
  explicit Histogram(std::span<const double> bounds);

  void observe(double value) noexcept;

  struct Snapshot {
    std::int64_t count = 0;
    double sum = 0.0;
    double min = 0.0;  // 0 when count == 0
    double max = 0.0;
    std::vector<double> bounds;             // as constructed
    std::vector<std::int64_t> bucket_counts;  // bounds.size() + 1 entries
  };
  [[nodiscard]] Snapshot snapshot() const;

  /// Default latency scale: 1 ms .. 64 s, doubling.
  [[nodiscard]] static std::span<const double> latency_bounds() noexcept;

 private:
  mutable sync::Mutex mutex_;
  std::vector<double> bounds_;  // immutable after construction
  std::vector<std::int64_t> bucket_counts_ QBP_GUARDED_BY(mutex_);
  std::int64_t count_ QBP_GUARDED_BY(mutex_) = 0;
  double sum_ QBP_GUARDED_BY(mutex_) = 0.0;
  double min_ QBP_GUARDED_BY(mutex_) = std::numeric_limits<double>::infinity();
  double max_ QBP_GUARDED_BY(mutex_) = -std::numeric_limits<double>::infinity();
};

class MetricsRegistry {
 public:
  /// Find-or-create by name; references remain valid until destruction.
  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] Histogram& histogram(std::string_view name,
                                     std::span<const double> bounds = {});

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  /// Instruments appear in creation order (stable output for tests/diffs).
  [[nodiscard]] json::Value to_json() const;

 private:
  template <typename T>
  struct Named {
    std::string name;
    std::unique_ptr<T> instrument;
  };

  mutable sync::Mutex mutex_;
  std::vector<Named<Counter>> counters_ QBP_GUARDED_BY(mutex_);
  std::vector<Named<Gauge>> gauges_ QBP_GUARDED_BY(mutex_);
  std::vector<Named<Histogram>> histograms_ QBP_GUARDED_BY(mutex_);
};

}  // namespace qbp::service
