// In-process metrics for the qbpartd job server.
//
// Three instrument kinds, all safe for concurrent writers:
//
//   * Counter   -- monotonically increasing event count (atomic add);
//   * Gauge     -- instantaneous level, e.g. queue depth (atomic set/add);
//   * Histogram -- observation distribution with fixed bucket upper bounds
//                  plus count/sum/min/max (one small mutex per histogram:
//                  observations happen at job granularity, never in solver
//                  inner loops, so contention is irrelevant).
//
// The MetricsRegistry owns every instrument by name and renders one JSON
// snapshot for the `stats` protocol request and the periodic stderr line.
// Instruments are created on first access and the returned references stay
// valid for the registry's lifetime, so hot paths can cache them.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/annotations.hpp"
#include "util/json.hpp"

namespace qbp::service {

class Counter {
 public:
  void inc(std::int64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

class Gauge {
 public:
  void set(std::int64_t value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  void add(std::int64_t delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

class Histogram {
 public:
  /// `bounds` are the inclusive bucket upper limits in increasing order; an
  /// implicit +inf bucket catches the rest.  Empty bounds give a summary-
  /// only instrument (count/sum/min/max), which is what the objective
  /// metric uses where no universal bucket scale exists.
  explicit Histogram(std::span<const double> bounds);

  void observe(double value) noexcept;

  struct Snapshot {
    std::int64_t count = 0;
    double sum = 0.0;
    double min = 0.0;  // 0 when count == 0
    double max = 0.0;
    std::vector<double> bounds;             // as constructed
    std::vector<std::int64_t> bucket_counts;  // bounds.size() + 1 entries
  };
  [[nodiscard]] Snapshot snapshot() const;

  /// Default latency scale: 1 ms .. 64 s, doubling.
  [[nodiscard]] static std::span<const double> latency_bounds() noexcept;

 private:
  mutable sync::Mutex mutex_;
  std::vector<double> bounds_;  // immutable after construction
  std::vector<std::int64_t> bucket_counts_ QBP_GUARDED_BY(mutex_);
  std::int64_t count_ QBP_GUARDED_BY(mutex_) = 0;
  double sum_ QBP_GUARDED_BY(mutex_) = 0.0;
  double min_ QBP_GUARDED_BY(mutex_) = std::numeric_limits<double>::infinity();
  double max_ QBP_GUARDED_BY(mutex_) = -std::numeric_limits<double>::infinity();
};

class MetricsRegistry {
 public:
  /// Find-or-create by name; references remain valid until destruction.
  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] Histogram& histogram(std::string_view name,
                                     std::span<const double> bounds = {});

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  /// Instruments appear in creation order (stable output for tests/diffs).
  [[nodiscard]] json::Value to_json() const;

 private:
  template <typename T>
  struct Named {
    std::string name;
    std::unique_ptr<T> instrument;
  };

  mutable sync::Mutex mutex_;
  std::vector<Named<Counter>> counters_ QBP_GUARDED_BY(mutex_);
  std::vector<Named<Gauge>> gauges_ QBP_GUARDED_BY(mutex_);
  std::vector<Named<Histogram>> histograms_ QBP_GUARDED_BY(mutex_);
};

}  // namespace qbp::service
