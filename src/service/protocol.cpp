#include "service/protocol.hpp"

#include <cmath>

namespace qbp::service {

namespace {

bool read_int32(const json::Value& object, std::string_view key,
                std::int32_t& out, std::string& error) {
  const json::Value* member = object.find(key);
  if (member == nullptr) return true;  // keep default
  const double value = member->as_number(std::nan(""));
  if (!std::isfinite(value) || value != std::floor(value) ||
      value < -2147483648.0 || value > 2147483647.0) {
    error = "field '" + std::string(key) + "' must be an integer";
    return false;
  }
  out = static_cast<std::int32_t>(value);
  return true;
}

}  // namespace

ParseResult parse_request(std::string_view line, Request& out) {
  json::Value value;
  if (const auto parsed = json::parse(line, value); !parsed.ok) {
    return {false, "malformed JSON: " + parsed.message};
  }
  if (!value.is_object()) return {false, "request must be a JSON object"};

  out = Request{};
  const std::string type = value.get_string("type");
  if (type == "submit") {
    out.type = RequestType::kSubmit;
  } else if (type == "cancel") {
    out.type = RequestType::kCancel;
  } else if (type == "stats") {
    out.type = RequestType::kStats;
  } else if (type == "shutdown") {
    out.type = RequestType::kShutdown;
  } else if (type.empty()) {
    return {false, "request is missing the 'type' field"};
  } else {
    return {false, "unknown request type '" + type + "'"};
  }

  out.id = value.get_string("id");
  if (out.type == RequestType::kCancel && out.id.empty()) {
    return {false, "cancel requires an 'id'"};
  }
  if (out.type != RequestType::kSubmit) return {};

  out.problem_text = value.get_string("problem");
  out.problem_file = value.get_string("problem_file");
  if (out.problem_text.empty() == out.problem_file.empty()) {
    return {false, "submit requires exactly one of 'problem' (inline .qp "
                   "text) or 'problem_file' (server-local path)"};
  }

  std::string error;
  if (const json::Value* solver = value.find("solver"); solver != nullptr) {
    if (!solver->is_object()) return {false, "'solver' must be an object"};
    if (const std::string method = solver->get_string("method");
        !method.empty()) {
      out.solver.method = method;
    }
    if (!read_int32(*solver, "starts", out.solver.starts, error) ||
        !read_int32(*solver, "threads", out.solver.threads, error) ||
        !read_int32(*solver, "inner_threads", out.solver.inner_threads,
                    error) ||
        !read_int32(*solver, "iterations", out.solver.iterations, error)) {
      return {false, error};
    }
    if (out.solver.starts < 1) return {false, "'starts' must be >= 1"};
    if (out.solver.threads < 0) return {false, "'threads' must be >= 0"};
    if (out.solver.inner_threads < 0) {
      return {false, "'inner_threads' must be >= 0"};
    }
    if (out.solver.iterations < 1) return {false, "'iterations' must be >= 1"};
    const double seed = solver->get_number("seed", -1.0);
    if (seed >= 0.0 && std::isfinite(seed)) {
      out.solver.seed = static_cast<std::uint64_t>(seed);
    }
    if (const json::Value* validate = solver->find("validate");
        validate != nullptr) {
      if (!validate->is_bool()) return {false, "'validate' must be a boolean"};
      out.solver.validate = validate->as_bool(false);
    }
    if (const json::Value* presolve = solver->find("presolve");
        presolve != nullptr) {
      if (!presolve->is_bool()) return {false, "'presolve' must be a boolean"};
      out.solver.presolve = presolve->as_bool(true);
    }
    if (!read_int32(*solver, "presolve_rn", out.solver.presolve_rn, error)) {
      return {false, error};
    }
    if (out.solver.presolve_rn < 0) {
      return {false, "'presolve_rn' must be >= 0"};
    }
    if (const json::Value* rules = solver->find("presolve_rules");
        rules != nullptr) {
      if (!rules->is_string()) {
        return {false, "'presolve_rules' must be a string"};
      }
      out.solver.presolve_rules = rules->as_string();
    }
    if (!read_int32(*solver, "ml_levels", out.solver.ml_levels, error) ||
        !read_int32(*solver, "ml_refine_passes", out.solver.ml_refine_passes,
                    error)) {
      return {false, error};
    }
    if (out.solver.ml_levels < 0) {
      return {false, "'ml_levels' must be >= 0 (0 = solver default)"};
    }
    if (out.solver.ml_refine_passes < -1) {
      return {false, "'ml_refine_passes' must be >= -1 (-1 = solver default)"};
    }
    if (const json::Value* shrink = solver->find("ml_min_shrink");
        shrink != nullptr) {
      const double ratio = shrink->as_number(std::nan(""));
      if (!std::isfinite(ratio) || ratio < 0.0 || ratio >= 1.0) {
        return {false, "'ml_min_shrink' must be in [0, 1)"};
      }
      out.solver.ml_min_shrink = ratio;
    }
  }

  if (const json::Value* cache = value.find("cache"); cache != nullptr) {
    if (!cache->is_bool()) return {false, "'cache' must be a boolean"};
    out.cache = cache->as_bool(true);
  }
  if (const json::Value* warm = value.find("warm_start"); warm != nullptr) {
    if (!warm->is_bool()) return {false, "'warm_start' must be a boolean"};
    out.warm_start = warm->as_bool(true);
  }

  out.deadline_ms = value.get_number("deadline_ms", 0.0);
  if (!std::isfinite(out.deadline_ms) || out.deadline_ms < 0.0) {
    return {false, "'deadline_ms' must be a non-negative number"};
  }
  if (!read_int32(value, "priority", out.priority, error)) {
    return {false, error};
  }
  return {};
}

std::string format_request(const Request& request) {
  json::Value value = json::Value::object();
  switch (request.type) {
    case RequestType::kSubmit: value.set("type", "submit"); break;
    case RequestType::kCancel: value.set("type", "cancel"); break;
    case RequestType::kStats: value.set("type", "stats"); break;
    case RequestType::kShutdown: value.set("type", "shutdown"); break;
  }
  if (!request.id.empty()) value.set("id", request.id);
  if (request.type == RequestType::kSubmit) {
    if (!request.problem_text.empty()) {
      value.set("problem", request.problem_text);
    } else {
      value.set("problem_file", request.problem_file);
    }
    json::Value solver = json::Value::object();
    solver.set("method", request.solver.method);
    solver.set("starts", request.solver.starts);
    solver.set("threads", request.solver.threads);
    solver.set("inner_threads", request.solver.inner_threads);
    solver.set("iterations", request.solver.iterations);
    solver.set("seed", static_cast<std::int64_t>(request.solver.seed));
    if (request.solver.validate.has_value()) {
      solver.set("validate", *request.solver.validate);
    }
    if (!request.solver.presolve) solver.set("presolve", false);
    if (request.solver.presolve_rn != SolverSpec{}.presolve_rn) {
      solver.set("presolve_rn", request.solver.presolve_rn);
    }
    if (request.solver.presolve_rules != SolverSpec{}.presolve_rules) {
      solver.set("presolve_rules", request.solver.presolve_rules);
    }
    if (request.solver.ml_levels != 0) {
      solver.set("ml_levels", request.solver.ml_levels);
    }
    if (request.solver.ml_min_shrink != 0.0) {
      solver.set("ml_min_shrink", request.solver.ml_min_shrink);
    }
    if (request.solver.ml_refine_passes != -1) {
      solver.set("ml_refine_passes", request.solver.ml_refine_passes);
    }
    value.set("solver", std::move(solver));
    if (request.deadline_ms > 0.0) value.set("deadline_ms", request.deadline_ms);
    if (request.priority != 0) value.set("priority", request.priority);
    if (!request.cache) value.set("cache", false);
    if (!request.warm_start) value.set("warm_start", false);
  }
  return value.dump();
}

json::Value result_to_json(const JobResult& result) {
  json::Value value = json::Value::object();
  value.set("type", "result");
  value.set("id", result.id);
  value.set("status", result.status);
  if (!result.reason.empty()) value.set("reason", result.reason);
  if (!result.solver.empty()) value.set("solver", result.solver);
  value.set("feasible", result.feasible);
  if (result.feasible) value.set("objective", result.objective);
  value.set("best_penalized", result.best_penalized);
  if (!result.assignment.empty()) {
    json::Value assignment = json::Value::array();
    for (const std::int32_t partition : result.assignment) {
      assignment.push_back(partition);
    }
    value.set("assignment", std::move(assignment));
  }
  value.set("queue_wait_s", result.queue_wait_s);
  value.set("solve_s", result.solve_s);
  value.set("starts_run", result.starts_run);
  if (result.starts_validated > 0) {
    value.set("starts_validated", result.starts_validated);
  }
  if (result.presolve_removed > 0) {
    json::Value presolve = json::Value::object();
    presolve.set("r0", result.presolve_r0);
    presolve.set("r1", result.presolve_r1);
    presolve.set("r2", result.presolve_r2);
    presolve.set("rn", result.presolve_rn);
    presolve.set("components_removed", result.presolve_removed);
    presolve.set("seconds", result.presolve_s);
    value.set("presolve", std::move(presolve));
  }
  if (result.cache_hit) value.set("cache_hit", true);
  if (result.warm_start) {
    value.set("warm_start", true);
    value.set("eco_repairs", result.eco_repairs);
    value.set("eco_edits", result.eco_edits);
  }
  return value;
}

ParseResult result_from_json(const json::Value& value, JobResult& out) {
  if (!value.is_object() || value.get_string("type") != "result") {
    return {false, "not a result object"};
  }
  out = JobResult{};
  out.id = value.get_string("id");
  out.status = value.get_string("status");
  out.reason = value.get_string("reason");
  out.solver = value.get_string("solver");
  out.feasible = value.get_bool("feasible", false);
  out.objective = value.get_number("objective", 0.0);
  out.best_penalized = value.get_number("best_penalized", 0.0);
  out.queue_wait_s = value.get_number("queue_wait_s", 0.0);
  out.solve_s = value.get_number("solve_s", 0.0);
  out.starts_run =
      static_cast<std::int32_t>(value.get_number("starts_run", 0.0));
  out.starts_validated =
      static_cast<std::int32_t>(value.get_number("starts_validated", 0.0));
  if (const json::Value* presolve = value.find("presolve");
      presolve != nullptr && presolve->is_object()) {
    out.presolve_r0 =
        static_cast<std::int32_t>(presolve->get_number("r0", 0.0));
    out.presolve_r1 =
        static_cast<std::int32_t>(presolve->get_number("r1", 0.0));
    out.presolve_r2 =
        static_cast<std::int32_t>(presolve->get_number("r2", 0.0));
    out.presolve_rn =
        static_cast<std::int32_t>(presolve->get_number("rn", 0.0));
    out.presolve_removed = static_cast<std::int32_t>(
        presolve->get_number("components_removed", 0.0));
    out.presolve_s = presolve->get_number("seconds", 0.0);
  }
  out.cache_hit = value.get_bool("cache_hit", false);
  out.warm_start = value.get_bool("warm_start", false);
  out.eco_repairs =
      static_cast<std::int32_t>(value.get_number("eco_repairs", 0.0));
  out.eco_edits = static_cast<std::int32_t>(value.get_number("eco_edits", 0.0));
  if (const json::Value* assignment = value.find("assignment");
      assignment != nullptr && assignment->is_array()) {
    out.assignment.reserve(assignment->size());
    for (std::size_t k = 0; k < assignment->size(); ++k) {
      out.assignment.push_back(
          static_cast<std::int32_t>(assignment->at(k).as_number(-1.0)));
    }
  }
  if (out.status.empty()) return {false, "result is missing 'status'"};
  return {};
}

std::string format_reject(std::string_view id, std::string_view reason) {
  json::Value value = json::Value::object();
  value.set("type", "reject");
  if (!id.empty()) value.set("id", id);
  value.set("reason", reason);
  return value.dump();
}

std::string format_error(std::string_view reason) {
  json::Value value = json::Value::object();
  value.set("type", "error");
  value.set("reason", reason);
  return value.dump();
}

}  // namespace qbp::service
