// The qbpartd wire protocol: newline-delimited JSON, one request or
// response object per line, over a stdin/stdout pipe or a local TCP
// connection.
//
// Requests (client -> server):
//
//   {"type":"submit","id":"j1","problem":"<.qp text>","solver":{"method":
//    "qbp","starts":4,"threads":2,"iterations":100,"seed":1},
//    "deadline_ms":5000,"priority":1}
//   {"type":"submit","id":"j2","problem_file":"path/to/problem.qp", ...}
//   {"type":"cancel","id":"j1"}
//   {"type":"stats"}
//   {"type":"shutdown"}            (drain accepted jobs, then exit)
//
// Responses (server -> client), one line each, in completion order:
//
//   {"type":"result","id":"j1","status":"ok","feasible":true,
//    "objective":123.0,"solver":"qbp","assignment":[0,1,...],
//    "queue_wait_s":0.01,"solve_s":0.42,"starts_run":4}
//   {"type":"result","id":"j1","status":"deadline_exceeded", ...}
//   {"type":"reject","id":"j3","reason":"queue full (capacity 64)"}
//   {"type":"error","reason":"line 3: unknown keyword 'foo'"}
//   {"type":"stats","uptime_s":12.5,"counters":{...}, ...}
//   {"type":"shutdown","status":"draining"}
//
// Result statuses: "ok" (feasible solution), "infeasible" (solver finished
// but found no fully feasible assignment; best penalized value reported),
// "deadline_exceeded", "cancelled", "error" (e.g. the problem text failed
// to parse).  Determinism contract: a submit with the same problem, solver
// spec and seed produces a bit-identical assignment regardless of server
// worker count, portfolio thread count, or queue load -- inherited from
// engine::Portfolio (see DESIGN.md §7) -- provided the job ran to
// completion (no deadline/cancel interruption).
//
// Warm-start serving (DESIGN.md §13): submits carry optional top-level
// "cache" and "warm_start" booleans (default true).  An exact cache hit
// returns the original result bit-identical ("cache_hit":true); a
// near-match may be answered by the ECO re-solve path ("warm_start":true
// with "eco_repairs"/"eco_edits"), whose result depends on cache contents
// -- set "warm_start":false (or run --cache off) for strict determinism.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "netlist/io.hpp"  // ParseResult
#include "util/json.hpp"

namespace qbp {
class PartitionProblem;
}  // namespace qbp

namespace qbp::service {

/// How to solve one job: a named engine solver fanned out over a
/// deterministic portfolio.  `threads` is the per-job portfolio pool; the
/// chosen assignment is independent of it (engine determinism contract).
struct SolverSpec {
  std::string method = "qbp";     // qbp | multilevel | gfm | gkl | sa
  std::int32_t starts = 1;        // independent portfolio starts
  std::int32_t threads = 1;       // portfolio worker threads for this job
  /// Intra-solve threads per start on the shared deterministic pool (qbp /
  /// multilevel methods; 0 = all hardware).  Pure wall-clock knob: results
  /// are bit-identical at every value.  The server clamps the combined
  /// workers x starts x inner_threads budget against the machine.
  std::int32_t inner_threads = 1;
  std::int32_t iterations = 100;  // QBP iteration budget (qbp method only)
  std::uint64_t seed = 1993;      // master seed; determinism anchor
  /// Per-job shadow validation ("validate": true|false): every portfolio
  /// start is re-verified from scratch (core/validate.hpp).  Absent =
  /// follow the server's process default.
  std::optional<bool> validate;
  /// Presolve the instance before solving ("presolve": true|false).  On by
  /// default: the job runs through engine::SolvePipeline (normalize ->
  /// reduce -> solve -> lift -> validate); bit-identical to off whenever no
  /// reduction rule fires.
  bool presolve = true;
  /// RN brute-force threshold ("presolve_rn"): remainders with at most this
  /// many free components are solved exactly instead of heuristically.
  std::int32_t presolve_rn = 4;
  /// Which reduction rules run ("presolve_rules": comma-separated subset of
  /// r0,r1,r2,rn); same grammar as qbpart_cli --presolve-rules.
  std::string presolve_rules = "r0,r1,r2,rn";
  /// Multilevel V-cycle shape ("ml_levels" / "ml_min_shrink" /
  /// "ml_refine_passes"; multilevel method only, ignored otherwise).  The
  /// sentinels keep the library defaults (core/multilevel.hpp): 0 levels =
  /// default depth, 0 shrink = default floor, -1 passes = default count.
  /// Unlike the thread knobs these shape the answer, so they are part of
  /// the cache spec fingerprint.
  std::int32_t ml_levels = 0;       // total levels incl. finest; 1 = flat
  double ml_min_shrink = 0.0;       // stop when a level shrinks less than this
  std::int32_t ml_refine_passes = -1;  // polish sweeps per uncoarsened level
};

enum class RequestType { kSubmit, kCancel, kStats, kShutdown };

struct Request {
  RequestType type = RequestType::kSubmit;
  std::string id;            // submit (optional; server assigns) / cancel
  std::string problem_text;  // inline .qp source ("problem" field)
  std::string problem_file;  // or a server-local path ("problem_file")
  /// Binary framing only (service/wire.hpp kProblemStruct): the already
  /// parsed problem, decoded zero-copy from the frame buffer.  When set,
  /// run_job skips the text parse; NDJSON requests always leave it null.
  std::shared_ptr<const PartitionProblem> problem;
  SolverSpec solver;
  double deadline_ms = 0.0;  // relative to receipt; 0 = no deadline
  std::int32_t priority = 0;  // higher runs first; FIFO within a priority
  /// "cache": false opts this submission out of the solution cache entirely
  /// (no lookup, no insert) -- the result is bit-identical to a server
  /// running with the cache disabled.
  bool cache = true;
  /// "warm_start": false allows exact cache hits but skips the ECO re-solve
  /// path (useful when strict cache-or-cold behaviour is wanted).
  bool warm_start = true;
};

/// Parse one request line.  Unknown `type` values and malformed JSON fail
/// with a descriptive message; unknown members are ignored (forward
/// compatibility).
[[nodiscard]] ParseResult parse_request(std::string_view line, Request& out);

/// Serialize a request as one NDJSON line (no trailing newline); the
/// client-side counterpart of parse_request.
[[nodiscard]] std::string format_request(const Request& request);

/// Everything a finished (or refused) job reports back.
struct JobResult {
  std::string id;
  std::string status;  // ok | infeasible | deadline_exceeded | cancelled | error
  std::string reason;  // set for status "error"
  std::string solver;  // producing solver name
  bool feasible = false;
  double objective = 0.0;        // true objective when feasible
  double best_penalized = 0.0;   // penalized value of the best iterate
  std::vector<std::int32_t> assignment;  // empty unless a solution exists
  double queue_wait_s = 0.0;
  double solve_s = 0.0;
  std::int32_t starts_run = 0;
  /// Starts whose result passed the shadow audit (0 unless validation ran).
  std::int32_t starts_validated = 0;
  /// Presolve reduction counters (all zero when presolve was off or nothing
  /// reduced; mirrors core PresolveStats).
  std::int32_t presolve_r0 = 0;
  std::int32_t presolve_r1 = 0;
  std::int32_t presolve_r2 = 0;
  std::int32_t presolve_rn = 0;
  std::int32_t presolve_removed = 0;
  double presolve_s = 0.0;
  /// This result came verbatim from the solution cache (exact fingerprint
  /// hit); the assignment is bit-identical to the original solve's.
  bool cache_hit = false;
  /// This result came from the ECO warm-start path: polished from a cached
  /// neighbor's assignment and re-validated against the submitted problem.
  bool warm_start = false;
  /// Components that moved relative to the cached seed assignment
  /// (warm_start results only).
  std::int32_t eco_repairs = 0;
  /// Edit distance between the submitted problem and the cached neighbor it
  /// warm-started from (warm_start results only).
  std::int32_t eco_edits = 0;
};

[[nodiscard]] json::Value result_to_json(const JobResult& result);
[[nodiscard]] ParseResult result_from_json(const json::Value& value,
                                           JobResult& out);

/// Non-result response lines.
[[nodiscard]] std::string format_reject(std::string_view id,
                                        std::string_view reason);
[[nodiscard]] std::string format_error(std::string_view reason);

}  // namespace qbp::service
