#include "service/queue.hpp"

#include <algorithm>

namespace qbp::service {

JobQueue::PushOutcome JobQueue::push(Job job) {
  {
    const sync::MutexLock lock(mutex_);
    if (closed_) return PushOutcome::kClosed;
    if (heap_.size() >= capacity_) return PushOutcome::kFull;
    heap_.push_back(std::move(job));
    std::push_heap(heap_.begin(), heap_.end(), heap_before);
  }
  ready_.notify_one();
  return PushOutcome::kAccepted;
}

bool JobQueue::pop(Job& out) {
  const sync::MutexLock lock(mutex_);
  while (!closed_ && heap_.empty()) ready_.wait(mutex_);
  if (heap_.empty()) return false;  // closed and drained
  std::pop_heap(heap_.begin(), heap_.end(), heap_before);
  out = std::move(heap_.back());
  heap_.pop_back();
  return true;
}

bool JobQueue::cancel(std::string_view id, Job& out) {
  const sync::MutexLock lock(mutex_);
  const auto match = std::find_if(
      heap_.begin(), heap_.end(), [&](const Job& job) { return job.id == id; });
  if (match == heap_.end()) return false;
  out = std::move(*match);
  heap_.erase(match);
  std::make_heap(heap_.begin(), heap_.end(), heap_before);
  return true;
}

void JobQueue::close() {
  {
    const sync::MutexLock lock(mutex_);
    closed_ = true;
  }
  ready_.notify_all();
}

std::size_t JobQueue::size() const {
  const sync::MutexLock lock(mutex_);
  return heap_.size();
}

}  // namespace qbp::service
