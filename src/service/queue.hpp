// Bounded priority job queue with backpressure.
//
// Ordering: strict priority (higher first), FIFO within a priority level
// (arrival sequence number breaks ties), implemented as a binary heap.
// Bounded: push() never blocks -- a full queue *rejects* so the server can
// answer "queue full" immediately instead of stalling the protocol reader;
// that is the backpressure contract a pipe client relies on to stay
// deadlock-free (it may be single-threaded and unable to drain responses
// while blocked on a write).
//
// Lifecycle: close() stops further pushes; pop() keeps draining what was
// accepted and returns false once the queue is closed *and* empty, which is
// exactly the drain-then-exit sequencing the server's SIGTERM path needs.
// cancel(id) removes a still-queued job (O(n) scan; queues are small by
// construction).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "service/job.hpp"
#include "util/annotations.hpp"

namespace qbp::service {

class JobQueue {
 public:
  enum class PushOutcome { kAccepted, kFull, kClosed };

  explicit JobQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Non-blocking; kFull implements backpressure, kClosed means draining.
  PushOutcome push(Job job);

  /// Blocks until a job is available or the queue is closed and empty.
  /// Returns false only in the latter case (drain complete).
  bool pop(Job& out);

  /// Remove a queued job by id; the removed job is returned through `out`
  /// so the caller can respond on the job's own sink.  False if no queued
  /// job has that id (it may be running already -- not this class's
  /// concern).
  bool cancel(std::string_view id, Job& out);

  /// No further pushes; wakes all blocked pop() calls for the drain.
  void close();

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  /// Max-heap order: higher priority first, then lower sequence (earlier
  /// arrival) first.
  static bool heap_before(const Job& a, const Job& b) noexcept {
    if (a.priority != b.priority) return a.priority < b.priority;
    return a.seq > b.seq;
  }

  mutable sync::Mutex mutex_;
  sync::CondVar ready_;
  std::vector<Job> heap_ QBP_GUARDED_BY(mutex_);
  std::size_t capacity_;  // immutable after construction
  bool closed_ QBP_GUARDED_BY(mutex_) = false;
};

}  // namespace qbp::service
