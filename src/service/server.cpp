#include "service/server.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include "service/wire.hpp"
#include "util/log.hpp"
#include "util/parallel.hpp"
#include "util/prof.hpp"
#include "util/strings.hpp"
#include "util/timer.hpp"
#include "util/wire.hpp"

namespace qbp::service {

namespace {

bool read_file_to_string(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return static_cast<bool>(in) || in.eof();
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(options),
      queue_(options.queue_capacity),
      cache_(options.cache_capacity),
      started_at_(std::chrono::steady_clock::now()),
      requests_total_(metrics_.counter("requests_total")),
      requests_malformed_(metrics_.counter("requests_malformed")),
      jobs_submitted_(metrics_.counter("jobs_submitted")),
      jobs_completed_(metrics_.counter("jobs_completed")),
      jobs_ok_(metrics_.counter("jobs_ok")),
      jobs_infeasible_(metrics_.counter("jobs_infeasible")),
      jobs_rejected_(metrics_.counter("jobs_rejected")),
      jobs_cancelled_(metrics_.counter("jobs_cancelled")),
      jobs_deadline_exceeded_(metrics_.counter("jobs_deadline_exceeded")),
      jobs_error_(metrics_.counter("jobs_error")),
      queue_depth_(metrics_.gauge("queue_depth")),
      workers_busy_(metrics_.gauge("workers_busy")),
      inner_threads_effective_(metrics_.gauge("inner_threads_effective")),
      pool_utilization_(metrics_.gauge("pool_utilization")),
      presolve_r0_(metrics_.gauge("presolve.r0")),
      presolve_r1_(metrics_.gauge("presolve.r1")),
      presolve_r2_(metrics_.gauge("presolve.r2")),
      presolve_rn_(metrics_.gauge("presolve.rn")),
      presolve_removed_(metrics_.gauge("presolve.components_removed")),
      presolve_seconds_(metrics_.histogram("presolve.seconds",
                                           Histogram::latency_bounds())),
      cache_hits_(metrics_.gauge("cache.hits")),
      cache_misses_(metrics_.gauge("cache.misses")),
      cache_evictions_(metrics_.gauge("cache.evictions")),
      cache_inserts_(metrics_.gauge("cache.inserts")),
      cache_entries_(metrics_.gauge("cache.entries")),
      cache_bytes_(metrics_.gauge("cache.bytes")),
      eco_exact_hits_(metrics_.gauge("eco.exact_hits")),
      eco_warm_starts_(metrics_.gauge("eco.warm_starts")),
      eco_repairs_(metrics_.gauge("eco.repairs")),
      queue_wait_seconds_(metrics_.histogram("queue_wait_seconds",
                                             Histogram::latency_bounds())),
      solve_seconds_(
          metrics_.histogram("solve_seconds", Histogram::latency_bounds())),
      objective_(metrics_.histogram("objective")),
      contract_violations_(metrics_.counter("contract_violations")),
      wire_frames_(metrics_.counter("wire.frames")),
      wire_bytes_in_(metrics_.counter("wire.bytes_in")),
      wire_bytes_out_(metrics_.counter("wire.bytes_out")),
      wire_decode_seconds_(metrics_.histogram("wire.decode_seconds",
                                              Histogram::latency_bounds())) {
  options_.workers = std::max<std::int32_t>(1, options_.workers);
  // Contract framework wiring: violations fail one job, not the process,
  // and every firing lands in the metrics snapshot.  Both settings are
  // process-wide; one Server instance owns them at a time (the hook is
  // uninstalled in the destructor).
  check::set_fail_mode(options_.fail_mode);
  check::set_violation_hook(
      [this](std::string_view) { contract_violations_.inc(); });
  watchdog_ = std::thread([this] { watchdog_loop(); });  // qbp-lint: allow(raw-thread)
  if (options_.stats_interval_s > 0.0) {
    stats_thread_ = std::thread([this] { stats_loop(); });  // qbp-lint: allow(raw-thread)
  }
  if (options_.autostart) start();
}

Server::~Server() {
  drain();
  // The hook captures `this`; detach it before the counter dies.
  check::set_violation_hook({});
  {
    const sync::MutexLock lock(deadline_mutex_);
    watchdog_exit_ = true;
  }
  deadline_cv_.notify_all();
  watchdog_.join();
  if (stats_thread_.joinable()) {
    {
      const sync::MutexLock lock(stats_mutex_);
      stats_exit_ = true;
    }
    stats_cv_.notify_all();
    stats_thread_.join();
  }
}

void Server::start() {
  if (started_.exchange(true)) return;
  workers_.reserve(static_cast<std::size_t>(options_.workers));
  for (std::int32_t w = 0; w < options_.workers; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

void Server::emit(const Sink& sink, const std::string& line) {
  if (!sink) return;
  const sync::MutexLock lock(respond_mutex_);
  sink(line);
}

void Server::emit_frame(const Sink& sink, const std::string& frame) {
  wire_bytes_out_.inc(static_cast<std::int64_t>(frame.size()));
  emit(sink, frame);
}

void Server::handle_line(std::string_view line, const Sink& respond) {
  requests_total_.inc();
  Request request;
  if (const auto parsed = parse_request(line, request); !parsed.ok) {
    requests_malformed_.inc();
    emit(respond, format_error(parsed.message));
    return;
  }
  switch (request.type) {
    case RequestType::kSubmit:
      handle_submit(std::move(request), respond, /*binary=*/false);
      return;
    case RequestType::kCancel:
      handle_cancel(request, respond, /*binary=*/false);
      return;
    case RequestType::kStats:
      emit(respond, stats_json().dump());
      return;
    case RequestType::kShutdown: {
      shutdown_.store(true);
      json::Value ack = json::Value::object();
      ack.set("type", "shutdown");
      ack.set("status", "draining");
      emit(respond, ack.dump());
      return;
    }
  }
}

void Server::handle_frame(std::uint8_t type, std::string_view payload,
                          const Sink& respond) {
  requests_total_.inc();
  wire_frames_.inc();
  wire_bytes_in_.inc(
      static_cast<std::int64_t>(payload.size() + wire::kHeaderSize));
  const auto malformed = [&](const std::string& reason) {
    requests_malformed_.inc();
    std::string frame;
    encode_error_frame(reason, frame);
    emit_frame(respond, frame);
  };
  switch (static_cast<WireMsg>(type)) {
    case WireMsg::kSubmit: {
      const Timer decode_timer;
      Request request;
      std::string error;
      if (!decode_submit(payload, request, error)) {
        malformed(error);
        return;
      }
      wire_decode_seconds_.observe(decode_timer.seconds());
      handle_submit(std::move(request), respond, /*binary=*/true);
      return;
    }
    case WireMsg::kCancel: {
      Request request;
      std::string error;
      if (!decode_cancel(payload, request, error)) {
        malformed(error);
        return;
      }
      handle_cancel(request, respond, /*binary=*/true);
      return;
    }
    case WireMsg::kStats: {
      // The stats snapshot stays a JSON document inside a frame: it is a
      // cold debug surface, and one schema for both framings keeps every
      // dashboard working (docs/PROTOCOL.md).
      std::string frame;
      encode_stats_reply_frame(stats_json().dump(), frame);
      emit_frame(respond, frame);
      return;
    }
    case WireMsg::kShutdown: {
      shutdown_.store(true);
      std::string frame;
      encode_shutdown_ack_frame("draining", frame);
      emit_frame(respond, frame);
      return;
    }
    default:
      malformed("unknown frame type " + std::to_string(type));
  }
}

std::int32_t Server::clamp_inner_threads(const SolverSpec& spec) const {
  const std::int32_t requested = par::resolve_threads(spec.inner_threads);
  std::int32_t limit = options_.thread_limit;
  if (limit <= 0) {
    limit = static_cast<std::int32_t>(std::thread::hardware_concurrency());
    if (limit <= 0) limit = 1;
  }
  // Concurrent leaf threads: server workers x concurrently-running portfolio
  // starts x inner solver threads.  Only the last factor is ours to shrink.
  const std::int32_t concurrent_starts =
      std::max<std::int32_t>(1, std::min(spec.threads, spec.starts));
  const std::int32_t per_job = std::max<std::int32_t>(
      1, limit / std::max<std::int32_t>(1, options_.workers));
  const std::int32_t allowed = std::max<std::int32_t>(
      1, per_job / concurrent_starts);
  if (requested > allowed) {
    log::warn("inner_threads ", requested, " would oversubscribe (",
              options_.workers, " workers x ", concurrent_starts,
              " concurrent starts x ", requested, " > limit ", limit,
              "); clamping to ", allowed);
    return allowed;
  }
  return requested;
}

void Server::handle_submit(Request request, const Sink& respond, bool binary) {
  const auto reject = [&](const std::string& id, const std::string& reason) {
    jobs_rejected_.inc();
    if (binary) {
      std::string frame;
      encode_reject_frame(id, reason, frame);
      emit_frame(respond, frame);
    } else {
      emit(respond, format_reject(id, reason));
    }
  };

  if (!request.problem_file.empty() &&
      !read_file_to_string(request.problem_file, request.problem_text)) {
    reject(request.id,
           "cannot read problem_file '" + request.problem_file + "'");
    return;
  }

  request.solver.inner_threads = clamp_inner_threads(request.solver);
  inner_threads_effective_.set(request.solver.inner_threads);

  Job job;
  job.priority = request.priority;
  job.solver = request.solver;
  job.use_cache = request.cache;
  job.warm_start = request.warm_start;
  job.problem_text = std::move(request.problem_text);
  job.problem = std::move(request.problem);
  job.binary_respond = binary;
  job.submitted_at = Job::Clock::now();
  if (request.deadline_ms > 0.0) {
    job.has_deadline = true;
    job.deadline =
        job.submitted_at +
        std::chrono::duration_cast<Job::Clock::duration>(
            std::chrono::duration<double, std::milli>(request.deadline_ms));
  }
  job.stop = std::make_shared<std::stop_source>();
  job.stop_cause =
      std::make_shared<std::atomic<int>>(static_cast<int>(StopCause::kNone));
  job.respond = respond;

  {
    const sync::MutexLock lock(active_mutex_);
    job.seq = next_seq_++;
    job.id = request.id.empty() ? "job-" + std::to_string(job.seq)
                                : std::move(request.id);
    if (active_.count(job.id) != 0) {
      reject(job.id, "duplicate id: a job with this id is still queued or "
                     "running");
      return;
    }
    active_.emplace(job.id, ActiveJob{job.stop, job.stop_cause});
  }

  const std::string id = job.id;
  const bool has_deadline = job.has_deadline;
  const auto deadline = job.deadline;
  const std::weak_ptr<std::stop_source> weak_stop = job.stop;
  const std::weak_ptr<std::atomic<int>> weak_cause = job.stop_cause;

  switch (queue_.push(std::move(job))) {
    case JobQueue::PushOutcome::kAccepted:
      break;
    case JobQueue::PushOutcome::kFull: {
      {
        const sync::MutexLock lock(active_mutex_);
        active_.erase(id);
      }
      reject(id, "queue full (capacity " + std::to_string(queue_.capacity()) +
                     ")");
      return;
    }
    case JobQueue::PushOutcome::kClosed: {
      {
        const sync::MutexLock lock(active_mutex_);
        active_.erase(id);
      }
      reject(id, "server draining");
      return;
    }
  }

  jobs_submitted_.inc();
  queue_depth_.set(static_cast<std::int64_t>(queue_.size()));
  if (has_deadline) {
    {
      const sync::MutexLock lock(deadline_mutex_);
      deadlines_.push_back({deadline, id, weak_stop, weak_cause});
      std::push_heap(deadlines_.begin(), deadlines_.end(),
                     [](const DeadlineEntry& a, const DeadlineEntry& b) {
                       return a.when > b.when;
                     });
    }
    deadline_cv_.notify_one();
  }
  log::info("job ", id, ": accepted (queue depth ", queue_.size(), ")");
}

void Server::handle_cancel(const Request& request, const Sink& respond,
                           bool binary) {
  // Still queued: remove it and answer on the job's own sink.
  Job job;
  if (queue_.cancel(request.id, job)) {
    queue_depth_.set(static_cast<std::int64_t>(queue_.size()));
    JobResult result;
    result.id = job.id;
    result.status = "cancelled";
    result.queue_wait_s =
        std::chrono::duration<double>(Job::Clock::now() - job.submitted_at)
            .count();
    finish_job(job, std::move(result));
    return;
  }
  // Running: fire the stop source; the worker reports the final status.
  {
    const sync::MutexLock lock(active_mutex_);
    const auto found = active_.find(request.id);
    if (found != active_.end()) {
      int expected = static_cast<int>(StopCause::kNone);
      found->second.cause->compare_exchange_strong(
          expected, static_cast<int>(StopCause::kCancel));
      found->second.stop->request_stop();
      if (binary) {
        std::string frame;
        encode_cancel_ack_frame(request.id, "signalled", frame);
        emit_frame(respond, frame);
      } else {
        json::Value ack = json::Value::object();
        ack.set("type", "cancel");
        ack.set("id", request.id);
        ack.set("status", "signalled");
        emit(respond, ack.dump());
      }
      return;
    }
  }
  if (binary) {
    std::string frame;
    encode_reject_frame(request.id, "unknown job id", frame);
    emit_frame(respond, frame);
  } else {
    emit(respond, format_reject(request.id, "unknown job id"));
  }
}

void Server::worker_loop(std::int32_t worker_index) {
  Job job;
  while (queue_.pop(job)) {
    queue_depth_.set(static_cast<std::int64_t>(queue_.size()));
    workers_busy_.add(1);
    std::string prefix = "w";
    prefix += std::to_string(worker_index);
    prefix += " job=";
    prefix += job.id;
    prefix += ' ';
    log::set_thread_prefix(std::move(prefix));

    const auto popped_at = Job::Clock::now();
    const double queue_wait =
        std::chrono::duration<double>(popped_at - job.submitted_at).count();

    JobResult result;
    if (job.has_deadline && popped_at >= job.deadline) {
      // Expired while queued (or submitted already expired): answer without
      // burning solver time.
      job.fire_stop(StopCause::kDeadline);
      result.id = job.id;
      result.status = "deadline_exceeded";
    } else if (prof::enabled()) {
      // Bracket the solve with two profiler snapshots and feed the per-phase
      // deltas into the stats surface.  Snapshots are process-wide, so with
      // several busy workers a job's delta includes its neighbors' phases --
      // exact with --workers 1, an aggregate load profile otherwise.
      const prof::PhaseReport before = prof::snapshot();
      result = run_job(job, &cache_);
      for (const prof::PhaseStat& stat :
           prof::snapshot().since(before).phases) {
        metrics_
            .histogram("phase_seconds." + stat.name,
                       Histogram::latency_bounds())
            .observe(stat.seconds);
      }
    } else {
      result = run_job(job, &cache_);
    }
    result.queue_wait_s = queue_wait;
    finish_job(job, std::move(result));

    workers_busy_.add(-1);
    log::set_thread_prefix({});
  }
}

void Server::finish_job(const Job& job, JobResult result) {
  jobs_completed_.inc();
  if (result.status == "ok") {
    jobs_ok_.inc();
  } else if (result.status == "infeasible") {
    jobs_infeasible_.inc();
  } else if (result.status == "cancelled") {
    jobs_cancelled_.inc();
  } else if (result.status == "deadline_exceeded") {
    jobs_deadline_exceeded_.inc();
  } else {
    jobs_error_.inc();
  }
  queue_wait_seconds_.observe(result.queue_wait_s);
  if (result.solve_s > 0.0) solve_seconds_.observe(result.solve_s);
  if (result.feasible) objective_.observe(result.objective);
  presolve_r0_.add(result.presolve_r0);
  presolve_r1_.add(result.presolve_r1);
  presolve_r2_.add(result.presolve_r2);
  presolve_rn_.add(result.presolve_rn);
  presolve_removed_.add(result.presolve_removed);
  if (result.presolve_s > 0.0) presolve_seconds_.observe(result.presolve_s);
  if (result.cache_hit) eco_exact_hits_.add(1);
  if (result.warm_start) {
    eco_warm_starts_.add(1);
    eco_repairs_.add(result.eco_repairs);
  }

  {
    const sync::MutexLock lock(active_mutex_);
    active_.erase(job.id);
  }
  // Render in the framing the submitting connection spoke; either way the
  // sink receives one complete response to write verbatim (plus newline
  // for NDJSON, added by the connection's sink).
  if (job.binary_respond) {
    std::string frame;
    encode_result_frame(result, frame);
    emit_frame(job.respond, frame);
  } else {
    emit(job.respond, result_to_json(result).dump());
  }
}

void Server::watchdog_loop() {
  const sync::MutexLock lock(deadline_mutex_);
  const auto later = [](const DeadlineEntry& a, const DeadlineEntry& b) {
    return a.when > b.when;
  };
  for (;;) {
    if (watchdog_exit_) return;
    if (deadlines_.empty()) {
      deadline_cv_.wait(deadline_mutex_);
      continue;
    }
    const auto next_deadline = deadlines_.front().when;
    if (Job::Clock::now() < next_deadline) {
      deadline_cv_.wait_until(deadline_mutex_, next_deadline);
      continue;
    }
    std::pop_heap(deadlines_.begin(), deadlines_.end(), later);
    DeadlineEntry entry = std::move(deadlines_.back());
    deadlines_.pop_back();
    const auto stop = entry.stop.lock();
    const auto cause = entry.cause.lock();
    if (stop != nullptr && cause != nullptr) {
      int expected = static_cast<int>(StopCause::kNone);
      cause->compare_exchange_strong(expected,
                                     static_cast<int>(StopCause::kDeadline));
      stop->request_stop();
      log::info("job ", entry.id, ": deadline fired");
    }
  }
}

void Server::stats_loop() {
  const auto interval = std::chrono::duration<double>(options_.stats_interval_s);
  const sync::MutexLock lock(stats_mutex_);
  while (!stats_exit_) {
    stats_cv_.wait_for(stats_mutex_, interval);
    if (stats_exit_) return;
    const std::string line = stats_json().dump();
    std::fprintf(stderr, "%s\n", line.c_str());
    std::fflush(stderr);
  }
}

json::Value Server::stats_json() {
  json::Value out = json::Value::object();
  out.set("type", "stats");
  out.set("uptime_s",
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        started_at_)
              .count());
  out.set("workers", options_.workers);
  out.set("queue_capacity", static_cast<std::int64_t>(queue_.capacity()));
  // Snapshot the shared work pool: busy helpers / spawned helpers, as an
  // integer percentage (0 when no helper has ever been needed).
  pool_utilization_.set(
      static_cast<std::int64_t>(par::utilization() * 100.0 + 0.5));
  const CacheStats cache_stats = cache_.stats();
  cache_hits_.set(cache_stats.hits);
  cache_misses_.set(cache_stats.misses);
  cache_evictions_.set(cache_stats.evictions);
  cache_inserts_.set(cache_stats.inserts);
  cache_entries_.set(cache_stats.entries);
  cache_bytes_.set(cache_stats.bytes);
  const json::Value instruments = metrics_.to_json();
  for (std::size_t k = 0; k < instruments.size(); ++k) {
    out.set(instruments.key_at(k), instruments.at(k));
  }
  return out;
}

void Server::begin_drain() {
  draining_.store(true);
  queue_.close();
}

void Server::drain() {
  if (drained_.exchange(true)) return;
  start();  // accepted jobs must be answered even if workers never launched
  begin_drain();
  for (auto& worker : workers_) worker.join();
  workers_.clear();
  log::info("server drained: ", jobs_completed_.value(), " jobs answered");
}

// ------------------------------------------------------------- serve loops

namespace {

/// Write `message` (plus a trailing newline for NDJSON framing) with one
/// vectored call per attempt -- no per-response concatenation copy.
/// `use_send` routes through sendmsg(MSG_NOSIGNAL) so a vanished TCP
/// client cannot SIGPIPE the daemon.
void write_response(int fd, std::string_view message, bool append_newline,
                    bool use_send) {
  char newline = '\n';
  const std::size_t total = message.size() + (append_newline ? 1 : 0);
  std::size_t sent = 0;
  while (sent < total) {
    iovec iov[2];
    int count = 0;
    if (sent < message.size()) {
      iov[count].iov_base = const_cast<char*>(message.data()) + sent;
      iov[count].iov_len = message.size() - sent;
      ++count;
    }
    if (append_newline) {
      iov[count].iov_base = &newline;
      iov[count].iov_len = 1;
      ++count;
    }
    ssize_t written = 0;
    if (use_send) {
      msghdr header{};
      header.msg_iov = iov;
      header.msg_iovlen = static_cast<std::size_t>(count);
      written = ::sendmsg(fd, &header, MSG_NOSIGNAL);
    } else {
      written = ::writev(fd, iov, count);
    }
    if (written < 0) {
      if (errno == EINTR) continue;
      return;  // client went away; results are dropped, not fatal
    }
    sent += static_cast<std::size_t>(written);
  }
}

/// Split buffered bytes into lines and dispatch each; returns false when a
/// shutdown request was seen.
bool dispatch_lines(Server& server, std::string& pending,
                    const Server::Sink& sink) {
  std::size_t newline = 0;
  while ((newline = pending.find('\n')) != std::string::npos) {
    const std::string line = pending.substr(0, newline);
    pending.erase(0, newline + 1);
    if (!trim(line).empty()) server.handle_line(line, sink);
    if (server.shutdown_requested()) return false;
  }
  return true;
}

/// Per-connection framing state: the auto-detect decision, the NDJSON line
/// buffer, and the binary receive arena.  Shared (via shared_ptr) between
/// the connection's read loop and its response sink, because accepted jobs
/// keep the sink alive after the read loop exits.
class WireConnection {
 public:
  WireConnection(Server& server, WireMode mode) : server_(server) {
    if (mode == WireMode::kNdjson) framing_ = Framing::kNdjson;
    if (mode == WireMode::kBinary) framing_ = Framing::kBinary;
  }

  /// Buffer `size` freshly read bytes and dispatch every complete message.
  /// Returns false when this connection should stop reading: shutdown
  /// request, or a malformed frame (answered with one error frame --
  /// failing the connection, never the daemon).
  bool feed(const char* data, std::size_t size, const Server::Sink& sink) {
    if (framing_ == Framing::kUnknown && size > 0) {
      // First byte decides: the frame magic opens with a byte that can
      // never start an NDJSON line, so the sniff is unambiguous.  The
      // decision is made before any request is dispatched, so sinks read
      // a settled value (the queue hand-off orders it for workers).
      framing_ = static_cast<unsigned char>(data[0]) == wire::kMagic[0]
                     ? Framing::kBinary
                     : Framing::kNdjson;
    }
    if (framing_ == Framing::kBinary) {
      frames_.append(data, size);
      return drain_frames(sink);
    }
    pending_.append(data, size);
    return dispatch_lines(server_, pending_, sink);
  }

  /// EOF: a final NDJSON line without a trailing newline still counts.  A
  /// truncated binary frame is dropped silently, like a partial line from
  /// a client that never finished writing it.
  void finish(const Server::Sink& sink) {
    if (framing_ != Framing::kBinary && !failed_ &&
        !server_.shutdown_requested() && !trim(pending_).empty()) {
      server_.handle_line(pending_, sink);
    }
  }

  [[nodiscard]] bool is_binary() const {
    return framing_ == Framing::kBinary;
  }

 private:
  enum class Framing { kUnknown, kNdjson, kBinary };

  bool drain_frames(const Server::Sink& sink) {
    for (;;) {
      wire::FrameView frame;
      std::string error;
      switch (frames_.next(frame, error)) {
        case wire::FrameStatus::kIncomplete:
          return true;
        case wire::FrameStatus::kBad: {
          std::string reply;
          encode_error_frame(error, reply);
          sink(reply);
          failed_ = true;
          return false;
        }
        case wire::FrameStatus::kFrame: {
          server_.handle_frame(frame.type, frame.payload, sink);
          frames_.consume(frame.frame_size);
          if (server_.shutdown_requested()) return false;
          break;
        }
      }
    }
  }

  Server& server_;
  Framing framing_ = Framing::kUnknown;
  std::string pending_;      // NDJSON line accumulator
  wire::FrameBuffer frames_; // binary receive arena, reused across requests
  bool failed_ = false;
};

}  // namespace

int serve_fd(Server& server, int in_fd, int out_fd, int wake_fd,
             WireMode mode) {
  const auto conn = std::make_shared<WireConnection>(server, mode);
  const Server::Sink sink = [out_fd, conn](const std::string& message) {
    write_response(out_fd, message, /*append_newline=*/!conn->is_binary(),
                   /*use_send=*/false);
  };

  bool interrupted = false;
  for (;;) {
    pollfd fds[2] = {{in_fd, POLLIN, 0}, {wake_fd, POLLIN, 0}};
    const int watched = wake_fd >= 0 ? 2 : 1;
    const int ready = ::poll(fds, static_cast<nfds_t>(watched), -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (wake_fd >= 0 && fds[1].revents != 0) {
      interrupted = true;
      break;
    }
    if (fds[0].revents == 0) continue;
    char buffer[4096];
    const ssize_t count = ::read(in_fd, buffer, sizeof buffer);
    if (count <= 0) break;  // EOF or read error: drain and exit
    if (!conn->feed(buffer, static_cast<std::size_t>(count), sink)) break;
  }
  if (!interrupted) conn->finish(sink);
  server.drain();
  return 0;
}

int serve_tcp(Server& server, std::uint16_t port, int wake_fd, WireMode mode,
              std::atomic<std::uint16_t>* bound_port) {
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    log::error("qbpartd: socket() failed: ", std::strerror(errno));
    return 1;
  }
  const int reuse = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof reuse);
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&address),
             sizeof address) < 0 ||
      ::listen(listen_fd, 16) < 0) {
    log::error("qbpartd: cannot listen on 127.0.0.1:", port, ": ",
               std::strerror(errno));
    ::close(listen_fd);
    return 1;
  }
  // Report the actual port (0 requests an ephemeral one) as a parseable
  // stderr line before serving.
  socklen_t address_len = sizeof address;
  ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&address), &address_len);
  if (bound_port != nullptr) bound_port->store(ntohs(address.sin_port));
  std::fprintf(stderr, "{\"type\":\"listening\",\"port\":%u}\n",
               static_cast<unsigned>(ntohs(address.sin_port)));
  std::fflush(stderr);

  std::atomic<bool> closing{false};
  // Connection readers block on poll(2); they cannot ride the work pool.
  std::vector<std::thread> connections;  // qbp-lint: allow(raw-thread)
  sync::Mutex connections_mutex;

  const auto connection_loop = [&server, &closing, mode](int conn_fd) {
    // shared_ptr: accepted jobs copy the sink, which may outlive this
    // reader thread; the connection's framing state must survive with it.
    const auto conn = std::make_shared<WireConnection>(server, mode);
    const Server::Sink sink = [conn_fd, conn](const std::string& message) {
      write_response(conn_fd, message,
                     /*append_newline=*/!conn->is_binary(),
                     /*use_send=*/true);
    };
    while (!closing.load()) {
      pollfd pfd{conn_fd, POLLIN, 0};
      const int ready = ::poll(&pfd, 1, 200);
      if (ready < 0 && errno != EINTR) break;
      if (ready <= 0 || pfd.revents == 0) continue;
      char buffer[4096];
      const ssize_t count = ::read(conn_fd, buffer, sizeof buffer);
      if (count <= 0) break;  // TCP: a line needs its newline, as before
      if (!conn->feed(buffer, static_cast<std::size_t>(count), sink)) break;
    }
    ::close(conn_fd);
  };

  for (;;) {
    pollfd fds[2] = {{listen_fd, POLLIN, 0}, {wake_fd, POLLIN, 0}};
    const int watched = wake_fd >= 0 ? 2 : 1;
    const int ready = ::poll(fds, static_cast<nfds_t>(watched), 200);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (server.shutdown_requested()) break;
    if (wake_fd >= 0 && fds[1].revents != 0) break;
    if (fds[0].revents == 0) continue;
    const int conn_fd = ::accept(listen_fd, nullptr, nullptr);
    if (conn_fd < 0) continue;
    const sync::MutexLock lock(connections_mutex);
    connections.emplace_back(connection_loop, conn_fd);
  }

  closing.store(true);
  ::close(listen_fd);
  {
    const sync::MutexLock lock(connections_mutex);
    for (auto& connection : connections) connection.join();
  }
  server.drain();
  return 0;
}

}  // namespace qbp::service
