// qbpartd's core: a long-running job server over the NDJSON protocol,
// with an optional binary framing on the same connections (handle_frame /
// WireMode; layouts in docs/PROTOCOL.md).
//
// Architecture (one Server instance, any number of client connections):
//
//   reader(s) --> handle_line --> bounded JobQueue --> worker pool
//                     |                                   |
//                     |  immediate responses              |  result lines
//                     v  (reject/stats/errors)            v
//                 response sink  <-------------------- respond()
//
//   + deadline watchdog: one thread holding a min-heap of job deadlines;
//     fires the job's stop source (StopCause::kDeadline) whether the job is
//     still queued or already running -- both paths funnel into the
//     cooperative should_stop hooks of the engine layer;
//   + metrics: every lifecycle edge increments the registry; a `stats`
//     request (and an optional periodic stderr line) renders the snapshot.
//
// Responses are serialized through one internal mutex, so sinks need no
// locking of their own and lines never interleave.  Each job remembers the
// sink of the connection that submitted it: in TCP mode results route back
// to the right client, in pipe mode everything shares the stdout sink.
//
// Lifecycle: construct -> (start() if not auto) -> handle_line()* ->
// begin_drain() -> drain().  begin_drain closes the queue (new submits are
// rejected with "server draining"); drain blocks until every accepted job
// has been answered and the workers exited.  The SIGINT/SIGTERM path of
// qbpartd is exactly this sequence, so a loaded server finishes what it
// accepted and exits 0.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "service/cache.hpp"
#include "service/job.hpp"
#include "service/metrics.hpp"
#include "service/queue.hpp"
#include "util/annotations.hpp"
#include "util/check.hpp"

namespace qbp::service {

/// Edge framing for the serve loops (docs/PROTOCOL.md).  kAuto sniffs the
/// first byte of each connection: the binary frame magic starts with a
/// byte that can never open an NDJSON line, so detection is unambiguous.
/// kNdjson pins the pre-binary behaviour exactly (frames are treated as
/// text and answered with NDJSON parse errors); kBinary requires frames.
enum class WireMode { kAuto, kNdjson, kBinary };

struct ServerOptions {
  /// Concurrent jobs (each job may additionally fan out portfolio threads
  /// of its own, bounded by the job's solver spec).
  std::int32_t workers = 1;
  /// Queue bound; a full queue rejects new submits (backpressure).
  std::size_t queue_capacity = 64;
  /// Emit one metrics JSON line on stderr every interval; 0 disables.
  double stats_interval_s = 0.0;
  /// Launch workers in the constructor.  Tests set this false and call
  /// start() after staging submissions, making pop order deterministic.
  bool autostart = true;
  /// Combined thread budget for the whole process: workers x portfolio
  /// starts x inner solver threads is clamped so it never exceeds this.
  /// 0 means hardware_concurrency().  A submit whose solver spec would
  /// oversubscribe gets its inner_threads clamped (with a warning log and
  /// the `inner_threads_effective` gauge updated); the job itself is never
  /// rejected for asking too much.
  std::int32_t thread_limit = 0;
  /// Solution-cache capacity in entries (DESIGN.md §13); 0 disables both
  /// the exact-hit path and ECO warm starts, making every job bit-identical
  /// to the pre-cache server.
  std::size_t cache_capacity = 64;
  /// Contract-violation fail mode installed (process-wide) at construction.
  /// The daemon default is throw: a violation -- hostile input reaching a
  /// construction boundary, or a shadow-audit mismatch -- fails the one
  /// offending job with a descriptive error and the server survives.
  /// kAbort restores fail-fast; kLogAndCount audits without failing jobs.
  /// Every violation in any mode bumps the `contract_violations` counter.
  check::FailMode fail_mode = check::FailMode::kThrow;
};

class Server {
 public:
  using Sink = Job::Sink;

  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Launch the worker pool (idempotent).
  void start();

  /// Dispatch one protocol line; immediate responses (reject, stats, parse
  /// errors, shutdown acknowledgement) are delivered to `respond` before
  /// returning, job results arrive on it later from a worker thread.  The
  /// sink is copied into accepted jobs and must stay callable until drain()
  /// returns.  Thread-safe.
  void handle_line(std::string_view line, const Sink& respond);

  /// Dispatch one binary frame (already split from the byte stream by
  /// util/wire FrameBuffer).  The same contract as handle_line, except
  /// every response delivered to `respond` is a complete binary frame and
  /// the sink must write it verbatim (no newline framing).  Thread-safe.
  void handle_frame(std::uint8_t type, std::string_view payload,
                    const Sink& respond);

  /// Stop accepting submits; queued and running jobs keep going.
  void begin_drain();

  /// begin_drain() + block until every accepted job has been answered and
  /// the worker threads exited.
  void drain();

  /// A {"type":"shutdown"} request arrived; the serve loop polls this.
  [[nodiscard]] bool shutdown_requested() const noexcept {
    return shutdown_.load();
  }

  [[nodiscard]] MetricsRegistry& metrics() noexcept { return metrics_; }
  [[nodiscard]] SolutionCache& cache() noexcept { return cache_; }
  [[nodiscard]] json::Value stats_json();
  [[nodiscard]] const ServerOptions& options() const noexcept { return options_; }

 private:
  struct ActiveJob {
    std::shared_ptr<std::stop_source> stop;
    std::shared_ptr<std::atomic<int>> cause;
  };
  struct DeadlineEntry {
    Job::Clock::time_point when;
    std::string id;
    std::weak_ptr<std::stop_source> stop;
    std::weak_ptr<std::atomic<int>> cause;
  };

  /// `binary` selects the rendering of immediate responses (NDJSON line vs
  /// wire frame) and is stamped into the job for its eventual result.
  void handle_submit(Request request, const Sink& respond, bool binary);
  /// Resolve and clamp a spec's inner_threads against the combined budget
  /// (workers x starts x inner <= thread_limit); logs when it clamps.
  [[nodiscard]] std::int32_t clamp_inner_threads(const SolverSpec& spec) const;
  void handle_cancel(const Request& request, const Sink& respond, bool binary);
  void worker_loop(std::int32_t worker_index);
  void finish_job(const Job& job, JobResult result);
  void watchdog_loop();
  void stats_loop();
  void emit(const Sink& sink, const std::string& line);
  /// emit() plus the wire.bytes_out accounting for binary responses.
  void emit_frame(const Sink& sink, const std::string& frame);

  ServerOptions options_;
  MetricsRegistry metrics_;
  JobQueue queue_;
  SolutionCache cache_;
  std::chrono::steady_clock::time_point started_at_;

  sync::Mutex respond_mutex_;  // serializes every response line
  sync::Mutex active_mutex_;
  std::unordered_map<std::string, ActiveJob> active_
      QBP_GUARDED_BY(active_mutex_);
  std::int64_t next_seq_ QBP_GUARDED_BY(active_mutex_) = 0;

  sync::Mutex deadline_mutex_;
  sync::CondVar deadline_cv_;
  // Min-heap by `when` (std::push_heap/pop_heap with a `>` comparator).
  std::vector<DeadlineEntry> deadlines_ QBP_GUARDED_BY(deadline_mutex_);
  bool watchdog_exit_ QBP_GUARDED_BY(deadline_mutex_) = false;

  // Worker/watchdog/stats threads are owned here, not by util/parallel: they
  // block on condition variables and sockets, which the deterministic work
  // pool forbids.
  std::vector<std::thread> workers_;  // qbp-lint: allow(raw-thread)
  std::thread watchdog_;              // qbp-lint: allow(raw-thread)
  std::thread stats_thread_;          // qbp-lint: allow(raw-thread)
  sync::CondVar stats_cv_;
  sync::Mutex stats_mutex_;
  bool stats_exit_ QBP_GUARDED_BY(stats_mutex_) = false;

  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> drained_{false};
  std::atomic<bool> shutdown_{false};

  // Cached instruments (registry lookups are mutex-guarded).
  Counter& requests_total_;
  Counter& requests_malformed_;
  Counter& jobs_submitted_;
  Counter& jobs_completed_;
  Counter& jobs_ok_;
  Counter& jobs_infeasible_;
  Counter& jobs_rejected_;
  Counter& jobs_cancelled_;
  Counter& jobs_deadline_exceeded_;
  Counter& jobs_error_;
  Gauge& queue_depth_;
  Gauge& workers_busy_;
  Gauge& inner_threads_effective_;
  Gauge& pool_utilization_;
  // Cumulative presolve reduction totals across all completed jobs, plus
  // the wall clock the most recent reducing job spent in presolve.
  Gauge& presolve_r0_;
  Gauge& presolve_r1_;
  Gauge& presolve_r2_;
  Gauge& presolve_rn_;
  Gauge& presolve_removed_;
  Histogram& presolve_seconds_;
  // Solution-cache snapshot (mirrored from SolutionCache::stats() when a
  // stats line renders) and cumulative ECO totals across completed jobs.
  Gauge& cache_hits_;
  Gauge& cache_misses_;
  Gauge& cache_evictions_;
  Gauge& cache_inserts_;
  Gauge& cache_entries_;
  Gauge& cache_bytes_;
  Gauge& eco_exact_hits_;
  Gauge& eco_warm_starts_;
  Gauge& eco_repairs_;
  Histogram& queue_wait_seconds_;
  Histogram& solve_seconds_;
  Histogram& objective_;
  Counter& contract_violations_;
  // Binary wire framing (docs/PROTOCOL.md): frames dispatched, raw bytes
  // in both directions (headers included), and the per-frame decode cost
  // of the zero-copy submit path.
  Counter& wire_frames_;
  Counter& wire_bytes_in_;
  Counter& wire_bytes_out_;
  Histogram& wire_decode_seconds_;
};

/// Pipe / socket serve loops (POSIX).  Both read requests until EOF, a
/// shutdown request, or a byte on `wake_fd` (the signal handler's
/// self-pipe; pass -1 for none), then drain the server and return 0.
/// `mode` picks the edge framing per connection (WireMode above); a
/// malformed binary frame answers with one error frame and fails only that
/// connection, never the daemon.
/// serve_fd reads from `in_fd` and writes every response to `out_fd`.
[[nodiscard]] int serve_fd(Server& server, int in_fd, int out_fd, int wake_fd,
                           WireMode mode = WireMode::kAuto);

/// Listens on 127.0.0.1:`port` (one thread per connection; responses route
/// to the submitting connection).  Returns 0 on clean drain, 1 on socket
/// setup failure.  `bound_port`, when non-null, receives the actual
/// listening port (useful with port 0) before the accept loop starts.
[[nodiscard]] int serve_tcp(Server& server, std::uint16_t port, int wake_fd,
                            WireMode mode = WireMode::kAuto,
                            std::atomic<std::uint16_t>* bound_port = nullptr);

}  // namespace qbp::service
