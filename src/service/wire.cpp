#include "service/wire.hpp"

#include <cmath>
#include <cstddef>
#include <limits>
#include <utility>
#include <vector>

#include "netlist/netlist.hpp"
#include "partition/topology.hpp"
#include "sparse/dense.hpp"
#include "timing/constraints.hpp"

namespace qbp::service {

namespace {

// Structural caps mirrored from the text parser (core/problem_io.cpp), so
// a hostile binary payload is rejected with the same limits instead of
// reaching a QBP_CHECK abort inside the core types.
constexpr std::int64_t kMaxPartitions = 1024;
constexpr std::int64_t kMaxWireMultiplicity = 1000000000;  // 1e9
constexpr std::int64_t kMaxTotalWires = kMaxWireMultiplicity;
constexpr std::int64_t kMaxWireBundles = 4000000;

bool fail(std::string& error, std::string message) {
  error = std::move(message);
  return false;
}

/// Read a zigzag varint constrained to int32 range.
bool read_i32(wire::Reader& reader, std::int32_t& out, std::string& error,
              std::string_view field) {
  std::int64_t value = 0;
  if (!reader.svarint(value) ||
      value < std::numeric_limits<std::int32_t>::min() ||
      value > std::numeric_limits<std::int32_t>::max()) {
    return fail(error, "field '" + std::string(field) +
                           "' is truncated or out of int32 range");
  }
  out = static_cast<std::int32_t>(value);
  return true;
}

/// Strict 0/1 byte, so every accepted submit re-encodes byte-identically
/// (the fuzz fixed-point property).
bool read_bool(wire::Reader& reader, bool& out, std::string& error,
               std::string_view field) {
  std::uint8_t byte = 0;
  if (!reader.u8(byte) || byte > 1) {
    return fail(error,
                "field '" + std::string(field) + "' must be a 0/1 byte");
  }
  out = byte != 0;
  return true;
}

void append_note_frame(WireMsg type, std::string_view id, std::string_view text,
                       std::string& out) {
  std::string payload;
  wire::Writer writer(payload);
  writer.string(id);
  writer.string(text);
  wire::append_frame(out, static_cast<std::uint8_t>(type), payload);
}

}  // namespace

void encode_problem(const PartitionProblem& problem, wire::Writer& writer) {
  const Netlist& netlist = problem.netlist();
  const PartitionTopology& topology = problem.topology();
  const std::int32_t m = topology.num_partitions();
  const std::int32_t n = netlist.num_components();

  writer.string(netlist.name());
  writer.f64(problem.alpha());
  writer.f64(problem.beta());
  writer.varint(static_cast<std::uint64_t>(m));
  writer.varint(static_cast<std::uint64_t>(n));
  for (const Component& component : netlist.components()) {
    writer.string(component.name);
  }
  writer.f64_array(netlist.sizes());

  // Bundles as struct-of-arrays; the netlist is finalized (the
  // PartitionProblem constructor guarantees it), so this order is the
  // canonical merged + sorted one and re-encoding is a fixed point.
  const std::vector<WireBundle>& bundles = netlist.bundles();
  std::vector<std::int32_t> scratch(bundles.size());
  writer.varint(bundles.size());
  for (std::size_t k = 0; k < bundles.size(); ++k) scratch[k] = bundles[k].a;
  writer.i32_array(scratch);
  for (std::size_t k = 0; k < bundles.size(); ++k) scratch[k] = bundles[k].b;
  writer.i32_array(scratch);
  for (std::size_t k = 0; k < bundles.size(); ++k) {
    scratch[k] = bundles[k].multiplicity;
  }
  writer.i32_array(scratch);

  // Topology always travels in custom form (B, D, capacities).  For grid
  // topologies this is value-identical: grid() materializes D as the
  // Manhattan slot-distance matrix, which is exactly what the custom
  // fallback of slot_distance() returns.
  writer.f64_array(topology.wire_cost().flat());
  writer.f64_array(topology.delay().flat());
  writer.f64_array(topology.capacities());

  // Timing constraints from the CSR upper triangle (built once by the
  // problem constructor): deterministic sorted order, min-merged values.
  const Csr<double>& timing = problem.timing().matrix();
  std::vector<std::int32_t> t_a;
  std::vector<std::int32_t> t_b;
  std::vector<double> t_bound;
  for (std::int32_t j = 0; j < n; ++j) {
    const auto partners = timing.row_indices(j);
    const auto bounds = timing.row_values(j);
    for (std::size_t k = 0; k < partners.size(); ++k) {
      if (partners[k] > j) {
        t_a.push_back(j);
        t_b.push_back(partners[k]);
        t_bound.push_back(bounds[k]);
      }
    }
  }
  writer.varint(t_a.size());
  writer.i32_array(t_a);
  writer.i32_array(t_b);
  writer.f64_array(t_bound);

  const Matrix<double>& p = problem.linear_cost_matrix();
  writer.u8(p.empty() ? 0 : 1);
  if (!p.empty()) writer.f64_array(p.flat());
}

bool decode_problem(wire::Reader& reader,
                    std::shared_ptr<const PartitionProblem>& out,
                    std::string& error) {
  std::string_view name;
  double alpha = 1.0;
  double beta = 1.0;
  std::uint64_t m64 = 0;
  std::uint64_t n64 = 0;
  if (!reader.string(name) || !reader.f64(alpha) || !reader.f64(beta) ||
      !reader.varint(m64) || !reader.varint(n64)) {
    return fail(error, "truncated problem header");
  }
  if (!std::isfinite(alpha) || alpha < 0.0 || !std::isfinite(beta) ||
      beta < 0.0) {
    return fail(error, "alpha/beta must be non-negative numbers");
  }
  if (m64 < 1 || m64 > static_cast<std::uint64_t>(kMaxPartitions)) {
    return fail(error, "partition count must be in [1, " +
                           std::to_string(kMaxPartitions) + "]");
  }
  // Every component costs at least one name-length byte, so the remaining
  // payload bounds N before any allocation.
  if (n64 < 1 || n64 > reader.remaining()) {
    return fail(error, "bad component count");
  }
  const auto m = static_cast<std::int32_t>(m64);
  const auto n = static_cast<std::int32_t>(n64);

  std::vector<std::string_view> names(static_cast<std::size_t>(n));
  for (auto& component_name : names) {
    if (!reader.string(component_name)) {
      return fail(error, "truncated component names");
    }
  }
  std::vector<double> sizes;
  if (!reader.f64_array(sizes) || sizes.size() != names.size()) {
    return fail(error, "component size array must have one entry per component");
  }

  std::uint64_t num_bundles = 0;
  std::vector<std::int32_t> bundle_a;
  std::vector<std::int32_t> bundle_b;
  std::vector<std::int32_t> bundle_mult;
  if (!reader.varint(num_bundles) ||
      num_bundles > static_cast<std::uint64_t>(kMaxWireBundles) ||
      !reader.i32_array(bundle_a) || !reader.i32_array(bundle_b) ||
      !reader.i32_array(bundle_mult) || bundle_a.size() != num_bundles ||
      bundle_b.size() != num_bundles || bundle_mult.size() != num_bundles) {
    return fail(error, "bad wire bundle arrays (count cap " +
                           std::to_string(kMaxWireBundles) + ")");
  }
  std::int64_t total_wires = 0;
  bool bundles_canonical = true;
  for (std::size_t k = 0; k < num_bundles; ++k) {
    if (bundle_a[k] < 0 || bundle_a[k] >= n || bundle_b[k] < 0 ||
        bundle_b[k] >= n || bundle_a[k] == bundle_b[k] ||
        bundle_mult[k] <= 0 || bundle_mult[k] > kMaxWireMultiplicity) {
      return fail(error, "bad wire endpoints or multiplicity");
    }
    // Canonical = the order encode_problem emits: merged bundles strictly
    // ascending by (a, b) with a < b.
    bundles_canonical =
        bundles_canonical && bundle_a[k] < bundle_b[k] &&
        (k == 0 || bundle_a[k - 1] < bundle_a[k] ||
         (bundle_a[k - 1] == bundle_a[k] && bundle_b[k - 1] < bundle_b[k]));
    total_wires += bundle_mult[k];
    if (total_wires > kMaxTotalWires) {
      return fail(error, "total wire multiplicity exceeds limit " +
                             std::to_string(kMaxTotalWires));
    }
  }

  const auto mm = static_cast<std::size_t>(m) * static_cast<std::size_t>(m);
  std::vector<double> b_flat;
  std::vector<double> d_flat;
  std::vector<double> capacities;
  if (!reader.f64_array(b_flat) || b_flat.size() != mm ||
      !reader.f64_array(d_flat) || d_flat.size() != mm ||
      !reader.f64_array(capacities) ||
      capacities.size() != static_cast<std::size_t>(m)) {
    return fail(error, "topology matrices must be M x M with M capacities");
  }

  std::uint64_t num_constraints = 0;
  std::vector<std::int32_t> t_a;
  std::vector<std::int32_t> t_b;
  std::vector<double> t_bound;
  if (!reader.varint(num_constraints) || !reader.i32_array(t_a) ||
      !reader.i32_array(t_b) || !reader.f64_array(t_bound) ||
      t_a.size() != num_constraints || t_b.size() != num_constraints ||
      t_bound.size() != num_constraints) {
    return fail(error, "bad timing constraint arrays");
  }
  bool timing_canonical = true;
  for (std::size_t k = 0; k < num_constraints; ++k) {
    if (t_a[k] < 0 || t_a[k] >= n || t_b[k] < 0 || t_b[k] >= n ||
        t_a[k] == t_b[k] || !std::isfinite(t_bound[k]) || t_bound[k] < 0.0) {
      return fail(error, "bad timing constraint entry");
    }
    timing_canonical =
        timing_canonical && t_a[k] < t_b[k] &&
        (k == 0 || t_a[k - 1] < t_a[k] ||
         (t_a[k - 1] == t_a[k] && t_b[k - 1] < t_b[k]));
  }

  std::uint8_t has_p = 0;
  std::vector<double> p_flat;
  if (!reader.u8(has_p) || has_p > 1) {
    return fail(error, "bad linear cost flag");
  }
  if (has_p == 1 &&
      (!reader.f64_array(p_flat) ||
       p_flat.size() != static_cast<std::size_t>(m) * static_cast<std::size_t>(n))) {
    return fail(error, "linear cost matrix must be M x N");
  }

  // Construct straight into normalized CSR form when the frame is in
  // canonical (re-encoded) order -- which every frame our own encoder
  // produces is -- and fall back to replaying the text parser's
  // construction sequence (problem_io.cpp) otherwise.  Both paths are
  // value-identical for the same data: finalize()/rebuild() are idempotent
  // and canonical input is their fixed point, so the fast path only skips
  // the per-element adds and the normalization sorts.
  Netlist netlist;
  if (bundles_canonical) {
    std::vector<Component> components;
    components.reserve(static_cast<std::size_t>(n));
    for (std::int32_t j = 0; j < n; ++j) {
      components.push_back({std::string(names[static_cast<std::size_t>(j)]),
                            sizes[static_cast<std::size_t>(j)]});
    }
    std::vector<WireBundle> bundles;
    bundles.reserve(num_bundles);
    for (std::size_t k = 0; k < num_bundles; ++k) {
      bundles.push_back({bundle_a[k], bundle_b[k], bundle_mult[k]});
    }
    netlist = Netlist::from_sorted_parts(std::string(name),
                                         std::move(components),
                                         std::move(bundles));
  } else {
    netlist = Netlist{std::string(name)};
    for (std::int32_t j = 0; j < n; ++j) {
      netlist.add_component(std::string(names[static_cast<std::size_t>(j)]),
                            sizes[static_cast<std::size_t>(j)]);
    }
    for (std::size_t k = 0; k < num_bundles; ++k) {
      netlist.add_wires(bundle_a[k], bundle_b[k], bundle_mult[k]);
    }
  }
  Matrix<double> b_cost(m, m);
  Matrix<double> delay(m, m);
  std::copy(b_flat.begin(), b_flat.end(), b_cost.flat().begin());
  std::copy(d_flat.begin(), d_flat.end(), delay.flat().begin());
  PartitionTopology topology = PartitionTopology::custom(
      std::move(b_cost), std::move(delay), std::move(capacities));
  TimingConstraints timing(n);
  if (timing_canonical) {
    timing = TimingConstraints::from_sorted_pairs(n, t_a, t_b, t_bound);
  } else {
    for (std::size_t k = 0; k < num_constraints; ++k) {
      timing.add(t_a[k], t_b[k], t_bound[k]);
    }
  }
  Matrix<double> p;
  if (has_p == 1) {
    p = Matrix<double>(m, n);
    std::copy(p_flat.begin(), p_flat.end(), p.flat().begin());
  }

  auto problem = std::make_shared<PartitionProblem>(
      std::move(netlist), std::move(topology), std::move(timing), std::move(p),
      alpha, beta);
  if (std::string message = problem->validate(); !message.empty()) {
    return fail(error, "invalid problem: " + std::move(message));
  }
  out = std::move(problem);
  return true;
}

void encode_request_frame(const Request& request, std::string& out) {
  std::string payload;
  wire::Writer writer(payload);
  WireMsg type = WireMsg::kSubmit;
  switch (request.type) {
    case RequestType::kSubmit: type = WireMsg::kSubmit; break;
    case RequestType::kCancel: type = WireMsg::kCancel; break;
    case RequestType::kStats: type = WireMsg::kStats; break;
    case RequestType::kShutdown: type = WireMsg::kShutdown; break;
  }
  writer.string(request.id);
  if (request.type == RequestType::kSubmit) {
    if (request.problem != nullptr) {
      writer.u8(static_cast<std::uint8_t>(ProblemKind::kProblemStruct));
      encode_problem(*request.problem, writer);
    } else if (!request.problem_text.empty()) {
      writer.u8(static_cast<std::uint8_t>(ProblemKind::kText));
      writer.string(request.problem_text);
    } else {
      writer.u8(static_cast<std::uint8_t>(ProblemKind::kFile));
      writer.string(request.problem_file);
    }
    const SolverSpec& solver = request.solver;
    writer.string(solver.method);
    writer.svarint(solver.starts);
    writer.svarint(solver.threads);
    writer.svarint(solver.inner_threads);
    writer.svarint(solver.iterations);
    writer.varint(solver.seed);
    writer.u8(solver.validate.has_value() ? (*solver.validate ? 2 : 1) : 0);
    writer.u8(solver.presolve ? 1 : 0);
    writer.svarint(solver.presolve_rn);
    writer.string(solver.presolve_rules);
    writer.svarint(solver.ml_levels);
    writer.f64(solver.ml_min_shrink);
    writer.svarint(solver.ml_refine_passes);
    writer.f64(request.deadline_ms);
    writer.svarint(request.priority);
    writer.u8(request.cache ? 1 : 0);
    writer.u8(request.warm_start ? 1 : 0);
  }
  wire::append_frame(out, static_cast<std::uint8_t>(type), payload);
}

bool decode_submit(std::string_view payload, Request& out, std::string& error) {
  out = Request{};
  out.type = RequestType::kSubmit;
  wire::Reader reader(payload);
  std::string_view id;
  if (!reader.string(id)) return fail(error, "truncated submit frame");
  out.id = std::string(id);

  std::uint8_t kind = 0;
  if (!reader.u8(kind)) return fail(error, "truncated submit frame");
  switch (static_cast<ProblemKind>(kind)) {
    case ProblemKind::kText: {
      std::string_view text;
      if (!reader.string(text) || text.empty()) {
        return fail(error, "bad inline problem text");
      }
      out.problem_text = std::string(text);
      break;
    }
    case ProblemKind::kFile: {
      std::string_view path;
      if (!reader.string(path) || path.empty()) {
        return fail(error, "bad problem_file path");
      }
      out.problem_file = std::string(path);
      break;
    }
    case ProblemKind::kProblemStruct: {
      if (!decode_problem(reader, out.problem, error)) return false;
      break;
    }
    default:
      return fail(error, "submit requires exactly one of 'problem' (inline "
                         ".qp text), 'problem_file' (server-local path) or a "
                         "structured problem payload");
  }

  std::string_view method;
  if (!reader.string(method) || method.empty()) {
    return fail(error, "bad solver method");
  }
  out.solver.method = std::string(method);
  if (!read_i32(reader, out.solver.starts, error, "starts") ||
      !read_i32(reader, out.solver.threads, error, "threads") ||
      !read_i32(reader, out.solver.inner_threads, error, "inner_threads") ||
      !read_i32(reader, out.solver.iterations, error, "iterations")) {
    return false;
  }
  // Same bounds (and messages) as parse_request.
  if (out.solver.starts < 1) return fail(error, "'starts' must be >= 1");
  if (out.solver.threads < 0) return fail(error, "'threads' must be >= 0");
  if (out.solver.inner_threads < 0) {
    return fail(error, "'inner_threads' must be >= 0");
  }
  if (out.solver.iterations < 1) {
    return fail(error, "'iterations' must be >= 1");
  }
  if (!reader.varint(out.solver.seed)) {
    return fail(error, "truncated solver seed");
  }
  std::uint8_t validate = 0;
  if (!reader.u8(validate) || validate > 2) {
    return fail(error, "'validate' must be a 0/1/2 byte");
  }
  if (validate != 0) out.solver.validate = validate == 2;
  if (!read_bool(reader, out.solver.presolve, error, "presolve") ||
      !read_i32(reader, out.solver.presolve_rn, error, "presolve_rn")) {
    return false;
  }
  if (out.solver.presolve_rn < 0) {
    return fail(error, "'presolve_rn' must be >= 0");
  }
  std::string_view rules;
  if (!reader.string(rules)) return fail(error, "truncated presolve_rules");
  out.solver.presolve_rules = std::string(rules);
  if (!read_i32(reader, out.solver.ml_levels, error, "ml_levels")) {
    return false;
  }
  if (out.solver.ml_levels < 0) {
    return fail(error, "'ml_levels' must be >= 0 (0 = solver default)");
  }
  if (!reader.f64(out.solver.ml_min_shrink) ||
      !std::isfinite(out.solver.ml_min_shrink) ||
      out.solver.ml_min_shrink < 0.0 || out.solver.ml_min_shrink >= 1.0) {
    return fail(error, "'ml_min_shrink' must be in [0, 1)");
  }
  if (!read_i32(reader, out.solver.ml_refine_passes, error,
                "ml_refine_passes")) {
    return false;
  }
  if (out.solver.ml_refine_passes < -1) {
    return fail(error, "'ml_refine_passes' must be >= -1 (-1 = solver default)");
  }
  if (!reader.f64(out.deadline_ms) || !std::isfinite(out.deadline_ms) ||
      out.deadline_ms < 0.0) {
    return fail(error, "'deadline_ms' must be a non-negative number");
  }
  if (!read_i32(reader, out.priority, error, "priority") ||
      !read_bool(reader, out.cache, error, "cache") ||
      !read_bool(reader, out.warm_start, error, "warm_start")) {
    return false;
  }
  if (!reader.done()) return fail(error, "trailing bytes after submit payload");
  return true;
}

bool decode_cancel(std::string_view payload, Request& out, std::string& error) {
  out = Request{};
  out.type = RequestType::kCancel;
  wire::Reader reader(payload);
  std::string_view id;
  if (!reader.string(id) || !reader.done()) {
    return fail(error, "bad cancel frame");
  }
  if (id.empty()) return fail(error, "cancel requires an 'id'");
  out.id = std::string(id);
  return true;
}

void encode_result_frame(const JobResult& result, std::string& out) {
  std::string payload;
  wire::Writer writer(payload);
  writer.string(result.id);
  writer.string(result.status);
  writer.string(result.reason);
  writer.string(result.solver);
  writer.u8(result.feasible ? 1 : 0);
  writer.f64(result.objective);
  writer.f64(result.best_penalized);
  writer.i32_array(result.assignment);
  writer.f64(result.queue_wait_s);
  writer.f64(result.solve_s);
  writer.svarint(result.starts_run);
  writer.svarint(result.starts_validated);
  writer.svarint(result.presolve_r0);
  writer.svarint(result.presolve_r1);
  writer.svarint(result.presolve_r2);
  writer.svarint(result.presolve_rn);
  writer.svarint(result.presolve_removed);
  writer.f64(result.presolve_s);
  writer.u8(result.cache_hit ? 1 : 0);
  writer.u8(result.warm_start ? 1 : 0);
  writer.svarint(result.eco_repairs);
  writer.svarint(result.eco_edits);
  wire::append_frame(out, static_cast<std::uint8_t>(WireMsg::kResult), payload);
}

bool decode_result(std::string_view payload, JobResult& out,
                   std::string& error) {
  out = JobResult{};
  wire::Reader reader(payload);
  std::string_view id;
  std::string_view status;
  std::string_view reason;
  std::string_view solver;
  if (!reader.string(id) || !reader.string(status) || !reader.string(reason) ||
      !reader.string(solver)) {
    return fail(error, "truncated result frame");
  }
  out.id = std::string(id);
  out.status = std::string(status);
  out.reason = std::string(reason);
  out.solver = std::string(solver);
  if (!read_bool(reader, out.feasible, error, "feasible")) return false;
  if (!reader.f64(out.objective) || !reader.f64(out.best_penalized) ||
      !reader.i32_array(out.assignment) || !reader.f64(out.queue_wait_s) ||
      !reader.f64(out.solve_s)) {
    return fail(error, "truncated result frame");
  }
  if (!read_i32(reader, out.starts_run, error, "starts_run") ||
      !read_i32(reader, out.starts_validated, error, "starts_validated") ||
      !read_i32(reader, out.presolve_r0, error, "presolve_r0") ||
      !read_i32(reader, out.presolve_r1, error, "presolve_r1") ||
      !read_i32(reader, out.presolve_r2, error, "presolve_r2") ||
      !read_i32(reader, out.presolve_rn, error, "presolve_rn") ||
      !read_i32(reader, out.presolve_removed, error, "presolve_removed")) {
    return false;
  }
  if (!reader.f64(out.presolve_s)) return fail(error, "truncated result frame");
  if (!read_bool(reader, out.cache_hit, error, "cache_hit") ||
      !read_bool(reader, out.warm_start, error, "warm_start") ||
      !read_i32(reader, out.eco_repairs, error, "eco_repairs") ||
      !read_i32(reader, out.eco_edits, error, "eco_edits")) {
    return false;
  }
  if (out.status.empty()) return fail(error, "result is missing 'status'");
  if (!reader.done()) return fail(error, "trailing bytes after result payload");
  return true;
}

void encode_reject_frame(std::string_view id, std::string_view reason,
                         std::string& out) {
  append_note_frame(WireMsg::kReject, id, reason, out);
}

void encode_error_frame(std::string_view reason, std::string& out) {
  append_note_frame(WireMsg::kError, {}, reason, out);
}

void encode_stats_reply_frame(std::string_view stats_json, std::string& out) {
  append_note_frame(WireMsg::kStatsReply, {}, stats_json, out);
}

void encode_cancel_ack_frame(std::string_view id, std::string_view status,
                             std::string& out) {
  append_note_frame(WireMsg::kCancelAck, id, status, out);
}

void encode_shutdown_ack_frame(std::string_view status, std::string& out) {
  append_note_frame(WireMsg::kShutdownAck, {}, status, out);
}

bool decode_note(std::string_view payload, std::string& id, std::string& text,
                 std::string& error) {
  wire::Reader reader(payload);
  std::string_view id_view;
  std::string_view text_view;
  if (!reader.string(id_view) || !reader.string(text_view) || !reader.done()) {
    return fail(error, "bad note frame");
  }
  id = std::string(id_view);
  text = std::string(text_view);
  return true;
}

}  // namespace qbp::service
