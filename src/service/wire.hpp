// Binary message codec for the qbpartd wire protocol: direct encode /
// decode between util/wire frames and the protocol structs (Request,
// JobResult) with no intermediate JSON value tree on the hot path.
//
// Framing (docs/PROTOCOL.md): every message is one util/wire frame whose
// type byte is a WireMsg below.  NDJSON remains the default edge format;
// a connection opts into binary implicitly by starting with the frame
// magic (server auto-detect) or explicitly via --wire binary.
//
// Determinism contract: doubles travel as raw IEEE-754 bits and a submit
// can carry the fully parsed problem (kProblemStruct).  When the payload
// is in canonical order (strictly sorted merged bundles and constraint
// pairs -- what encode_problem always emits) the server builds the
// normalized CSR structures directly from the arrays
// (Netlist::from_sorted_parts / TimingConstraints::from_sorted_pairs); a
// non-canonical payload falls back to replaying the text parser's
// construction sequence (core/problem_io.cpp).  Both paths end in
// PartitionProblem::validate() and produce value-identical instances:
// same content fingerprint, same cache behaviour, bit-identical solver
// results across framings.
//
// Decoders never throw or abort on malformed payloads; they return false
// with a one-line error (the caller answers with an error frame and fails
// only that connection).  Every structural guard of the text parser
// (partition / bundle / total-wire caps, endpoint ranges, positive
// multiplicities, finite bounds) is mirrored here so hostile payloads
// cannot reach a QBP_CHECK abort inside the core types.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "core/problem.hpp"
#include "service/protocol.hpp"
#include "util/wire.hpp"

namespace qbp::service {

/// Frame type byte (util/wire header offset 5).  Values are wire ABI:
/// append only, never renumber.
enum class WireMsg : std::uint8_t {
  // Requests (client -> server).
  kSubmit = 1,
  kCancel = 2,
  kStats = 3,
  kShutdown = 4,
  // Responses (server -> client).
  kResult = 5,
  kReject = 6,
  kError = 7,
  kStatsReply = 8,   // payload: the stats JSON text (cold debug surface)
  kCancelAck = 9,
  kShutdownAck = 10,
};

/// How a submit payload carries its problem.
enum class ProblemKind : std::uint8_t {
  kText = 1,           // inline .qp source (server parses, as NDJSON does)
  kFile = 2,           // server-local path
  kProblemStruct = 3,  // structured payload, zero-parse on the server
};

/// Encode `request` as one complete frame appended to `out`.  Submits
/// prefer request.problem (kProblemStruct) when set, then problem_text,
/// then problem_file -- matching what decode_submit reconstructs.
void encode_request_frame(const Request& request, std::string& out);

/// Decode a kSubmit payload.  Mirrors parse_request's validation rules and
/// messages; a kProblemStruct payload additionally materializes
/// `out.problem` so run_job can skip the text parse entirely.
[[nodiscard]] bool decode_submit(std::string_view payload, Request& out,
                                 std::string& error);
/// Decode a kCancel payload (id only; id must be non-empty).
[[nodiscard]] bool decode_cancel(std::string_view payload, Request& out,
                                 std::string& error);

/// Encode a finished job as one complete kResult frame appended to `out`.
void encode_result_frame(const JobResult& result, std::string& out);
[[nodiscard]] bool decode_result(std::string_view payload, JobResult& out,
                                 std::string& error);

/// Non-result responses.  The ack/reject/error payloads are two strings:
/// (id, reason-or-status); kError and kStatsReply carry id-less text.
void encode_reject_frame(std::string_view id, std::string_view reason,
                         std::string& out);
void encode_error_frame(std::string_view reason, std::string& out);
void encode_stats_reply_frame(std::string_view stats_json, std::string& out);
void encode_cancel_ack_frame(std::string_view id, std::string_view status,
                             std::string& out);
void encode_shutdown_ack_frame(std::string_view status, std::string& out);
/// Decode the (id, text) payload shared by kReject / kCancelAck; kError /
/// kShutdownAck / kStatsReply use an empty id and text only.
[[nodiscard]] bool decode_note(std::string_view payload, std::string& id,
                               std::string& text, std::string& error);

/// Structured problem payload, shared by submit encode/decode and the
/// round-trip tests.  encode_problem requires a constructed (finalized)
/// PartitionProblem so the emitted bundle list is canonical.
void encode_problem(const PartitionProblem& problem, wire::Writer& writer);
[[nodiscard]] bool decode_problem(wire::Reader& reader,
                                  std::shared_ptr<const PartitionProblem>& out,
                                  std::string& error);

}  // namespace qbp::service
