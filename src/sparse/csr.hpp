// Compressed-sparse-row matrix.
//
// This is the backbone of the paper's Section 4.3 speedup: the MN x MN cost
// matrix Q-hat is never materialized; instead the connection matrix A and
// the timing-constraint matrix Dc are stored in CSR form and Q-hat entries
// are generated on demand (see core/qhat.hpp).  For a circuit like cktf
// (N=607, M=16) the dense Q-hat would hold (MN)^2 ~ 94 million entries while
// the CSR inputs hold a few thousand.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "util/check.hpp"

namespace qbp {

/// One stored entry of a sparse matrix (row-major triplet).
template <typename T>
struct Triplet {
  std::int32_t row = 0;
  std::int32_t col = 0;
  T value{};

  friend bool operator==(const Triplet&, const Triplet&) = default;
};

template <typename T>
class Csr {
 public:
  Csr() = default;

  /// Build from triplets; duplicate (row, col) entries are combined by
  /// addition (the natural semantics for wire multiplicities).
  /// Entries whose value combines to T{} are kept -- callers that want
  /// pruning call `prune()` explicitly, because a stored zero can be
  /// meaningful (e.g. a timing constraint of zero slack).
  static Csr from_triplets(std::int32_t rows, std::int32_t cols,
                           std::vector<Triplet<T>> triplets);

  /// Build the symmetric n x n matrix S with S[a][b] = S[b][a] = value for
  /// each (a[k], b[k], values[k]) pair, without the from_triplets sort: two
  /// counting passes, O(n + pairs).  Requires the pair list in canonical
  /// upper-triangle order -- strictly ascending by (a, b) with a < b -- which
  /// is verified in one linear pass (the pairs arrive from possibly hostile
  /// wire frames; a violation is a contract failure, not a malformed
  /// matrix).  Produces exactly the CSR that from_triplets would for the
  /// symmetrized triplet list; this is the wire decoder's fast path for
  /// frames that ship pairs in canonical (re-encoded) order.
  static Csr from_symmetric_pairs(std::int32_t n,
                                  std::span<const std::int32_t> a,
                                  std::span<const std::int32_t> b,
                                  std::span<const T> values);

  [[nodiscard]] std::int32_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::int32_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t nonzeros() const noexcept { return values_.size(); }

  /// Column indices of stored entries in `row`, ascending.
  [[nodiscard]] std::span<const std::int32_t> row_indices(std::int32_t row) const noexcept {
    QBP_DCHECK(row >= 0 && row < rows_);
    return {col_index_.data() + row_start_[row],
            static_cast<std::size_t>(row_start_[row + 1] - row_start_[row])};
  }

  /// Values of stored entries in `row`, parallel to row_indices().
  [[nodiscard]] std::span<const T> row_values(std::int32_t row) const noexcept {
    QBP_DCHECK(row >= 0 && row < rows_);
    return {values_.data() + row_start_[row],
            static_cast<std::size_t>(row_start_[row + 1] - row_start_[row])};
  }

  /// Stored value at (row, col), or `fallback` when the entry is absent.
  [[nodiscard]] T value_or(std::int32_t row, std::int32_t col, T fallback) const noexcept {
    const auto cols_span = row_indices(row);
    const auto it = std::lower_bound(cols_span.begin(), cols_span.end(), col);
    if (it == cols_span.end() || *it != col) return fallback;
    return values_[static_cast<std::size_t>(
        row_start_[row] + (it - cols_span.begin()))];
  }

  [[nodiscard]] bool contains(std::int32_t row, std::int32_t col) const noexcept {
    const auto cols_span = row_indices(row);
    return std::binary_search(cols_span.begin(), cols_span.end(), col);
  }

  /// Transposed copy (used to walk the columns of A in the eta gather).
  [[nodiscard]] Csr transposed() const;

  /// Symmetrized copy: S = this + this^T (entry-wise addition).
  [[nodiscard]] Csr symmetrized() const;

  /// Copy with all T{}-valued entries removed.
  [[nodiscard]] Csr pruned() const;

  /// Sum of all stored values.
  [[nodiscard]] T sum() const noexcept {
    T total{};
    for (const T& v : values_) total += v;
    return total;
  }

  /// Sum of absolute values of all stored entries (used by the Theorem 1
  /// penalty bound U > 2 * sum |q|).
  [[nodiscard]] double abs_sum() const noexcept {
    double total = 0;
    for (const T& v : values_) total += v < T{} ? -static_cast<double>(v)
                                                : static_cast<double>(v);
    return total;
  }

  /// Visit every stored entry as (row, col, value).
  template <typename Visitor>
  void for_each(Visitor&& visit) const {
    for (std::int32_t r = 0; r < rows_; ++r) {
      for (std::int64_t k = row_start_[r]; k < row_start_[r + 1]; ++k) {
        visit(r, col_index_[static_cast<std::size_t>(k)],
              values_[static_cast<std::size_t>(k)]);
      }
    }
  }

  friend bool operator==(const Csr& a, const Csr& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ &&
           a.row_start_ == b.row_start_ && a.col_index_ == b.col_index_ &&
           a.values_ == b.values_;
  }

 private:
  std::int32_t rows_ = 0;
  std::int32_t cols_ = 0;
  std::vector<std::int64_t> row_start_;  // size rows_+1
  std::vector<std::int32_t> col_index_;  // size nnz
  std::vector<T> values_;                // size nnz
};

template <typename T>
Csr<T> Csr<T>::from_triplets(std::int32_t rows, std::int32_t cols,
                             std::vector<Triplet<T>> triplets) {
  QBP_CHECK(rows >= 0 && cols >= 0)
      << "Csr shape must be non-negative (" << rows << " x " << cols << ")";
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet<T>& a, const Triplet<T>& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  // Combine duplicates by addition.  The range checks stay on in release:
  // triplets arrive from parsed (possibly hostile) inputs, and an
  // out-of-range entry must surface as a contract violation, not a wild
  // write when the CSR is later indexed.
  std::size_t out = 0;
  for (std::size_t k = 0; k < triplets.size(); ++k) {
    QBP_CHECK(triplets[k].row >= 0 && triplets[k].row < rows)
        << "triplet row " << triplets[k].row << " outside [0, " << rows << ")";
    QBP_CHECK(triplets[k].col >= 0 && triplets[k].col < cols)
        << "triplet col " << triplets[k].col << " outside [0, " << cols << ")";
    if (out > 0 && triplets[out - 1].row == triplets[k].row &&
        triplets[out - 1].col == triplets[k].col) {
      triplets[out - 1].value += triplets[k].value;
    } else {
      triplets[out++] = triplets[k];
    }
  }
  triplets.resize(out);

  Csr matrix;
  matrix.rows_ = rows;
  matrix.cols_ = cols;
  matrix.row_start_.assign(static_cast<std::size_t>(rows) + 1, 0);
  matrix.col_index_.reserve(triplets.size());
  matrix.values_.reserve(triplets.size());
  for (const auto& t : triplets) {
    ++matrix.row_start_[static_cast<std::size_t>(t.row) + 1];
    matrix.col_index_.push_back(t.col);
    matrix.values_.push_back(t.value);
  }
  for (std::int32_t r = 0; r < rows; ++r) {
    matrix.row_start_[static_cast<std::size_t>(r) + 1] +=
        matrix.row_start_[static_cast<std::size_t>(r)];
  }
  return matrix;
}

template <typename T>
Csr<T> Csr<T>::from_symmetric_pairs(std::int32_t n,
                                    std::span<const std::int32_t> a,
                                    std::span<const std::int32_t> b,
                                    std::span<const T> values) {
  QBP_CHECK(n >= 0) << "Csr shape must be non-negative (" << n << " x " << n
                    << ")";
  QBP_CHECK(a.size() == b.size() && a.size() == values.size())
      << "pair arrays must have equal lengths";
  for (std::size_t k = 0; k < a.size(); ++k) {
    QBP_CHECK(a[k] >= 0 && a[k] < b[k] && b[k] < n)
        << "pair (" << a[k] << ", " << b[k]
        << ") not upper-triangle in [0, " << n << ")";
    QBP_CHECK(k == 0 || a[k - 1] < a[k] || (a[k - 1] == a[k] && b[k - 1] < b[k]))
        << "pairs must be strictly ascending by (a, b)";
  }

  Csr matrix;
  matrix.rows_ = n;
  matrix.cols_ = n;
  matrix.row_start_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (std::size_t k = 0; k < a.size(); ++k) {
    ++matrix.row_start_[static_cast<std::size_t>(a[k]) + 1];
    ++matrix.row_start_[static_cast<std::size_t>(b[k]) + 1];
  }
  for (std::int32_t r = 0; r < n; ++r) {
    matrix.row_start_[static_cast<std::size_t>(r) + 1] +=
        matrix.row_start_[static_cast<std::size_t>(r)];
  }
  matrix.col_index_.resize(2 * a.size());
  matrix.values_.resize(2 * a.size());
  std::vector<std::int64_t> cursor(matrix.row_start_.begin(),
                                   matrix.row_start_.end() - 1);
  // Row j's columns below the diagonal all come from pairs with b == j
  // (their a's ascend with the pair order), the columns above it from pairs
  // with a == j (b's ascend likewise); filling the lower half first keeps
  // every row's column list ascending, as from_triplets' sort would.
  for (std::size_t k = 0; k < a.size(); ++k) {
    const auto slot =
        static_cast<std::size_t>(cursor[static_cast<std::size_t>(b[k])]++);
    matrix.col_index_[slot] = a[k];
    matrix.values_[slot] = values[k];
  }
  for (std::size_t k = 0; k < a.size(); ++k) {
    const auto slot =
        static_cast<std::size_t>(cursor[static_cast<std::size_t>(a[k])]++);
    matrix.col_index_[slot] = b[k];
    matrix.values_[slot] = values[k];
  }
  return matrix;
}

template <typename T>
Csr<T> Csr<T>::transposed() const {
  std::vector<Triplet<T>> triplets;
  triplets.reserve(nonzeros());
  for_each([&](std::int32_t r, std::int32_t c, const T& v) {
    triplets.push_back({c, r, v});
  });
  return from_triplets(cols_, rows_, std::move(triplets));
}

template <typename T>
Csr<T> Csr<T>::symmetrized() const {
  QBP_CHECK_EQ(rows_, cols_) << "symmetrized() requires a square matrix";
  std::vector<Triplet<T>> triplets;
  triplets.reserve(2 * nonzeros());
  for_each([&](std::int32_t r, std::int32_t c, const T& v) {
    triplets.push_back({r, c, v});
    triplets.push_back({c, r, v});
  });
  return from_triplets(rows_, cols_, std::move(triplets));
}

template <typename T>
Csr<T> Csr<T>::pruned() const {
  std::vector<Triplet<T>> triplets;
  triplets.reserve(nonzeros());
  for_each([&](std::int32_t r, std::int32_t c, const T& v) {
    if (!(v == T{})) triplets.push_back({r, c, v});
  });
  return from_triplets(rows_, cols_, std::move(triplets));
}

}  // namespace qbp
