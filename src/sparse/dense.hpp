// Row-major dense matrix.
//
// Used for the small M x M partition matrices (B, D), the M x N linear cost
// matrix P, and -- in tests only -- for materializing Q-hat on tiny
// instances to validate the implicit representation against the paper's
// worked example (Section 3.3).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/check.hpp"

namespace qbp {

template <typename T>
class Matrix {
 public:
  Matrix() = default;

  Matrix(std::int32_t rows, std::int32_t cols, T fill = T{})
      : rows_(rows),
        cols_(cols),
        data_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols),
              fill) {
    QBP_CHECK(rows >= 0 && cols >= 0)
        << "Matrix shape must be non-negative (" << rows << " x " << cols
        << ")";
  }

  /// Build from nested initializer-style data; every row must have `cols`
  /// entries.  Convenient for writing the paper's example matrices in tests.
  static Matrix from_rows(const std::vector<std::vector<T>>& rows) {
    const std::int32_t r = static_cast<std::int32_t>(rows.size());
    const std::int32_t c = r > 0 ? static_cast<std::int32_t>(rows.front().size()) : 0;
    Matrix matrix(r, c);
    for (std::int32_t i = 0; i < r; ++i) {
      QBP_CHECK_EQ(
          static_cast<std::int32_t>(rows[static_cast<std::size_t>(i)].size()), c)
          << "ragged row " << i << " in Matrix::from_rows";
      for (std::int32_t j = 0; j < c; ++j) {
        matrix(i, j) = rows[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
      }
    }
    return matrix;
  }

  [[nodiscard]] std::int32_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::int32_t cols() const noexcept { return cols_; }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] T& operator()(std::int32_t row, std::int32_t col) noexcept {
    QBP_DCHECK(row >= 0 && row < rows_ && col >= 0 && col < cols_);
    return data_[static_cast<std::size_t>(row) * cols_ + col];
  }

  [[nodiscard]] const T& operator()(std::int32_t row, std::int32_t col) const noexcept {
    QBP_DCHECK(row >= 0 && row < rows_ && col >= 0 && col < cols_);
    return data_[static_cast<std::size_t>(row) * cols_ + col];
  }

  [[nodiscard]] std::span<T> row(std::int32_t r) noexcept {
    QBP_DCHECK(r >= 0 && r < rows_);
    return {data_.data() + static_cast<std::size_t>(r) * cols_,
            static_cast<std::size_t>(cols_)};
  }

  [[nodiscard]] std::span<const T> row(std::int32_t r) const noexcept {
    QBP_DCHECK(r >= 0 && r < rows_);
    return {data_.data() + static_cast<std::size_t>(r) * cols_,
            static_cast<std::size_t>(cols_)};
  }

  /// Whole storage as one row-major span -- the binary wire codec bulk
  /// copies matrices through this without a per-element loop.
  [[nodiscard]] std::span<const T> flat() const noexcept {
    return {data_.data(), data_.size()};
  }
  [[nodiscard]] std::span<T> flat() noexcept {
    return {data_.data(), data_.size()};
  }

  void fill(T value) { std::fill(data_.begin(), data_.end(), value); }

  [[nodiscard]] Matrix transposed() const {
    Matrix result(cols_, rows_);
    for (std::int32_t r = 0; r < rows_; ++r) {
      for (std::int32_t c = 0; c < cols_; ++c) result(c, r) = (*this)(r, c);
    }
    return result;
  }

  /// True when the matrix equals its transpose (requires square shape).
  [[nodiscard]] bool is_symmetric() const noexcept {
    if (rows_ != cols_) return false;
    for (std::int32_t r = 0; r < rows_; ++r) {
      for (std::int32_t c = r + 1; c < cols_; ++c) {
        if (!((*this)(r, c) == (*this)(c, r))) return false;
      }
    }
    return true;
  }

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  std::int32_t rows_ = 0;
  std::int32_t cols_ = 0;
  std::vector<T> data_;
};

}  // namespace qbp
