#include "timing/constraints.hpp"

#include <algorithm>
#include <cmath>

#include "timing/timing_graph.hpp"
#include "util/rng.hpp"

#include "util/check.hpp"

namespace qbp {

void TimingConstraints::add(ComponentId j1, ComponentId j2, double max_delay) {
  // Boundary checks stay on in release: constraints arrive from parsed
  // problem files and the service protocol.
  QBP_CHECK_NE(j1, j2) << "a timing constraint needs two distinct components";
  QBP_CHECK(j1 >= 0 && j1 < num_components_ && j2 >= 0 && j2 < num_components_)
      << "constraint endpoints (" << j1 << ", " << j2 << ") outside [0, "
      << num_components_ << ")";
  QBP_CHECK(max_delay >= 0.0 && std::isfinite(max_delay))
      << "constraint bound must be finite and non-negative, got " << max_delay;
  if (j1 > j2) std::swap(j1, j2);
  pending_.push_back({j1, j2, max_delay});
  dirty_ = true;
}

TimingConstraints TimingConstraints::from_sorted_pairs(
    std::int32_t num_components, std::span<const std::int32_t> j1,
    std::span<const std::int32_t> j2, std::span<const double> bounds) {
  TimingConstraints timing(num_components);
  QBP_CHECK(j1.size() == j2.size() && j1.size() == bounds.size())
      << "constraint arrays must have equal lengths";
  timing.pending_.reserve(j1.size());
  for (std::size_t k = 0; k < j1.size(); ++k) {
    // Ordering and endpoint ranges are checked by from_symmetric_pairs.
    QBP_CHECK(bounds[k] >= 0.0 && std::isfinite(bounds[k]))
        << "constraint bound must be finite and non-negative, got "
        << bounds[k];
    timing.pending_.push_back({j1[k], j2[k], bounds[k]});
  }
  timing.matrix_ =
      Csr<double>::from_symmetric_pairs(num_components, j1, j2, bounds);
  timing.dirty_ = false;
  return timing;
}

void TimingConstraints::rebuild() const {
  if (!dirty_ && matrix_.rows() == num_components_) return;
  std::sort(pending_.begin(), pending_.end(),
            [](const Triplet<double>& a, const Triplet<double>& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  // Duplicate pairs keep the tightest bound.
  std::size_t out = 0;
  for (std::size_t k = 0; k < pending_.size(); ++k) {
    if (out > 0 && pending_[out - 1].row == pending_[k].row &&
        pending_[out - 1].col == pending_[k].col) {
      pending_[out - 1].value = std::min(pending_[out - 1].value, pending_[k].value);
    } else {
      pending_[out++] = pending_[k];
    }
  }
  pending_.resize(out);

  std::vector<Triplet<double>> symmetric;
  symmetric.reserve(2 * pending_.size());
  for (const auto& t : pending_) {
    symmetric.push_back(t);
    symmetric.push_back({t.col, t.row, t.value});
  }
  matrix_ = Csr<double>::from_triplets(num_components_, num_components_,
                                       std::move(symmetric));
  dirty_ = false;
}

std::int64_t TimingConstraints::count() const {
  rebuild();
  return static_cast<std::int64_t>(matrix_.nonzeros() / 2);
}

double TimingConstraints::max_delay(ComponentId j1, ComponentId j2) const {
  rebuild();
  return matrix_.value_or(j1, j2, kUnconstrained);
}

const Csr<double>& TimingConstraints::matrix() const {
  rebuild();
  return matrix_;
}

std::int64_t TimingConstraints::violations(const Assignment& assignment,
                                           const PartitionTopology& topology) const {
  rebuild();
  std::int64_t violated = 0;
  matrix_.for_each([&](std::int32_t j1, std::int32_t j2, double bound) {
    if (j1 >= j2) return;  // visit each unordered pair once
    const PartitionId p1 = assignment[j1];
    const PartitionId p2 = assignment[j2];
    if (p1 == Assignment::kUnassigned || p2 == Assignment::kUnassigned) return;
    if (topology.delay(p1, p2) > bound || topology.delay(p2, p1) > bound) {
      ++violated;
    }
  });
  return violated;
}

bool TimingConstraints::component_feasible_at(const Assignment& assignment,
                                              const PartitionTopology& topology,
                                              ComponentId component,
                                              PartitionId target) const {
  return component_feasible_at(assignment, topology, component, target,
                               component, target);
}

bool TimingConstraints::component_feasible_at(
    const Assignment& assignment, const PartitionTopology& topology,
    ComponentId component, PartitionId target, ComponentId override_component,
    PartitionId override_partition) const {
  rebuild();
  const auto partner_ids = partners(component);
  const auto partner_bounds = bounds(component);
  for (std::size_t k = 0; k < partner_ids.size(); ++k) {
    const ComponentId partner = partner_ids[k];
    PartitionId partner_partition = partner == override_component
                                        ? override_partition
                                        : assignment[partner];
    if (partner == component) partner_partition = target;  // defensive; no self pairs
    if (partner_partition == Assignment::kUnassigned) continue;
    const double bound = partner_bounds[k];
    if (topology.delay(target, partner_partition) > bound ||
        topology.delay(partner_partition, target) > bound) {
      return false;
    }
  }
  return true;
}

TimingConstraints generate_timing_constraints(
    const Netlist& netlist, std::span<const std::int32_t> reference,
    const PartitionTopology& topology, const TimingSpec& spec) {
  const std::int32_t n = netlist.num_components();
  QBP_CHECK_EQ(static_cast<std::size_t>(n), reference.size());
  QBP_CHECK_LE(spec.target_count, static_cast<std::int64_t>(n) * (n - 1) / 2);

  Rng rng(spec.seed);
  Rng delay_rng = rng.fork(11);
  Rng margin_rng = rng.fork(12);
  Rng fill_rng = rng.fork(13);

  std::vector<double> intrinsic(static_cast<std::size_t>(n));
  for (auto& d : intrinsic) d = delay_rng.next_double(spec.delay_min, spec.delay_max);
  const TimingGraph graph = TimingGraph::build(netlist, intrinsic, spec.seed ^ 0x51edu);

  struct Candidate {
    ComponentId a;
    ComponentId b;
    double criticality;  // longest path through the pair; larger = hotter
  };
  std::vector<Candidate> candidates;
  candidates.reserve(graph.arcs().size());
  for (const TimingArc& arc : graph.arcs()) {
    candidates.push_back({std::min(arc.from, arc.to), std::max(arc.from, arc.to),
                          graph.arc_path_delay(arc)});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& x, const Candidate& y) {
              if (x.criticality != y.criticality) return x.criticality > y.criticality;
              return x.a != y.a ? x.a < y.a : x.b < y.b;
            });

  // Membership check for "pair already selected or connected".
  const auto& adjacency = netlist.connection_matrix();
  TimingConstraints constraints(n);
  std::int64_t selected = 0;

  const auto margin_of = [&]() -> double {
    const double ticket = margin_rng.next_double();
    if (ticket < spec.margin_p1) return 1.0;
    if (ticket < spec.margin_p1 + spec.margin_p2) return 2.0;
    return 3.0;
  };

  const auto select_pair = [&](ComponentId a, ComponentId b) {
    const double base = topology.delay(reference[static_cast<std::size_t>(a)],
                                       reference[static_cast<std::size_t>(b)]);
    // Floor at 1: a bound of 0 would force exact co-location, which real
    // inter-module delay budgets do not do (driving distinct components
    // into one slot is a placement decision, not a timing constraint).
    constraints.add(a, b, std::max(1.0, base + margin_of()));
    ++selected;
  };

  std::vector<std::pair<ComponentId, ComponentId>> chosen;
  chosen.reserve(static_cast<std::size_t>(spec.target_count));
  const auto already_chosen = [&](ComponentId a, ComponentId b) {
    if (a > b) std::swap(a, b);
    return std::binary_search(chosen.begin(), chosen.end(), std::make_pair(a, b));
  };
  const auto mark_chosen = [&](ComponentId a, ComponentId b) {
    if (a > b) std::swap(a, b);
    chosen.insert(std::lower_bound(chosen.begin(), chosen.end(),
                                   std::make_pair(a, b)),
                  std::make_pair(a, b));
  };

  // Phase 1: most critical connected pairs.
  for (const Candidate& candidate : candidates) {
    if (selected >= spec.target_count) break;
    if (already_chosen(candidate.a, candidate.b)) continue;
    mark_chosen(candidate.a, candidate.b);
    select_pair(candidate.a, candidate.b);
  }

  // Phase 2: 2-hop pairs (components sharing a neighbor), hottest hubs first.
  if (selected < spec.target_count) {
    std::vector<std::int32_t> hubs(static_cast<std::size_t>(n));
    for (std::int32_t j = 0; j < n; ++j) hubs[static_cast<std::size_t>(j)] = j;
    std::sort(hubs.begin(), hubs.end(), [&](std::int32_t x, std::int32_t y) {
      const double cx = graph.up(x) + graph.down(x);
      const double cy = graph.up(y) + graph.down(y);
      return cx != cy ? cx > cy : x < y;
    });
    for (const std::int32_t hub : hubs) {
      if (selected >= spec.target_count) break;
      const auto neighbors = adjacency.row_indices(hub);
      for (std::size_t x = 0; x < neighbors.size() && selected < spec.target_count;
           ++x) {
        for (std::size_t y = x + 1;
             y < neighbors.size() && selected < spec.target_count; ++y) {
          const ComponentId a = neighbors[x];
          const ComponentId b = neighbors[y];
          if (a == b || already_chosen(a, b)) continue;
          mark_chosen(a, b);
          select_pair(a, b);
        }
      }
    }
  }

  // Phase 3 (degenerate specs only): random unrelated pairs.
  while (selected < spec.target_count) {
    const auto a = static_cast<ComponentId>(
        fill_rng.next_below(static_cast<std::uint64_t>(n)));
    const auto b = static_cast<ComponentId>(
        fill_rng.next_below(static_cast<std::uint64_t>(n)));
    if (a == b || already_chosen(a, b)) continue;
    mark_chosen(a, b);
    select_pair(a, b);
  }

  QBP_CHECK_EQ(constraints.count(), spec.target_count);
  return constraints;
}

}  // namespace qbp
