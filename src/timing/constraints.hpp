// Timing constraints: the paper's sparse Dc matrix and the C2 check
//
//   D(A(j1), A(j2)) <= Dc(j1, j2)   for all j1, j2
//
// Dc entries are symmetric maximum routing delays between component pairs;
// an absent entry means "no constraint" (Dc = infinity).  Section 5:
// "Strictly speaking, the total number of Timing Constraints should be N^2
// ... We discarded these [vacuous] constraints and only list the total
// number of critical constraints" -- this container stores exactly that
// critical subset.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "partition/assignment.hpp"
#include "partition/topology.hpp"
#include "sparse/csr.hpp"

namespace qbp {

class TimingConstraints {
 public:
  static constexpr double kUnconstrained = std::numeric_limits<double>::infinity();

  TimingConstraints() = default;
  explicit TimingConstraints(std::int32_t num_components)
      : num_components_(num_components) {}

  /// Bulk construction from pre-normalized constraint arrays: pairs
  /// strictly ascending by (j1, j2) with j1 < j2 and in range, bounds
  /// finite and non-negative.  Verified in one linear pass (QBP_CHECK; the
  /// arrays arrive from possibly hostile wire frames), then the symmetric
  /// Dc matrix is built directly in O(N + pairs) -- no per-add replay, no
  /// rebuild() sort.  Value-identical to the add() path on the same data;
  /// the wire decoder uses this for frames in canonical (re-encoded) order.
  [[nodiscard]] static TimingConstraints from_sorted_pairs(
      std::int32_t num_components, std::span<const std::int32_t> j1,
      std::span<const std::int32_t> j2, std::span<const double> bounds);

  [[nodiscard]] std::int32_t num_components() const noexcept {
    return num_components_;
  }

  /// Add (or tighten) a symmetric constraint between distinct components.
  /// Multiple adds for a pair keep the minimum (tightest) bound.
  void add(ComponentId j1, ComponentId j2, double max_delay);

  /// Number of constrained unordered pairs -- the paper's "# of Timing
  /// Constraints" column in Table I.
  [[nodiscard]] std::int64_t count() const;

  [[nodiscard]] bool empty() const { return count() == 0; }

  /// Max routing delay allowed between j1 and j2 (kUnconstrained if no
  /// constraint was added for the pair).
  [[nodiscard]] double max_delay(ComponentId j1, ComponentId j2) const;

  /// The symmetric sparse Dc matrix (both directions stored).  The lazy
  /// rebuild after add() is NOT thread-safe: build it once
  /// (PartitionProblem's constructor does) before sharing across threads.
  [[nodiscard]] const Csr<double>& matrix() const;

  /// Components constrained against `j`, with their bounds.
  [[nodiscard]] std::span<const std::int32_t> partners(ComponentId j) const {
    return matrix().row_indices(j);
  }
  [[nodiscard]] std::span<const double> bounds(ComponentId j) const {
    return matrix().row_values(j);
  }

  /// C2 check for a complete assignment; counts violated unordered pairs.
  [[nodiscard]] std::int64_t violations(const Assignment& assignment,
                                        const PartitionTopology& topology) const;

  [[nodiscard]] bool is_feasible(const Assignment& assignment,
                                 const PartitionTopology& topology) const {
    return violations(assignment, topology) == 0;
  }

  /// Would every constraint involving `component` hold if it sat in
  /// `target` (all other components as in `assignment`)?  O(degree in Dc).
  /// Constraints against unassigned partners are ignored.
  [[nodiscard]] bool component_feasible_at(const Assignment& assignment,
                                           const PartitionTopology& topology,
                                           ComponentId component,
                                           PartitionId target) const;

  /// As above but with one partner's partition overridden -- used when
  /// evaluating a pairwise swap.
  [[nodiscard]] bool component_feasible_at(const Assignment& assignment,
                                           const PartitionTopology& topology,
                                           ComponentId component,
                                           PartitionId target,
                                           ComponentId override_component,
                                           PartitionId override_partition) const;

 private:
  std::int32_t num_components_ = 0;
  // Accumulated (j1 < j2) constraints before finalization.
  mutable std::vector<Triplet<double>> pending_;
  mutable bool dirty_ = false;
  mutable Csr<double> matrix_;

  void rebuild() const;
};

/// Configuration for synthesizing a critical-constraint set.
struct TimingSpec {
  /// Exact number of constrained unordered pairs to produce.
  std::int64_t target_count = 0;
  /// Cycle time as a multiple of the critical path: T = (1 + cycle_slack) * CP.
  double cycle_slack = 0.15;
  /// Intrinsic component delays are uniform in [delay_min, delay_max].
  double delay_min = 1.0;
  double delay_max = 10.0;
  /// Probability of routing-delay margin 1 / 2 / 3 above the reference
  /// placement's delay (must sum to 1); smaller margins = tighter problem.
  /// Bounds are floored at 1 (a 0 bound would force co-location).
  double margin_p1 = 0.35;
  double margin_p2 = 0.40;
  double margin_p3 = 0.25;
  std::uint64_t seed = 1;
};

/// Synthesize `spec.target_count` critical constraints for `netlist`.
///
/// Pairs are ranked by timing criticality (longest path through the
/// connection, from a TimingGraph built with the given seed); the most
/// critical connected pairs are constrained first, then 2-hop pairs if the
/// target exceeds the number of connected pairs.  Every constraint is set to
/// D(reference(j1), reference(j2)) + margin, so `reference` (the generator's
/// hidden placement) is timing-feasible by construction and the instance is
/// guaranteed to be satisfiable.
[[nodiscard]] TimingConstraints generate_timing_constraints(
    const Netlist& netlist, std::span<const std::int32_t> reference,
    const PartitionTopology& topology, const TimingSpec& spec);

}  // namespace qbp
