#include "timing/timing_graph.hpp"

#include <algorithm>
#include <numeric>

#include "util/check.hpp"

namespace qbp {

TimingGraph TimingGraph::build(const Netlist& netlist,
                               std::span<const double> intrinsic_delay,
                               std::uint64_t seed) {
  const std::int32_t n = netlist.num_components();
  QBP_CHECK_EQ(static_cast<std::size_t>(n), intrinsic_delay.size());

  TimingGraph graph;
  Rng rng(seed);
  graph.rank_ = random_permutation(n, rng);

  const_cast<Netlist&>(netlist).finalize();
  graph.arcs_.reserve(netlist.bundles().size());
  for (const WireBundle& bundle : netlist.bundles()) {
    const bool forward = graph.rank_[static_cast<std::size_t>(bundle.a)] <
                         graph.rank_[static_cast<std::size_t>(bundle.b)];
    graph.arcs_.push_back({forward ? bundle.a : bundle.b,
                           forward ? bundle.b : bundle.a, bundle.multiplicity});
  }

  // Process components in rank order; arcs always go from lower to higher
  // rank, so a single forward sweep computes `up` and a backward sweep
  // computes `down`.
  std::vector<std::int32_t> by_rank(static_cast<std::size_t>(n));
  std::iota(by_rank.begin(), by_rank.end(), 0);
  std::sort(by_rank.begin(), by_rank.end(), [&](std::int32_t a, std::int32_t b) {
    return graph.rank_[static_cast<std::size_t>(a)] <
           graph.rank_[static_cast<std::size_t>(b)];
  });

  // Adjacency by arc (successors and predecessors).
  std::vector<std::vector<std::int32_t>> successors(static_cast<std::size_t>(n));
  std::vector<std::vector<std::int32_t>> predecessors(static_cast<std::size_t>(n));
  for (const TimingArc& arc : graph.arcs_) {
    successors[static_cast<std::size_t>(arc.from)].push_back(arc.to);
    predecessors[static_cast<std::size_t>(arc.to)].push_back(arc.from);
  }

  graph.up_.assign(static_cast<std::size_t>(n), 0.0);
  graph.down_.assign(static_cast<std::size_t>(n), 0.0);
  for (const std::int32_t v : by_rank) {
    double best = 0.0;
    for (const std::int32_t u : predecessors[static_cast<std::size_t>(v)]) {
      best = std::max(best, graph.up_[static_cast<std::size_t>(u)]);
    }
    graph.up_[static_cast<std::size_t>(v)] =
        best + intrinsic_delay[static_cast<std::size_t>(v)];
  }
  for (auto it = by_rank.rbegin(); it != by_rank.rend(); ++it) {
    const std::int32_t v = *it;
    double best = 0.0;
    for (const std::int32_t w : successors[static_cast<std::size_t>(v)]) {
      best = std::max(best, graph.down_[static_cast<std::size_t>(w)]);
    }
    graph.down_[static_cast<std::size_t>(v)] =
        best + intrinsic_delay[static_cast<std::size_t>(v)];
  }

  graph.critical_path_ = 0.0;
  for (std::int32_t v = 0; v < n; ++v) {
    graph.critical_path_ =
        std::max(graph.critical_path_, graph.up_[static_cast<std::size_t>(v)]);
  }
  return graph;
}

}  // namespace qbp
