// Static-timing substrate.
//
// The paper says timing constraints "are driven by system cycle time and can
// be derived from the delay equations and intrinsic delay in combinational
// circuit components" but, evaluating on proprietary circuits, never shows
// that derivation.  This module supplies the missing substrate: a levelized
// combinational DAG over the netlist with per-component intrinsic delays,
// longest-path arrival/required analysis, and per-connection criticality.
// The constraint generator (timing/constraints.hpp) uses the criticality
// ranking to decide *which* pairs receive max-routing-delay constraints,
// exactly the "large number of these constraints are ... discarded; only
// critical constraints" selection of Section 5.
//
// Orientation: a netlist's wire bundles are undirected, so the graph orients
// every bundle from the lower-ranked to the higher-ranked endpoint of a
// deterministic random ranking -- acyclic by construction, with rank
// playing the role of logic depth.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"
#include "util/rng.hpp"

namespace qbp {

struct TimingArc {
  ComponentId from = 0;
  ComponentId to = 0;
  std::int32_t multiplicity = 1;
};

class TimingGraph {
 public:
  /// Build from a netlist.  `intrinsic_delay[j]` is the paper's intrinsic
  /// delay of component j; `seed` fixes the rank permutation.
  static TimingGraph build(const Netlist& netlist,
                           std::span<const double> intrinsic_delay,
                           std::uint64_t seed);

  [[nodiscard]] std::int32_t num_components() const noexcept {
    return static_cast<std::int32_t>(up_.size());
  }
  [[nodiscard]] const std::vector<TimingArc>& arcs() const noexcept { return arcs_; }

  /// Topological rank of each component (a permutation of 0..N-1).
  [[nodiscard]] const std::vector<std::int32_t>& rank() const noexcept {
    return rank_;
  }

  /// Longest delay of any path ending at (and including) component j.
  [[nodiscard]] double up(ComponentId j) const noexcept {
    return up_[static_cast<std::size_t>(j)];
  }

  /// Longest delay of any path starting at (and including) component j.
  [[nodiscard]] double down(ComponentId j) const noexcept {
    return down_[static_cast<std::size_t>(j)];
  }

  /// Longest path delay through the whole graph (the critical path).
  [[nodiscard]] double critical_path() const noexcept { return critical_path_; }

  /// Longest path passing through the arc (from -> to):
  /// up(from) + down(to).  Larger = more timing-critical.
  [[nodiscard]] double arc_path_delay(const TimingArc& arc) const noexcept {
    return up(arc.from) + down(arc.to);
  }

  /// Slack of an arc under cycle time T: T - arc_path_delay.  Negative slack
  /// means the arc cannot meet T even with zero routing delay.
  [[nodiscard]] double arc_slack(const TimingArc& arc, double cycle_time) const noexcept {
    return cycle_time - arc_path_delay(arc);
  }

 private:
  std::vector<TimingArc> arcs_;
  std::vector<std::int32_t> rank_;
  std::vector<double> up_;
  std::vector<double> down_;
  double critical_path_ = 0.0;
};

}  // namespace qbp
