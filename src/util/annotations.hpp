// Compile-time concurrency contracts: Clang Thread Safety Analysis macros
// plus capability-annotated synchronization wrappers.
//
// The repo's two load-bearing guarantees -- bit-identical results at any
// thread/worker count (DESIGN.md §11) and crash-free serving under hostile
// input (§10) -- were historically enforced only dynamically (TSan jobs,
// shadow validation, fuzzing).  This header promotes the locking half of
// those contracts to *build-breaking static analysis*: every mutex in the
// tree is a `sync::Mutex` capability, every guarded field carries
// QBP_GUARDED_BY, and the Clang CI job compiles with
// `-Wthread-safety -Wthread-safety-beta` as errors, so an unguarded read
// or a forgotten unlock fails the build instead of surfacing as a flaky
// bench or a rare nondeterministic objective.
//
// Under GCC (and any compiler without the attributes) every macro expands
// to nothing and the wrappers are zero-overhead forwarding shims over
// <mutex>/<condition_variable>, so non-Clang builds are bit-identical in
// behavior -- the annotations are analysis-only.
//
// Conventions (DESIGN.md §14):
//   * fields:       `std::vector<Job> heap_ QBP_GUARDED_BY(mutex_);`
//   * lock helpers: `void grow_locked(int n) QBP_REQUIRES(mu_);`
//   * raw sections: prefer `MutexLock lock(mu_);`; explicit
//     `mu_.lock()/unlock()` is allowed (the analysis tracks it) where a
//     scope does not fit, e.g. a worker loop that drops the lock to run.
//   * condvar waits: `cv_.wait(mu_)` takes the Mutex itself and asserts
//     QBP_REQUIRES(mu_), so predicate loops stay visible to the analysis:
//         while (!ready_) cv_.wait(mu_);
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__) && !defined(SWIG)
#define QBP_TS_ATTRIBUTE(x) __attribute__((x))
#else
#define QBP_TS_ATTRIBUTE(x)  // no-op outside Clang
#endif

/// Declares a class to be a capability (lockable) type.
#define QBP_CAPABILITY(x) QBP_TS_ATTRIBUTE(capability(x))
/// Declares an RAII class that acquires in its ctor, releases in its dtor.
#define QBP_SCOPED_CAPABILITY QBP_TS_ATTRIBUTE(scoped_lockable)
/// Field may only be accessed while holding the given capability.
#define QBP_GUARDED_BY(x) QBP_TS_ATTRIBUTE(guarded_by(x))
/// Pointee may only be accessed while holding the given capability.
#define QBP_PT_GUARDED_BY(x) QBP_TS_ATTRIBUTE(pt_guarded_by(x))
/// Function acquires the capability (must not be held on entry).
#define QBP_ACQUIRE(...) QBP_TS_ATTRIBUTE(acquire_capability(__VA_ARGS__))
/// Function releases the capability (must be held on entry).
#define QBP_RELEASE(...) QBP_TS_ATTRIBUTE(release_capability(__VA_ARGS__))
/// Function acquires the capability iff it returns the given value.
#define QBP_TRY_ACQUIRE(...) \
  QBP_TS_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))
/// Caller must hold the capability for the duration of the call.
#define QBP_REQUIRES(...) QBP_TS_ATTRIBUTE(requires_capability(__VA_ARGS__))
/// Caller must NOT hold the capability (deadlock prevention).
#define QBP_EXCLUDES(...) QBP_TS_ATTRIBUTE(locks_excluded(__VA_ARGS__))
/// Function returns a reference to the given capability.
#define QBP_RETURN_CAPABILITY(x) QBP_TS_ATTRIBUTE(lock_returned(x))
/// Lock-order edges for deadlock detection (-Wthread-safety-beta).
#define QBP_ACQUIRED_BEFORE(...) QBP_TS_ATTRIBUTE(acquired_before(__VA_ARGS__))
#define QBP_ACQUIRED_AFTER(...) QBP_TS_ATTRIBUTE(acquired_after(__VA_ARGS__))
/// Escape hatch -- document why at every use site.
#define QBP_NO_THREAD_SAFETY_ANALYSIS \
  QBP_TS_ATTRIBUTE(no_thread_safety_analysis)

namespace qbp::sync {

/// std::mutex as a Clang TSA capability.  libstdc++'s std::mutex carries no
/// annotations, so the analysis cannot track it directly; this wrapper is
/// the canonical fix (the pattern Abseil and the Clang docs use).
class QBP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() QBP_ACQUIRE() { mu_.lock(); }
  void unlock() QBP_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool try_lock() QBP_TRY_ACQUIRE(true) {
    return mu_.try_lock();
  }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII critical section over a sync::Mutex (std::lock_guard shape).
class QBP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) QBP_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() QBP_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable over sync::Mutex.  Waits take the Mutex itself (the
/// absl::CondVar shape) so QBP_REQUIRES keeps the analysis exact: the lock
/// is held on entry, released inside std::condition_variable::wait, and
/// re-held on return -- all invisible state changes from the analysis's
/// point of view, which is exactly what REQUIRES expresses.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mu) QBP_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();  // ownership stays with the caller's scope
  }

  template <class Clock, class Duration>
  std::cv_status wait_until(
      Mutex& mu, const std::chrono::time_point<Clock, Duration>& deadline)
      QBP_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(native, deadline);
    native.release();
    return status;
  }

  template <class Rep, class Period>
  std::cv_status wait_for(Mutex& mu,
                          const std::chrono::duration<Rep, Period>& timeout)
      QBP_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(native, timeout);
    native.release();
    return status;
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace qbp::sync
