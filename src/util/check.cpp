#include "util/check.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "util/annotations.hpp"
#include "util/log.hpp"

namespace qbp::check {

namespace {

std::atomic<int> g_fail_mode{static_cast<int>(FailMode::kAbort)};
std::atomic<std::uint64_t> g_violations{0};

// The hook is set at process startup (qbpartd) or per test; reads happen on
// the (cold) failure path only, so one mutex is plenty.
sync::Mutex g_hook_mutex;
ViolationHook g_hook  // NOLINT(cert-err58-cpp) -- default ctor is noexcept
    QBP_GUARDED_BY(g_hook_mutex);

}  // namespace

void set_fail_mode(FailMode mode) noexcept {
  g_fail_mode.store(static_cast<int>(mode), std::memory_order_relaxed);
}

FailMode fail_mode() noexcept {
  return static_cast<FailMode>(g_fail_mode.load(std::memory_order_relaxed));
}

void set_violation_hook(ViolationHook hook) {
  const sync::MutexLock lock(g_hook_mutex);
  g_hook = std::move(hook);
}

std::uint64_t violation_count() noexcept {
  return g_violations.load(std::memory_order_relaxed);
}

namespace detail {

Failure::Failure(const char* file, int line, const char* expression) {
  stream_ << "contract violation at " << file << ":" << line << ": "
          << expression << " ";
}

Failure::~Failure() noexcept(false) {
  const std::string message = stream_.str();
  g_violations.fetch_add(1, std::memory_order_relaxed);
  {
    const sync::MutexLock lock(g_hook_mutex);
    if (g_hook) g_hook(message);
  }
  switch (fail_mode()) {
    case FailMode::kThrow:
      throw ContractViolation(message);
    case FailMode::kLogAndCount:
      log::error(message);
      return;
    case FailMode::kAbort:
      break;
  }
  std::fprintf(stderr, "%s\n", message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace detail
}  // namespace qbp::check
