// Always-on contract checking for release builds.
//
// The paper states invariants (C1 capacity feasibility, C3 exactly-one-slot,
// the Theorem-1/2 penalty embedding) that the code historically guarded with
// plain `assert`, which vanishes in the RelWithDebInfo builds qbpartd ships
// with.  This header is the replacement:
//
//   QBP_CHECK(cond) << "context";          always on, streams context
//   QBP_CHECK_EQ/NE/LT/LE/GT/GE(a, b);     always on, prints both operands
//   QBP_DCHECK(cond) << "context";         debug only (compiles away under
//                                          NDEBUG, like assert)
//
// What happens on a violation is process-configurable (check::set_fail_mode):
//
//   kAbort       print to stderr and abort() -- the default, and the right
//                mode for CLIs, benches and tests;
//   kThrow       throw qbp::ContractViolation -- the mode qbpartd runs in,
//                so a hostile input or corrupted solver state fails one job
//                instead of killing the daemon;
//   kLogAndCount log via util/log, bump the violation counter, continue --
//                an audit mode for the shadow validator where the caller
//                inspects check::violation_count() afterwards.  Only safe
//                for checks whose failure the continuation can tolerate
//                (validator audits, not memory-safety guards).
//
// Every violation, in every mode, also invokes the registered hook (the job
// server points it at a `contract_violations` metrics counter) and bumps the
// process-wide counter.
//
// The CHECK_* comparison operands are evaluated a second time to build the
// failure message, so keep them side-effect free (the same discipline assert
// requires).  Streamed context after `<<` is evaluated only on failure.
#pragma once

#include <cstdint>
#include <functional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>

namespace qbp {

/// Thrown on a contract violation when the fail mode is kThrow.  what() is
/// the fully formatted message: file:line, the failed expression, operand
/// values and any streamed context.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& message)
      : std::logic_error(message) {}
};

namespace check {

enum class FailMode : int { kAbort = 0, kThrow = 1, kLogAndCount = 2 };

/// Process-wide fail mode (atomic; default kAbort).
void set_fail_mode(FailMode mode) noexcept;
[[nodiscard]] FailMode fail_mode() noexcept;

/// Observer called with the formatted message on every violation regardless
/// of mode -- e.g. the job server bumps its metrics counter here.  Replaces
/// any previous hook; an empty function clears it.
using ViolationHook = std::function<void(std::string_view message)>;
void set_violation_hook(ViolationHook hook);

/// Count of violations seen by this process (all modes).
[[nodiscard]] std::uint64_t violation_count() noexcept;

namespace detail {

/// Formats one failure and fires it from the destructor, after the caller's
/// streamed context has been appended.
class Failure {
 public:
  Failure(const char* file, int line, const char* expression);
  Failure(const Failure&) = delete;
  Failure& operator=(const Failure&) = delete;

  /// Fires the configured fail mode; may throw ContractViolation.
  ~Failure() noexcept(false);

  [[nodiscard]] std::ostream& stream() noexcept { return stream_; }

 private:
  std::ostringstream stream_;
};

/// Makes the `check-failed` branch a void expression so both arms of the
/// conditional in QBP_CHECK have the same type (the glog idiom).
struct Voidify {
  void operator&(std::ostream&) const noexcept {}
};

}  // namespace detail
}  // namespace check
}  // namespace qbp

// The switch(0) wrapper makes the macro a single statement that binds
// correctly under un-braced if/else; `&` binds looser than `<<`, so streamed
// context attaches to the Failure's stream before Voidify discards it.
#define QBP_CHECK(condition)                                          \
  switch (0)                                                          \
  case 0:                                                             \
  default:                                                            \
    (condition)                                                       \
        ? (void)0                                                     \
        : ::qbp::check::detail::Voidify{} &                           \
              ::qbp::check::detail::Failure(__FILE__, __LINE__,       \
                                            #condition)               \
                  .stream()

#define QBP_CHECK_OP_(a, b, op)                                       \
  switch (0)                                                          \
  case 0:                                                             \
  default:                                                            \
    ((a)op(b))                                                        \
        ? (void)0                                                     \
        : ::qbp::check::detail::Voidify{} &                           \
              ::qbp::check::detail::Failure(__FILE__, __LINE__,       \
                                            #a " " #op " " #b)        \
                      .stream()                                       \
                  << "(" << (a) << " vs " << (b) << ") "

#define QBP_CHECK_EQ(a, b) QBP_CHECK_OP_(a, b, ==)
#define QBP_CHECK_NE(a, b) QBP_CHECK_OP_(a, b, !=)
#define QBP_CHECK_LT(a, b) QBP_CHECK_OP_(a, b, <)
#define QBP_CHECK_LE(a, b) QBP_CHECK_OP_(a, b, <=)
#define QBP_CHECK_GT(a, b) QBP_CHECK_OP_(a, b, >)
#define QBP_CHECK_GE(a, b) QBP_CHECK_OP_(a, b, >=)

// Debug-only variant: under NDEBUG the condition is type-checked but never
// evaluated (dead `true ||` branch), so hot-path guards cost nothing in the
// builds we ship, exactly like assert -- but with streamed context in debug.
#ifdef NDEBUG
#define QBP_DCHECK(condition)                                         \
  switch (0)                                                          \
  case 0:                                                             \
  default:                                                            \
    (true || (condition))                                             \
        ? (void)0                                                     \
        : ::qbp::check::detail::Voidify{} &                           \
              ::qbp::check::detail::Failure(__FILE__, __LINE__,       \
                                            #condition)               \
                  .stream()
#else
#define QBP_DCHECK(condition) QBP_CHECK(condition)
#endif
