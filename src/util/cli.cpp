#include "util/cli.hpp"

#include <cstdio>
#include <sstream>

#include "util/strings.hpp"

namespace qbp {

CliParser::CliParser(std::string program_name, std::string description)
    : program_(std::move(program_name)), description_(std::move(description)) {}

void CliParser::add_flag(std::string_view name, bool& target, std::string_view help) {
  options_.push_back({std::string(name), Kind::kFlag, &target, std::string(help),
                      target ? "true" : "false"});
}

void CliParser::add_int(std::string_view name, std::int64_t& target,
                        std::string_view help) {
  options_.push_back({std::string(name), Kind::kInt, &target, std::string(help),
                      std::to_string(target)});
}

void CliParser::add_double(std::string_view name, double& target,
                           std::string_view help) {
  options_.push_back({std::string(name), Kind::kDouble, &target, std::string(help),
                      format_double(target, 3)});
}

void CliParser::add_string(std::string_view name, std::string& target,
                           std::string_view help) {
  options_.push_back(
      {std::string(name), Kind::kString, &target, std::string(help), target});
}

CliParser::Option* CliParser::find(std::string_view name) noexcept {
  for (auto& option : options_) {
    if (option.name == name) return &option;
  }
  return nullptr;
}

bool CliParser::assign(Option& option, std::string_view value) {
  switch (option.kind) {
    case Kind::kFlag: {
      if (value == "true" || value == "1") {
        *static_cast<bool*>(option.target) = true;
      } else if (value == "false" || value == "0") {
        *static_cast<bool*>(option.target) = false;
      } else {
        error_ = "invalid boolean for --" + option.name + ": '" +
                 std::string(value) + "'";
        return false;
      }
      return true;
    }
    case Kind::kInt: {
      long long parsed = 0;
      if (!parse_int(value, parsed)) {
        error_ = "invalid integer for --" + option.name + ": '" +
                 std::string(value) + "'";
        return false;
      }
      *static_cast<std::int64_t*>(option.target) = parsed;
      return true;
    }
    case Kind::kDouble: {
      double parsed = 0.0;
      if (!parse_double(value, parsed)) {
        error_ = "invalid number for --" + option.name + ": '" +
                 std::string(value) + "'";
        return false;
      }
      *static_cast<double*>(option.target) = parsed;
      return true;
    }
    case Kind::kString:
      *static_cast<std::string*>(option.target) = std::string(value);
      return true;
  }
  return false;
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int k = 1; k < argc; ++k) {
    std::string_view arg = argv[k];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      return true;
    }
    if (!starts_with(arg, "--")) {
      positional_.emplace_back(arg);
      continue;
    }
    std::string_view body = arg.substr(2);
    std::string_view value;
    bool has_inline_value = false;
    if (const auto eq = body.find('='); eq != std::string_view::npos) {
      value = body.substr(eq + 1);
      body = body.substr(0, eq);
      has_inline_value = true;
    }
    Option* option = find(body);
    if (option == nullptr) {
      error_ = "unknown option --" + std::string(body);
      return false;
    }
    if (option->kind == Kind::kFlag && !has_inline_value) {
      *static_cast<bool*>(option->target) = true;
      continue;
    }
    if (!has_inline_value) {
      if (k + 1 >= argc) {
        error_ = "missing value for --" + option->name;
        return false;
      }
      value = argv[++k];
    }
    if (!assign(*option, value)) return false;
  }
  return true;
}

std::optional<int> CliParser::run(int argc, const char* const* argv) {
  if (!parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", error_.c_str(), usage().c_str());
    return 1;
  }
  if (help_requested_) {
    std::printf("%s", usage().c_str());
    return 0;
  }
  return std::nullopt;
}

std::string CliParser::usage() const {
  std::ostringstream out;
  out << program_ << " — " << description_ << "\n\noptions:\n";
  for (const auto& option : options_) {
    out << "  --" << option.name;
    switch (option.kind) {
      case Kind::kFlag: break;
      case Kind::kInt: out << " <int>"; break;
      case Kind::kDouble: out << " <num>"; break;
      case Kind::kString: out << " <str>"; break;
    }
    out << "\n      " << option.help << " (default: " << option.default_text
        << ")\n";
  }
  return out.str();
}

}  // namespace qbp
