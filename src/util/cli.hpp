// Tiny declarative command-line parser for the examples and benches.
//
// Supports `--flag`, `--name value` and `--name=value`; unknown options are
// reported with the program's usage text.  Deliberately much smaller than
// getopt-style libraries: the example binaries only need a handful of knobs
// (seed, circuit name, iteration count, ...).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace qbp {

class CliParser {
 public:
  CliParser(std::string program_name, std::string description);

  /// Register options before calling parse().  `help` is shown by usage().
  void add_flag(std::string_view name, bool& target, std::string_view help);
  void add_int(std::string_view name, std::int64_t& target, std::string_view help);
  void add_double(std::string_view name, double& target, std::string_view help);
  void add_string(std::string_view name, std::string& target, std::string_view help);

  /// Parse argv; returns false (and fills error()) on malformed input.
  /// `--help` sets help_requested() and returns true without touching targets
  /// that appear after it.
  [[nodiscard]] bool parse(int argc, const char* const* argv);

  /// The boilerplate every binary used to repeat: parse argv, print the
  /// error plus usage to stderr on failure (returns exit code 1), print
  /// usage to stdout on --help (returns exit code 0).  Returns nullopt when
  /// parsing succeeded and the program should proceed.
  [[nodiscard]] std::optional<int> run(int argc, const char* const* argv);

  [[nodiscard]] const std::string& error() const noexcept { return error_; }
  [[nodiscard]] bool help_requested() const noexcept { return help_requested_; }

  /// Positional (non-option) arguments in order of appearance.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// Human-readable usage text listing all registered options.
  [[nodiscard]] std::string usage() const;

 private:
  enum class Kind { kFlag, kInt, kDouble, kString };

  struct Option {
    std::string name;  // without the leading "--"
    Kind kind;
    void* target;
    std::string help;
    std::string default_text;
  };

  [[nodiscard]] Option* find(std::string_view name) noexcept;
  [[nodiscard]] bool assign(Option& option, std::string_view value);

  std::string program_;
  std::string description_;
  std::vector<Option> options_;
  std::vector<std::string> positional_;
  std::string error_;
  bool help_requested_ = false;
};

}  // namespace qbp
