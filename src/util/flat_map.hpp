// Sorted-vector associative container for small integer-keyed maps.
//
// The sparse rows of the connection matrix A and of the timing-constraint
// matrix Dc have a handful of entries each; a sorted std::vector beats node
// containers by a wide margin there (cache locality, no per-node
// allocation).  Only the operations the library needs are provided.
#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

namespace qbp {

template <typename Key, typename Value>
class FlatMap {
 public:
  using Entry = std::pair<Key, Value>;
  using const_iterator = typename std::vector<Entry>::const_iterator;
  using iterator = typename std::vector<Entry>::iterator;

  FlatMap() = default;

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  void clear() noexcept { entries_.clear(); }
  void reserve(std::size_t capacity) { entries_.reserve(capacity); }

  [[nodiscard]] const_iterator begin() const noexcept { return entries_.begin(); }
  [[nodiscard]] const_iterator end() const noexcept { return entries_.end(); }
  [[nodiscard]] iterator begin() noexcept { return entries_.begin(); }
  [[nodiscard]] iterator end() noexcept { return entries_.end(); }

  /// Value reference for `key`, default-constructed and inserted if absent.
  Value& operator[](const Key& key) {
    auto it = lower_bound(key);
    if (it != entries_.end() && it->first == key) return it->second;
    return entries_.insert(it, Entry{key, Value{}})->second;
  }

  /// Pointer to the value for `key`, or nullptr if absent.
  [[nodiscard]] const Value* find(const Key& key) const noexcept {
    auto it = lower_bound(key);
    if (it != entries_.end() && it->first == key) return &it->second;
    return nullptr;
  }

  [[nodiscard]] Value* find(const Key& key) noexcept {
    auto it = lower_bound(key);
    if (it != entries_.end() && it->first == key) return &it->second;
    return nullptr;
  }

  [[nodiscard]] bool contains(const Key& key) const noexcept {
    return find(key) != nullptr;
  }

  /// Value for `key`, or `fallback` if absent.
  [[nodiscard]] Value value_or(const Key& key, Value fallback) const noexcept {
    const Value* found = find(key);
    return found != nullptr ? *found : fallback;
  }

  /// Remove `key` if present; returns true when something was erased.
  bool erase(const Key& key) {
    auto it = lower_bound(key);
    if (it == entries_.end() || it->first != key) return false;
    entries_.erase(it);
    return true;
  }

  friend bool operator==(const FlatMap& a, const FlatMap& b) {
    return a.entries_ == b.entries_;
  }

 private:
  [[nodiscard]] const_iterator lower_bound(const Key& key) const noexcept {
    return std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const Entry& entry, const Key& probe) { return entry.first < probe; });
  }
  [[nodiscard]] iterator lower_bound(const Key& key) noexcept {
    return std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const Entry& entry, const Key& probe) { return entry.first < probe; });
  }

  std::vector<Entry> entries_;
};

}  // namespace qbp
