#include "util/hash.hpp"

#include <cstring>

namespace qbp {

namespace {

constexpr std::uint64_t kC1 = 0x87c37b91114253d5ULL;
constexpr std::uint64_t kC2 = 0x4cf5ad432745937fULL;

constexpr std::uint64_t rotl(std::uint64_t x, int r) {
  return (x << r) | (x >> (64 - r));
}

/// MurmurHash3's 64-bit avalanche.
constexpr std::uint64_t fmix64(std::uint64_t k) {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdULL;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ULL;
  k ^= k >> 33;
  return k;
}

}  // namespace

std::string Hash128::to_hex() const {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(32, '0');
  for (int i = 0; i < 16; ++i) {
    out[static_cast<std::size_t>(i)] =
        kDigits[(hi >> (60 - 4 * i)) & 0xF];
    out[static_cast<std::size_t>(16 + i)] =
        kDigits[(lo >> (60 - 4 * i)) & 0xF];
  }
  return out;
}

void StreamHasher::absorb(std::uint64_t word) {
  // One x64/128 Murmur3 body step, alternating lanes by word parity.
  if ((words_ & 1) == 0) {
    std::uint64_t k = word * kC1;
    k = rotl(k, 31) * kC2;
    h1_ ^= k;
    h1_ = rotl(h1_, 27) + h2_;
    h1_ = h1_ * 5 + 0x52dce729ULL;
  } else {
    std::uint64_t k = word * kC2;
    k = rotl(k, 33) * kC1;
    h2_ ^= k;
    h2_ = rotl(h2_, 31) + h1_;
    h2_ = h2_ * 5 + 0x38495ab5ULL;
  }
  ++words_;
}

void StreamHasher::absorb_bytes(std::string_view bytes) {
  absorb(static_cast<std::uint64_t>(bytes.size()));
  while (bytes.size() >= 8) {
    std::uint64_t word = 0;
    std::memcpy(&word, bytes.data(), 8);  // fixed little-endian-as-stored
    absorb(word);
    bytes.remove_prefix(8);
  }
  if (!bytes.empty()) {
    std::uint64_t word = 0;
    std::memcpy(&word, bytes.data(), bytes.size());
    absorb(word);
  }
}

Hash128 StreamHasher::finish() const {
  std::uint64_t h1 = h1_ ^ words_;
  std::uint64_t h2 = h2_ ^ words_;
  h1 += h2;
  h2 += h1;
  h1 = fmix64(h1);
  h2 = fmix64(h2);
  h1 += h2;
  h2 += h1;
  return {h1, h2};
}

}  // namespace qbp
