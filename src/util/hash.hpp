// 128-bit streaming hash for canonical instance fingerprints.
//
// The warm-start cache keys solved problems by content, so the hash must be
// (a) stable across runs and platforms -- no pointer values, no
// std::hash, no locale-dependent formatting; (b) wide enough that
// collisions are never a practical concern (128 bits; the cache treats a
// key match as instance identity); (c) streaming, so callers absorb a
// normalized field sequence without materializing a byte buffer.
//
// The mixing core is the MurmurHash3 x64/128 finalizer family: each
// absorbed 64-bit word is multiplied through two odd constants with
// rotations, alternating between the two lanes, and finish() applies the
// fmix64 avalanche to both lanes plus the absorbed length.  This is a
// content fingerprint, NOT a cryptographic MAC -- collision *attacks* are
// out of scope (the daemon already trusts submitted problems enough to
// solve them).
#pragma once

#include <bit>
#include <cstdint>
#include <string>
#include <string_view>

namespace qbp {

struct Hash128 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const Hash128&, const Hash128&) = default;
  /// Lexicographic order so Hash128 can key ordered containers.
  friend bool operator<(const Hash128& a, const Hash128& b) {
    return a.hi != b.hi ? a.hi < b.hi : a.lo < b.lo;
  }

  /// 32 lowercase hex digits, hi lane first.
  [[nodiscard]] std::string to_hex() const;
};

class StreamHasher {
 public:
  explicit StreamHasher(std::uint64_t seed = 0) : h1_(seed), h2_(seed) {}

  void absorb(std::uint64_t word);
  void absorb(std::int64_t word) {
    absorb(static_cast<std::uint64_t>(word));
  }
  void absorb(std::int32_t word) {
    absorb(static_cast<std::uint64_t>(static_cast<std::int64_t>(word)));
  }
  /// Doubles are absorbed by bit pattern with -0.0 canonicalized to +0.0,
  /// so numerically equal inputs that differ only in zero sign agree.
  /// (NaNs keep their payload bits; instance fields are never NaN.)
  void absorb(double value) {
    if (value == 0.0) value = 0.0;  // collapse -0.0
    absorb(std::bit_cast<std::uint64_t>(value));
  }
  /// Length-prefixed, so absorb_bytes("ab") + absorb_bytes("c") never
  /// collides with absorb_bytes("a") + absorb_bytes("bc").
  void absorb_bytes(std::string_view bytes);

  /// Finalize (absorbs the word count; the hasher may keep absorbing and
  /// finish() again -- finish is const with respect to the stream state).
  [[nodiscard]] Hash128 finish() const;

 private:
  std::uint64_t h1_ = 0;
  std::uint64_t h2_ = 0;
  std::uint64_t words_ = 0;
};

}  // namespace qbp
