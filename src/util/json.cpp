#include "util/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace qbp::json {

namespace {

constexpr int kMaxDepth = 64;

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string error;

  [[nodiscard]] bool at_end() const noexcept { return pos >= text.size(); }
  [[nodiscard]] char peek() const noexcept { return text[pos]; }

  void fail(std::string_view what) {
    if (!error.empty()) return;
    std::ostringstream out;
    out << "byte " << pos << ": " << what;
    error = out.str();
  }

  void skip_whitespace() {
    while (!at_end()) {
      const char c = peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos;
    }
  }

  bool consume(char expected) {
    if (at_end() || peek() != expected) return false;
    ++pos;
    return true;
  }

  bool expect(char expected, std::string_view what) {
    if (consume(expected)) return true;
    fail(what);
    return false;
  }

  bool parse_value(Value& out, int depth);
  bool parse_string(std::string& out);
  bool parse_number(Value& out);
  bool parse_literal(std::string_view word, Value value, Value& out);
};

void append_utf8(std::string& out, std::uint32_t code_point) {
  if (code_point < 0x80) {
    out.push_back(static_cast<char>(code_point));
  } else if (code_point < 0x800) {
    out.push_back(static_cast<char>(0xc0 | (code_point >> 6)));
    out.push_back(static_cast<char>(0x80 | (code_point & 0x3f)));
  } else if (code_point < 0x10000) {
    out.push_back(static_cast<char>(0xe0 | (code_point >> 12)));
    out.push_back(static_cast<char>(0x80 | ((code_point >> 6) & 0x3f)));
    out.push_back(static_cast<char>(0x80 | (code_point & 0x3f)));
  } else {
    out.push_back(static_cast<char>(0xf0 | (code_point >> 18)));
    out.push_back(static_cast<char>(0x80 | ((code_point >> 12) & 0x3f)));
    out.push_back(static_cast<char>(0x80 | ((code_point >> 6) & 0x3f)));
    out.push_back(static_cast<char>(0x80 | (code_point & 0x3f)));
  }
}

bool Parser::parse_string(std::string& out) {
  if (!expect('"', "expected '\"'")) return false;
  out.clear();
  while (!at_end()) {
    const char c = text[pos++];
    if (c == '"') return true;
    if (c == '\\') {
      if (at_end()) break;
      const char escape = text[pos++];
      switch (escape) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          const auto hex4 = [&](std::uint32_t& value) {
            if (pos + 4 > text.size()) return false;
            value = 0;
            for (int k = 0; k < 4; ++k) {
              const char h = text[pos++];
              value <<= 4;
              if (h >= '0' && h <= '9') {
                value |= static_cast<std::uint32_t>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                value |= static_cast<std::uint32_t>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                value |= static_cast<std::uint32_t>(h - 'A' + 10);
              } else {
                return false;
              }
            }
            return true;
          };
          std::uint32_t unit = 0;
          if (!hex4(unit)) {
            fail("malformed \\u escape");
            return false;
          }
          // Surrogate pair: a high surrogate must be followed by \uDC00..DFFF.
          if (unit >= 0xd800 && unit <= 0xdbff) {
            std::uint32_t low = 0;
            if (pos + 1 < text.size() && text[pos] == '\\' &&
                text[pos + 1] == 'u') {
              pos += 2;
              if (!hex4(low) || low < 0xdc00 || low > 0xdfff) {
                fail("malformed surrogate pair");
                return false;
              }
              unit = 0x10000 + ((unit - 0xd800) << 10) + (low - 0xdc00);
            } else {
              fail("unpaired surrogate");
              return false;
            }
          } else if (unit >= 0xdc00 && unit <= 0xdfff) {
            fail("unpaired surrogate");
            return false;
          }
          append_utf8(out, unit);
          break;
        }
        default:
          fail("unknown escape");
          return false;
      }
    } else if (static_cast<unsigned char>(c) < 0x20) {
      fail("raw control character in string");
      return false;
    } else {
      out.push_back(c);
    }
  }
  fail("unterminated string");
  return false;
}

bool Parser::parse_number(Value& out) {
  const std::size_t start = pos;
  if (!at_end() && peek() == '-') ++pos;
  // Strict JSON: no leading zeros ("01") -- from_chars would accept them.
  if (pos + 1 < text.size() && text[pos] == '0' &&
      std::isdigit(static_cast<unsigned char>(text[pos + 1])) != 0) {
    fail("malformed number (leading zero)");
    return false;
  }
  while (!at_end() && (std::isdigit(static_cast<unsigned char>(peek())) != 0 ||
                       peek() == '.' || peek() == 'e' || peek() == 'E' ||
                       peek() == '+' || peek() == '-')) {
    ++pos;
  }
  double value = 0.0;
  const char* first = text.data() + start;
  const char* last = text.data() + pos;
  const auto [end, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || end != last || start == pos) {
    pos = start;
    fail("malformed number");
    return false;
  }
  out = Value(value);
  return true;
}

bool Parser::parse_literal(std::string_view word, Value value, Value& out) {
  if (text.substr(pos, word.size()) != word) {
    fail("unexpected token");
    return false;
  }
  pos += word.size();
  out = std::move(value);
  return true;
}

bool Parser::parse_value(Value& out, int depth) {
  if (depth > kMaxDepth) {
    fail("nesting too deep");
    return false;
  }
  skip_whitespace();
  if (at_end()) {
    fail("unexpected end of input");
    return false;
  }
  const char c = peek();
  switch (c) {
    case '{': {
      ++pos;
      out = Value::object();
      skip_whitespace();
      if (consume('}')) return true;
      for (;;) {
        skip_whitespace();
        std::string key;
        if (!parse_string(key)) return false;
        skip_whitespace();
        if (!expect(':', "expected ':'")) return false;
        Value member;
        if (!parse_value(member, depth + 1)) return false;
        out.set(key, std::move(member));
        skip_whitespace();
        if (consume(',')) continue;
        return expect('}', "expected ',' or '}'");
      }
    }
    case '[': {
      ++pos;
      out = Value::array();
      skip_whitespace();
      if (consume(']')) return true;
      for (;;) {
        Value element;
        if (!parse_value(element, depth + 1)) return false;
        out.push_back(std::move(element));
        skip_whitespace();
        if (consume(',')) continue;
        return expect(']', "expected ',' or ']'");
      }
    }
    case '"': {
      std::string value;
      if (!parse_string(value)) return false;
      out = Value(std::move(value));
      return true;
    }
    case 't': return parse_literal("true", Value(true), out);
    case 'f': return parse_literal("false", Value(false), out);
    case 'n': return parse_literal("null", Value(), out);
    default: return parse_number(out);
  }
}

void append_number(std::string& out, double value) {
  if (!std::isfinite(value)) {
    // JSON has no Infinity/NaN; null is the conventional stand-in.
    out += "null";
    return;
  }
  // Integral values in the exactly-representable range print as integers so
  // ids, counters and assignments round-trip without a decimal point.
  if (value == std::floor(value) && std::fabs(value) < 9.007199254740992e15) {
    char buffer[32];
    const int written = std::snprintf(buffer, sizeof buffer, "%lld",
                                      static_cast<long long>(value));
    out.append(buffer, static_cast<std::size_t>(written));
    return;
  }
  char buffer[32];
  const auto [end, ec] = std::to_chars(buffer, buffer + sizeof buffer, value);
  if (ec == std::errc()) {
    out.append(buffer, end);
  } else {
    out += "null";
  }
}

}  // namespace

void append_quoted(std::string& out, std::string_view text) {
  out.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void Value::push_back(Value value) {
  if (kind_ == Kind::kNull) kind_ = Kind::kArray;
  values_.push_back(std::move(value));
}

const Value* Value::find(std::string_view key) const noexcept {
  if (kind_ != Kind::kObject) return nullptr;
  for (std::size_t k = 0; k < keys_.size(); ++k) {
    if (keys_[k] == key) return &values_[k];
  }
  return nullptr;
}

void Value::set(std::string_view key, Value value) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  for (std::size_t k = 0; k < keys_.size(); ++k) {
    if (keys_[k] == key) {
      values_[k] = std::move(value);
      return;
    }
  }
  keys_.emplace_back(key);
  values_.push_back(std::move(value));
}

std::string Value::get_string(std::string_view key,
                              std::string_view fallback) const {
  const Value* member = find(key);
  if (member == nullptr || !member->is_string()) return std::string(fallback);
  return member->as_string();
}

double Value::get_number(std::string_view key, double fallback) const {
  const Value* member = find(key);
  if (member == nullptr || !member->is_number()) return fallback;
  return member->as_number();
}

bool Value::get_bool(std::string_view key, bool fallback) const {
  const Value* member = find(key);
  if (member == nullptr || !member->is_bool()) return fallback;
  return member->as_bool();
}

void Value::dump_to(std::string& out) const {
  switch (kind_) {
    case Kind::kNull: out += "null"; return;
    case Kind::kBool: out += bool_ ? "true" : "false"; return;
    case Kind::kNumber: append_number(out, number_); return;
    case Kind::kString: append_quoted(out, string_); return;
    case Kind::kArray: {
      out.push_back('[');
      for (std::size_t k = 0; k < values_.size(); ++k) {
        if (k > 0) out.push_back(',');
        values_[k].dump_to(out);
      }
      out.push_back(']');
      return;
    }
    case Kind::kObject: {
      out.push_back('{');
      for (std::size_t k = 0; k < values_.size(); ++k) {
        if (k > 0) out.push_back(',');
        append_quoted(out, keys_[k]);
        out.push_back(':');
        values_[k].dump_to(out);
      }
      out.push_back('}');
      return;
    }
  }
}

std::string Value::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

bool operator==(const Value& a, const Value& b) {
  if (a.kind_ != b.kind_) return false;
  switch (a.kind_) {
    case Value::Kind::kNull: return true;
    case Value::Kind::kBool: return a.bool_ == b.bool_;
    case Value::Kind::kNumber: return a.number_ == b.number_;
    case Value::Kind::kString: return a.string_ == b.string_;
    case Value::Kind::kArray: return a.values_ == b.values_;
    case Value::Kind::kObject:
      return a.keys_ == b.keys_ && a.values_ == b.values_;
  }
  return false;
}

JsonParseResult parse(std::string_view text, Value& out) {
  Parser parser;
  parser.text = text;
  if (!parser.parse_value(out, 0)) return {false, parser.error};
  parser.skip_whitespace();
  if (!parser.at_end()) {
    parser.fail("trailing characters after document");
    return {false, parser.error};
  }
  return {};
}

bool write_json_file(const std::string& path, const Value& value) {
  std::ofstream out(path);
  if (!out) return false;
  out << value.dump() << "\n";
  return static_cast<bool>(out);
}

bool read_json_file(const std::string& path, Value& out,
                    std::string* out_error) {
  std::ifstream in(path);
  if (!in) {
    if (out_error != nullptr) *out_error = "cannot open '" + path + "'";
    return false;
  }
  std::ostringstream text;
  text << in.rdbuf();
  if (in.bad()) {
    if (out_error != nullptr) *out_error = "read error on '" + path + "'";
    return false;
  }
  const JsonParseResult parsed = parse(text.str(), out);
  if (!parsed.ok) {
    if (out_error != nullptr) *out_error = path + ": " + parsed.message;
    return false;
  }
  return true;
}

}  // namespace qbp::json
