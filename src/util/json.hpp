// Minimal JSON value, parser and writer.
//
// Exists for the two places the library speaks JSON: the qbpartd service
// protocol (newline-delimited JSON over a pipe or socket) and the benches'
// machine-readable result dumps (--json).  Deliberately small: one Value
// type, a strict recursive-descent parser with a depth cap, and a compact
// single-line serializer (never emits raw newlines, so every dump() is a
// valid NDJSON record).  Not a general-purpose JSON library -- no SAX
// interface, no comments, no trailing commas.
//
// Numbers are stored as double; integral values within the 2^53 exact
// range serialize without a decimal point so ids and counters round-trip.
// Object member order is preserved (insertion order), which keeps protocol
// lines diffable and the benches' output stable.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace qbp::json {

/// Outcome of a parse; mirrors qbp::ParseResult but lives here so util/json
/// stays dependency-free.
struct JsonParseResult {
  bool ok = true;
  std::string message;
};

class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() = default;
  Value(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)
  Value(bool value) : kind_(Kind::kBool), bool_(value) {}  // NOLINT
  Value(double value) : kind_(Kind::kNumber), number_(value) {}  // NOLINT
  Value(std::int64_t value)  // NOLINT(google-explicit-constructor)
      : kind_(Kind::kNumber), number_(static_cast<double>(value)) {}
  Value(int value) : Value(static_cast<std::int64_t>(value)) {}  // NOLINT
  Value(std::string value)  // NOLINT(google-explicit-constructor)
      : kind_(Kind::kString), string_(std::move(value)) {}
  Value(std::string_view value) : Value(std::string(value)) {}  // NOLINT
  Value(const char* value) : Value(std::string(value)) {}       // NOLINT

  [[nodiscard]] static Value array() {
    Value v;
    v.kind_ = Kind::kArray;
    return v;
  }
  [[nodiscard]] static Value object() {
    Value v;
    v.kind_ = Kind::kObject;
    return v;
  }

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const noexcept { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const noexcept { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const noexcept { return kind_ == Kind::kObject; }

  /// Typed accessors; the defaulted variants return `fallback` on a kind
  /// mismatch, which is what protocol readers want for optional fields.
  [[nodiscard]] bool as_bool(bool fallback = false) const noexcept {
    return is_bool() ? bool_ : fallback;
  }
  [[nodiscard]] double as_number(double fallback = 0.0) const noexcept {
    return is_number() ? number_ : fallback;
  }
  [[nodiscard]] const std::string& as_string() const noexcept { return string_; }

  // --- array interface ----------------------------------------------------
  /// Element count of an array or object (0 for scalars).
  [[nodiscard]] std::size_t size() const noexcept { return values_.size(); }
  /// Array element (valid index required).
  [[nodiscard]] const Value& at(std::size_t index) const { return values_[index]; }
  /// Append to an array (kind becomes kArray if null).
  void push_back(Value value);

  // --- object interface ---------------------------------------------------
  /// Member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Value* find(std::string_view key) const noexcept;
  /// Set (insert or overwrite) a member; kind becomes kObject if null.
  void set(std::string_view key, Value value);
  /// Member key at position `index` (objects preserve insertion order).
  [[nodiscard]] const std::string& key_at(std::size_t index) const {
    return keys_[index];
  }

  /// Convenience typed member reads for protocol parsing.
  [[nodiscard]] std::string get_string(std::string_view key,
                                       std::string_view fallback = {}) const;
  [[nodiscard]] double get_number(std::string_view key, double fallback) const;
  [[nodiscard]] bool get_bool(std::string_view key, bool fallback) const;

  /// Compact single-line serialization (valid NDJSON record).
  [[nodiscard]] std::string dump() const;
  void dump_to(std::string& out) const;

  friend bool operator==(const Value& a, const Value& b);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  // Arrays use values_ alone; objects use keys_ + values_ pairwise.  Two
  // parallel vectors sidestep std::pair-of-incomplete-type issues and keep
  // the (hot) array case allocation-minimal.
  std::vector<std::string> keys_;
  std::vector<Value> values_;
};

/// Parse one JSON document from `text` (surrounding whitespace allowed,
/// trailing garbage rejected).  On failure `out` is left unspecified and the
/// message carries a byte offset.
[[nodiscard]] JsonParseResult parse(std::string_view text, Value& out);

/// Escape `text` as a JSON string literal (with quotes) appended to `out`.
void append_quoted(std::string& out, std::string_view text);

/// Write `value.dump()` plus a trailing newline to a file; false on I/O
/// failure.
[[nodiscard]] bool write_json_file(const std::string& path, const Value& value);

/// Read and parse one JSON document from a file; false on I/O or parse
/// failure (error details in `out_error` when non-null).
[[nodiscard]] bool read_json_file(const std::string& path, Value& out,
                                  std::string* out_error = nullptr);

}  // namespace qbp::json
