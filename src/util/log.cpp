#include "util/log.hpp"

#include <cstdio>

namespace qbp::log {

namespace {
Level g_level = Level::kWarn;

constexpr const char* prefix(Level level) noexcept {
  switch (level) {
    case Level::kError: return "[error] ";
    case Level::kWarn: return "[warn ] ";
    case Level::kInfo: return "[info ] ";
    case Level::kDebug: return "[debug] ";
    case Level::kSilent: break;
  }
  return "";
}
}  // namespace

void set_level(Level level) noexcept { g_level = level; }

Level level() noexcept { return g_level; }

bool enabled(Level lvl) noexcept {
  return static_cast<int>(lvl) <= static_cast<int>(g_level) &&
         lvl != Level::kSilent;
}

void write(Level lvl, std::string_view message) {
  if (!enabled(lvl)) return;
  std::FILE* sink = (lvl == Level::kError || lvl == Level::kWarn) ? stderr : stdout;
  std::fprintf(sink, "%s%.*s\n", prefix(lvl), static_cast<int>(message.size()),
               message.data());
}

}  // namespace qbp::log
