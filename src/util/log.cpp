#include "util/log.hpp"

#include <atomic>
#include <cstdio>

#include "util/annotations.hpp"

namespace qbp::log {

namespace {
std::atomic<Level> g_level{Level::kWarn};
/// Serializes whole lines onto the stdio sinks so concurrent writers
/// (portfolio starts, server workers) never interleave mid-line.
sync::Mutex g_sink_mutex;

const std::string& local_prefix(bool set, std::string value = {}) {
  thread_local std::string prefix;
  if (set) prefix = std::move(value);
  return prefix;
}

constexpr const char* prefix(Level level) noexcept {
  switch (level) {
    case Level::kError: return "[error] ";
    case Level::kWarn: return "[warn ] ";
    case Level::kInfo: return "[info ] ";
    case Level::kDebug: return "[debug] ";
    case Level::kSilent: break;
  }
  return "";
}
}  // namespace

void set_level(Level level) noexcept {
  g_level.store(level, std::memory_order_relaxed);
}

Level level() noexcept { return g_level.load(std::memory_order_relaxed); }

bool enabled(Level lvl) noexcept {
  return static_cast<int>(lvl) <= static_cast<int>(level()) &&
         lvl != Level::kSilent;
}

void set_thread_prefix(std::string value) {
  local_prefix(true, std::move(value));
}

const std::string& thread_prefix() noexcept { return local_prefix(false); }

void write(Level lvl, std::string_view message) {
  if (!enabled(lvl)) return;
  std::FILE* sink = (lvl == Level::kError || lvl == Level::kWarn) ? stderr : stdout;
  const std::string& thread_tag = thread_prefix();
  const sync::MutexLock guard(g_sink_mutex);
  std::fprintf(sink, "%s%s%.*s\n", prefix(lvl), thread_tag.c_str(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace qbp::log
