// Minimal leveled logger.
//
// The solvers are libraries first: they never print unless the caller raises
// the global level.  Benches and examples set `Level::kInfo` (or kDebug) to
// narrate convergence.  Thread-safe: the global level is atomic, each line is
// written under a mutex (lines never interleave), and a per-thread prefix
// (set_thread_prefix) lets concurrent solver runs tag their output -- the
// portfolio driver labels each worker "s<start> ".
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace qbp::log {

enum class Level : int { kSilent = 0, kError = 1, kWarn = 2, kInfo = 3, kDebug = 4 };

/// Global verbosity; defaults to kWarn.
void set_level(Level level) noexcept;
[[nodiscard]] Level level() noexcept;
[[nodiscard]] bool enabled(Level level) noexcept;

/// Label prepended to every line emitted by the *calling thread* (empty by
/// default).  Thread-local: workers of a parallel driver each set their own.
void set_thread_prefix(std::string prefix);
[[nodiscard]] const std::string& thread_prefix() noexcept;

/// Emit one line at `level` (no-op if below the global level).  The write is
/// mutex-guarded so concurrent lines never interleave mid-line.
void write(Level level, std::string_view message);

namespace detail {
template <typename... Args>
void emit(Level level, Args&&... args) {
  if (!enabled(level)) return;
  std::ostringstream out;
  (out << ... << args);
  write(level, out.str());
}
}  // namespace detail

template <typename... Args>
void error(Args&&... args) {
  detail::emit(Level::kError, std::forward<Args>(args)...);
}
template <typename... Args>
void warn(Args&&... args) {
  detail::emit(Level::kWarn, std::forward<Args>(args)...);
}
template <typename... Args>
void info(Args&&... args) {
  detail::emit(Level::kInfo, std::forward<Args>(args)...);
}
template <typename... Args>
void debug(Args&&... args) {
  detail::emit(Level::kDebug, std::forward<Args>(args)...);
}

}  // namespace qbp::log
