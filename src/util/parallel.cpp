#include "util/parallel.hpp"

#include "util/check.hpp"

namespace qbp::par {

namespace {

thread_local bool tl_on_worker_thread = false;

std::atomic<std::int32_t> g_fair_share_base{0};  // 0 = derive from hardware

[[nodiscard]] std::int32_t default_fair_share_base() {
  const unsigned hw = std::thread::hardware_concurrency();
  // The floor of 8 keeps helper threads real (not a degenerate inline-only
  // pool) on 1-2 core containers, so the determinism and TSan tests
  // exercise the concurrent paths everywhere.  Oversubscription policy for
  // production traffic is enforced by the service layer against the true
  // core count.
  const unsigned base = hw > 8 ? hw : 8;
  return static_cast<std::int32_t>(base);
}

}  // namespace

std::int32_t fair_share_base() {
  const std::int32_t base = g_fair_share_base.load(std::memory_order_relaxed);
  return base > 0 ? base : default_fair_share_base();
}

void set_fair_share_base(std::int32_t base) {
  g_fair_share_base.store(base > 0 ? base : 0, std::memory_order_relaxed);
}

Pool& Pool::instance() {
  static Pool pool;
  return pool;
}

bool Pool::on_worker_thread() noexcept { return tl_on_worker_thread; }

Pool::~Pool() {
  // Move the helpers out under the lock so the join loop below touches no
  // guarded state (nothing may spawn after stop_; joining needs no lock).
  std::vector<std::thread> to_join;
  {
    const sync::MutexLock lock(mu_);
    stop_ = true;
    to_join.swap(helpers_);
  }
  cv_.notify_all();
  for (std::thread& helper : to_join) helper.join();
}

void Pool::ensure_helpers_locked(std::int32_t count) {
  if (count > kMaxHelpers) count = kMaxHelpers;
  while (static_cast<std::int32_t>(helpers_.size()) < count) {
    helpers_.emplace_back([this] { helper_main(); });
  }
}

void Pool::warm(std::int32_t count) {
  const sync::MutexLock lock(mu_);
  ensure_helpers_locked(count);
}

std::int32_t Pool::helpers_spawned() const {
  const sync::MutexLock lock(mu_);
  return static_cast<std::int32_t>(helpers_.size());
}

std::int32_t Pool::helpers_busy() const {
  const sync::MutexLock lock(mu_);
  return busy_;
}

std::uint64_t Pool::regions_run() const noexcept {
  return regions_run_.load(std::memory_order_relaxed);
}

std::uint64_t Pool::regions_parallel() const noexcept {
  return regions_parallel_.load(std::memory_order_relaxed);
}

void Pool::process_chunks(Task& task) {
  for (;;) {
    const std::int32_t chunk =
        task.next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= task.plan.count) return;
    task.body(task.ctx, task.plan.begin(chunk), task.plan.end(chunk), chunk);
  }
}

void Pool::run(std::int64_t n, std::int64_t grain, std::int32_t threads,
               void (*body)(void*, std::int64_t, std::int64_t, std::int32_t),
               void* ctx) {
  QBP_CHECK(body != nullptr) << "parallel region without a body";
  const ChunkPlan plan = ChunkPlan::make(n, grain);
  if (plan.count == 0) return;
  regions_run_.fetch_add(1, std::memory_order_relaxed);

  // Inline fast path: a 1-thread request, too few chunks to be worth a
  // helper wakeup, or a nested region on a pool thread.  Chunk boundaries
  // are the same either way, so this is not a semantic branch -- only a
  // scheduling one.
  if (threads <= 1 || plan.count < kMinFanoutChunks || tl_on_worker_thread) {
    for (std::int32_t c = 0; c < plan.count; ++c) {
      body(ctx, plan.begin(c), plan.end(c), c);
    }
    return;
  }

  Task task;
  task.body = body;
  task.ctx = ctx;
  task.plan = plan;
  {
    const sync::MutexLock lock(mu_);
    ++active_regions_;
    // Fair share: concurrent regions (e.g. portfolio starts) split the
    // machine instead of each taking `threads`.
    std::int32_t share = fair_share_base() / active_regions_;
    if (share < 1) share = 1;
    std::int32_t want = (threads < share ? threads : share) - 1;
    if (want > plan.count - 1) want = plan.count - 1;
    if (want > kMaxHelpers) want = kMaxHelpers;
    if (want < 0) want = 0;
    task.helpers_allowed = want;
    if (want > 0) {
      ensure_helpers_locked(want);
      pending_.push_back(&task);
    }
  }
  if (task.helpers_allowed > 0) {
    regions_parallel_.fetch_add(1, std::memory_order_relaxed);
    // Wake exactly as many helpers as the region may recruit; notify_all
    // would stampede every idle helper through mu_ for each tiny region.
    if (task.helpers_allowed == 1) {
      cv_.notify_one();
    } else {
      cv_.notify_all();
    }
  }

  // The caller is one of the workers.
  process_chunks(task);

  if (task.helpers_allowed > 0) {
    {
      // Stop new helpers from adopting the task...
      const sync::MutexLock lock(mu_);
      for (std::size_t i = 0; i < pending_.size(); ++i) {
        if (pending_[i] == &task) {
          pending_.erase(pending_.begin() +
                         static_cast<std::ptrdiff_t>(i));
          break;
        }
      }
    }
    // ...then wait for the ones already in it.  The task lives on this
    // stack frame; helpers touch it only under done_mutex before their
    // final notify, so returning after active == 0 is safe.
    const sync::MutexLock done_lock(task.done_mutex);
    while (task.helpers_active.load(std::memory_order_relaxed) != 0) {
      task.done_cv.wait(task.done_mutex);
    }
  }
  {
    const sync::MutexLock lock(mu_);
    --active_regions_;
  }
}

void Pool::helper_main() {
  tl_on_worker_thread = true;
  // Explicit lock()/unlock() instead of a scoped guard: the loop holds mu_
  // while picking work and drops it around chunk execution.  The thread
  // safety analysis tracks the hand-over-hand state across the loop.
  mu_.lock();
  for (;;) {
    Task* task = nullptr;
    for (Task* candidate : pending_) {
      if (candidate->helpers_joined < candidate->helpers_allowed &&
          candidate->next_chunk.load(std::memory_order_relaxed) <
              candidate->plan.count) {
        task = candidate;
        break;
      }
    }
    if (task == nullptr) {
      if (stop_) break;
      cv_.wait(mu_);
      continue;
    }
    ++task->helpers_joined;
    task->helpers_active.fetch_add(1, std::memory_order_relaxed);
    ++busy_;
    mu_.unlock();

    process_chunks(*task);
    {
      // Decrement and notify under done_mutex: once the submitter observes
      // zero it may destroy the task, so no access may follow the unlock.
      const sync::MutexLock done_lock(task->done_mutex);
      task->helpers_active.fetch_sub(1, std::memory_order_relaxed);
      task->done_cv.notify_one();
    }

    mu_.lock();
    --busy_;
  }
  mu_.unlock();
}

double utilization() {
  Pool& pool = Pool::instance();
  const std::int32_t spawned = pool.helpers_spawned();
  if (spawned <= 0) return 0.0;
  return static_cast<double>(pool.helpers_busy()) /
         static_cast<double>(spawned);
}

}  // namespace qbp::par
