// Deterministic fork-join parallelism for the solver hot paths.
//
// The repo-wide invariant is bit-identical assignments and objectives at
// every thread count (engine determinism tests, the shadow validator, and
// the exact-objective bench gate all enforce it).  This pool is built so
// that invariant holds *by construction*:
//
//   1. Static chunking.  A range [0, n) is cut into chunks whose boundaries
//      are a pure function of (n, grain) -- never of the thread count.
//      Thread count only decides which thread *executes* a chunk, and every
//      chunk writes to its own disjoint outputs, so FP results cannot
//      re-associate across thread counts.
//   2. Fixed reduction tree.  parallel_reduce stores one partial per chunk
//      and folds them left-to-right in chunk-index order on the calling
//      thread.  Running with 1 thread or 64 produces the same fold.
//   3. No atomics on results.  Atomics are used only to hand out chunks and
//      (in find_first) to skip chunks that provably cannot contain the
//      answer; results always travel through per-chunk slots.
//
// Execution model: one process-wide pool of helper threads, grown lazily
// and shared by every caller (portfolio starts included).  A parallel
// region claims helpers up to its requested thread count, capped by a fair
// share of the machine: base / active_regions.  Concurrent regions
// therefore split the pool instead of oversubscribing, and a region that
// gets zero helpers simply runs its chunks inline -- same chunks, same
// results.  Nested regions (a parallel_for issued from inside a pool
// worker) always run inline for the same reason.
//
// The bodies/maps/scans passed in run concurrently on pool threads: they
// must only write state that is private per chunk (or per call), and any
// shared state they read must be frozen for the duration of the region.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/annotations.hpp"

namespace qbp::par {

/// Hard ceiling on pool helper threads (the caller participates too, so a
/// region can use at most kMaxHelpers + 1 threads).
inline constexpr std::int32_t kMaxHelpers = 63;

/// Regions with fewer chunks than this run inline even when threads were
/// requested: waking a helper costs microseconds, so tiny scans (small
/// problems, a find_first cursor near the end of its range) would pay more
/// in scheduling than the chunks are worth.  Scheduling-only -- the chunk
/// plan is the same either way, so results cannot change.
inline constexpr std::int32_t kMinFanoutChunks = 4;

/// The static chunk layout for a range: a pure function of (n, grain) so
/// every thread count sees identical chunk boundaries.
struct ChunkPlan {
  std::int64_t n = 0;
  std::int64_t grain = 1;
  std::int32_t count = 0;

  [[nodiscard]] static ChunkPlan make(std::int64_t n, std::int64_t grain) {
    ChunkPlan plan;
    plan.n = n < 0 ? 0 : n;
    plan.grain = grain < 1 ? 1 : grain;
    plan.count = plan.n == 0
                     ? 0
                     : static_cast<std::int32_t>((plan.n + plan.grain - 1) /
                                                 plan.grain);
    return plan;
  }

  [[nodiscard]] std::int64_t begin(std::int32_t chunk) const {
    return static_cast<std::int64_t>(chunk) * grain;
  }
  [[nodiscard]] std::int64_t end(std::int32_t chunk) const {
    const std::int64_t e = begin(chunk) + grain;
    return e < n ? e : n;
  }
};

/// The denominator of the fair-share arbitration: how many hardware slots
/// concurrent regions divide among themselves.  Defaults to
/// max(hardware_concurrency(), 8) -- the floor keeps the multi-thread code
/// paths genuinely exercised (determinism tests, TSan) on tiny containers;
/// actual oversubscription *policy* lives in the service layer, which
/// clamps requested thread counts against the real core count.
[[nodiscard]] std::int32_t fair_share_base();
/// Override the fair-share base (tests; 0 restores the default).
void set_fair_share_base(std::int32_t base);

class Pool {
 public:
  /// The process-wide shared pool.
  [[nodiscard]] static Pool& instance();

  /// True while the calling thread is a pool helper executing chunks --
  /// regions started from such a thread run inline (no nested fan-out).
  [[nodiscard]] static bool on_worker_thread() noexcept;

  /// Execute `body(ctx, chunk_begin, chunk_end, chunk_index)` for every
  /// chunk of ChunkPlan::make(n, grain), using at most `threads` threads
  /// (the caller plus claimed helpers).  Returns after every chunk ran.
  /// Chunk boundaries, and therefore results, do not depend on `threads`.
  void run(std::int64_t n, std::int64_t grain, std::int32_t threads,
           void (*body)(void*, std::int64_t, std::int64_t, std::int32_t),
           void* ctx);

  /// Make sure at least `count` helper threads exist (bounded by
  /// kMaxHelpers).  Portfolio calls this once up front so concurrent starts
  /// do not race to spawn threads mid-solve.
  void warm(std::int32_t count) QBP_EXCLUDES(mu_);

  /// Observability for the metrics layer (instantaneous).
  [[nodiscard]] std::int32_t helpers_spawned() const;
  [[nodiscard]] std::int32_t helpers_busy() const;
  /// Cumulative region counts: every run() call, and the subset that
  /// actually fanned out to at least one helper.
  [[nodiscard]] std::uint64_t regions_run() const noexcept;
  [[nodiscard]] std::uint64_t regions_parallel() const noexcept;

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

 private:
  struct Task {
    void (*body)(void*, std::int64_t, std::int64_t, std::int32_t) = nullptr;
    void* ctx = nullptr;
    ChunkPlan plan;
    std::atomic<std::int32_t> next_chunk{0};
    /// Helpers this task may still recruit (set at submit, read under mu_).
    std::int32_t helpers_allowed = 0;
    std::int32_t helpers_joined = 0;
    /// Helpers currently executing chunks; the submitter waits for 0.
    std::atomic<std::int32_t> helpers_active{0};
    sync::Mutex done_mutex;
    sync::CondVar done_cv;
  };

  Pool() = default;
  ~Pool();

  void helper_main();
  void ensure_helpers_locked(std::int32_t count) QBP_REQUIRES(mu_);
  static void process_chunks(Task& task);

  mutable sync::Mutex mu_;
  sync::CondVar cv_;
  // This pool is the ONE sanctioned home for raw std::thread in the tree
  // (qbp_lint rule `raw-thread`); everything else must fan out through it
  // so the determinism contract stays enforceable in one place.
  std::vector<std::thread> helpers_ QBP_GUARDED_BY(mu_);
  std::vector<Task*> pending_ QBP_GUARDED_BY(mu_);
  std::int32_t active_regions_ QBP_GUARDED_BY(mu_) = 0;
  std::int32_t busy_ QBP_GUARDED_BY(mu_) = 0;
  bool stop_ QBP_GUARDED_BY(mu_) = false;
  std::atomic<std::uint64_t> regions_run_{0};
  std::atomic<std::uint64_t> regions_parallel_{0};
};

/// Instantaneous pool utilization in [0, 1]: busy helpers / spawned
/// helpers (0 when no helper was ever needed).
[[nodiscard]] double utilization();

/// Canonical interpretation of a thread-count knob: > 0 is taken literally,
/// <= 0 means "all hardware"; both are clamped to [1, kMaxHelpers + 1].
[[nodiscard]] inline std::int32_t resolve_threads(std::int32_t requested) {
  std::int32_t threads = requested;
  if (threads <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw == 0 ? 1 : static_cast<std::int32_t>(hw);
  }
  return std::clamp(threads, 1, kMaxHelpers + 1);
}

namespace detail {

template <class Body>
void invoke_body(void* ctx, std::int64_t begin, std::int64_t end,
                 std::int32_t chunk) {
  (*static_cast<Body*>(ctx))(begin, end, chunk);
}

}  // namespace detail

/// body(chunk_begin, chunk_end, chunk_index) over [0, n) in chunks of
/// `grain`.  Bit-identical contract: the body must write only chunk-private
/// state (boundaries never depend on `threads`).
template <class Body>
void parallel_for(std::int64_t n, std::int64_t grain, std::int32_t threads,
                  Body&& body) {
  using Fn = std::remove_reference_t<Body>;
  Pool::instance().run(n, grain, threads, &detail::invoke_body<Fn>,
                       const_cast<void*>(static_cast<const void*>(&body)));
}

/// Chunk-wise reduction with a fixed tree: map(chunk_begin, chunk_end)
/// produces one partial per chunk (in parallel), then the partials are
/// folded left-to-right in chunk order on the calling thread:
/// combine(combine(init, p0), p1)...  Identical at every thread count.
template <class T, class Map, class Combine>
[[nodiscard]] T parallel_reduce(std::int64_t n, std::int64_t grain,
                                std::int32_t threads, T init, Map&& map,
                                Combine&& combine) {
  const ChunkPlan plan = ChunkPlan::make(n, grain);
  if (plan.count == 0) return init;
  if (plan.count == 1) return combine(std::move(init), map(plan.begin(0), plan.end(0)));
  std::vector<T> partial(static_cast<std::size_t>(plan.count));
  parallel_for(n, grain, threads,
               [&](std::int64_t begin, std::int64_t end, std::int32_t chunk) {
                 partial[static_cast<std::size_t>(chunk)] = map(begin, end);
               });
  T acc = std::move(init);
  for (std::int32_t c = 0; c < plan.count; ++c) {
    acc = combine(std::move(acc), std::move(partial[static_cast<std::size_t>(c)]));
  }
  return acc;
}

/// First index in [start, n) accepted by `scan`, or -1.  `scan(begin, end)`
/// must return the smallest accepted index in [begin, end) or -1, reading
/// only state that is frozen for the duration of the call.  Results travel
/// through per-chunk slots; a relaxed atomic only *skips* chunks that lie
/// entirely after an already-found index (those cannot contain the
/// answer), so the returned index is the true first at every thread count.
template <class Scan>
[[nodiscard]] std::int64_t find_first(std::int64_t n, std::int64_t start,
                                      std::int64_t grain, std::int32_t threads,
                                      Scan&& scan) {
  if (start < 0) start = 0;
  if (start >= n) return -1;
  const ChunkPlan plan = ChunkPlan::make(n, grain);
  // Serial when few chunks remain past the cursor: the parallel path would
  // dispatch every chunk (pre-cursor ones no-op) only to inline them below
  // the pool's own fan-out threshold anyway, and the serial walk stops at
  // the first hit mid-chunk instead of finishing the chunk.
  const std::int32_t start_chunk =
      static_cast<std::int32_t>(start / plan.grain);
  const bool serial = threads <= 1 ||
                      plan.count - start_chunk < kMinFanoutChunks ||
                      Pool::on_worker_thread();
  if (serial) {
    // Same chunk walk as the parallel path, stopping at the first hit --
    // this is exactly the plain left-to-right scan.
    for (std::int32_t c = 0; c < plan.count; ++c) {
      const std::int64_t begin = std::max(plan.begin(c), start);
      const std::int64_t end = plan.end(c);
      if (begin >= end) continue;
      const std::int64_t index = scan(begin, end);
      if (index >= 0) return index;
    }
    return -1;
  }
  std::vector<std::int64_t> found(static_cast<std::size_t>(plan.count), -1);
  std::atomic<std::int64_t> hint{std::numeric_limits<std::int64_t>::max()};
  parallel_for(n, grain, threads,
               [&](std::int64_t begin, std::int64_t end, std::int32_t chunk) {
                 if (begin > hint.load(std::memory_order_relaxed)) return;
                 if (begin < start) begin = start;
                 if (begin >= end) return;
                 const std::int64_t index = scan(begin, end);
                 if (index < 0) return;
                 found[static_cast<std::size_t>(chunk)] = index;
                 std::int64_t cur = hint.load(std::memory_order_relaxed);
                 while (index < cur && !hint.compare_exchange_weak(
                                           cur, index, std::memory_order_relaxed)) {
                 }
               });
  for (std::int32_t c = 0; c < plan.count; ++c) {
    if (found[static_cast<std::size_t>(c)] >= 0) {
      return found[static_cast<std::size_t>(c)];
    }
  }
  return -1;
}

}  // namespace qbp::par
