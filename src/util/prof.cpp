#include "util/prof.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <sstream>

#include "util/annotations.hpp"

namespace qbp::prof {

namespace {

std::atomic<bool> g_enabled{false};

[[nodiscard]] std::int64_t now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One thread's accumulation, indexed by PhaseId.  Counters are relaxed
/// atomics because snapshot() reads them from other threads while the owner
/// keeps adding; the deque gives stable addresses so growth never moves a
/// bucket under a concurrent reader.  `mutex` guards the deque's *structure*
/// (growth vs. traversal), never the counter updates themselves.
struct ThreadBuckets {
  struct Bucket {
    std::atomic<std::int64_t> ns{0};
    std::atomic<std::int64_t> count{0};
  };

  mutable sync::Mutex mutex;
  // Deliberately NOT QBP_GUARDED_BY(mutex): the owning thread updates the
  // relaxed counters lock-free; the mutex guards only growth vs. traversal
  // (see the struct comment).  The deque's stable addresses make that safe.
  std::deque<Bucket> buckets;

  void record(PhaseId id, std::int64_t ns, std::int64_t count = 1) noexcept {
    const auto index = static_cast<std::size_t>(id);
    if (index >= buckets.size()) {
      const sync::MutexLock lock(mutex);
      while (buckets.size() <= index) buckets.emplace_back();
    }
    buckets[index].ns.fetch_add(ns, std::memory_order_relaxed);
    buckets[index].count.fetch_add(count, std::memory_order_relaxed);
  }
};

/// Process-wide registry: interned names, live threads, and the summed
/// buckets of threads that have exited.
struct Registry {
  sync::Mutex mutex;
  std::vector<std::string> names QBP_GUARDED_BY(mutex);
  std::vector<ThreadBuckets*> threads QBP_GUARDED_BY(mutex);
  std::vector<std::int64_t> retired_ns QBP_GUARDED_BY(mutex);
  std::vector<std::int64_t> retired_count QBP_GUARDED_BY(mutex);
};

Registry& registry() {
  static Registry* instance = new Registry();  // never destroyed: worker
  return *instance;  // threads may outlive static teardown order
}

/// Registers itself for the thread's lifetime; on thread exit the counts
/// fold into the registry's retired totals so no samples are lost.
struct ThreadHandle {
  ThreadBuckets buckets;

  ThreadHandle() {
    Registry& reg = registry();
    const sync::MutexLock lock(reg.mutex);
    reg.threads.push_back(&buckets);
  }

  ~ThreadHandle() {
    Registry& reg = registry();
    const sync::MutexLock lock(reg.mutex);
    if (reg.retired_ns.size() < buckets.buckets.size()) {
      reg.retired_ns.resize(buckets.buckets.size(), 0);
      reg.retired_count.resize(buckets.buckets.size(), 0);
    }
    for (std::size_t i = 0; i < buckets.buckets.size(); ++i) {
      reg.retired_ns[i] += buckets.buckets[i].ns.load(std::memory_order_relaxed);
      reg.retired_count[i] +=
          buckets.buckets[i].count.load(std::memory_order_relaxed);
    }
    std::erase(reg.threads, &buckets);
  }
};

ThreadBuckets& thread_buckets() {
  thread_local ThreadHandle handle;
  return handle.buckets;
}

}  // namespace

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}

void reset() noexcept {
  Registry& reg = registry();
  const sync::MutexLock lock(reg.mutex);
  std::fill(reg.retired_ns.begin(), reg.retired_ns.end(), 0);
  std::fill(reg.retired_count.begin(), reg.retired_count.end(), 0);
  for (ThreadBuckets* thread : reg.threads) {
    const sync::MutexLock thread_lock(thread->mutex);
    for (auto& bucket : thread->buckets) {
      bucket.ns.store(0, std::memory_order_relaxed);
      bucket.count.store(0, std::memory_order_relaxed);
    }
  }
}

PhaseId register_phase(std::string_view name) {
  Registry& reg = registry();
  const sync::MutexLock lock(reg.mutex);
  for (std::size_t i = 0; i < reg.names.size(); ++i) {
    if (reg.names[i] == name) return static_cast<PhaseId>(i);
  }
  reg.names.emplace_back(name);
  return static_cast<PhaseId>(reg.names.size() - 1);
}

ScopedPhase::ScopedPhase(PhaseId id) noexcept {
  if (!enabled()) return;
  id_ = id;
  start_ns_ = now_ns();
}

ScopedPhase::~ScopedPhase() {
  if (id_ < 0) return;
  thread_buckets().record(id_, now_ns() - start_ns_);
}

void record_events(PhaseId id, std::int64_t count, std::int64_t ns) noexcept {
  if (!enabled() || count <= 0) return;
  thread_buckets().record(id, ns, count);
}

PhaseReport snapshot() {
  Registry& reg = registry();
  const sync::MutexLock lock(reg.mutex);
  std::vector<std::int64_t> ns(reg.names.size(), 0);
  std::vector<std::int64_t> count(reg.names.size(), 0);
  for (std::size_t i = 0; i < reg.retired_ns.size() && i < ns.size(); ++i) {
    ns[i] = reg.retired_ns[i];
    count[i] = reg.retired_count[i];
  }
  for (const ThreadBuckets* thread : reg.threads) {
    const sync::MutexLock thread_lock(thread->mutex);
    for (std::size_t i = 0; i < thread->buckets.size() && i < ns.size(); ++i) {
      ns[i] += thread->buckets[i].ns.load(std::memory_order_relaxed);
      count[i] += thread->buckets[i].count.load(std::memory_order_relaxed);
    }
  }

  PhaseReport report;
  for (std::size_t i = 0; i < ns.size(); ++i) {
    if (count[i] == 0) continue;
    report.phases.push_back(
        {reg.names[i], static_cast<double>(ns[i]) * 1e-9, count[i]});
  }
  std::sort(report.phases.begin(), report.phases.end(),
            [](const PhaseStat& a, const PhaseStat& b) { return a.name < b.name; });
  return report;
}

const PhaseStat* PhaseReport::find(std::string_view name) const noexcept {
  for (const PhaseStat& stat : phases) {
    if (stat.name == name) return &stat;
  }
  return nullptr;
}

double PhaseReport::seconds(std::string_view name) const noexcept {
  const PhaseStat* stat = find(name);
  return stat != nullptr ? stat->seconds : 0.0;
}

PhaseReport PhaseReport::since(const PhaseReport& earlier) const {
  PhaseReport delta;
  for (const PhaseStat& stat : phases) {
    PhaseStat diff = stat;
    if (const PhaseStat* base = earlier.find(stat.name)) {
      diff.seconds = std::max(0.0, diff.seconds - base->seconds);
      diff.count = std::max<std::int64_t>(0, diff.count - base->count);
    }
    if (diff.count > 0 || diff.seconds > 0.0) delta.phases.push_back(diff);
  }
  return delta;
}

json::Value to_json(const PhaseReport& report) {
  json::Value out = json::Value::object();
  for (const PhaseStat& stat : report.phases) {
    json::Value entry = json::Value::object();
    entry.set("seconds", stat.seconds);
    entry.set("count", stat.count);
    out.set(stat.name, std::move(entry));
  }
  return out;
}

std::optional<PhaseReport> from_json(const json::Value& value) {
  if (!value.is_object()) return std::nullopt;
  PhaseReport report;
  for (std::size_t i = 0; i < value.size(); ++i) {
    const std::string& name = value.key_at(i);
    const json::Value* entry = value.find(name);
    if (entry == nullptr || !entry->is_object()) return std::nullopt;
    const json::Value* seconds = entry->find("seconds");
    const json::Value* count = entry->find("count");
    if (seconds == nullptr || !seconds->is_number() || count == nullptr ||
        !count->is_number()) {
      return std::nullopt;
    }
    report.phases.push_back({name, seconds->as_number(),
                             static_cast<std::int64_t>(count->as_number())});
  }
  std::sort(report.phases.begin(), report.phases.end(),
            [](const PhaseStat& a, const PhaseStat& b) { return a.name < b.name; });
  return report;
}

std::string to_string(const PhaseReport& report) {
  std::vector<const PhaseStat*> order;
  order.reserve(report.phases.size());
  for (const PhaseStat& stat : report.phases) order.push_back(&stat);
  std::sort(order.begin(), order.end(),
            [](const PhaseStat* a, const PhaseStat* b) {
              if (a->seconds != b->seconds) return a->seconds > b->seconds;
              return a->name < b->name;
            });
  std::ostringstream out;
  out << "phase breakdown (seconds, calls):\n";
  for (const PhaseStat* stat : order) {
    out << "  " << stat->seconds << "  x" << stat->count << "  " << stat->name
        << "\n";
  }
  return out.str();
}

}  // namespace qbp::prof
