// Lightweight phase profiler: scoped wall-clock timers accumulated into
// named phase buckets (e.g. "burkard.step6_gap", "delta.row_build").
//
// Design constraints, in order:
//
//   1. Near-zero overhead when disabled (the default).  QBP_PROF_SCOPE in a
//      hot loop costs one relaxed atomic load and a predictable branch; no
//      clock read, no allocation, no lock.
//   2. Thread-local accumulation.  Portfolio workers time their own starts
//      without contending on shared counters; snapshot() merges every
//      thread's buckets (live and exited) into one report.
//   3. Stable identity.  QBP_PROF_SCOPE interns its name once (a
//      function-local static), so the per-scope work while enabled is two
//      clock reads plus two relaxed atomic adds -- cheap enough to leave the
//      instrumentation in release builds permanently.
//
// Nested scopes each accumulate their own bucket: a parent phase's seconds
// INCLUDE time spent in instrumented child phases (self time is
// parent - children, computed by the reader).  Reports round-trip through
// util/json for the bench_runner dumps and qbpartd's stats surface.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.hpp"

namespace qbp::prof {

/// Interned phase identifier; process-global, never recycled.
using PhaseId = std::int32_t;

/// Is collection currently on?  Relaxed read; safe from any thread.
[[nodiscard]] bool enabled() noexcept;

/// Turn collection on/off process-wide.  Scopes already entered record on
/// exit regardless; scopes entered while disabled never record.
void set_enabled(bool on) noexcept;

/// Zero every bucket (live threads and retired accumulation).  Phase names
/// stay interned.  Call between experiments to isolate their profiles.
void reset() noexcept;

/// Intern `name`, returning its stable id.  Repeat calls with an equal name
/// return the same id.  Thread-safe; intended to be called once per site
/// via QBP_PROF_SCOPE's function-local static.
[[nodiscard]] PhaseId register_phase(std::string_view name);

/// One merged bucket: total seconds and entry count across all threads.
struct PhaseStat {
  std::string name;
  double seconds = 0.0;
  std::int64_t count = 0;

  friend bool operator==(const PhaseStat&, const PhaseStat&) = default;
};

/// Snapshot of every phase with a nonzero count, sorted by name.
struct PhaseReport {
  std::vector<PhaseStat> phases;

  /// Lookup by name; nullptr when absent.
  [[nodiscard]] const PhaseStat* find(std::string_view name) const noexcept;
  /// Seconds for `name`, 0 when absent.
  [[nodiscard]] double seconds(std::string_view name) const noexcept;
  [[nodiscard]] bool empty() const noexcept { return phases.empty(); }

  /// Per-phase difference `this - earlier` (clamped at zero), for callers
  /// that bracket a region with two snapshots (e.g. qbpartd per-job stats).
  [[nodiscard]] PhaseReport since(const PhaseReport& earlier) const;

  friend bool operator==(const PhaseReport&, const PhaseReport&) = default;
};

/// Merge all threads' buckets into one report.  Cheap (phase count is
/// small); safe to call concurrently with recording scopes.
[[nodiscard]] PhaseReport snapshot();

/// Add `count` occurrences (and optionally `ns` nanoseconds) to a phase
/// bucket without timing a scope -- for event counters surfaced through the
/// same reports (e.g. presolve's rule-application counts).  No-op while
/// profiling is disabled or when count <= 0.
void record_events(PhaseId id, std::int64_t count, std::int64_t ns = 0) noexcept;

/// RAII phase timer.  When profiling is disabled at construction the object
/// is inert.  Not copyable or movable; construct through QBP_PROF_SCOPE.
class ScopedPhase {
 public:
  explicit ScopedPhase(PhaseId id) noexcept;
  ~ScopedPhase();
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  std::int64_t start_ns_ = 0;
  PhaseId id_ = -1;  // -1: disabled at entry, record nothing
};

/// {"<phase>": {"seconds": s, "count": c}, ...} -- object keyed by phase
/// name in report order (sorted).
[[nodiscard]] json::Value to_json(const PhaseReport& report);

/// Inverse of to_json; nullopt when the shape is wrong.
[[nodiscard]] std::optional<PhaseReport> from_json(const json::Value& value);

/// Multi-line "seconds  count  name" rendering, widest phase first.
[[nodiscard]] std::string to_string(const PhaseReport& report);

}  // namespace qbp::prof

#define QBP_PROF_CONCAT_INNER(a, b) a##b
#define QBP_PROF_CONCAT(a, b) QBP_PROF_CONCAT_INNER(a, b)

/// Time the rest of the enclosing block as phase `name` (a string literal).
#define QBP_PROF_SCOPE(name)                                             \
  static const ::qbp::prof::PhaseId QBP_PROF_CONCAT(qbp_prof_id_,        \
                                                    __LINE__) =          \
      ::qbp::prof::register_phase(name);                                 \
  const ::qbp::prof::ScopedPhase QBP_PROF_CONCAT(qbp_prof_scope_,        \
                                                 __LINE__)(              \
      QBP_PROF_CONCAT(qbp_prof_id_, __LINE__))
