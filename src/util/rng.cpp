#include "util/rng.hpp"

#include <cmath>
#include <numeric>

namespace qbp {

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless method.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
  std::uint64_t low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::next_int(std::int64_t lo, std::int64_t hi) noexcept {
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_log_normal(double mu, double sigma) noexcept {
  return std::exp(mu + sigma * next_gaussian());
}

std::size_t Rng::pick_weighted(std::span<const double> weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0) return weights.size();
  double ticket = next_double() * total;
  for (std::size_t k = 0; k < weights.size(); ++k) {
    ticket -= weights[k];
    if (ticket < 0.0) return k;
  }
  // Floating-point slop: return the last positively weighted index.
  for (std::size_t k = weights.size(); k-- > 0;) {
    if (weights[k] > 0.0) return k;
  }
  return weights.size();
}

Rng Rng::fork(std::uint64_t stream_id) noexcept {
  std::uint64_t mix = state_[0] ^ (stream_id * 0xd1342543de82ef95ULL);
  mix = split_mix64(mix);
  Rng child(mix ^ state_[3]);
  return child;
}

std::vector<std::int32_t> random_permutation(std::int32_t n, Rng& rng) {
  std::vector<std::int32_t> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  rng.shuffle(std::span<std::int32_t>(perm));
  return perm;
}

}  // namespace qbp
