// Deterministic pseudo-random number generation for reproducible experiments.
//
// Every stochastic piece of the library (netlist generation, random initial
// assignments, tie-breaking in heuristics) takes an explicit `Rng` so that a
// single 64-bit seed fully determines a run.  The generator is
// xoshiro256** seeded through SplitMix64, which is fast, has a 256-bit state
// and passes BigCrush; we intentionally avoid std::mt19937 whose seeding and
// distribution behaviour differ across standard-library implementations.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace qbp {

/// SplitMix64 step; used to expand a 64-bit seed into generator state.
/// Public because it is also handy for hashing small integers in tests.
[[nodiscard]] constexpr std::uint64_t split_mix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** engine with convenience sampling helpers.
///
/// Satisfies UniformRandomBitGenerator so it can also be handed to
/// <random> distributions, though the member helpers are preferred for
/// cross-platform determinism.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9bb1a7d4e0c2f35ULL) noexcept { reseed(seed); }

  /// Re-initialize the state from a 64-bit seed (SplitMix64 expansion).
  void reseed(std::uint64_t seed) noexcept {
    for (auto& word : state_) word = split_mix64(seed);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64 bits.
  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound).  Precondition: bound > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  [[nodiscard]] std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive.  Precondition: lo <= hi.
  [[nodiscard]] std::int64_t next_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double next_double() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double next_double(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_double();
  }

  /// Bernoulli trial with probability p of returning true.
  [[nodiscard]] bool next_bool(double p) noexcept { return next_double() < p; }

  /// Approximately normal variate (mean 0, stddev 1) via sum of uniforms
  /// refined by one Box-Muller-free polar step is overkill here; the
  /// generator is used for size distributions where a 12-uniform Irwin-Hall
  /// approximation is entirely adequate and branch-free.
  [[nodiscard]] double next_gaussian() noexcept {
    double acc = -6.0;
    for (int k = 0; k < 12; ++k) acc += next_double();
    return acc;
  }

  /// Log-normal variate: exp(mu + sigma * N(0,1)).  Used for component sizes
  /// that span ~2 orders of magnitude as in the paper's industrial circuits.
  [[nodiscard]] double next_log_normal(double mu, double sigma) noexcept;

  /// Fisher-Yates shuffle of a span (deterministic given the state).
  template <typename T>
  void shuffle(std::span<T> values) noexcept {
    for (std::size_t k = values.size(); k > 1; --k) {
      const std::size_t other = static_cast<std::size_t>(next_below(k));
      using std::swap;
      swap(values[k - 1], values[other]);
    }
  }

  /// Pick a uniformly random element index of a non-empty container.
  template <typename Container>
  [[nodiscard]] std::size_t pick_index(const Container& container) noexcept {
    return static_cast<std::size_t>(next_below(container.size()));
  }

  /// Sample an index proportionally to the given non-negative weights.
  /// Returns weights.size() if all weights are zero.
  [[nodiscard]] std::size_t pick_weighted(std::span<const double> weights) noexcept;

  /// A derived, independent stream: deterministic function of this
  /// generator's current state and the stream id.  Used to give each
  /// sub-component of the netlist generator its own stream so that changing
  /// one phase does not perturb the others.
  [[nodiscard]] Rng fork(std::uint64_t stream_id) noexcept;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

/// Deterministic random permutation of {0, ..., n-1}.
[[nodiscard]] std::vector<std::int32_t> random_permutation(std::int32_t n, Rng& rng);

}  // namespace qbp
