#include "util/simd.hpp"

#include <atomic>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define QBP_SIMD_X86 1
#include <immintrin.h>
#else
#define QBP_SIMD_X86 0
#endif

namespace qbp::simd {

namespace {

// See the header's determinism note: the toggle only selects between two
// bit-identical implementations, so relaxed ordering is sufficient.
std::atomic<bool> g_enabled{true};

void axpy_scalar(double a, const double* x, double* y,
                 std::int64_t n) noexcept {
  for (std::int64_t i = 0; i < n; ++i) y[i] += a * x[i];
}

std::int64_t swap_profit_scan_scalar(const double* masked,
                                     const std::int32_t* agent,
                                     const double* row,
                                     const double* assigned, double c11,
                                     double threshold, std::int64_t begin,
                                     std::int64_t end) noexcept {
  for (std::int64_t j = begin; j < end; ++j) {
    double delta = masked[agent[j]];
    delta += row[j];
    delta -= c11;
    delta -= assigned[j];
    if (delta < threshold) return j;
  }
  return -1;
}

#if QBP_SIMD_X86

// Vector bodies carry an explicit target attribute so the rest of the
// translation unit (and the whole build) stays at the baseline ISA; only
// these functions emit AVX2 instructions, and they are only reachable after
// the CPUID check below.  Mul and add stay separate instructions -- an FMA
// would round once instead of twice and break bit-identity with the scalar
// path.
__attribute__((target("avx2"))) void axpy_avx2(double a, const double* x,
                                               double* y,
                                               std::int64_t n) noexcept {
  const __m256d va = _mm256_set1_pd(a);
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d vx = _mm256_loadu_pd(x + i);
    const __m256d vy = _mm256_loadu_pd(y + i);
    _mm256_storeu_pd(y + i, _mm256_add_pd(vy, _mm256_mul_pd(va, vx)));
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

__attribute__((target("avx2"))) std::int64_t swap_profit_scan_avx2(
    const double* masked, const std::int32_t* agent, const double* row,
    const double* assigned, double c11, double threshold, std::int64_t begin,
    std::int64_t end) noexcept {
  const __m256d vc11 = _mm256_set1_pd(c11);
  const __m256d vthr = _mm256_set1_pd(threshold);
  std::int64_t j = begin;
  for (; j + 4 <= end; j += 4) {
    const __m128i idx =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(agent + j));
    // Masked gather with a zeroed source and an all-ones mask: semantically
    // the plain gather, but the initialized source operand keeps GCC's
    // -Wmaybe-uninitialized quiet under -Werror.
    const __m256d vmasked = _mm256_mask_i32gather_pd(
        _mm256_setzero_pd(), masked, idx,
        _mm256_castsi256_pd(_mm256_set1_epi64x(-1)), 8);
    // Same association as the scalar loop: ((masked + row) - c11) - assigned.
    const __m256d vdelta = _mm256_sub_pd(
        _mm256_sub_pd(_mm256_add_pd(vmasked, _mm256_loadu_pd(row + j)), vc11),
        _mm256_loadu_pd(assigned + j));
    const int hits =
        _mm256_movemask_pd(_mm256_cmp_pd(vdelta, vthr, _CMP_LT_OQ));
    if (hits != 0) return j + __builtin_ctz(static_cast<unsigned>(hits));
  }
  return swap_profit_scan_scalar(masked, agent, row, assigned, c11, threshold,
                                 j, end);
}

bool detect_avx2() noexcept { return __builtin_cpu_supports("avx2") != 0; }

#else

bool detect_avx2() noexcept { return false; }

#endif  // QBP_SIMD_X86

bool use_vector() noexcept {
  static const bool supported = detect_avx2();
  return supported && g_enabled.load(std::memory_order_relaxed);
}

}  // namespace

bool vector_supported() noexcept {
  static const bool supported = detect_avx2();
  return supported;
}

void set_enabled(bool enabled) noexcept {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }

const char* active_kernel() noexcept {
  return use_vector() ? "avx2" : "scalar";
}

void axpy(double a, const double* x, double* y, std::int64_t n) noexcept {
#if QBP_SIMD_X86
  if (use_vector()) {
    axpy_avx2(a, x, y, n);
    return;
  }
#endif
  axpy_scalar(a, x, y, n);
}

std::int64_t swap_profit_scan(const double* masked, const std::int32_t* agent,
                              const double* row, const double* assigned,
                              double c11, double threshold, std::int64_t begin,
                              std::int64_t end) noexcept {
#if QBP_SIMD_X86
  if (use_vector()) {
    return swap_profit_scan_avx2(masked, agent, row, assigned, c11, threshold,
                                 begin, end);
  }
#endif
  return swap_profit_scan_scalar(masked, agent, row, assigned, c11, threshold,
                                 begin, end);
}

}  // namespace qbp::simd
