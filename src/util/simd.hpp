// Runtime-dispatched SIMD kernels for the two flat hot loops (the STEP 3/5
// eta column gather and the GAP swap scan), with a scalar fallback that is
// the reference semantics.
//
// Determinism contract (DESIGN.md section 11 applies here too): every kernel
// produces bit-identical results to its scalar fallback.  That is possible
// because both kernels are element-wise -- each output lane depends on
// exactly one input index, evaluated with the same IEEE-754 operations in
// the same per-element order as the scalar loop.  Concretely:
//
//   * no FMA: a fused multiply-add rounds once where mul-then-add rounds
//     twice, so the vector bodies use separate mul/add instructions even
//     where the hardware could fuse them;
//   * no reassociation: sums that the scalar code evaluates left-to-right
//     stay left-to-right per lane;
//   * scans return the *first* index whose predicate fires, exactly like
//     the scalar loop (the vector body locates the first candidate block,
//     then the lowest set lane within it).
//
// Dispatch is resolved once per process from CPUID (AVX2 on x86-64; every
// other architecture gets the scalar path) and can be forced off with
// set_enabled(false) -- the bench harness and CI use that to verify the
// SIMD-on and SIMD-off objectives are identical.  The toggle is a relaxed
// atomic: it only selects between two implementations that produce the same
// bits, so there is nothing to order.
#pragma once

#include <cstdint>

namespace qbp::simd {

/// True when the CPU supports the vector path compiled into this binary
/// (AVX2 on x86-64, false elsewhere).
[[nodiscard]] bool vector_supported() noexcept;

/// Process-wide switch; defaults to on.  Disabling forces every kernel onto
/// the scalar fallback.  Results are bit-identical either way -- this knob
/// exists so benches and tests can prove exactly that.
void set_enabled(bool enabled) noexcept;
[[nodiscard]] bool enabled() noexcept;

/// The dispatch actually in effect: "avx2" or "scalar".
[[nodiscard]] const char* active_kernel() noexcept;

/// y[i] += a * x[i] for i in [0, n).  The eta gather's wire-block
/// accumulation and the STEP 5 direction update are both this shape.
void axpy(double a, const double* x, double* y, std::int64_t n) noexcept;

/// First j in [begin, end) with
///
///   ((masked[agent[j]] + row[j]) - c11) - assigned[j] < threshold
///
/// or -1 when no element qualifies.  This is the GAP swap scan's
/// profitability pre-filter; the caller re-checks capacities at the returned
/// index and resumes the scan one past it on rejection.  The sum order
/// matches the scalar formulation exactly.
[[nodiscard]] std::int64_t swap_profit_scan(const double* masked,
                                            const std::int32_t* agent,
                                            const double* row,
                                            const double* assigned,
                                            double c11, double threshold,
                                            std::int64_t begin,
                                            std::int64_t end) noexcept;

}  // namespace qbp::simd
