#include "util/strings.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace qbp {

namespace {
constexpr bool is_space(char c) noexcept {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' || c == '\v';
}
}  // namespace

std::string_view trim(std::string_view text) noexcept {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && is_space(text[begin])) ++begin;
  while (end > begin && is_space(text[end - 1])) --end;
  return text.substr(begin, end - begin);
}

std::vector<std::string_view> split(std::string_view text, char sep) {
  std::vector<std::string_view> fields;
  std::size_t start = 0;
  for (std::size_t k = 0; k <= text.size(); ++k) {
    if (k == text.size() || text[k] == sep) {
      fields.push_back(text.substr(start, k - start));
      start = k + 1;
    }
  }
  return fields;
}

std::vector<std::string_view> split_whitespace(std::string_view text) {
  std::vector<std::string_view> fields;
  std::size_t k = 0;
  while (k < text.size()) {
    while (k < text.size() && is_space(text[k])) ++k;
    const std::size_t start = k;
    while (k < text.size() && !is_space(text[k])) ++k;
    if (k > start) fields.push_back(text.substr(start, k - start));
  }
  return fields;
}

bool starts_with(std::string_view text, std::string_view prefix) noexcept {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool parse_int(std::string_view text, long long& out) noexcept {
  text = trim(text);
  if (text.empty()) return false;
  const char* first = text.data();
  const char* last = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc{} && ptr == last;
}

bool parse_double(std::string_view text, double& out) noexcept {
  text = trim(text);
  if (text.empty()) return false;
  // std::from_chars for double is available in libstdc++ >= 11.
  const char* first = text.data();
  const char* last = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc{} && ptr == last;
}

std::string format_double(double value, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", decimals, value);
  return buffer;
}

std::string format_grouped(long long value) {
  const bool negative = value < 0;
  unsigned long long magnitude =
      negative ? 0ULL - static_cast<unsigned long long>(value)
               : static_cast<unsigned long long>(value);
  std::string digits = std::to_string(magnitude);
  std::string grouped;
  grouped.reserve(digits.size() + digits.size() / 3 + 1);
  int count = 0;
  for (std::size_t k = digits.size(); k-- > 0;) {
    grouped.push_back(digits[k]);
    if (++count == 3 && k != 0) {
      grouped.push_back(',');
      count = 0;
    }
  }
  if (negative) grouped.push_back('-');
  std::string result(grouped.rbegin(), grouped.rend());
  return result;
}

}  // namespace qbp
