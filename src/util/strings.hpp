// Small string utilities shared by the netlist file format, the CLI parser
// and the table formatter.  Kept dependency-free and allocation-conscious.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace qbp {

/// Remove leading and trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view text) noexcept;

/// Split on a single character; empty fields are kept.
[[nodiscard]] std::vector<std::string_view> split(std::string_view text, char sep);

/// Split on runs of whitespace; empty fields are dropped.
[[nodiscard]] std::vector<std::string_view> split_whitespace(std::string_view text);

/// True if `text` begins with `prefix`.
[[nodiscard]] bool starts_with(std::string_view text, std::string_view prefix) noexcept;

/// Parse helpers returning false on malformed input instead of throwing;
/// the netlist reader turns failures into line-numbered diagnostics.
[[nodiscard]] bool parse_int(std::string_view text, long long& out) noexcept;
[[nodiscard]] bool parse_double(std::string_view text, double& out) noexcept;

/// Fixed-point formatting without locale surprises ("%.*f").
[[nodiscard]] std::string format_double(double value, int decimals);

/// Thousands-grouped integer formatting for table output (e.g. "20,756").
[[nodiscard]] std::string format_grouped(long long value);

}  // namespace qbp
