#include "util/table.hpp"

#include <algorithm>
#include <sstream>

namespace qbp {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)),
      alignment_(headers_.size(), Align::kRight) {}

void TextTable::set_alignment(std::vector<Align> alignment) {
  alignment_ = std::move(alignment);
  alignment_.resize(headers_.size(), Align::kRight);
}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back({std::move(cells), pending_rule_});
  pending_rule_ = false;
}

void TextTable::add_rule() { pending_rule_ = true; }

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  const auto emit_cell = [&](std::ostringstream& out, std::string_view text,
                             std::size_t column) {
    const std::size_t pad = widths[column] - text.size();
    if (alignment_[column] == Align::kRight) {
      out << std::string(pad, ' ') << text;
    } else {
      out << text << std::string(pad, ' ');
    }
  };

  const auto emit_rule = [&](std::ostringstream& out) {
    out << '+';
    for (std::size_t c = 0; c < widths.size(); ++c) {
      out << std::string(widths[c] + 2, '-') << '+';
    }
    out << '\n';
  };

  std::ostringstream out;
  emit_rule(out);
  out << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << ' ';
    emit_cell(out, headers_[c], c);
    out << " |";
  }
  out << '\n';
  emit_rule(out);
  for (const auto& row : rows_) {
    if (row.rule_before) emit_rule(out);
    out << '|';
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      out << ' ';
      emit_cell(out, row.cells[c], c);
      out << " |";
    }
    out << '\n';
  }
  emit_rule(out);
  return out.str();
}

}  // namespace qbp
