// Plain-text table rendering for the experiment harness.
//
// Renders the same row/column structure as the paper's Tables I-III so that
// `bench_table2` output can be eyeballed against the original side by side.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace qbp {

class TextTable {
 public:
  enum class Align { kLeft, kRight };

  explicit TextTable(std::vector<std::string> headers);

  /// Per-column alignment; defaults to right-aligned for all columns.
  void set_alignment(std::vector<Align> alignment);

  void add_row(std::vector<std::string> cells);

  /// Insert a horizontal rule before the next added row.
  void add_rule();

  /// Render with single-space-padded `|` separators and a header rule.
  [[nodiscard]] std::string render() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool rule_before = false;
  };

  std::vector<std::string> headers_;
  std::vector<Align> alignment_;
  std::vector<Row> rows_;
  bool pending_rule_ = false;
};

}  // namespace qbp
