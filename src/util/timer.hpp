// Wall-clock stopwatch used by the experiment harness.
//
// The paper reports "CPU time in seconds on DECstation 5000/125"; absolute
// numbers are not reproducible across hardware, so the harness reports
// wall-clock seconds on the host and, for the tables, the *ratios* between
// methods (see EXPERIMENTS.md).
#pragma once

#include <chrono>

namespace qbp {

class Timer {
 public:
  Timer() noexcept : start_(Clock::now()) {}

  /// Restart the stopwatch.
  void reset() noexcept { start_ = Clock::now(); }

  /// Seconds elapsed since construction / last reset.
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction / last reset.
  [[nodiscard]] double millis() const noexcept { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace qbp
