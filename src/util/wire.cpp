#include "util/wire.hpp"

#include <array>
#include <bit>

namespace qbp::wire {

namespace {

/// Packed little-endian array copy.  All supported targets are
/// little-endian (the SIMD kernels already assume it); the byte-swapping
/// fallback keeps the format well-defined if that ever changes.
template <typename T>
void append_packed(std::string& out, std::span<const T> values) {
  static_assert(std::endian::native == std::endian::little ||
                std::endian::native == std::endian::big);
  if (values.empty()) return;
  if constexpr (std::endian::native == std::endian::little) {
    const char* raw = reinterpret_cast<const char*>(values.data());
    out.append(raw, values.size() * sizeof(T));
  } else {
    for (const T value : values) {
      auto bytes = std::bit_cast<std::array<char, sizeof(T)>>(value);
      for (std::size_t k = sizeof(T); k-- > 0;) out.push_back(bytes[k]);
    }
  }
}

template <typename T>
void read_packed(const char* raw, std::size_t count, std::vector<T>& out) {
  out.resize(count);
  if (count == 0) return;
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(out.data(), raw, count * sizeof(T));
  } else {
    for (std::size_t j = 0; j < count; ++j) {
      std::array<char, sizeof(T)> bytes;
      for (std::size_t k = 0; k < sizeof(T); ++k) {
        bytes[k] = raw[j * sizeof(T) + sizeof(T) - 1 - k];
      }
      out[j] = std::bit_cast<T>(bytes);
    }
  }
}

std::uint16_t load_u16(const unsigned char* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t load_u32(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

void Writer::varint(std::uint64_t value) {
  while (value >= 0x80) {
    u8(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  u8(static_cast<std::uint8_t>(value));
}

void Writer::svarint(std::int64_t value) {
  const auto raw = static_cast<std::uint64_t>(value);
  varint((raw << 1) ^ static_cast<std::uint64_t>(value >> 63));
}

void Writer::f64(double value) {
  const auto bits = std::bit_cast<std::uint64_t>(value);
  u32(static_cast<std::uint32_t>(bits & 0xFFFFFFFF));
  u32(static_cast<std::uint32_t>(bits >> 32));
}

void Writer::string(std::string_view text) {
  varint(text.size());
  if (!text.empty()) out_->append(text.data(), text.size());
}

void Writer::f64_array(std::span<const double> values) {
  varint(values.size());
  append_packed(*out_, values);
}

void Writer::i32_array(std::span<const std::int32_t> values) {
  varint(values.size());
  append_packed(*out_, values);
}

bool Reader::u8(std::uint8_t& out) {
  if (remaining() < 1) return false;
  out = static_cast<std::uint8_t>(data_[pos_++]);
  return true;
}

bool Reader::u16(std::uint16_t& out) {
  if (remaining() < 2) return false;
  out = load_u16(reinterpret_cast<const unsigned char*>(data_.data()) + pos_);
  pos_ += 2;
  return true;
}

bool Reader::u32(std::uint32_t& out) {
  if (remaining() < 4) return false;
  out = load_u32(reinterpret_cast<const unsigned char*>(data_.data()) + pos_);
  pos_ += 4;
  return true;
}

bool Reader::varint(std::uint64_t& out) {
  out = 0;
  for (unsigned shift = 0; shift < 64; shift += 7) {
    std::uint8_t byte = 0;
    if (!u8(byte)) return false;
    const std::uint64_t chunk = byte & 0x7F;
    // The tenth byte carries the final bit only; reject overflow so every
    // encodable value has exactly one accepted encoding length.
    if (shift == 63 && chunk > 1) return false;
    out |= chunk << shift;
    if ((byte & 0x80) == 0) return true;
  }
  return false;  // continuation bit set past 10 bytes
}

bool Reader::svarint(std::int64_t& out) {
  std::uint64_t raw = 0;
  if (!varint(raw)) return false;
  out = static_cast<std::int64_t>((raw >> 1) ^ (~(raw & 1) + 1));
  return true;
}

bool Reader::f64(double& out) {
  std::uint32_t lo = 0;
  std::uint32_t hi = 0;
  if (!u32(lo) || !u32(hi)) return false;
  out = std::bit_cast<double>((static_cast<std::uint64_t>(hi) << 32) | lo);
  return true;
}

bool Reader::string(std::string_view& out) {
  std::uint64_t size = 0;
  if (!varint(size) || size > remaining()) return false;
  out = data_.substr(pos_, size);
  pos_ += size;
  return true;
}

bool Reader::f64_array(std::vector<double>& out) {
  std::uint64_t count = 0;
  if (!varint(count) || count > remaining() / sizeof(double)) return false;
  read_packed(data_.data() + pos_, count, out);
  pos_ += count * sizeof(double);
  return true;
}

bool Reader::i32_array(std::vector<std::int32_t>& out) {
  std::uint64_t count = 0;
  if (!varint(count) || count > remaining() / sizeof(std::int32_t)) {
    return false;
  }
  read_packed(data_.data() + pos_, count, out);
  pos_ += count * sizeof(std::int32_t);
  return true;
}

FrameStatus peek_frame(std::string_view buffer, FrameView& out,
                       std::string& error) {
  if (buffer.size() < kHeaderSize) {
    // The magic can be refuted before the full header arrives.
    for (std::size_t k = 0; k < buffer.size() && k < 4; ++k) {
      if (static_cast<unsigned char>(buffer[k]) != kMagic[k]) {
        error = "bad frame magic";
        return FrameStatus::kBad;
      }
    }
    return FrameStatus::kIncomplete;
  }
  const auto* head = reinterpret_cast<const unsigned char*>(buffer.data());
  if (std::memcmp(head, kMagic, 4) != 0) {
    error = "bad frame magic";
    return FrameStatus::kBad;
  }
  if (head[4] != kVersion) {
    error = "unsupported wire version " + std::to_string(head[4]) +
            " (expected " + std::to_string(kVersion) + ")";
    return FrameStatus::kBad;
  }
  if (load_u16(head + 6) != 0) {
    error = "reserved frame flags must be zero";
    return FrameStatus::kBad;
  }
  const std::uint32_t payload_size = load_u32(head + 8);
  if (payload_size > kMaxPayload) {
    error = "frame payload of " + std::to_string(payload_size) +
            " bytes exceeds the " + std::to_string(kMaxPayload) + " byte cap";
    return FrameStatus::kBad;
  }
  if (buffer.size() - kHeaderSize < payload_size) {
    return FrameStatus::kIncomplete;
  }
  out.type = head[5];
  out.payload = buffer.substr(kHeaderSize, payload_size);
  out.frame_size = kHeaderSize + payload_size;
  return FrameStatus::kFrame;
}

void append_frame(std::string& out, std::uint8_t type,
                  std::string_view payload) {
  out.reserve(out.size() + kHeaderSize + payload.size());
  out.append(reinterpret_cast<const char*>(kMagic), 4);
  out.push_back(static_cast<char>(kVersion));
  out.push_back(static_cast<char>(type));
  Writer writer(out);
  writer.u16(0);  // reserved flags
  writer.u32(static_cast<std::uint32_t>(payload.size()));
  if (!payload.empty()) out.append(payload.data(), payload.size());
}

void FrameBuffer::append(const char* data, std::size_t size) {
  // Compact before growing once the dead prefix dominates, so steady-state
  // traffic moves each byte O(1) times instead of once per erase().
  if (offset_ > 4096 && offset_ > buffer_.size() / 2) {
    buffer_.erase(0, offset_);
    offset_ = 0;
  }
  buffer_.append(data, size);
}

FrameStatus FrameBuffer::next(FrameView& out, std::string& error) {
  return peek_frame(
      std::string_view(buffer_).substr(offset_), out, error);
}

void FrameBuffer::consume(std::size_t frame_size) {
  offset_ += frame_size;
  if (offset_ >= buffer_.size()) {
    buffer_.clear();
    offset_ = 0;
  }
}

}  // namespace qbp::wire
