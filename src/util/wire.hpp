// Length-prefixed little-endian binary framing for the qbpartd wire
// protocol (docs/PROTOCOL.md) -- the transport layer below the message
// codec in service/wire.hpp.
//
// Frame layout (12-byte header + payload):
//
//   offset  size  field
//   0       4     magic 0x9B 'Q' 'B' 'W' (first byte is invalid UTF-8 /
//                 JSON, so binary traffic is distinguishable from NDJSON
//                 by the first byte of a connection)
//   4       1     protocol version (kVersion; mismatches are rejected)
//   5       1     message type (service-level enum; opaque here)
//   6       2     flags, little-endian (reserved, must be zero in v1)
//   8       4     payload size in bytes, little-endian (<= kMaxPayload)
//   12      ...   payload
//
// Payload primitives (Writer/Reader): LEB128 varints for unsigned ints,
// zigzag varints for signed ints, raw IEEE-754 little-endian bytes for
// doubles (bit-preserving -- the determinism contract extends to the
// codec), length-prefixed UTF-8 strings, and count-prefixed packed arrays
// of f64/i32 that bulk-memcpy on little-endian hosts.  Reader is fully
// bounds-checked and never throws or aborts on malformed input: every
// accessor returns false once the payload is exhausted or corrupt
// (fuzz/fuzz_wire.cpp hammers this contract).
//
// FrameBuffer is the per-connection receive arena: bytes append to one
// growing buffer, complete frames are peeked in place (zero-copy
// string_view payloads), and the consumed prefix is compacted lazily so a
// long-lived connection does not pay O(bytes^2) erase-from-front churn.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace qbp::wire {

inline constexpr unsigned char kMagic[4] = {0x9B, 'Q', 'B', 'W'};
inline constexpr std::uint8_t kVersion = 1;
inline constexpr std::size_t kHeaderSize = 12;
/// Hard cap on one frame's payload; a header advertising more is treated
/// as malformed (protects the receive arena from hostile length fields).
inline constexpr std::uint32_t kMaxPayload = 1u << 30;  // 1 GiB

/// Appends payload primitives to a caller-owned byte buffer (std::string,
/// so the result can flow through the existing response Sink unchanged).
/// The buffer is reusable across frames: callers clear() and re-encode.
class Writer {
 public:
  explicit Writer(std::string& out) : out_(&out) {}

  void u8(std::uint8_t value) { out_->push_back(static_cast<char>(value)); }
  void u16(std::uint16_t value) {
    u8(static_cast<std::uint8_t>(value & 0xFF));
    u8(static_cast<std::uint8_t>(value >> 8));
  }
  void u32(std::uint32_t value) {
    u16(static_cast<std::uint16_t>(value & 0xFFFF));
    u16(static_cast<std::uint16_t>(value >> 16));
  }
  /// LEB128: 7 value bits per byte, high bit = continuation.
  void varint(std::uint64_t value);
  /// Zigzag-mapped varint for signed values (small magnitudes stay small).
  void svarint(std::int64_t value);
  /// Raw IEEE-754 bits, little-endian; exact round-trip for every value
  /// including -0.0, infinities and NaN payloads.
  void f64(double value);
  void string(std::string_view text);
  void f64_array(std::span<const double> values);
  void i32_array(std::span<const std::int32_t> values);

 private:
  std::string* out_;
};

/// Bounds-checked payload reader over a borrowed byte range.  Accessors
/// return false (and leave the cursor at the failure point) on truncation
/// or malformed varints; callers bail on the first false.
class Reader {
 public:
  explicit Reader(std::string_view payload) : data_(payload) {}

  [[nodiscard]] bool u8(std::uint8_t& out);
  [[nodiscard]] bool u16(std::uint16_t& out);
  [[nodiscard]] bool u32(std::uint32_t& out);
  [[nodiscard]] bool varint(std::uint64_t& out);
  [[nodiscard]] bool svarint(std::int64_t& out);
  [[nodiscard]] bool f64(double& out);
  /// Zero-copy: the view aliases the frame buffer and is only valid until
  /// the owning FrameBuffer next mutates.
  [[nodiscard]] bool string(std::string_view& out);
  /// Count-prefixed packed arrays.  The element count is validated against
  /// the bytes actually remaining BEFORE any allocation, so a hostile
  /// count cannot drive a huge resize.
  [[nodiscard]] bool f64_array(std::vector<double>& out);
  [[nodiscard]] bool i32_array(std::vector<std::int32_t>& out);

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  /// True when the whole payload was consumed (trailing garbage is a
  /// framing error for fixed-schema messages).
  [[nodiscard]] bool done() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
};

/// One complete frame viewed in place inside a receive buffer.
struct FrameView {
  std::uint8_t type = 0;
  std::string_view payload;     // aliases the buffer; copy before reuse
  std::size_t frame_size = 0;   // header + payload, for consume()
};

enum class FrameStatus {
  kIncomplete,  // need more bytes
  kFrame,       // `out` holds a complete frame
  kBad,         // malformed header; connection should error out
};

/// Inspect the start of `buffer` for one frame.  kBad covers bad magic,
/// version mismatch, nonzero reserved flags and oversized payloads;
/// `error` gets a one-line description.
[[nodiscard]] FrameStatus peek_frame(std::string_view buffer, FrameView& out,
                                     std::string& error);

/// Encode a frame header + payload into `out` (appended).  The payload is
/// written by `fill` through a Writer so message codecs can stream
/// directly into the connection's reusable encode buffer.
void append_frame(std::string& out, std::uint8_t type,
                  std::string_view payload);

/// Per-connection receive arena.  append() accumulates raw bytes; next()
/// peeks the frame at the current read offset without copying; consume()
/// advances past it; the consumed prefix is compacted only once it
/// dominates the buffer, amortizing the move.
class FrameBuffer {
 public:
  void append(const char* data, std::size_t size);
  [[nodiscard]] FrameStatus next(FrameView& out, std::string& error);
  void consume(std::size_t frame_size);
  [[nodiscard]] std::size_t pending() const { return buffer_.size() - offset_; }

 private:
  std::string buffer_;
  std::size_t offset_ = 0;
};

}  // namespace qbp::wire
