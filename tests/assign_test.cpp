#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "assign/gap.hpp"
#include "assign/knapsack.hpp"
#include "assign/lap.hpp"
#include "util/rng.hpp"

namespace qbp {
namespace {

// ------------------------------------------------------------ knapsack ----

TEST(Knapsack, UpperBoundDominatesExact) {
  const std::vector<KnapsackItem> items{{10, 5}, {6, 4}, {7, 3}};
  double exact_value = 0.0;
  (void)knapsack_exact(items, 8.0, exact_value, 1.0);
  EXPECT_GE(knapsack_upper_bound(items, 8.0), exact_value - 1e-9);
}

TEST(Knapsack, ExactSolvesClassicInstance) {
  // Capacity 10: best is items 0+2 (values 10 + 7 = 17, weights 5 + 3).
  const std::vector<KnapsackItem> items{{10, 5}, {6, 4}, {7, 3}};
  double value = 0.0;
  const auto chosen = knapsack_exact(items, 10.0, value, 1.0);
  EXPECT_DOUBLE_EQ(value, 17.0);
  EXPECT_EQ(chosen, (std::vector<std::int32_t>{0, 2}));
}

TEST(Knapsack, GreedyIsFeasibleAndPositive) {
  const std::vector<KnapsackItem> items{{4, 2}, {3, 2}, {5, 4}, {1, 1}};
  double value = 0.0;
  const auto chosen = knapsack_greedy(items, 5.0, value);
  double weight = 0.0;
  for (const auto k : chosen) weight += items[k].weight;
  EXPECT_LE(weight, 5.0);
  EXPECT_GT(value, 0.0);
}

TEST(Knapsack, GreedyTakesBestSingleWhenPackIsWorse) {
  // Density favors small items but one big item dominates.
  const std::vector<KnapsackItem> items{{3, 1}, {100, 10}};
  double value = 0.0;
  const auto chosen = knapsack_greedy(items, 10.0, value);
  EXPECT_DOUBLE_EQ(value, 100.0);
  EXPECT_EQ(chosen, (std::vector<std::int32_t>{1}));
}

TEST(Knapsack, ZeroCapacity) {
  const std::vector<KnapsackItem> items{{5, 1}};
  double value = -1.0;
  EXPECT_TRUE(knapsack_exact(items, 0.0, value).empty());
  EXPECT_DOUBLE_EQ(value, 0.0);
  EXPECT_DOUBLE_EQ(knapsack_upper_bound(items, 0.0), 0.0);
}

TEST(Knapsack, FractionalWeightsRoundedConservatively) {
  const std::vector<KnapsackItem> items{{5, 0.51}, {5, 0.51}};
  double value = 0.0;
  // Capacity 1.0 holds only one item (0.51 * 2 > 1.0).
  const auto chosen = knapsack_exact(items, 1.0, value, 100.0);
  EXPECT_EQ(chosen.size(), 1u);
  EXPECT_DOUBLE_EQ(value, 5.0);
}

// ----------------------------------------------------------------- lap ----

double brute_force_lap(const Matrix<double>& cost) {
  const std::int32_t n = cost.rows();
  std::vector<std::int32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  double best = std::numeric_limits<double>::infinity();
  do {
    double total = 0.0;
    for (std::int32_t r = 0; r < n; ++r) total += cost(r, perm[r]);
    best = std::min(best, total);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

TEST(Lap, SolvesHandExample) {
  const auto cost = Matrix<double>::from_rows({{4, 1, 3}, {2, 0, 5}, {3, 2, 2}});
  const auto result = solve_lap(cost);
  EXPECT_DOUBLE_EQ(result.cost, 5.0);  // 1 + 2 + 2
  EXPECT_EQ(result.col_of_row[0], 1);
  EXPECT_EQ(result.col_of_row[1], 0);
  EXPECT_EQ(result.col_of_row[2], 2);
}

TEST(Lap, AssignmentIsInjective) {
  Rng rng(5);
  Matrix<double> cost(6, 6, 0.0);
  for (std::int32_t r = 0; r < 6; ++r) {
    for (std::int32_t c = 0; c < 6; ++c) cost(r, c) = rng.next_double(0, 10);
  }
  const auto result = solve_lap(cost);
  std::vector<bool> used(6, false);
  for (const auto col : result.col_of_row) {
    ASSERT_GE(col, 0);
    EXPECT_FALSE(used[col]);
    used[col] = true;
  }
}

class LapRandomSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LapRandomSweep, MatchesBruteForceOnRandomSquare) {
  Rng rng(GetParam());
  const std::int32_t n = 2 + static_cast<std::int32_t>(rng.next_below(5));
  Matrix<double> cost(n, n, 0.0);
  for (std::int32_t r = 0; r < n; ++r) {
    for (std::int32_t c = 0; c < n; ++c) {
      cost(r, c) = static_cast<double>(rng.next_int(0, 20));
    }
  }
  EXPECT_NEAR(solve_lap(cost).cost, brute_force_lap(cost), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LapRandomSweep,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST(Lap, RectangularRowsLeqCols) {
  const auto cost = Matrix<double>::from_rows({{9, 1, 9, 9}, {9, 9, 9, 2}});
  const auto result = solve_lap(cost);
  EXPECT_DOUBLE_EQ(result.cost, 3.0);
  EXPECT_EQ(result.row_of_col[1], 0);
  EXPECT_EQ(result.row_of_col[3], 1);
  EXPECT_EQ(result.row_of_col[0], -1);
}

TEST(Lap, NegativeCostsHandled) {
  const auto cost = Matrix<double>::from_rows({{-5, 0}, {0, -3}});
  EXPECT_DOUBLE_EQ(solve_lap(cost).cost, -8.0);
}

// ----------------------------------------------------------------- gap ----

GapProblem random_gap(std::int32_t m, std::int32_t n, double slack,
                      std::uint64_t seed) {
  Rng rng(seed);
  GapProblem problem;
  problem.cost = Matrix<double>(m, n, 0.0);
  for (std::int32_t i = 0; i < m; ++i) {
    for (std::int32_t j = 0; j < n; ++j) {
      problem.cost(i, j) = static_cast<double>(rng.next_int(0, 30));
    }
  }
  problem.sizes.resize(n);
  double total = 0.0;
  for (auto& size : problem.sizes) {
    size = rng.next_double(0.5, 2.0);
    total += size;
  }
  problem.capacities.assign(m, total / m * slack);
  return problem;
}

/// Exhaustive GAP optimum (m^n enumeration).
double brute_force_gap(const GapProblem& problem, bool& feasible) {
  const std::int32_t m = problem.cost.rows();
  const std::int32_t n = problem.cost.cols();
  std::vector<std::int32_t> assignment(n, 0);
  double best = std::numeric_limits<double>::infinity();
  feasible = false;
  while (true) {
    if (gap_feasible(problem, assignment)) {
      feasible = true;
      best = std::min(best, gap_cost(problem, assignment));
    }
    std::int32_t j = 0;
    while (j < n) {
      if (++assignment[j] < m) break;
      assignment[j] = 0;
      ++j;
    }
    if (j == n) break;
  }
  return best;
}

TEST(Gap, FeasibleOnEasyInstance) {
  const auto problem = random_gap(4, 20, 1.8, 1);
  const auto result = solve_gap(problem);
  EXPECT_TRUE(result.feasible);
  EXPECT_TRUE(gap_feasible(problem, result.agent_of_item));
  EXPECT_DOUBLE_EQ(result.cost, gap_cost(problem, result.agent_of_item));
}

TEST(Gap, EveryItemAssigned) {
  const auto problem = random_gap(3, 15, 2.0, 2);
  const auto result = solve_gap(problem);
  ASSERT_EQ(result.agent_of_item.size(), 15u);
  for (const auto agent : result.agent_of_item) {
    EXPECT_GE(agent, 0);
    EXPECT_LT(agent, 3);
  }
}

class GapQualitySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GapQualitySweep, WithinFactorOfBruteForceOptimum) {
  const auto problem = random_gap(3, 7, 1.7, GetParam());
  bool exists = false;
  const double optimum = brute_force_gap(problem, exists);
  ASSERT_TRUE(exists);
  GapOptions options;
  options.swap_improvement = true;
  const auto result = solve_gap(problem, options);
  ASSERT_TRUE(result.feasible);
  // A decent MTHG implementation should be within 30% on tiny instances
  // (usually exact); this guards against gross regressions.
  EXPECT_LE(result.cost, optimum * 1.3 + 5.0);
  EXPECT_GE(result.cost, optimum - 1e-9);
}

TEST_P(GapQualitySweep, FeasibleWheneverBruteForceIsTight) {
  // slack 1.25: tight but feasible instances.
  const auto problem = random_gap(3, 7, 1.25, GetParam() ^ 0x99);
  bool exists = false;
  (void)brute_force_gap(problem, exists);
  if (!exists) GTEST_SKIP() << "instance infeasible";
  GapOptions options;
  options.swap_improvement = true;
  const auto result = solve_gap(problem, options);
  EXPECT_TRUE(result.feasible);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GapQualitySweep,
                         ::testing::Range<std::uint64_t>(1, 11));

// GapOptions::threads is a pure scheduling knob: the candidate scans run
// on the shared deterministic pool, so the assignment (not just the cost)
// must be identical at every thread count.  Instances are sized past the
// chunk grains so the scans genuinely fan out.
TEST(Gap, ThreadCountNeverChangesTheResult) {
  for (const std::uint64_t seed : {3u, 17u, 91u}) {
    // Tight capacities so repair runs; 2600 items keeps even the coarse
    // swap-pass chunking (grain 512) above the pool's fan-out threshold.
    const auto problem = random_gap(8, 2600, 1.15, seed);
    GapOptions base;
    base.improvement_passes = 3;
    base.swap_improvement = true;
    const GapResult reference = solve_gap(problem, base);
    for (const std::int32_t threads : {2, 8}) {
      GapOptions options = base;
      options.threads = threads;
      const GapResult result = solve_gap(problem, options);
      EXPECT_EQ(result.agent_of_item, reference.agent_of_item)
          << "seed " << seed << " threads " << threads;
      EXPECT_EQ(result.cost, reference.cost);
      EXPECT_EQ(result.feasible, reference.feasible);
      EXPECT_EQ(result.repair_moves, reference.repair_moves);
      EXPECT_EQ(result.construction_failures, reference.construction_failures);
    }
  }
}

TEST(Gap, RepairsOverflowWhenConstructionFails) {
  // One big item per agent fits only in a specific arrangement; greedy
  // construction by cost alone would overflow.
  GapProblem problem;
  problem.cost = Matrix<double>::from_rows({{0.0, 0.0}, {10.0, 10.0}});
  problem.sizes = {1.0, 1.0};
  problem.capacities = {1.0, 1.0};
  const auto result = solve_gap(problem);
  EXPECT_TRUE(result.feasible);
  // One item must take the expensive agent.
  EXPECT_DOUBLE_EQ(result.cost, 10.0);
}

TEST(Gap, InfeasibleInstanceReported) {
  GapProblem problem;
  problem.cost = Matrix<double>(2, 3, 1.0);
  problem.sizes = {1.0, 1.0, 1.0};
  problem.capacities = {0.5, 0.5};  // nothing fits anywhere
  const auto result = solve_gap(problem);
  EXPECT_FALSE(result.feasible);
  EXPECT_EQ(result.agent_of_item.size(), 3u);  // still complete (C3)
}

TEST(Gap, DeterministicAcrossRuns) {
  const auto problem = random_gap(4, 30, 1.5, 77);
  const auto a = solve_gap(problem);
  const auto b = solve_gap(problem);
  EXPECT_EQ(a.agent_of_item, b.agent_of_item);
  EXPECT_DOUBLE_EQ(a.cost, b.cost);
}

TEST(Gap, ImprovementPassesNeverWorsen) {
  const auto problem = random_gap(4, 25, 1.6, 31);
  GapOptions no_improve;
  no_improve.improvement_passes = 0;
  GapOptions improve;
  improve.improvement_passes = 4;
  improve.swap_improvement = true;
  const auto base = solve_gap(problem, no_improve);
  const auto better = solve_gap(problem, improve);
  if (base.feasible && better.feasible) {
    EXPECT_LE(better.cost, base.cost + 1e-9);
  }
}

TEST(Gap, HonorsZeroCapacityAgent) {
  GapProblem problem;
  problem.cost = Matrix<double>::from_rows({{0.0, 0.0}, {5.0, 5.0}});
  problem.sizes = {1.0, 1.0};
  problem.capacities = {0.0, 2.0};  // agent 0 is closed despite cheap costs
  const auto result = solve_gap(problem);
  EXPECT_TRUE(result.feasible);
  EXPECT_EQ(result.agent_of_item[0], 1);
  EXPECT_EQ(result.agent_of_item[1], 1);
}

}  // namespace
}  // namespace qbp
